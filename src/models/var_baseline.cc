#include "models/var_baseline.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace emaf::models {

using tensor::Shape;
using tensor::Tensor;

Tensor SolveSpd(const Tensor& a, const Tensor& b) {
  EMAF_CHECK_EQ(a.rank(), 2);
  EMAF_CHECK_EQ(a.dim(0), a.dim(1));
  EMAF_CHECK_EQ(b.rank(), 2);
  EMAF_CHECK_EQ(b.dim(0), a.dim(0));
  int64_t n = a.dim(0);
  int64_t m = b.dim(1);

  // Cholesky factorization A = L L^T.
  std::vector<double> l(static_cast<size_t>(n * n), 0.0);
  const double* ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = ad[i * n + j];
      for (int64_t k = 0; k < j; ++k) {
        sum -= l[static_cast<size_t>(i * n + k)] *
               l[static_cast<size_t>(j * n + k)];
      }
      if (i == j) {
        EMAF_CHECK_GT(sum, 0.0) << "SolveSpd: matrix not positive definite";
        l[static_cast<size_t>(i * n + i)] = std::sqrt(sum);
      } else {
        l[static_cast<size_t>(i * n + j)] =
            sum / l[static_cast<size_t>(j * n + j)];
      }
    }
  }

  // Forward/back substitution per right-hand-side column.
  Tensor x = Tensor::Zeros(Shape{n, m});
  const double* bd = b.data();
  double* xd = x.data();
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  for (int64_t c = 0; c < m; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      double sum = bd[i * m + c];
      for (int64_t k = 0; k < i; ++k) {
        sum -= l[static_cast<size_t>(i * n + k)] * y[static_cast<size_t>(k)];
      }
      y[static_cast<size_t>(i)] = sum / l[static_cast<size_t>(i * n + i)];
    }
    for (int64_t i = n - 1; i >= 0; --i) {
      double sum = y[static_cast<size_t>(i)];
      for (int64_t k = i + 1; k < n; ++k) {
        sum -= l[static_cast<size_t>(k * n + i)] * xd[k * m + c];
      }
      xd[i * m + c] = sum / l[static_cast<size_t>(i * n + i)];
    }
  }
  return x;
}

void VarBaseline::Fit(const Tensor& inputs, const Tensor& targets) {
  EMAF_CHECK_EQ(inputs.rank(), 3);
  EMAF_CHECK_EQ(targets.rank(), 2);
  EMAF_CHECK_EQ(inputs.dim(0), targets.dim(0));
  int64_t batch = inputs.dim(0);
  input_length_ = inputs.dim(1);
  num_variables_ = inputs.dim(2);
  EMAF_CHECK_EQ(targets.dim(1), num_variables_);

  int64_t features = input_length_ * num_variables_ + 1;  // + intercept
  // Design matrix with bias column.
  Tensor design = Tensor::Ones(Shape{batch, features});
  const double* in = inputs.data();
  double* dd = design.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t f = 0; f < features - 1; ++f) {
      dd[b * features + f] = in[b * (features - 1) + f];
    }
  }

  Tensor gram = tensor::MatMul(tensor::TransposeLast2(design), design);
  // Ridge on coefficients, not on the intercept (last diagonal entry).
  double* gd = gram.data();
  for (int64_t f = 0; f < features - 1; ++f) {
    gd[f * features + f] += ridge_;
  }
  gd[(features - 1) * features + (features - 1)] += 1e-9;  // numeric safety
  Tensor rhs = tensor::MatMul(tensor::TransposeLast2(design), targets);
  coefficients_ = SolveSpd(gram, rhs);
}

Tensor VarBaseline::Predict(const Tensor& inputs) const {
  EMAF_CHECK(fitted()) << "VarBaseline::Predict before Fit";
  EMAF_CHECK_EQ(inputs.rank(), 3);
  EMAF_CHECK_EQ(inputs.dim(1), input_length_);
  EMAF_CHECK_EQ(inputs.dim(2), num_variables_);
  int64_t batch = inputs.dim(0);
  int64_t features = input_length_ * num_variables_ + 1;
  Tensor design = Tensor::Ones(Shape{batch, features});
  const double* in = inputs.data();
  double* dd = design.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t f = 0; f < features - 1; ++f) {
      dd[b * features + f] = in[b * (features - 1) + f];
    }
  }
  return tensor::MatMul(design, coefficients_);
}

}  // namespace emaf::models
