// MTGNN: Multivariate Time Series Forecasting with Graph Neural Networks
// (Wu et al. 2020) — the paper's best-performing model and the source of
// the learned graphs evaluated in Experiment C.
//
// Architecture: start conv -> L layers of {dilated-inception gated temporal
// convolution, mix-hop graph propagation in both edge directions, residual,
// layer norm} with per-layer skip connections that collapse time, then two
// 1x1 end convolutions. The graph-learning module builds a sparse directed
// adjacency from trainable node embeddings; optionally a static similarity
// graph is added as a prior ("starting from an initial graph structure",
// Section V-C). With graph learning disabled the model runs purely on the
// provided static graph.
//
// Deviation from the original (documented in DESIGN.md): the inception
// kernel set is {2, 3} with left padding so the short EMA windows (L <= 10)
// keep their length; top-k defaults to max(3, V/5) instead of 20.

#ifndef EMAF_MODELS_MTGNN_H_
#define EMAF_MODELS_MTGNN_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/forecaster.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/graph_conv.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace emaf::models {

// Which graph-learning module MTGNN uses (paper Section VII-C suggests
// comparing MTGNN's learner against approaches like GTS/NRI).
enum class GraphLearnerKind {
  // MTGNN's original antisymmetric node-embedding learner (Wu et al.).
  kEmbedding,
  // GTS-inspired direct edge parameterization: one logit per directed
  // edge, adjacency = sigmoid(logit), optionally initialized from the
  // static graph. A deterministic relaxation of GTS's Bernoulli edges
  // (Shang et al. 2021).
  kEdgeLogits,
};

struct MtgnnConfig {
  int64_t residual_channels = 32;
  int64_t conv_channels = 32;
  int64_t skip_channels = 32;
  int64_t end_channels = 64;
  int64_t layers = 2;
  int64_t gcn_depth = 2;
  double prop_beta = 0.05;  // mix-hop input-retain ratio
  double dropout = 0.3;

  bool use_graph_learning = true;
  GraphLearnerKind learner_kind = GraphLearnerKind::kEmbedding;
  int64_t embedding_dim = 10;
  double saturation_alpha = 3.0;
  // Neighbours kept per node in the learned graph; 0 = max(3, V/5).
  int64_t top_k = 0;
  // Weight of the static graph added to the learned one (0 = pure
  // learning, i.e. the "random start" condition when no static graph is
  // given).
  double static_prior_weight = 1.0;
};

// Interface of graph-learning modules: produce a non-negative [V, V]
// adjacency whose entries carry gradients back into the module.
class GraphLearnerBase : public nn::Module {
 public:
  virtual Tensor Forward() = 0;
};

// Learns a sparse directed adjacency from node embeddings (MTGNN eq. 3-6).
class GraphLearner : public GraphLearnerBase {
 public:
  GraphLearner(int64_t num_nodes, int64_t embedding_dim, double alpha,
               int64_t top_k, Rng* rng);

  // Non-negative [V, V] adjacency; gradients flow into the embeddings.
  Tensor Forward() override;

 private:
  int64_t num_nodes_;
  double alpha_;
  int64_t top_k_;
  Tensor* emb1_;
  Tensor* emb2_;
  nn::Linear* lin1_;
  nn::Linear* lin2_;
};

// GTS-inspired learner: a free logit per directed edge, adjacency =
// sigmoid(logit) with the diagonal masked and per-row top-k retention.
// When a static graph is supplied its (max-normalized) weights initialize
// the edge probabilities, i.e. "starting from an initial graph structure".
class EdgeLogitGraphLearner : public GraphLearnerBase {
 public:
  EdgeLogitGraphLearner(int64_t num_nodes, int64_t top_k,
                        const graph::AdjacencyMatrix* initial, Rng* rng);

  Tensor Forward() override;

 protected:
  void CastBuffersTo(tensor::DType dtype) override {
    off_diagonal_mask_ = off_diagonal_mask_.CastTo(dtype);
  }

 private:
  int64_t num_nodes_;
  int64_t top_k_;
  Tensor off_diagonal_mask_;  // constant (1 - I)
  Tensor* logits_;
};

class Mtgnn : public Forecaster {
 public:
  // `static_adjacency` may be null: pure graph learning from random
  // initialization. With graph learning disabled it must be provided.
  Mtgnn(const graph::AdjacencyMatrix* static_adjacency, int64_t num_variables,
        int64_t input_length, const MtgnnConfig& config, Rng* rng);

  Tensor Forward(const Tensor& window) override;
  std::string name() const override { return "MTGNN"; }
  int64_t num_variables() const override { return num_variables_; }
  int64_t input_length() const override { return input_length_; }

  // The adjacency currently used by the model (learned + prior), evaluated
  // without gradients. This is what Experiment C feeds to the other GNNs.
  graph::AdjacencyMatrix CurrentAdjacency();

 protected:
  void CastBuffersTo(tensor::DType dtype) override {
    if (static_adjacency_.defined()) {
      static_adjacency_ = static_adjacency_.CastTo(dtype);
    }
    identity_ = identity_.CastTo(dtype);
  }

 private:
  class InceptionConv;

  // Combined adjacency (learned and/or static), before normalization.
  Tensor ComputeAdjacency();

  int64_t num_variables_;
  int64_t input_length_;
  MtgnnConfig config_;
  Tensor static_adjacency_;  // undefined when not provided
  Tensor identity_;          // cached [V, V] eye
  GraphLearnerBase* learner_ = nullptr;
  nn::Conv2dLayer* start_conv_;
  std::vector<InceptionConv*> filter_convs_;
  std::vector<InceptionConv*> gate_convs_;
  std::vector<nn::Conv2dLayer*> skip_convs_;
  std::vector<nn::MixProp*> mixprop_fwd_;
  std::vector<nn::MixProp*> mixprop_bwd_;
  std::vector<nn::LayerNorm*> layer_norms_;
  nn::Conv2dLayer* skip_start_;
  nn::Conv2dLayer* skip_end_;
  nn::Conv2dLayer* end_conv1_;
  nn::Conv2dLayer* end_conv2_;
  nn::Dropout* dropout_;
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_MTGNN_H_
