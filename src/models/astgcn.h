// ASTGCN: Attention-based Spatial-Temporal Graph Convolutional Network
// (Guo et al. 2019), the paper's second T-GAT-category model.
//
// Stacked blocks of {temporal attention, spatial attention, Chebyshev graph
// convolution modulated by the spatial scores, temporal convolution,
// residual + layer norm}, followed by a final convolution that collapses
// the time axis into the 1-lag forecast.

#ifndef EMAF_MODELS_ASTGCN_H_
#define EMAF_MODELS_ASTGCN_H_

#include <vector>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/forecaster.h"
#include "nn/attention.h"
#include "nn/conv.h"
#include "nn/dropout.h"
#include "nn/graph_conv.h"
#include "nn/layer_norm.h"

namespace emaf::models {

struct AstgcnConfig {
  int64_t num_blocks = 2;
  int64_t hidden_units = 32;  // time filters == cheb filters, paper setting
  int64_t cheb_order = 3;     // kernel size k = 3 (Section V-D)
  int64_t time_kernel = 3;
  double dropout = 0.3;
};

class Astgcn : public Forecaster {
 public:
  Astgcn(const graph::AdjacencyMatrix& adjacency, int64_t input_length,
         const AstgcnConfig& config, Rng* rng);

  Tensor Forward(const Tensor& window) override;
  std::string name() const override { return "ASTGCN"; }
  int64_t num_variables() const override { return num_variables_; }
  int64_t input_length() const override { return input_length_; }

 private:
  class Block;

  int64_t num_variables_;
  int64_t input_length_;
  std::vector<Block*> blocks_;
  nn::Dropout* dropout_;
  nn::Conv2dLayer* final_conv_;
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_ASTGCN_H_
