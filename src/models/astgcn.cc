#include "models/astgcn.h"

#include <memory>
#include <string>

#include "common/check.h"
#include "common/string_util.h"
#include "graph/spectral.h"
#include "tensor/ops.h"

namespace emaf::models {

using tensor::Shape;

// One spatial-temporal block. Input/output layout: [B, V, F, T] with
// F = in_features on entry and F = hidden on exit.
class Astgcn::Block : public nn::Module {
 public:
  Block(const graph::AdjacencyMatrix& adjacency, int64_t num_nodes,
        int64_t in_features, int64_t num_steps, const AstgcnConfig& config,
        Rng* rng)
      : num_nodes_(num_nodes),
        in_features_(in_features),
        num_steps_(num_steps),
        hidden_(config.hidden_units) {
    temporal_attention_ = RegisterModule(
        "temporal_attention", std::make_unique<nn::TemporalAttention>(
                                  num_nodes, in_features, num_steps, rng));
    spatial_attention_ = RegisterModule(
        "spatial_attention", std::make_unique<nn::SpatialAttention>(
                                 num_nodes, in_features, num_steps, rng));
    cheb_conv_ = RegisterModule(
        "cheb_conv",
        std::make_unique<nn::ChebConv>(
            graph::ChebyshevPolynomials(adjacency, config.cheb_order),
            in_features, hidden_, rng));
    tensor::Conv2dOptions time_opts;
    time_opts.pad_w = (config.time_kernel - 1) / 2;
    time_conv_ = RegisterModule(
        "time_conv",
        std::make_unique<nn::Conv2dLayer>(hidden_, hidden_, 1,
                                          config.time_kernel, time_opts,
                                          /*bias=*/true, rng));
    tensor::Conv2dOptions res_opts;
    residual_conv_ = RegisterModule(
        "residual_conv",
        std::make_unique<nn::Conv2dLayer>(in_features, hidden_, 1, 1, res_opts,
                                          /*bias=*/true, rng));
    layer_norm_ = RegisterModule(
        "layer_norm",
        std::make_unique<nn::LayerNorm>(std::vector<int64_t>{hidden_}));
  }

  Tensor Forward(const Tensor& x) {
    EMAF_CHECK_EQ(x.rank(), 4);
    int64_t batch = x.dim(0);

    // Temporal attention re-weights time steps.
    Tensor e = temporal_attention_->Forward(x);  // [B, T, T]
    Tensor flat =
        tensor::Reshape(x, Shape{batch, num_nodes_ * in_features_, num_steps_});
    Tensor x_tat = tensor::Reshape(tensor::MatMul(flat, e),
                                   Shape{batch, num_nodes_, in_features_,
                                         num_steps_});

    // Spatial attention modulates the Chebyshev operator per time step.
    Tensor s = spatial_attention_->Forward(x_tat);  // [B, V, V]
    std::vector<Tensor> per_step;
    per_step.reserve(static_cast<size_t>(num_steps_));
    for (int64_t t = 0; t < num_steps_; ++t) {
      Tensor xt = tensor::Select(x_tat, 3, t);  // [B, V, F]
      per_step.push_back(cheb_conv_->Forward(xt, s));  // [B, V, hidden]
    }
    Tensor spatial = tensor::Relu(tensor::Stack(per_step, 3));  // [B,V,H,T]

    // Temporal convolution along T (channels = hidden).
    Tensor conv_in = tensor::Permute(spatial, {0, 2, 1, 3});  // [B,H,V,T]
    Tensor time_out = time_conv_->Forward(conv_in);           // [B,H,V,T]

    // Residual path from the block input.
    Tensor res_in = tensor::Permute(x, {0, 2, 1, 3});  // [B,F,V,T]
    Tensor residual = residual_conv_->Forward(res_in);  // [B,H,V,T]

    Tensor combined = tensor::Relu(tensor::Add(residual, time_out));
    // LayerNorm over the channel axis (channels-last).
    Tensor ln_in = tensor::Permute(combined, {0, 2, 3, 1});  // [B,V,T,H]
    Tensor normalized = layer_norm_->Forward(ln_in);
    return tensor::Permute(normalized, {0, 1, 3, 2});  // [B,V,H,T]
  }

  int64_t hidden() const { return hidden_; }

 private:
  int64_t num_nodes_;
  int64_t in_features_;
  int64_t num_steps_;
  int64_t hidden_;
  nn::TemporalAttention* temporal_attention_;
  nn::SpatialAttention* spatial_attention_;
  nn::ChebConv* cheb_conv_;
  nn::Conv2dLayer* time_conv_;
  nn::Conv2dLayer* residual_conv_;
  nn::LayerNorm* layer_norm_;
};

Astgcn::Astgcn(const graph::AdjacencyMatrix& adjacency, int64_t input_length,
               const AstgcnConfig& config, Rng* rng)
    : num_variables_(adjacency.num_nodes()), input_length_(input_length) {
  EMAF_CHECK_GE(config.num_blocks, 1);
  int64_t in_features = 1;
  for (int64_t b = 0; b < config.num_blocks; ++b) {
    Block* block = RegisterModule(
        StrCat("block_", b),
        std::make_unique<Block>(adjacency, num_variables_, in_features,
                                input_length, config, rng));
    blocks_.push_back(block);
    in_features = config.hidden_units;
  }
  dropout_ = RegisterModule("dropout",
                            std::make_unique<nn::Dropout>(config.dropout, rng));
  // Final conv: input laid out as [B, T, V, hidden]; kernel (1, hidden)
  // collapses the feature axis, channels collapse time -> one step ahead.
  tensor::Conv2dOptions final_opts;
  final_conv_ = RegisterModule(
      "final_conv",
      std::make_unique<nn::Conv2dLayer>(input_length, 1, 1,
                                        config.hidden_units, final_opts,
                                        /*bias=*/true, rng));
}

Tensor Astgcn::Forward(const Tensor& window) {
  CheckWindow(window);
  int64_t batch = window.dim(0);
  // [B, L, V] -> [B, V, F=1, T=L].
  Tensor x = tensor::Permute(window, {0, 2, 1});        // [B, V, L]
  x = tensor::Reshape(x, Shape{batch, num_variables_, 1, input_length_});
  for (Block* block : blocks_) {
    x = block->Forward(x);  // [B, V, H, T]
    x = dropout_->Forward(x);
  }
  // [B, V, H, T] -> [B, T, V, H] -> conv -> [B, 1, V, 1] -> [B, V].
  Tensor final_in = tensor::Permute(x, {0, 3, 1, 2});
  Tensor out = final_conv_->Forward(final_in);
  return tensor::Reshape(out, Shape{batch, num_variables_});
}

}  // namespace emaf::models
