// Model registry: build any of the paper's five forecaster families
// (Table 2: LSTM, VAR, A3TGCN, ASTGCN, MTGNN) from a declarative
// ModelConfig, and snapshot a model with its config embedded so a serving
// process can reconstruct it without the training code (DESIGN.md,
// "Serving layer").
//
// Configs serialize to a key=value text blob with doubles rendered via
// FormatExact, so a parsed config is bit-identical to the original — the
// graph models bake the normalized adjacency operator into constants at
// construction, which is why the adjacency is part of the config and must
// round-trip exactly for a served model to match the trained one
// byte-for-byte.

#ifndef EMAF_MODELS_REGISTRY_H_
#define EMAF_MODELS_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "graph/adjacency.h"
#include "models/a3tgcn.h"
#include "models/astgcn.h"
#include "models/forecaster.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"
#include "models/var_forecaster.h"

namespace emaf::models {

struct ModelConfig {
  // Registry name: "LSTM", "VAR", "A3TGCN", "ASTGCN" or "MTGNN".
  std::string family;
  int64_t num_variables = 0;
  int64_t input_length = 0;

  // Family-specific settings; only the active family's struct is read.
  LstmConfig lstm;
  VarConfig var;
  A3tgcnConfig a3tgcn;
  AstgcnConfig astgcn;
  MtgnnConfig mtgnn;

  // Variable graph: required by A3TGCN/ASTGCN, optional static prior for
  // MTGNN (absent = pure graph learning), ignored by LSTM/VAR.
  std::optional<graph::AdjacencyMatrix> adjacency;
};

// One key=value per line, fixed key order, FormatExact doubles. Two
// configs are equivalent iff their blobs are equal.
std::string SerializeModelConfig(const ModelConfig& config);
Result<ModelConfig> ParseModelConfig(const std::string& text);

// Constructs the forecaster named by `config.family`, drawing weight
// initialization and dropout streams from `rng` in the same order as the
// former inline construction sites (the experiment grid's RNG-stream and
// golden-byte contract depends on this).
Result<std::unique_ptr<Forecaster>> CreateForecaster(
    const ModelConfig& config, Rng* rng);
std::unique_ptr<Forecaster> CreateForecasterOrDie(const ModelConfig& config,
                                                  Rng* rng);

// Snapshot-to-serve path, layered on nn::serialize v3:
//   SaveForecasterSnapshot embeds the serialized config in the snapshot;
//   LoadForecasterSnapshot rebuilds the model from the embedded config and
//     restores its parameters (`rng` only seeds construction — every
//     weight is overwritten by the load); the `dtype` overload then casts
//     the whole module tree, so training snapshots stay f64 on disk while
//     a serving process cold-loads f32 residents;
//   LoadForecasterInto loads into an existing model and rejects a snapshot
//     whose embedded config does not match `expected` exactly.
Status SaveForecasterSnapshot(Forecaster* model, const ModelConfig& config,
                              const std::string& path);
Result<std::unique_ptr<Forecaster>> LoadForecasterSnapshot(
    const std::string& path, Rng* rng);
Result<std::unique_ptr<Forecaster>> LoadForecasterSnapshot(
    const std::string& path, Rng* rng, tensor::DType dtype);
Status LoadForecasterInto(Forecaster* model, const ModelConfig& expected,
                          const std::string& path);

}  // namespace emaf::models

#endif  // EMAF_MODELS_REGISTRY_H_
