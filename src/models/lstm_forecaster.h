// Baseline LSTM forecaster (Experiment A baseline).
//
// A single-layer LSTM reads the window [B, L, V] treating all V variables
// as one input vector per step; the final hidden state is projected to the
// V next-step values. No graph information is used.

#ifndef EMAF_MODELS_LSTM_FORECASTER_H_
#define EMAF_MODELS_LSTM_FORECASTER_H_

#include "common/rng.h"
#include "models/forecaster.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/rnn.h"

namespace emaf::models {

struct LstmConfig {
  int64_t hidden_units = 32;  // paper Section V-D
  double dropout = 0.3;
};

class LstmForecaster : public Forecaster {
 public:
  LstmForecaster(int64_t num_variables, int64_t input_length,
                 const LstmConfig& config, Rng* rng);

  Tensor Forward(const Tensor& window) override;
  std::string name() const override { return "LSTM"; }
  int64_t num_variables() const override { return num_variables_; }
  int64_t input_length() const override { return input_length_; }

 private:
  int64_t num_variables_;
  int64_t input_length_;
  nn::Lstm* lstm_;
  nn::Dropout* dropout_;
  nn::Linear* readout_;
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_LSTM_FORECASTER_H_
