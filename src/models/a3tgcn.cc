#include "models/a3tgcn.h"

#include <memory>
#include <vector>

#include "common/check.h"
#include "graph/spectral.h"
#include "tensor/ops.h"

namespace emaf::models {

using tensor::Shape;

A3tgcn::A3tgcn(const graph::AdjacencyMatrix& adjacency, int64_t input_length,
               const A3tgcnConfig& config, Rng* rng)
    : num_variables_(adjacency.num_nodes()),
      input_length_(input_length),
      hidden_(config.hidden_units) {
  EMAF_CHECK_GE(input_length, 1);
  Tensor a_hat = graph::SymNormalizedAdjacency(adjacency);
  gate_conv_ = RegisterModule(
      "gate_conv",
      std::make_unique<nn::GcnConv>(a_hat, 1 + hidden_, 2 * hidden_, rng));
  candidate_conv_ = RegisterModule(
      "candidate_conv",
      std::make_unique<nn::GcnConv>(a_hat, 1 + hidden_, hidden_, rng));
  period_attention_ =
      RegisterParameter("period_attention", Tensor::Zeros(Shape{input_length}));
  dropout_ = RegisterModule("dropout",
                            std::make_unique<nn::Dropout>(config.dropout, rng));
  readout_ = RegisterModule(
      "readout", std::make_unique<nn::Linear>(hidden_, 1, /*bias=*/true, rng));
}

Tensor A3tgcn::TgcnStep(const Tensor& x_t, const Tensor& h) {
  // Gates from the graph-convolved concatenation [x_t | h].
  Tensor concat = tensor::Cat({x_t, h}, /*dim=*/2);  // [B, V, 1+H]
  Tensor gates = tensor::Sigmoid(gate_conv_->Forward(concat));  // [B, V, 2H]
  Tensor u = tensor::Slice(gates, -1, 0, hidden_);
  Tensor r = tensor::Slice(gates, -1, hidden_, 2 * hidden_);
  Tensor candidate_in = tensor::Cat({x_t, tensor::Mul(r, h)}, /*dim=*/2);
  Tensor c = tensor::Tanh(candidate_conv_->Forward(candidate_in));
  // h' = u * h + (1 - u) * c.
  return tensor::Add(tensor::Mul(u, h),
                     tensor::Mul(tensor::AddScalar(tensor::Neg(u), 1.0), c));
}

Tensor A3tgcn::Forward(const Tensor& window) {
  CheckWindow(window);
  int64_t batch = window.dim(0);
  Tensor h = Tensor::Zeros(Shape{batch, num_variables_, hidden_},
                           window.dtype());
  std::vector<Tensor> hidden_states;
  hidden_states.reserve(static_cast<size_t>(input_length_));
  for (int64_t t = 0; t < input_length_; ++t) {
    // Step input: all variables at time t as per-node scalar features.
    Tensor x_t = tensor::Select(window, 1, t);          // [B, V]
    x_t = tensor::Unsqueeze(x_t, 2);                    // [B, V, 1]
    h = TgcnStep(x_t, h);
    hidden_states.push_back(h);
  }
  // Attention over periods: context = sum_t softmax(a)_t * h_t.
  Tensor probs = tensor::Softmax(*period_attention_, 0);  // [L]
  Tensor context;
  for (int64_t t = 0; t < input_length_; ++t) {
    Tensor weight = tensor::Select(probs, 0, t);  // scalar tensor
    Tensor weighted =
        tensor::Mul(hidden_states[static_cast<size_t>(t)],
                    tensor::Reshape(weight, Shape{1, 1, 1}));
    context = context.defined() ? tensor::Add(context, weighted) : weighted;
  }
  context = dropout_->Forward(context);          // [B, V, H]
  Tensor out = readout_->Forward(context);       // [B, V, 1]
  return tensor::Squeeze(out, 2);                // [B, V]
}

}  // namespace emaf::models
