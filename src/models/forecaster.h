// Forecaster: common interface of all 1-lag EMA forecasting models.
//
// Models consume a window of the last L time points of all V variables and
// predict the next value of every variable (Section III-B). One model
// instance is trained per individual (personalized setup, Fig. 1).

#ifndef EMAF_MODELS_FORECASTER_H_
#define EMAF_MODELS_FORECASTER_H_

#include <string>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace emaf::models {

using nn::Tensor;

class Forecaster : public nn::Module {
 public:
  // window: [B, L, V] -> prediction for the next step: [B, V].
  virtual Tensor Forward(const Tensor& window) = 0;

  // Human-readable model family name ("LSTM", "A3TGCN", ...).
  virtual std::string name() const = 0;

  virtual int64_t num_variables() const = 0;
  virtual int64_t input_length() const = 0;

 protected:
  // Validates the window shape against the model's configuration.
  void CheckWindow(const Tensor& window) const;
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_FORECASTER_H_
