#include "models/lstm_forecaster.h"

#include <memory>

#include "common/check.h"

namespace emaf::models {

LstmForecaster::LstmForecaster(int64_t num_variables, int64_t input_length,
                               const LstmConfig& config, Rng* rng)
    : num_variables_(num_variables), input_length_(input_length) {
  EMAF_CHECK_GE(input_length, 1);
  lstm_ = RegisterModule(
      "lstm", std::make_unique<nn::Lstm>(num_variables, config.hidden_units, rng));
  dropout_ = RegisterModule("dropout",
                            std::make_unique<nn::Dropout>(config.dropout, rng));
  readout_ = RegisterModule(
      "readout", std::make_unique<nn::Linear>(config.hidden_units,
                                              num_variables, /*bias=*/true, rng));
}

Tensor LstmForecaster::Forward(const Tensor& window) {
  CheckWindow(window);
  Tensor hidden = lstm_->ForwardLast(window);  // [B, H]
  hidden = dropout_->Forward(hidden);
  return readout_->Forward(hidden);  // [B, V]
}

}  // namespace emaf::models
