// VAR(L) ridge-regression baseline.
//
// The classic comparator in the psychopathology-network literature
// (Section II-A): a linear map from the flattened window to the next step,
// fit in closed form with ridge regularization. Not a Module — there is no
// iterative training.

#ifndef EMAF_MODELS_VAR_BASELINE_H_
#define EMAF_MODELS_VAR_BASELINE_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace emaf::models {

class VarBaseline {
 public:
  // `ridge` is the L2 penalty on the coefficients (intercept unpenalized).
  explicit VarBaseline(double ridge = 1.0) : ridge_(ridge) {}

  // Fits on inputs [B, L, V] -> targets [B, V].
  void Fit(const tensor::Tensor& inputs, const tensor::Tensor& targets);

  // Predicts [B, V] for inputs [B, L, V]. Fit must have been called.
  tensor::Tensor Predict(const tensor::Tensor& inputs) const;

  bool fitted() const { return coefficients_.defined(); }
  // [L*V + 1, V]; last row is the intercept.
  const tensor::Tensor& coefficients() const { return coefficients_; }

 private:
  double ridge_;
  int64_t input_length_ = 0;
  int64_t num_variables_ = 0;
  tensor::Tensor coefficients_;
};

// Solves the symmetric positive-definite system A x = b in place
// (Cholesky); exposed for tests. A: [n, n], b: [n, m] -> x: [n, m].
tensor::Tensor SolveSpd(const tensor::Tensor& a, const tensor::Tensor& b);

}  // namespace emaf::models

#endif  // EMAF_MODELS_VAR_BASELINE_H_
