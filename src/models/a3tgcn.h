// A3TGCN: Attention Temporal Graph Convolutional Network (Bai et al. 2021),
// as provided by PyTorch Geometric Temporal and used in the paper's
// R-GCN category.
//
// A T-GCN cell (GRU whose gates are graph convolutions over the variable
// graph) is unrolled over the input window; a learned softmax weight per
// period aggregates the hidden states; a per-node linear readout produces
// the 1-lag forecast.

#ifndef EMAF_MODELS_A3TGCN_H_
#define EMAF_MODELS_A3TGCN_H_

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/forecaster.h"
#include "nn/dropout.h"
#include "nn/graph_conv.h"
#include "nn/linear.h"

namespace emaf::models {

struct A3tgcnConfig {
  int64_t hidden_units = 32;
  double dropout = 0.3;
};

class A3tgcn : public Forecaster {
 public:
  A3tgcn(const graph::AdjacencyMatrix& adjacency, int64_t input_length,
         const A3tgcnConfig& config, Rng* rng);

  Tensor Forward(const Tensor& window) override;
  std::string name() const override { return "A3TGCN"; }
  int64_t num_variables() const override { return num_variables_; }
  int64_t input_length() const override { return input_length_; }

 private:
  // One T-GCN step: x_t [B, V, 1], h [B, V, H] -> new h.
  Tensor TgcnStep(const Tensor& x_t, const Tensor& h);

  int64_t num_variables_;
  int64_t input_length_;
  int64_t hidden_;
  nn::GcnConv* gate_conv_;       // [x_t | h] -> 2H (update u, reset r)
  nn::GcnConv* candidate_conv_;  // [x_t | r * h] -> H
  Tensor* period_attention_;     // [L], softmaxed over periods
  nn::Dropout* dropout_;
  nn::Linear* readout_;          // H -> 1 per node
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_A3TGCN_H_
