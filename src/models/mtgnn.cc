#include "models/mtgnn.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace emaf::models {

using tensor::Shape;

GraphLearner::GraphLearner(int64_t num_nodes, int64_t embedding_dim,
                           double alpha, int64_t top_k, Rng* rng)
    : num_nodes_(num_nodes), alpha_(alpha), top_k_(top_k) {
  EMAF_CHECK_GE(embedding_dim, 1);
  EMAF_CHECK_GE(top_k, 1);
  emb1_ = RegisterParameter(
      "emb1",
      Tensor::Normal(Shape{num_nodes, embedding_dim}, 0.0, 1.0, rng));
  emb2_ = RegisterParameter(
      "emb2",
      Tensor::Normal(Shape{num_nodes, embedding_dim}, 0.0, 1.0, rng));
  lin1_ = RegisterModule("lin1", std::make_unique<nn::Linear>(
                                     embedding_dim, embedding_dim,
                                     /*bias=*/true, rng));
  lin2_ = RegisterModule("lin2", std::make_unique<nn::Linear>(
                                     embedding_dim, embedding_dim,
                                     /*bias=*/true, rng));
}

Tensor GraphLearner::Forward() {
  Tensor m1 = tensor::Tanh(tensor::MulScalar(lin1_->Forward(*emb1_), alpha_));
  Tensor m2 = tensor::Tanh(tensor::MulScalar(lin2_->Forward(*emb2_), alpha_));
  // Antisymmetric score -> uni-directional edges (MTGNN eq. 5).
  Tensor score = tensor::Sub(tensor::MatMul(m1, tensor::TransposeLast2(m2)),
                             tensor::MatMul(m2, tensor::TransposeLast2(m1)));
  Tensor a = tensor::Relu(tensor::Tanh(tensor::MulScalar(score, alpha_)));
  // Keep the top-k outgoing edges per node; mask is constant, so gradients
  // flow only through retained entries.
  Tensor mask = tensor::TopKMask(a.Detach(), top_k_, /*dim=*/1);
  return tensor::Mul(a, mask);
}

EdgeLogitGraphLearner::EdgeLogitGraphLearner(
    int64_t num_nodes, int64_t top_k, const graph::AdjacencyMatrix* initial,
    Rng* rng)
    : num_nodes_(num_nodes), top_k_(top_k) {
  EMAF_CHECK_GE(top_k, 1);
  Tensor init;
  if (initial != nullptr) {
    EMAF_CHECK_EQ(initial->num_nodes(), num_nodes);
    graph::AdjacencyMatrix scaled = *initial;
    scaled.NormalizeMaxToOne();
    init = MakeUninitialized(Shape{num_nodes, num_nodes});
    tensor::Scalar* d = init.data();
    for (int64_t i = 0; i < num_nodes; ++i) {
      for (int64_t j = 0; j < num_nodes; ++j) {
        // logit of the edge probability, probabilities clamped away from
        // {0, 1} so absent edges stay recoverable.
        double p = std::clamp(0.9 * scaled.at(i, j) + 0.05, 0.05, 0.95);
        d[i * num_nodes + j] = std::log(p / (1.0 - p));
      }
    }
  } else {
    init = Tensor::Normal(Shape{num_nodes, num_nodes}, -1.0, 0.5, rng);
  }
  logits_ = RegisterParameter("logits", std::move(init));
  // Constant (1 - I): self-loops are added later by normalization.
  off_diagonal_mask_ = Tensor::Ones(Shape{num_nodes, num_nodes});
  tensor::Scalar* m = off_diagonal_mask_.data();
  for (int64_t i = 0; i < num_nodes; ++i) m[i * num_nodes + i] = 0.0;
}

Tensor EdgeLogitGraphLearner::Forward() {
  Tensor probabilities = tensor::Sigmoid(*logits_);
  Tensor masked = tensor::Mul(probabilities, off_diagonal_mask_);
  Tensor top_k_mask = tensor::TopKMask(masked.Detach(), top_k_, /*dim=*/1);
  return tensor::Mul(masked, top_k_mask);
}

// Gated dilated-inception temporal convolution branch set. Kernels {2, 3}
// with left zero-padding keep the (short) time axis length unchanged.
class Mtgnn::InceptionConv : public nn::Module {
 public:
  InceptionConv(int64_t in_channels, int64_t out_channels, Rng* rng) {
    EMAF_CHECK_EQ(out_channels % 2, 0);
    tensor::Conv2dOptions options;
    branch2_ = RegisterModule(
        "branch2", std::make_unique<nn::Conv2dLayer>(
                       in_channels, out_channels / 2, 1, 2, options,
                       /*bias=*/true, rng));
    branch3_ = RegisterModule(
        "branch3", std::make_unique<nn::Conv2dLayer>(
                       in_channels, out_channels / 2, 1, 3, options,
                       /*bias=*/true, rng));
  }

  Tensor Forward(const Tensor& x) {
    // x: [B, C, V, T]; left-pad time so output length == T.
    Tensor pad1 = tensor::Pad(x, {{0, 0}, {0, 0}, {0, 0}, {1, 0}});
    Tensor pad2 = tensor::Pad(x, {{0, 0}, {0, 0}, {0, 0}, {2, 0}});
    Tensor out2 = branch2_->Forward(pad1);
    Tensor out3 = branch3_->Forward(pad2);
    return tensor::Cat({out2, out3}, 1);
  }

 private:
  nn::Conv2dLayer* branch2_;
  nn::Conv2dLayer* branch3_;
};

Mtgnn::Mtgnn(const graph::AdjacencyMatrix* static_adjacency,
             int64_t num_variables, int64_t input_length,
             const MtgnnConfig& config, Rng* rng)
    : num_variables_(num_variables),
      input_length_(input_length),
      config_(config) {
  EMAF_CHECK_GE(input_length, 1);
  EMAF_CHECK(config.use_graph_learning || static_adjacency != nullptr)
      << "MTGNN without graph learning needs a static graph";
  if (static_adjacency != nullptr) {
    EMAF_CHECK_EQ(static_adjacency->num_nodes(), num_variables);
    graph::AdjacencyMatrix scaled = *static_adjacency;
    scaled.NormalizeMaxToOne();
    static_adjacency_ = scaled.ToTensor();
  }
  identity_ = Tensor::Eye(num_variables);

  if (config.use_graph_learning) {
    int64_t top_k = config.top_k > 0
                        ? config.top_k
                        : std::max<int64_t>(3, num_variables / 5);
    top_k = std::min(top_k, num_variables - 1);
    if (config.learner_kind == GraphLearnerKind::kEmbedding) {
      learner_ = RegisterModule(
          "graph_learner",
          std::make_unique<GraphLearner>(num_variables, config.embedding_dim,
                                         config.saturation_alpha, top_k, rng));
    } else {
      learner_ = RegisterModule(
          "graph_learner",
          std::make_unique<EdgeLogitGraphLearner>(
              num_variables, top_k, static_adjacency, rng));
    }
  }

  tensor::Conv2dOptions one_by_one;
  start_conv_ = RegisterModule(
      "start_conv", std::make_unique<nn::Conv2dLayer>(
                        1, config.residual_channels, 1, 1, one_by_one,
                        /*bias=*/true, rng));
  skip_start_ = RegisterModule(
      "skip_start", std::make_unique<nn::Conv2dLayer>(
                        1, config.skip_channels, 1, input_length, one_by_one,
                        /*bias=*/true, rng));
  for (int64_t l = 0; l < config.layers; ++l) {
    filter_convs_.push_back(RegisterModule(
        StrCat("filter_conv_", l),
        std::make_unique<InceptionConv>(config.residual_channels,
                                        config.conv_channels, rng)));
    gate_convs_.push_back(RegisterModule(
        StrCat("gate_conv_", l),
        std::make_unique<InceptionConv>(config.residual_channels,
                                        config.conv_channels, rng)));
    skip_convs_.push_back(RegisterModule(
        StrCat("skip_conv_", l),
        std::make_unique<nn::Conv2dLayer>(config.conv_channels,
                                          config.skip_channels, 1,
                                          input_length, one_by_one,
                                          /*bias=*/true, rng)));
    mixprop_fwd_.push_back(RegisterModule(
        StrCat("mixprop_fwd_", l),
        std::make_unique<nn::MixProp>(config.conv_channels,
                                      config.residual_channels,
                                      config.gcn_depth, config.prop_beta,
                                      rng)));
    mixprop_bwd_.push_back(RegisterModule(
        StrCat("mixprop_bwd_", l),
        std::make_unique<nn::MixProp>(config.conv_channels,
                                      config.residual_channels,
                                      config.gcn_depth, config.prop_beta,
                                      rng)));
    layer_norms_.push_back(RegisterModule(
        StrCat("layer_norm_", l),
        std::make_unique<nn::LayerNorm>(
            std::vector<int64_t>{config.residual_channels})));
  }
  skip_end_ = RegisterModule(
      "skip_end", std::make_unique<nn::Conv2dLayer>(
                      config.residual_channels, config.skip_channels, 1,
                      input_length, one_by_one, /*bias=*/true, rng));
  end_conv1_ = RegisterModule(
      "end_conv1", std::make_unique<nn::Conv2dLayer>(
                       config.skip_channels, config.end_channels, 1, 1,
                       one_by_one, /*bias=*/true, rng));
  end_conv2_ = RegisterModule(
      "end_conv2", std::make_unique<nn::Conv2dLayer>(
                       config.end_channels, 1, 1, 1, one_by_one,
                       /*bias=*/true, rng));
  dropout_ = RegisterModule("dropout",
                            std::make_unique<nn::Dropout>(config.dropout, rng));
}

Tensor Mtgnn::ComputeAdjacency() {
  Tensor adjacency;
  if (learner_ != nullptr) {
    adjacency = learner_->Forward();
    // The embedding learner takes the static graph as an additive prior;
    // the edge-logit learner already absorbed it into its initialization.
    if (config_.learner_kind == GraphLearnerKind::kEmbedding &&
        static_adjacency_.defined() && config_.static_prior_weight > 0.0) {
      adjacency = tensor::Add(
          adjacency,
          tensor::MulScalar(static_adjacency_, config_.static_prior_weight));
    }
  } else {
    adjacency = static_adjacency_;
  }
  return adjacency;
}

Tensor Mtgnn::Forward(const Tensor& window) {
  CheckWindow(window);
  int64_t batch = window.dim(0);
  // [B, L, V] -> [B, 1, V, T].
  Tensor x = tensor::Permute(window, {0, 2, 1});  // [B, V, L]
  x = tensor::Reshape(x, Shape{batch, 1, num_variables_, input_length_});

  Tensor adjacency = ComputeAdjacency();
  // Row-normalize A + I in both edge directions (differentiable when the
  // adjacency is learned).
  auto normalize = [this](const Tensor& a) {
    Tensor with_self = tensor::Add(a, identity_);
    Tensor degree = tensor::Sum(with_self, {1}, /*keepdim=*/true);
    return tensor::Div(with_self, degree);
  };
  Tensor a_fwd = normalize(adjacency);
  Tensor a_bwd = normalize(tensor::TransposeLast2(adjacency));

  Tensor skip = skip_start_->Forward(dropout_->Forward(x));  // [B,S,V,1]
  Tensor h = start_conv_->Forward(x);                        // [B,R,V,T]
  for (size_t l = 0; l < filter_convs_.size(); ++l) {
    Tensor residual = h;
    Tensor filter = tensor::Tanh(filter_convs_[l]->Forward(h));
    Tensor gate = tensor::Sigmoid(gate_convs_[l]->Forward(h));
    Tensor gated = dropout_->Forward(tensor::Mul(filter, gate));  // [B,C,V,T]
    skip = tensor::Add(skip, skip_convs_[l]->Forward(gated));
    Tensor graph_out = tensor::Add(mixprop_fwd_[l]->Forward(gated, a_fwd),
                                   mixprop_bwd_[l]->Forward(gated, a_bwd));
    h = tensor::Add(graph_out, residual);
    // LayerNorm over channels (channels-last round trip).
    Tensor ln_in = tensor::Permute(h, {0, 2, 3, 1});
    h = tensor::Permute(layer_norms_[l]->Forward(ln_in), {0, 3, 1, 2});
  }
  // Final skip from the last layer's residual output (skipE in the
  // original), so the deepest graph convolution reaches the readout.
  skip = tensor::Add(skip, skip_end_->Forward(h));
  Tensor out = tensor::Relu(skip);
  out = tensor::Relu(end_conv1_->Forward(out));
  out = end_conv2_->Forward(out);  // [B, 1, V, 1]
  return tensor::Reshape(out, Shape{batch, num_variables_});
}

graph::AdjacencyMatrix Mtgnn::CurrentAdjacency() {
  tensor::NoGradGuard guard;
  Tensor adjacency = ComputeAdjacency();
  return graph::AdjacencyMatrix::FromTensor(adjacency);
}

}  // namespace emaf::models
