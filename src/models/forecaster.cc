#include "models/forecaster.h"

#include "common/check.h"

namespace emaf::models {

void Forecaster::CheckWindow(const Tensor& window) const {
  EMAF_CHECK(window.defined());
  EMAF_CHECK_EQ(window.rank(), 3) << name() << " expects [B, L, V]";
  EMAF_CHECK_EQ(window.dim(1), input_length())
      << name() << " was built for input length " << input_length();
  EMAF_CHECK_EQ(window.dim(2), num_variables())
      << name() << " was built for " << num_variables() << " variables";
}

}  // namespace emaf::models
