#include "models/var_forecaster.h"

#include <algorithm>

#include "common/check.h"
#include "models/var_baseline.h"
#include "tensor/ops.h"

namespace emaf::models {

using tensor::Shape;

VarForecaster::VarForecaster(int64_t num_variables, int64_t input_length,
                             const VarConfig& config)
    : num_variables_(num_variables),
      input_length_(input_length),
      ridge_(config.ridge) {
  EMAF_CHECK_GT(num_variables, 0);
  EMAF_CHECK_GT(input_length, 0);
  int64_t features = input_length * num_variables + 1;
  coefficients_ = RegisterParameter(
      "coefficients", Tensor::Zeros(Shape{features, num_variables}));
}

void VarForecaster::Fit(const Tensor& inputs, const Tensor& targets) {
  EMAF_CHECK_EQ(inputs.rank(), 3);
  EMAF_CHECK_EQ(inputs.dim(1), input_length_);
  EMAF_CHECK_EQ(inputs.dim(2), num_variables_);
  VarBaseline baseline(ridge_);
  baseline.Fit(inputs, targets);
  const Tensor& fitted = baseline.coefficients();
  EMAF_CHECK(fitted.shape() == coefficients_->shape());
  // Copy into the registered parameter in place so the pointer handed out
  // by NamedParameters stays valid.
  std::copy(fitted.data(), fitted.data() + fitted.NumElements(),
            coefficients_->data());
}

Tensor VarForecaster::Forward(const Tensor& window) {
  CheckWindow(window);
  int64_t batch = window.dim(0);
  int64_t features = input_length_ * num_variables_ + 1;
  // Same design-matrix layout as VarBaseline::Predict — the lag block is a
  // row-major copy of the window with a trailing ones column — expressed
  // through tensor ops so the whole forward is visible to plan recording
  // (tensor/plan_hook.h). Cat copies the flattened window rows verbatim,
  // so the forecasts stay byte-identical to the hand-rolled fill.
  Tensor lags = tensor::Reshape(window, Shape{batch, features - 1});
  Tensor design = tensor::Cat(
      {lags, Tensor::Ones(Shape{batch, 1}, window.dtype())}, /*dim=*/1);
  return tensor::MatMul(design, *coefficients_);
}

}  // namespace emaf::models
