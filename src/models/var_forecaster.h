// VAR(L) ridge baseline wrapped as a Forecaster Module.
//
// VarBaseline (var_baseline.h) is the closed-form fit and is not a Module,
// so it cannot be snapshotted or served. This adapter registers the
// coefficient matrix as a module parameter and reproduces
// VarBaseline::Predict bit-for-bit in Forward, which makes VAR
// constructible through the registry, serializable through nn::serialize,
// and servable through serve::InferenceEngine like the neural families.

#ifndef EMAF_MODELS_VAR_FORECASTER_H_
#define EMAF_MODELS_VAR_FORECASTER_H_

#include <cstdint>
#include <string>

#include "models/forecaster.h"

namespace emaf::models {

struct VarConfig {
  // L2 penalty on the coefficients (intercept unpenalized), matching
  // VarBaseline's default.
  double ridge = 1.0;
};

class VarForecaster : public Forecaster {
 public:
  VarForecaster(int64_t num_variables, int64_t input_length,
                const VarConfig& config);

  // Closed-form ridge fit on inputs [B, L, V] -> targets [B, V]; the
  // resulting coefficients land in the registered parameter. Delegates to
  // VarBaseline so the arithmetic is identical to the standalone baseline.
  void Fit(const Tensor& inputs, const Tensor& targets);

  // Identical arithmetic to VarBaseline::Predict. Before Fit (or a
  // parameter load) the coefficients are zero and the forecast is zero.
  Tensor Forward(const Tensor& window) override;

  std::string name() const override { return "VAR"; }
  int64_t num_variables() const override { return num_variables_; }
  int64_t input_length() const override { return input_length_; }

  double ridge() const { return ridge_; }
  // [L*V + 1, V]; last row is the intercept.
  const Tensor& coefficients() const { return *coefficients_; }

 private:
  int64_t num_variables_;
  int64_t input_length_;
  double ridge_;
  Tensor* coefficients_;
};

}  // namespace emaf::models

#endif  // EMAF_MODELS_VAR_FORECASTER_H_
