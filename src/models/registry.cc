#include "models/registry.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "nn/serialize.h"

namespace emaf::models {

namespace {

const char* LearnerKindName(GraphLearnerKind kind) {
  switch (kind) {
    case GraphLearnerKind::kEmbedding:
      return "embedding";
    case GraphLearnerKind::kEdgeLogits:
      return "edge_logits";
  }
  return "unknown";
}

void AppendLine(std::string* out, std::string_view key,
                const std::string& value) {
  out->append(key);
  out->push_back('=');
  out->append(value);
  out->push_back('\n');
}

void AppendInt(std::string* out, std::string_view key, int64_t value) {
  AppendLine(out, key, StrCat(value));
}

void AppendDouble(std::string* out, std::string_view key, double value) {
  AppendLine(out, key, FormatExact(value));
}

// Parse-side helpers: each setter returns false on a malformed value so
// the caller can report the offending line.
bool SetInt(const std::string& value, int64_t* field) {
  long long parsed = 0;
  if (!ParseInt64(value, &parsed)) return false;
  *field = static_cast<int64_t>(parsed);
  return true;
}

bool SetDouble(const std::string& value, double* field) {
  return ParseDouble(value, field);
}

}  // namespace

std::string SerializeModelConfig(const ModelConfig& config) {
  std::string out;
  AppendLine(&out, "family", config.family);
  AppendInt(&out, "num_variables", config.num_variables);
  AppendInt(&out, "input_length", config.input_length);
  if (config.family == "LSTM") {
    AppendInt(&out, "lstm.hidden_units", config.lstm.hidden_units);
    AppendDouble(&out, "lstm.dropout", config.lstm.dropout);
  } else if (config.family == "VAR") {
    AppendDouble(&out, "var.ridge", config.var.ridge);
  } else if (config.family == "A3TGCN") {
    AppendInt(&out, "a3tgcn.hidden_units", config.a3tgcn.hidden_units);
    AppendDouble(&out, "a3tgcn.dropout", config.a3tgcn.dropout);
  } else if (config.family == "ASTGCN") {
    AppendInt(&out, "astgcn.num_blocks", config.astgcn.num_blocks);
    AppendInt(&out, "astgcn.hidden_units", config.astgcn.hidden_units);
    AppendInt(&out, "astgcn.cheb_order", config.astgcn.cheb_order);
    AppendInt(&out, "astgcn.time_kernel", config.astgcn.time_kernel);
    AppendDouble(&out, "astgcn.dropout", config.astgcn.dropout);
  } else if (config.family == "MTGNN") {
    AppendInt(&out, "mtgnn.residual_channels", config.mtgnn.residual_channels);
    AppendInt(&out, "mtgnn.conv_channels", config.mtgnn.conv_channels);
    AppendInt(&out, "mtgnn.skip_channels", config.mtgnn.skip_channels);
    AppendInt(&out, "mtgnn.end_channels", config.mtgnn.end_channels);
    AppendInt(&out, "mtgnn.layers", config.mtgnn.layers);
    AppendInt(&out, "mtgnn.gcn_depth", config.mtgnn.gcn_depth);
    AppendDouble(&out, "mtgnn.prop_beta", config.mtgnn.prop_beta);
    AppendDouble(&out, "mtgnn.dropout", config.mtgnn.dropout);
    AppendInt(&out, "mtgnn.use_graph_learning",
              config.mtgnn.use_graph_learning ? 1 : 0);
    AppendLine(&out, "mtgnn.learner_kind",
               LearnerKindName(config.mtgnn.learner_kind));
    AppendInt(&out, "mtgnn.embedding_dim", config.mtgnn.embedding_dim);
    AppendDouble(&out, "mtgnn.saturation_alpha",
                 config.mtgnn.saturation_alpha);
    AppendInt(&out, "mtgnn.top_k", config.mtgnn.top_k);
    AppendDouble(&out, "mtgnn.static_prior_weight",
                 config.mtgnn.static_prior_weight);
  }
  if (config.adjacency.has_value()) {
    AppendInt(&out, "adjacency.num_nodes", config.adjacency->num_nodes());
    std::vector<std::string> cells;
    cells.reserve(config.adjacency->values().size());
    for (double v : config.adjacency->values()) {
      cells.push_back(FormatExact(v));
    }
    AppendLine(&out, "adjacency.values", StrJoin(cells, ","));
  }
  return out;
}

Result<ModelConfig> ParseModelConfig(const std::string& text) {
  ModelConfig config;
  int64_t adjacency_nodes = 0;
  std::vector<double> adjacency_values;
  for (const std::string& raw : StrSplit(text, '\n')) {
    std::string line = StrTrim(raw);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("model config line missing '=': ", line));
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    bool ok = true;
    if (key == "family") {
      config.family = value;
    } else if (key == "num_variables") {
      ok = SetInt(value, &config.num_variables);
    } else if (key == "input_length") {
      ok = SetInt(value, &config.input_length);
    } else if (key == "lstm.hidden_units") {
      ok = SetInt(value, &config.lstm.hidden_units);
    } else if (key == "lstm.dropout") {
      ok = SetDouble(value, &config.lstm.dropout);
    } else if (key == "var.ridge") {
      ok = SetDouble(value, &config.var.ridge);
    } else if (key == "a3tgcn.hidden_units") {
      ok = SetInt(value, &config.a3tgcn.hidden_units);
    } else if (key == "a3tgcn.dropout") {
      ok = SetDouble(value, &config.a3tgcn.dropout);
    } else if (key == "astgcn.num_blocks") {
      ok = SetInt(value, &config.astgcn.num_blocks);
    } else if (key == "astgcn.hidden_units") {
      ok = SetInt(value, &config.astgcn.hidden_units);
    } else if (key == "astgcn.cheb_order") {
      ok = SetInt(value, &config.astgcn.cheb_order);
    } else if (key == "astgcn.time_kernel") {
      ok = SetInt(value, &config.astgcn.time_kernel);
    } else if (key == "astgcn.dropout") {
      ok = SetDouble(value, &config.astgcn.dropout);
    } else if (key == "mtgnn.residual_channels") {
      ok = SetInt(value, &config.mtgnn.residual_channels);
    } else if (key == "mtgnn.conv_channels") {
      ok = SetInt(value, &config.mtgnn.conv_channels);
    } else if (key == "mtgnn.skip_channels") {
      ok = SetInt(value, &config.mtgnn.skip_channels);
    } else if (key == "mtgnn.end_channels") {
      ok = SetInt(value, &config.mtgnn.end_channels);
    } else if (key == "mtgnn.layers") {
      ok = SetInt(value, &config.mtgnn.layers);
    } else if (key == "mtgnn.gcn_depth") {
      ok = SetInt(value, &config.mtgnn.gcn_depth);
    } else if (key == "mtgnn.prop_beta") {
      ok = SetDouble(value, &config.mtgnn.prop_beta);
    } else if (key == "mtgnn.dropout") {
      ok = SetDouble(value, &config.mtgnn.dropout);
    } else if (key == "mtgnn.use_graph_learning") {
      int64_t flag = 0;
      ok = SetInt(value, &flag);
      config.mtgnn.use_graph_learning = flag != 0;
    } else if (key == "mtgnn.learner_kind") {
      if (value == "embedding") {
        config.mtgnn.learner_kind = GraphLearnerKind::kEmbedding;
      } else if (value == "edge_logits") {
        config.mtgnn.learner_kind = GraphLearnerKind::kEdgeLogits;
      } else {
        ok = false;
      }
    } else if (key == "mtgnn.embedding_dim") {
      ok = SetInt(value, &config.mtgnn.embedding_dim);
    } else if (key == "mtgnn.saturation_alpha") {
      ok = SetDouble(value, &config.mtgnn.saturation_alpha);
    } else if (key == "mtgnn.top_k") {
      ok = SetInt(value, &config.mtgnn.top_k);
    } else if (key == "mtgnn.static_prior_weight") {
      ok = SetDouble(value, &config.mtgnn.static_prior_weight);
    } else if (key == "adjacency.num_nodes") {
      ok = SetInt(value, &adjacency_nodes);
    } else if (key == "adjacency.values") {
      for (const std::string& cell : StrSplit(value, ',')) {
        double v = 0.0;
        if (!ParseDouble(cell, &v)) {
          return Status::InvalidArgument(
              StrCat("bad adjacency value in model config: ", cell));
        }
        adjacency_values.push_back(v);
      }
    } else {
      return Status::InvalidArgument(
          StrCat("unknown model config key: ", key));
    }
    if (!ok) {
      return Status::InvalidArgument(
          StrCat("bad model config value for ", key, ": ", value));
    }
  }
  if (adjacency_nodes > 0) {
    if (static_cast<int64_t>(adjacency_values.size()) !=
        adjacency_nodes * adjacency_nodes) {
      return Status::InvalidArgument(
          StrCat("model config adjacency has ", adjacency_values.size(),
                 " values, expected ", adjacency_nodes * adjacency_nodes));
    }
    graph::AdjacencyMatrix adjacency(adjacency_nodes);
    adjacency.mutable_values() = std::move(adjacency_values);
    config.adjacency = std::move(adjacency);
  }
  if (config.family.empty()) {
    return Status::InvalidArgument("model config has no family");
  }
  return config;
}

Result<std::unique_ptr<Forecaster>> CreateForecaster(
    const ModelConfig& config, Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  if (config.num_variables <= 0 || config.input_length <= 0) {
    return Status::InvalidArgument(
        StrCat("model config needs positive num_variables/input_length, got ",
               config.num_variables, "/", config.input_length));
  }
  const bool needs_graph =
      config.family == "A3TGCN" || config.family == "ASTGCN";
  if (config.adjacency.has_value() &&
      config.adjacency->num_nodes() != config.num_variables) {
    return Status::InvalidArgument(
        StrCat("model config adjacency is over ",
               config.adjacency->num_nodes(), " nodes but num_variables is ",
               config.num_variables));
  }
  if (needs_graph && !config.adjacency.has_value()) {
    return Status::InvalidArgument(
        StrCat(config.family, " requires an adjacency in the model config"));
  }
  if (config.family == "LSTM") {
    return std::unique_ptr<Forecaster>(std::make_unique<LstmForecaster>(
        config.num_variables, config.input_length, config.lstm, rng));
  }
  if (config.family == "VAR") {
    return std::unique_ptr<Forecaster>(std::make_unique<VarForecaster>(
        config.num_variables, config.input_length, config.var));
  }
  if (config.family == "A3TGCN") {
    return std::unique_ptr<Forecaster>(std::make_unique<A3tgcn>(
        *config.adjacency, config.input_length, config.a3tgcn, rng));
  }
  if (config.family == "ASTGCN") {
    return std::unique_ptr<Forecaster>(std::make_unique<Astgcn>(
        *config.adjacency, config.input_length, config.astgcn, rng));
  }
  if (config.family == "MTGNN") {
    if (!config.mtgnn.use_graph_learning && !config.adjacency.has_value()) {
      return Status::InvalidArgument(
          "MTGNN without graph learning requires an adjacency");
    }
    const graph::AdjacencyMatrix* static_adjacency =
        config.adjacency.has_value() ? &*config.adjacency : nullptr;
    return std::unique_ptr<Forecaster>(std::make_unique<Mtgnn>(
        static_adjacency, config.num_variables, config.input_length,
        config.mtgnn, rng));
  }
  return Status::InvalidArgument(
      StrCat("unknown model family: ", config.family));
}

std::unique_ptr<Forecaster> CreateForecasterOrDie(const ModelConfig& config,
                                                  Rng* rng) {
  Result<std::unique_ptr<Forecaster>> model = CreateForecaster(config, rng);
  EMAF_CHECK(model.ok()) << "CreateForecaster(" << config.family
                         << ") failed: " << model.status().ToString();
  return std::move(model).value();
}

Status SaveForecasterSnapshot(Forecaster* model, const ModelConfig& config,
                              const std::string& path) {
  EMAF_CHECK(model != nullptr);
  if (model->name() != config.family) {
    return Status::InvalidArgument(
        StrCat("snapshot config family ", config.family,
               " does not match model ", model->name()));
  }
  return nn::SaveParameters(model, path, SerializeModelConfig(config));
}

Result<std::unique_ptr<Forecaster>> LoadForecasterSnapshot(
    const std::string& path, Rng* rng) {
  Result<std::string> blob = nn::ReadSnapshotConfig(path);
  if (!blob.ok()) return blob.status();
  if (blob.value().empty()) {
    // Distinguish a legacy v1 file from a v2 file saved config-less so the
    // serve path can tell the operator exactly what to re-save.
    Result<uint32_t> version = nn::ReadSnapshotVersion(path);
    if (version.ok() && version.value() == nn::kSnapshotVersionParamsOnly) {
      return Status::InvalidArgument(StrCat(
          "cannot serve v1 snapshot ", path,
          ": format v1 carries no embedded model config; expected format v",
          nn::kSnapshotVersionWithConfig,
          " — re-save it with models::SaveForecasterSnapshot"));
    }
    return Status::InvalidArgument(StrCat(
        "snapshot ", path, " has an empty embedded model config; expected ",
        "a format-v", nn::kSnapshotVersionWithConfig,
        " snapshot written by models::SaveForecasterSnapshot"));
  }
  Result<ModelConfig> config = ParseModelConfig(blob.value());
  if (!config.ok()) return config.status();
  Result<std::unique_ptr<Forecaster>> model =
      CreateForecaster(config.value(), rng);
  if (!model.ok()) return model.status();
  EMAF_RETURN_IF_ERROR(nn::LoadParameters(model.value().get(), path));
  return model;
}

Result<std::unique_ptr<Forecaster>> LoadForecasterSnapshot(
    const std::string& path, Rng* rng, tensor::DType dtype) {
  Result<std::unique_ptr<Forecaster>> model = LoadForecasterSnapshot(path, rng);
  if (!model.ok()) return model.status();
  // Cast after the load: the snapshot payload fills the f64 module built
  // by the registry, then the whole tree (parameters and baked buffers)
  // converts once. A kF64 request is a no-op — CastTo shares storage when
  // the dtype already matches.
  if (model.value()->dtype() != dtype) model.value()->CastTo(dtype);
  return model;
}

Status LoadForecasterInto(Forecaster* model, const ModelConfig& expected,
                          const std::string& path) {
  EMAF_CHECK(model != nullptr);
  Result<std::string> blob = nn::ReadSnapshotConfig(path);
  if (!blob.ok()) return blob.status();
  // Blob equality is exact config equality: fixed key order and FormatExact
  // doubles make serialization canonical.
  if (!blob.value().empty() &&
      blob.value() != SerializeModelConfig(expected)) {
    return Status::InvalidArgument(
        StrCat("snapshot config mismatch for ", path,
               ": embedded config does not match the target model"));
  }
  return nn::LoadParameters(model, path);
}

}  // namespace emaf::models
