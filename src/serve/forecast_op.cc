#include "serve/forecast_op.h"

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/evaluator.h"

namespace emaf::serve {

Result<tensor::Tensor> ExecuteForecast(models::Forecaster* model,
                                       const std::string& individual_id,
                                       const tensor::Tensor& window,
                                       tensor::InferenceArena* arena) {
  EMAF_METRIC_SCOPED_TIMER("serve.request_seconds");
  EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.request/", individual_id))) {
    return Status::Unavailable(
        StrCat("injected fault: serve.request/", individual_id));
  }
  tensor::Tensor prediction;
  {
    // Every tensor the forward pass allocates draws from the pool; the
    // buffers return as the intermediates die, so a steady-state request
    // performs zero heap allocation.
    tensor::ArenaScope scope(arena);
    prediction = core::Predict(model, window);
  }
  return prediction;
}

}  // namespace emaf::serve
