#include "serve/forecast_op.h"

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/evaluator.h"
#include "plan/interpreter.h"

namespace emaf::serve {

Result<tensor::Tensor> ExecuteForecast(models::Forecaster* model,
                                       const std::string& individual_id,
                                       const tensor::Tensor& window,
                                       tensor::InferenceArena* arena,
                                       plan::PlanCache* plans,
                                       const Deadline& deadline) {
  EMAF_METRIC_SCOPED_TIMER("serve.request_seconds");
  EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
  if (deadline.expired()) {
    return Status::DeadlineExceeded(
        StrCat("deadline expired before execution for ", individual_id,
               ": now tick ", deadline.clock->Ticks(), ", expiry tick ",
               deadline.expiry_tick));
  }
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.request/", individual_id))) {
    return Status::Unavailable(
        StrCat("injected fault: serve.request/", individual_id));
  }
  // An f32-resident model executes natively in its own element type: the
  // request window (wire doubles) is cast once on entry and the forecast
  // cast back on exit, both drawing from the arena. The model's
  // parameters, plan constants and every intermediate stay f32 — no
  // per-request weight conversion. An f64 model takes the historical path
  // untouched (the casts below are no-ops that share storage).
  tensor::Tensor exec_window = window;
  if (model->dtype() != window.dtype()) {
    tensor::ArenaScope scope(arena);
    exec_window = window.CastTo(model->dtype());
  }
  auto finish = [&](tensor::Tensor prediction) -> tensor::Tensor {
    if (prediction.dtype() != window.dtype()) {
      tensor::ArenaScope scope(arena);
      prediction = prediction.CastTo(window.dtype());
    }
    return prediction;
  };
  if (plans != nullptr && !plans->disabled()) {
    plan::PlanCache::Acquired acquired = plans->GetOrCompile(model, exec_window);
    if (acquired.hit) {
      EMAF_METRIC_COUNTER_ADD("serve.plan_cache_hits", 1);
    } else {
      EMAF_METRIC_COUNTER_ADD("serve.plan_cache_misses", 1);
    }
    if (acquired.plan != nullptr) {
      if (EMAF_FAULT_SHOULD_FAIL(StrCat("plan.execute/", individual_id))) {
        // Structured per-request failure; this residency of the model
        // permanently falls back to the module path (the conservative
        // reaction to an execution-layer fault), later requests succeed.
        plans->Disable();
        return Status::Internal(
            StrCat("injected fault: plan.execute/", individual_id));
      }
      Result<tensor::Tensor> prediction =
          plan::Execute(*acquired.plan, exec_window, arena);
      if (prediction.ok()) return finish(std::move(prediction).value());
      plans->Disable();  // unexpected execute failure: stop using plans
    }
    // acquired.plan == nullptr (compile failed): module path below.
  }
  tensor::Tensor prediction;
  {
    // Every tensor the forward pass allocates draws from the pool; the
    // buffers return as the intermediates die, so a steady-state request
    // performs zero heap allocation.
    tensor::ArenaScope scope(arena);
    prediction = core::Predict(model, exec_window);
  }
  return finish(std::move(prediction));
}

}  // namespace emaf::serve
