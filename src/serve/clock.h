// Virtual time for the serving stack.
//
// Batching, deadlines and drain decisions never read the wall clock: they
// observe a VirtualClock that the owner advances (per event-loop turn, per
// poll, per test step). That single choice is what makes batch boundaries,
// deadline expiry and the scheduler's shed/execute split bitwise
// reproducible under a test's ManualClock — and it is why a wire deadline
// travels in *ticks*, not milliseconds (DESIGN.md, "Request lifecycle &
// failure semantics").

#ifndef EMAF_SERVE_CLOCK_H_
#define EMAF_SERVE_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace emaf::serve {

// Monotone tick source for batching and deadline decisions. Deliberately
// not wall clock: the owner advances it, which is what makes scheduling
// reproducible.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual uint64_t Ticks() const = 0;
};

// A hand-driven clock; Advance is thread-safe.
class ManualClock final : public VirtualClock {
 public:
  uint64_t Ticks() const override {
    return ticks_.load(std::memory_order_relaxed);
  }
  void Advance(uint64_t n = 1) {
    ticks_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> ticks_{0};
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_CLOCK_H_
