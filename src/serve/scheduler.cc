#include "serve/scheduler.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace emaf::serve {

namespace {

constexpr uint64_t kNoExpiry = ~uint64_t{0};

// Batch-size histogram buckets: powers of two up to the practical batch
// ceiling (micro-batches are small by design).
[[maybe_unused]] const std::vector<double>& BatchSizeBounds() {
  static const std::vector<double> bounds = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  return bounds;
}

// Absolute expiry for a request arriving now: arrival + deadline,
// saturating; kNoExpiry when the request carries no deadline.
uint64_t ExpiryTick(uint64_t arrival, uint64_t deadline_ticks) {
  if (deadline_ticks == 0) return kNoExpiry;
  const uint64_t expiry = arrival + deadline_ticks;
  return expiry < arrival ? kNoExpiry : expiry;  // overflow saturates
}

}  // namespace

struct RequestTicket::Slot {
  std::atomic<bool> done{false};
  // Written once by the executing thread before `done` is released;
  // readers check done() (acquire) first.
  std::optional<Result<tensor::Tensor>> result;
};

RequestTicket::RequestTicket(std::shared_ptr<Slot> slot)
    : slot_(std::move(slot)) {}

bool RequestTicket::done() const {
  return slot_ != nullptr && slot_->done.load(std::memory_order_acquire);
}

const Result<tensor::Tensor>& RequestTicket::result() const {
  EMAF_CHECK(done()) << "RequestTicket::result() before the request ran";
  return *slot_->result;
}

RequestScheduler::RequestScheduler(ModelStore* store,
                                   tensor::InferenceArena* arena,
                                   const SchedulerOptions& options,
                                   const VirtualClock* clock)
    : store_(store), arena_(arena), options_(options), clock_(clock) {
  EMAF_CHECK(store_ != nullptr);
  EMAF_CHECK(clock_ != nullptr);
  options_.max_batch = std::max<int64_t>(1, options_.max_batch);
}

Result<RequestTicket> RequestScheduler::Submit(const ForecastRequest& request) {
  std::shared_ptr<RequestTicket::Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_queue > 0 &&
        static_cast<int64_t>(pending_.size()) >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      EMAF_METRIC_COUNTER_ADD("serve.scheduler.rejected_total", 1);
      return Status::Unavailable(
          StrCat("scheduler queue full (max_queue=", options_.max_queue,
                 "): request for ", request.individual_id, " rejected"));
    }
    slot = std::make_shared<RequestTicket::Slot>();
    const uint64_t arrival = clock_->Ticks();
    pending_.push_back(Pending{request, slot, arrival,
                               ExpiryTick(arrival, request.deadline_ticks)});
    EMAF_METRIC_GAUGE_SET("serve.scheduler.queue_depth",
                          static_cast<double>(pending_.size()));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  EMAF_METRIC_COUNTER_ADD("serve.scheduler.submitted_total", 1);
  return RequestTicket(std::move(slot));
}

std::vector<RequestScheduler::Batch> RequestScheduler::CloseBatches(
    bool flush) {
  std::vector<Batch> batches;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t now = clock_->Ticks();
  // Shed expired requests before forming batches: their tickets complete
  // with kDeadlineExceeded right here, they never occupy a batch slot,
  // and the forward pass they would have burned goes to live requests.
  // (Deadlines vary per request, so an expired entry can sit anywhere in
  // the FIFO — scan the whole queue, not just the head.)
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now > it->expiry) {
      it->slot->result.emplace(Status::DeadlineExceeded(
          StrCat("deadline expired before dispatch for ",
                 it->request.individual_id, ": arrival tick ", it->arrival,
                 ", deadline ", it->request.deadline_ticks,
                 " tick(s), now tick ", now)));
      it->slot->done.store(true, std::memory_order_release);
      expired_.fetch_add(1, std::memory_order_relaxed);
      EMAF_METRIC_COUNTER_ADD("serve.scheduler.expired_total", 1);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  while (!pending_.empty()) {
    bool full =
        static_cast<int64_t>(pending_.size()) >= options_.max_batch;
    bool aged = now - pending_.front().arrival >= options_.max_delay_ticks;
    if (!full && !aged && !flush) break;
    size_t take = std::min(pending_.size(),
                           static_cast<size_t>(options_.max_batch));
    Batch batch;
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    batches.push_back(std::move(batch));
  }
  EMAF_METRIC_GAUGE_SET("serve.scheduler.queue_depth",
                        static_cast<double>(pending_.size()));
  return batches;
}

void RequestScheduler::Execute(Batch* batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  EMAF_METRIC_COUNTER_ADD("serve.scheduler.batches_total", 1);
  EMAF_METRIC_HISTOGRAM_OBSERVE("serve.scheduler.batch_size",
                                static_cast<double>(batch->size()),
                                BatchSizeBounds());
  // One request per pre-sized slot: any thread schedule writes the same
  // bytes (DESIGN.md, "Parallel execution model"). Same-id requests
  // coalesce on the store's single-flight load rather than being merged
  // here, so per-request errors stay independent.
  common::ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(batch->size()), /*grain=*/1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          Pending& pending = (*batch)[static_cast<size_t>(i)];
          const Deadline deadline{clock_, pending.expiry};
          if (deadline.expired()) {
            // Expired between batch-close and slot start: shed before the
            // store lookup so a doomed request cannot trigger a cold load.
            EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
            pending.slot->result.emplace(Status::DeadlineExceeded(
                StrCat("deadline expired at batch entry for ",
                       pending.request.individual_id, ": now tick ",
                       clock_->Ticks(), ", expiry tick ", pending.expiry)));
          } else {
            Result<ModelHandle> handle =
                store_->Get(pending.request.individual_id);
            if (handle.ok()) {
              pending.slot->result.emplace(ExecuteForecast(
                  handle.value().get(), pending.request.individual_id,
                  pending.request.window, arena_,
                  options_.use_compiled_plans ? handle.value().plans()
                                              : nullptr,
                  deadline));
            } else {
              // Count the failed request so serve.requests_total covers
              // every admitted request, executed or degraded.
              EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
              pending.slot->result.emplace(handle.status());
            }
          }
          if (!pending.slot->result->ok()) {
            if (pending.slot->result->status().code() ==
                StatusCode::kDeadlineExceeded) {
              expired_.fetch_add(1, std::memory_order_relaxed);
              EMAF_METRIC_COUNTER_ADD("serve.scheduler.expired_total", 1);
            } else {
              failed_.fetch_add(1, std::memory_order_relaxed);
              EMAF_METRIC_COUNTER_ADD("serve.scheduler.failed_total", 1);
            }
          }
          pending.slot->done.store(true, std::memory_order_release);
        }
      });
  executed_.fetch_add(batch->size(), std::memory_order_relaxed);
  EMAF_METRIC_COUNTER_ADD("serve.scheduler.executed_total",
                          static_cast<uint64_t>(batch->size()));
}

int64_t RequestScheduler::Pump() {
  std::vector<Batch> batches = CloseBatches(/*flush=*/false);
  int64_t executed = 0;
  for (Batch& batch : batches) {
    Execute(&batch);
    executed += static_cast<int64_t>(batch.size());
  }
  return executed;
}

int64_t RequestScheduler::Flush() {
  std::vector<Batch> batches = CloseBatches(/*flush=*/true);
  int64_t executed = 0;
  for (Batch& batch : batches) {
    Execute(&batch);
    executed += static_cast<int64_t>(batch.size());
  }
  return executed;
}

int64_t RequestScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

RequestScheduler::Stats RequestScheduler::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace emaf::serve
