// Network serving front-end (DESIGN.md, "Network serving"): a
// dependency-free epoll event loop speaking the serve/protocol.h framing,
// composed over the PR-5 primitives so admission control, micro-batching
// and backpressure finally face real concurrent connections.
//
// Architecture — one event-loop thread, compute on the global pool:
//
//   accept -> per-connection FrameDecoder -> scheduler.Submit()
//          -> (each loop turn) clock.Advance(); scheduler.Pump()
//          -> completed tickets encoded as response frames
//          -> per-connection write buffer, drained as sockets allow
//
// The loop thread owns every socket and buffer; the only cross-thread
// traffic is the scheduler handing batches to the ThreadPool, which is the
// already-proven PR-5 path. The scheduler's VirtualClock advances once per
// loop turn, so batching behavior is a function of arrival interleaving,
// not wall-clock time.
//
// Overload contract: a request that cannot be admitted (scheduler queue at
// max_queue) is answered immediately with a structured kError frame
// carrying kUnavailable — never a hang, never a silent drop. Per-request
// failures (unknown tenant, store load fault, budget exhaustion) come back
// the same way with their own codes; batch peers are untouched. A
// malformed frame gets a kError reply naming the offending field, then the
// connection closes: framing is lost, so nothing later on that stream can
// be trusted.
//
// A connection that disconnects mid-request is simply forgotten: its
// in-flight requests still execute (the scheduler owns them), their
// results are discarded, and the store pin is released by the forecast op
// as always — a vanished client cannot leak residency.
//
// Instrumentation: serve.server.connections_total / active_connections /
// frames_received_total / frames_sent_total / bytes_read_total /
// bytes_written_total / rejected_total / protocol_errors_total /
// slow_reader_drops_total and the serve.server.request_seconds latency
// histogram. Fault sites:
// serve.server.accept (drops an incoming connection),
// serve.server.read/<conn> and serve.server.write/<conn> (fail one
// connection's I/O; <conn> is the connection's accept-order index).

#ifndef EMAF_SERVE_SERVER_H_
#define EMAF_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/model_store.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"

namespace emaf::online {
class ObservationLog;
}  // namespace emaf::online

namespace emaf::serve {

struct ServerOptions {
  // TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  // with port()). The server is loopback-only by design: it is a serving
  // core, not an internet-facing edge.
  uint16_t port = 0;
  // Connections over this limit are accepted and immediately closed.
  int64_t max_connections = 256;
  // Frame-size ceiling enforced by the per-connection decoders.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Ceiling on encoded reply bytes buffered toward one connection (frames
  // the socket has not yet accepted). A peer that pipelines requests but
  // never reads its socket is dropped once its backlog exceeds this —
  // bounding per-connection memory; the scheduler queue alone does not,
  // because ping/pong and error replies bypass admission. Must be at
  // least max_frame_bytes or a single max-size response can trip it.
  size_t max_conn_buffered_bytes = 4 * kDefaultMaxFrameBytes;
  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default (and its
  // autotuning). Tiny values make write backpressure observable, which
  // the slow-reader tests rely on.
  int send_buffer_bytes = 0;
  // Residency budgets etc. for the underlying ModelStore.
  ModelStoreOptions store;
  // Admission bound and micro-batch shape for the RequestScheduler. The
  // default max_queue=256 is the backpressure door.
  SchedulerOptions scheduler;
  // epoll_wait timeout: the pacing of batch-aging Pump() turns when no
  // socket activity wakes the loop earlier.
  int64_t poll_timeout_ms = 1;
  // Drain bound: once every admitted request has finished, the drain
  // lingers at most this many loop turns waiting for peers to accept
  // their buffered replies (the best-effort flush). A peer that never
  // reads cannot stall shutdown beyond poll_timeout_ms * this.
  int64_t drain_linger_turns = 2000;
  // Directory for the per-tenant streaming observation journals
  // (online/observation_log.h), enabling kAppend frames. Empty (the
  // default) refuses appends with kFailedPrecondition — forecast-only
  // deployments carry no ingestion surface.
  std::string observation_log_dir;
};

class Server {
 public:
  // Opens the snapshot directory (directory listing or MANIFEST — see
  // ModelStore::Open), binds, and starts the event-loop thread. On return
  // the server is reachable on port().
  static Result<Server> Start(const std::string& snapshot_dir,
                              const ServerOptions& options = {});

  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  ~Server();  // implies Stop()

  uint16_t port() const;

  // Stops accepting, drains in-flight batches, joins the loop thread, and
  // closes every socket. Idempotent. Abrupt: buffered replies are
  // discarded; use BeginDrain for a graceful handoff.
  void Stop();

  // Graceful shutdown, async: the server stops accepting connections,
  // answers new forecast requests with a structured kUnavailable
  // ("draining"), finishes every in-flight batch, best-effort flushes the
  // buffered replies (bounded by drain_linger_turns), then closes all
  // connections and parks the loop. Health probes and pings keep working
  // throughout, so a load balancer sees the DRAINING state instead of a
  // dead port. Idempotent; follow with WaitDrained() and Stop().
  void BeginDrain();
  // Blocks until the drain completes or `timeout_ms` elapses; returns
  // whether it completed. False when no drain was begun.
  bool WaitDrained(int64_t timeout_ms);
  // Lifecycle state as reported in health replies.
  ServeState state() const;

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t frames_received = 0;
    uint64_t frames_sent = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t requests_ok = 0;        // forecast responses served
    uint64_t requests_rejected = 0;  // kUnavailable backpressure replies
    uint64_t requests_failed = 0;    // per-request errors (store, forecast)
    uint64_t appends_ok = 0;         // observation rows journaled
    uint64_t appends_failed = 0;     // kAppend frames refused or errored
    uint64_t protocol_errors = 0;    // malformed frames / streams
    uint64_t slow_reader_drops = 0;  // write backlog over the ceiling
    int64_t active_connections = 0;
  };
  Stats stats() const;

  // The underlying store (residency stats, EvictIdle) and scheduler stats
  // — for tests and operators; both outlive any request.
  ModelStore& store();
  RequestScheduler::Stats scheduler_stats() const;
  // The streaming observation journal; nullptr unless observation_log_dir
  // was set. An in-process online pipeline shares it with the wire path.
  online::ObservationLog* observation_log();

 private:
  Server();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_SERVER_H_
