// ModelStore: a sharded, capacity-bounded registry of per-individual
// forecaster snapshots (DESIGN.md, "Model store & scheduler").
//
// The paper trains one model per individual; at millions of tenants the
// per-model memory cost is irreducible (MTGNN-style per-graph weights), so
// residency itself must be managed. Open() only lists the snapshot
// directory — nothing is loaded until the first Get() for an id, which
// cold-loads through the PR-4 registry path (snapshot v2, embedded
// config), puts the model in eval mode once, and pins it with a
// refcounted ModelHandle. When a configurable budget is exceeded
// (`max_resident_models` models and/or `max_resident_bytes` bytes, a
// resident model being charged its actual in-memory parameter bytes —
// half as much per model when `load_dtype` is f32), the
// least-recently-used *idle* model is evicted; a pinned model is never
// evicted, and a handle additionally co-owns the model storage, so even a
// buggy eviction could not free memory in use. Get() returns
// kResourceExhausted only when the budget is exceeded and nothing is
// evictable (every resident model pinned).
//
// Determinism: a reloaded model is rebuilt from the same snapshot bytes
// (bit-exact config round-trip + raw-double weights), so its forecasts are
// bitwise identical to a never-evicted instance — any eviction/reload
// schedule serves the same bytes.
//
// Concurrency: entries are sharded by id hash; each shard has one mutex.
// No path ever holds two locks, and disk loads run outside any lock —
// concurrent Get()s of one id coalesce on a per-shard condition variable
// (single-flight), concurrent Get()s of different ids on different shards
// never contend. Pin release is a lock-free atomic decrement.
//
// Hot swap (DESIGN.md, "Online ingestion & hot-swap"): Publish(id, path)
// atomically retargets a tenant to a new snapshot file. Requests already
// pinned on the old residency finish on it (their handles co-own the old
// model), the next Get cold-loads the new file, and the store's reference
// to the stale copy — including its PlanCache, in the same critical
// section as the eviction path — is dropped at publish time, so no
// request is ever dropped or served a mix of versions. Invalidate(id) is
// the path-preserving flavor: drop the resident copy so the next Get
// re-reads whatever bytes now live at the same path. ReloadManifest()
// re-reads MANIFEST and applies it as adds + publishes; a malformed
// rewrite is rejected whole, the old mapping keeps serving.
//
// Instrumentation: serve.store.resident_models / resident_bytes (gauges),
// serve.store.cold_loads_total / evictions_total / load_failures_total /
// exhausted_total / swaps_total / invalidations_total (counters),
// serve.store.hit_rate / published_version (gauges), and the cold/warm
// latency split as serve.store.cold_load_seconds / warm_acquire_seconds
// histograms. Fault sites: serve.store.load/<id> fails one cold load
// (other tenants unaffected); serve.store.evict/<id> makes one victim
// non-evictable for that eviction pass.

#ifndef EMAF_SERVE_MODEL_STORE_H_
#define EMAF_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/forecaster.h"
#include "tensor/dtype.h"

namespace emaf::plan {
class PlanCache;
}  // namespace emaf::plan

namespace emaf::serve {

struct ModelStoreOptions {
  // Snapshot filename extension looked for in the directory; the stem is
  // the individual id ("i07.snapshot" serves individual "i07").
  std::string extension = ".snapshot";
  // Seed for model construction. Irrelevant to the forecasts — every
  // weight is overwritten by the snapshot load — but fixed so the store
  // itself is deterministic.
  uint64_t seed = 0x5e59edULL;
  // Residency budget. <= 0 means unlimited. A Get() that would exceed a
  // budget evicts LRU idle models first and fails with kResourceExhausted
  // only when nothing is evictable.
  int64_t max_resident_models = 0;
  // Byte budget: a resident model is charged the in-memory bytes of its
  // parameter tensors once loaded (which reflect `load_dtype` — an f32
  // resident costs half its f64 snapshot). Admission of a first-time load
  // uses the snapshot file size scaled by the dtype as the estimate;
  // reloads know the exact size. <= 0 = unlimited.
  int64_t max_resident_bytes = 0;
  // Element type residents are cast to at cold load. Training snapshots
  // stay f64 on disk; kF32 halves each resident's memory and enables the
  // f32 op/plan kernels. The forecast path converts request windows and
  // outputs at the boundary, so wire bytes stay doubles either way.
  tensor::DType load_dtype = tensor::DType::kF64;
  // Lock sharding for the entry maps; clamped to >= 1.
  int64_t num_shards = 8;
};

namespace internal {
struct StoreEntry;
}  // namespace internal

// A pinned, resident model. While any handle to an entry is alive the
// model cannot be evicted; the handle also co-owns the model object, so it
// stays valid even across (hypothetical) eviction. Release is lock-free
// and refreshes the entry's LRU recency.
class ModelHandle {
 public:
  ModelHandle() = default;
  ModelHandle(ModelHandle&& other) noexcept;
  ModelHandle& operator=(ModelHandle&& other) noexcept;
  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;
  ~ModelHandle();

  explicit operator bool() const { return model_ != nullptr; }
  // The pinned model, in eval mode; callers must not mutate it.
  models::Forecaster* get() const { return model_.get(); }
  models::Forecaster* operator->() const { return model_.get(); }
  const std::string& id() const;
  // The compiled-plan cache living with this residency of the model. The
  // handle co-owns it like the model, so a plan being executed survives
  // (hypothetical) eviction; a reloaded model gets a fresh empty cache,
  // so a stale plan can never serve new weights.
  plan::PlanCache* plans() const { return plans_.get(); }

 private:
  friend class ModelStore;
  ModelHandle(std::shared_ptr<internal::StoreEntry> entry,
              std::shared_ptr<models::Forecaster> model,
              std::shared_ptr<plan::PlanCache> plans);
  void Release();

  std::shared_ptr<internal::StoreEntry> entry_;
  std::shared_ptr<models::Forecaster> model_;
  std::shared_ptr<plan::PlanCache> plans_;
};

// When this file exists inside the snapshot directory, Open() reads it
// instead of listing the directory. Each non-comment line is
// `<id>\t<relative snapshot path>`; many ids may alias one snapshot file,
// which is how the serving bench stands up 100k tenants from a handful of
// physical snapshots laid out in sharded subdirectories.
inline constexpr char kManifestFilename[] = "MANIFEST";

class ModelStore {
 public:
  // Lists every `<id><extension>` file in `snapshot_dir` (sorted by id)
  // without loading any of them. Fails with kNotFound when the directory
  // is missing or holds no snapshots. The id set is fixed at Open time.
  //
  // If `snapshot_dir/MANIFEST` exists it is authoritative instead: lines
  // of `id<TAB>relpath` ('#' comments and blank lines ignored). A
  // malformed line, a duplicate id, or a missing snapshot file fails with
  // kInvalidArgument naming the line.
  static Result<ModelStore> Open(const std::string& snapshot_dir,
                                 const ModelStoreOptions& options = {});

  ModelStore(ModelStore&&) noexcept;
  ModelStore& operator=(ModelStore&&) noexcept;
  ~ModelStore();

  // Ids known on disk (not necessarily resident), sorted.
  int64_t num_known_models() const;
  std::vector<std::string> individual_ids() const;
  // True when `id` is currently loaded in memory.
  bool resident(const std::string& id) const;

  // The pinned model for `id`, cold-loading it on first use.
  //   kNotFound          — no snapshot for `id` in the directory;
  //   kResourceExhausted — budget exceeded and every resident model is
  //                        pinned (nothing evictable);
  //   kUnavailable       — fault site serve.store.load/<id> fired;
  //   kInvalidArgument   — snapshot malformed (e.g. a v1 file with no
  //                        embedded config; the message names the file and
  //                        the expected version).
  Result<ModelHandle> Get(const std::string& id);

  // Evicts up to `max_to_evict` (< 0 = all) idle resident models in LRU
  // order; returns how many were evicted. Used by tests and by operators
  // to shed memory; Get() calls the same machinery on budget pressure.
  int64_t EvictIdle(int64_t max_to_evict = -1);

  // Hot-swaps `id` to the snapshot file at `path` (absolute or relative
  // to the working directory). Under the entry's shard lock the target
  // path is retargeted, the resident copy and its PlanCache are dropped
  // (in-flight handles keep the old model alive and finish on it), and
  // the stale resident-byte estimate is cleared so the swap cannot leak
  // accounting. A cold load already in flight for the old path installs
  // nothing (its request is still served the old bytes — never a mixed
  // version); the next Get() cold-loads `path`. An unknown `id` is
  // registered as a new tenant. `version` feeds the store's monotonic
  // published-version watermark; 0 derives it from a `.v<N>` filename
  // component when present.
  //   kNotFound — `path` is not a readable file (the store is unchanged).
  Status Publish(const std::string& id, const std::string& path,
                 uint64_t version = 0);

  // Drops the resident copy of `id` (if any) without changing its path,
  // so the next Get() re-reads the snapshot file — the explicit form of
  // what LRU eviction previously did only incidentally when a snapshot
  // file was overwritten in place. In-flight handles keep serving the old
  // bytes; a cold load in flight installs nothing. Returns true when a
  // resident copy was dropped.
  bool Invalidate(const std::string& id);

  // Re-reads `snapshot_dir/MANIFEST` and applies it: new ids are added,
  // ids whose path changed are Publish()ed (versions derived from
  // `.v<N>` filename components). Ids missing from the rewritten file
  // keep serving their current snapshot — the manifest only ever grows
  // the mapping. A malformed or unreadable rewrite is rejected whole
  // (kInvalidArgument / kNotFound naming the problem) with no state
  // changed: the old mapping keeps serving.
  Status ReloadManifest();

  // Path of the snapshot file currently serving `id` (kNotFound for an
  // unknown id). The online fine-tune pipeline warm-starts from this.
  Result<std::string> snapshot_path(const std::string& id) const;

  // Highest version ever Publish()ed into this store (0 = none). Surfaced
  // in health replies so clients can detect a completed swap.
  uint64_t max_published_version() const;

  struct Stats {
    uint64_t lookups = 0;        // Get() calls for known ids
    uint64_t warm_hits = 0;      // served without touching disk
    uint64_t cold_loads = 0;     // snapshot loads (first use or reload)
    uint64_t evictions = 0;      // models dropped by LRU or EvictIdle
    uint64_t load_failures = 0;  // cold loads that errored (incl. faults)
    uint64_t exhausted = 0;      // Get() rejections with kResourceExhausted
    uint64_t swaps = 0;          // Publish() calls that landed
    uint64_t invalidations = 0;  // Invalidate() calls that dropped a copy
    uint64_t max_published_version = 0;  // watermark (0 = nothing published)
    int64_t resident_models = 0;
    // In-memory parameter bytes of resident models (per load_dtype), not
    // the snapshot-file-size proxy earlier revisions reported.
    int64_t resident_bytes = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  ModelStore();

  std::unique_ptr<Impl> impl_;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_MODEL_STORE_H_
