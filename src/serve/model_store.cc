#include "serve/model_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "models/registry.h"
#include "plan/plan_cache.h"

namespace emaf::serve {

namespace internal {

struct StoreEntry {
  std::string id;
  std::string path;
  int64_t file_bytes = 0;
  // Actual in-memory parameter bytes of the loaded model (reflecting the
  // store's load_dtype). 0 until the first cold load; kept across
  // eviction — the same snapshot at the same dtype always reloads to the
  // same size, so reload admission uses the exact figure.
  int64_t resident_bytes = 0;
  size_t shard = 0;

  // Guarded by the owning shard's mutex. The plan cache is created with
  // the model at cold load and dropped with it at eviction, so plans
  // compiled against one residency's weights die with that residency.
  std::shared_ptr<models::Forecaster> model;
  std::shared_ptr<plan::PlanCache> plans;
  bool loading = false;
  // Bumped by Publish/Invalidate under the shard lock. A cold load
  // captures the value when it claims `loading` and installs nothing on
  // mismatch: its own request is still served the bytes it loaded, but a
  // superseded residency never enters the store — so post-swap Gets can
  // only ever see the new snapshot.
  uint64_t generation = 0;

  // Lock-free: pins are released and recency stamped without the shard
  // lock; eviction re-reads both under it.
  std::atomic<int64_t> pins{0};
  std::atomic<uint64_t> last_used{0};

  // Shared with the store's Impl so a handle outliving the store can
  // still stamp recency on release.
  std::shared_ptr<std::atomic<uint64_t>> tick;
};

}  // namespace internal

using internal::StoreEntry;

// --- ModelHandle -----------------------------------------------------------

ModelHandle::ModelHandle(std::shared_ptr<StoreEntry> entry,
                         std::shared_ptr<models::Forecaster> model,
                         std::shared_ptr<plan::PlanCache> plans)
    : entry_(std::move(entry)),
      model_(std::move(model)),
      plans_(std::move(plans)) {}

ModelHandle::ModelHandle(ModelHandle&& other) noexcept
    : entry_(std::move(other.entry_)),
      model_(std::move(other.model_)),
      plans_(std::move(other.plans_)) {
  other.entry_.reset();
  other.model_.reset();
  other.plans_.reset();
}

ModelHandle& ModelHandle::operator=(ModelHandle&& other) noexcept {
  if (this != &other) {
    Release();
    entry_ = std::move(other.entry_);
    model_ = std::move(other.model_);
    plans_ = std::move(other.plans_);
    other.entry_.reset();
    other.model_.reset();
    other.plans_.reset();
  }
  return *this;
}

ModelHandle::~ModelHandle() { Release(); }

void ModelHandle::Release() {
  if (entry_ == nullptr) return;
  // Recency reflects end-of-use, so a model released last is evicted last.
  entry_->last_used.store(
      entry_->tick->fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  entry_->pins.fetch_sub(1, std::memory_order_release);
  entry_.reset();
  model_.reset();
  plans_.reset();
}

const std::string& ModelHandle::id() const {
  EMAF_CHECK(entry_ != nullptr) << "id() on an empty ModelHandle";
  return entry_->id;
}

// --- ModelStore::Impl ------------------------------------------------------

struct ModelStore::Impl {
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<std::string, std::shared_ptr<StoreEntry>> entries;
  };

  ModelStoreOptions options;
  std::string snapshot_dir;
  // Sorted; guarded by ids_mu — Publish can register new tenants after
  // Open, so readers can no longer treat the vector as immutable.
  mutable std::mutex ids_mu;
  std::vector<std::string> ids;
  std::vector<std::unique_ptr<Shard>> shards;
  std::shared_ptr<std::atomic<uint64_t>> tick =
      std::make_shared<std::atomic<uint64_t>>(0);

  std::atomic<int64_t> resident_models{0};
  std::atomic<int64_t> resident_bytes{0};
  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> warm_hits{0};
  std::atomic<uint64_t> cold_loads{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> load_failures{0};
  std::atomic<uint64_t> exhausted{0};
  std::atomic<uint64_t> swaps{0};
  std::atomic<uint64_t> invalidations{0};
  std::atomic<uint64_t> max_published{0};

  Shard& ShardFor(const std::string& id) {
    return *shards[std::hash<std::string>{}(id) % shards.size()];
  }

  uint64_t NextTick() {
    return tick->fetch_add(1, std::memory_order_relaxed) + 1;
  }

  bool OverBudget(int64_t extra_models, int64_t extra_bytes) const {
    if (options.max_resident_models > 0 &&
        resident_models.load(std::memory_order_relaxed) + extra_models >
            options.max_resident_models) {
      return true;
    }
    if (options.max_resident_bytes > 0 &&
        resident_bytes.load(std::memory_order_relaxed) + extra_bytes >
            options.max_resident_bytes) {
      return true;
    }
    return false;
  }

  // Evicts the globally least-recently-used idle resident model (ties
  // break toward the smaller id). Entries in `skip` are passed over —
  // that's how a fault-injected eviction failure is handled without
  // retrying the same victim forever. Returns false when nothing is
  // evictable.
  bool EvictLruIdle(std::set<std::string>* skip) {
    while (true) {
      // Phase 1: scan for a candidate, one shard lock at a time (no path
      // in the store ever holds two locks).
      std::shared_ptr<StoreEntry> victim;
      uint64_t victim_tick = 0;
      for (const std::unique_ptr<Shard>& shard : shards) {
        std::lock_guard<std::mutex> lock(shard->mu);
        for (const auto& [id, entry] : shard->entries) {
          if (entry->model == nullptr || entry->loading) continue;
          if (entry->pins.load(std::memory_order_acquire) != 0) continue;
          if (skip->count(id) != 0) continue;
          uint64_t t = entry->last_used.load(std::memory_order_relaxed);
          if (victim == nullptr || t < victim_tick ||
              (t == victim_tick && entry->id < victim->id)) {
            victim = entry;
            victim_tick = t;
          }
        }
      }
      if (victim == nullptr) return false;
      // Phase 2: re-validate under the victim's shard lock; a concurrent
      // Get may have pinned or refreshed it since the scan.
      bool evicted = false;
      {
        Shard& shard = *shards[victim->shard];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (victim->model == nullptr || victim->loading ||
            victim->pins.load(std::memory_order_acquire) != 0 ||
            victim->last_used.load(std::memory_order_relaxed) !=
                victim_tick) {
          continue;  // state moved under us; pick again
        }
        if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.store.evict/", victim->id))) {
          skip->insert(victim->id);
          continue;  // victim is non-evictable this pass
        }
        victim->model.reset();
        victim->plans.reset();
        resident_models.fetch_sub(1, std::memory_order_relaxed);
        resident_bytes.fetch_sub(victim->resident_bytes,
                                 std::memory_order_relaxed);
        evicted = true;
      }
      if (evicted) {
        evictions.fetch_add(1, std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.store.evictions_total", 1);
        UpdateGauges();
        return true;
      }
    }
  }

  // Makes room for one more resident model of `extra_bytes`, evicting LRU
  // idle models as needed. kResourceExhausted when over budget with
  // nothing evictable.
  Status EnsureBudgetFor(int64_t extra_bytes) {
    std::set<std::string> skip;
    while (OverBudget(/*extra_models=*/1, extra_bytes)) {
      if (!EvictLruIdle(&skip)) {
        exhausted.fetch_add(1, std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.store.exhausted_total", 1);
        return Status::ResourceExhausted(StrCat(
            "model budget exhausted (resident_models=",
            resident_models.load(std::memory_order_relaxed),
            ", resident_bytes=",
            resident_bytes.load(std::memory_order_relaxed),
            ", max_resident_models=", options.max_resident_models,
            ", max_resident_bytes=", options.max_resident_bytes,
            ") and no idle model to evict"));
      }
    }
    return Status::Ok();
  }

  // Best-effort convergence after concurrent admissions raced past the
  // budget check together; never fails the request that just loaded.
  void TrimOverBudget() {
    std::set<std::string> skip;
    while (OverBudget(/*extra_models=*/0, /*extra_bytes=*/0)) {
      if (!EvictLruIdle(&skip)) return;
    }
  }

  void UpdateGauges() {
    EMAF_METRIC_GAUGE_SET(
        "serve.store.resident_models",
        static_cast<double>(resident_models.load(std::memory_order_relaxed)));
    EMAF_METRIC_GAUGE_SET(
        "serve.store.resident_bytes",
        static_cast<double>(resident_bytes.load(std::memory_order_relaxed)));
  }

  void UpdateHitRate() {
    uint64_t total = lookups.load(std::memory_order_relaxed);
    if (total == 0) return;
    EMAF_METRIC_GAUGE_SET(
        "serve.store.hit_rate",
        static_cast<double>(warm_hits.load(std::memory_order_relaxed)) /
            static_cast<double>(total));
  }
};

// --- ModelStore ------------------------------------------------------------

ModelStore::ModelStore() : impl_(std::make_unique<Impl>()) {}
ModelStore::ModelStore(ModelStore&&) noexcept = default;
ModelStore& ModelStore::operator=(ModelStore&&) noexcept = default;
ModelStore::~ModelStore() = default;

namespace {

// Parses `snapshot_dir/MANIFEST` into (id, absolute path) pairs. See
// kManifestFilename: `id<TAB>relpath` per line, '#' comments, blank lines
// skipped. Errors name the offending line number.
Status ReadManifest(const std::string& snapshot_dir,
                    const std::filesystem::path& manifest_path,
                    std::vector<std::pair<std::string, std::string>>* out) {
  namespace fs = std::filesystem;
  std::ifstream in(manifest_path);
  if (!in) {
    return Status::Internal(
        StrCat("cannot read manifest ", manifest_path.string()));
  }
  std::set<std::string> seen;
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      return Status::InvalidArgument(
          StrCat("manifest ", manifest_path.string(), " line ", lineno,
                 ": expected `id<TAB>relative-path`, got \"", line, "\""));
    }
    std::string id = line.substr(0, tab);
    std::string rel = line.substr(tab + 1);
    if (!seen.insert(id).second) {
      return Status::InvalidArgument(
          StrCat("manifest ", manifest_path.string(), " line ", lineno,
                 ": duplicate id \"", id, "\""));
    }
    fs::path full = fs::path(snapshot_dir) / rel;
    std::error_code ec;
    if (!fs::is_regular_file(full, ec) || ec) {
      return Status::InvalidArgument(
          StrCat("manifest ", manifest_path.string(), " line ", lineno,
                 ": snapshot file not found: ", full.string()));
    }
    out->emplace_back(std::move(id), full.string());
  }
  return Status::Ok();
}

// "<stem>.v<N>.<ext>" filename component -> N: the snapshot publisher
// encodes its monotonic version in the filename, so a Publish(id, path)
// with version 0 can recover it. 0 when no `.v<digits>` component exists;
// the last well-formed component wins.
uint64_t VersionFromFilename(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  uint64_t version = 0;
  for (size_t pos = name.find(".v"); pos != std::string::npos;
       pos = name.find(".v", pos + 1)) {
    size_t i = pos + 2;
    uint64_t value = 0;
    bool any_digit = false;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      value = value * 10 + static_cast<uint64_t>(name[i] - '0');
      any_digit = true;
      ++i;
    }
    if (any_digit && (i == name.size() || name[i] == '.')) version = value;
  }
  return version;
}

}  // namespace

Result<ModelStore> ModelStore::Open(const std::string& snapshot_dir,
                                    const ModelStoreOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(snapshot_dir, ec) || ec) {
    return Status::NotFound(
        StrCat("snapshot directory not found: ", snapshot_dir));
  }
  // (id, snapshot path); the manifest — when present — is authoritative,
  // and lets many tenant ids alias one physical snapshot file.
  std::vector<std::pair<std::string, std::string>> listed;
  const fs::path manifest_path = fs::path(snapshot_dir) / kManifestFilename;
  if (fs::is_regular_file(manifest_path, ec) && !ec) {
    EMAF_RETURN_IF_ERROR(ReadManifest(snapshot_dir, manifest_path, &listed));
    if (listed.empty()) {
      return Status::NotFound(StrCat("manifest ", manifest_path.string(),
                                     " lists no snapshots"));
    }
  } else {
    std::vector<fs::path> files;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(snapshot_dir, ec)) {
      if (entry.path().extension() != options.extension) continue;
      // `<id>.v<N><ext>` files are publisher artifacts: versions of an id,
      // not tenants named "<id>.vN". They are reached via the MANIFEST the
      // publisher rewrites (authoritative above) or an explicit Publish —
      // never by inventing a tenant from the listing.
      if (VersionFromFilename(entry.path().filename().string()) > 0) continue;
      files.push_back(entry.path());
    }
    if (ec) {
      return Status::Internal(StrCat("cannot list snapshot directory ",
                                     snapshot_dir, ": ", ec.message()));
    }
    if (files.empty()) {
      return Status::NotFound(
          StrCat("no *", options.extension, " snapshots in ", snapshot_dir));
    }
    for (const fs::path& path : files) {
      listed.emplace_back(path.stem().string(), path.string());
    }
  }
  // Listing order is unspecified (directory iteration) or author-chosen
  // (manifest); sort by id for determinism either way.
  std::sort(listed.begin(), listed.end());

  ModelStore store;
  Impl& impl = *store.impl_;
  impl.options = options;
  impl.snapshot_dir = snapshot_dir;
  impl.options.num_shards = std::max<int64_t>(1, options.num_shards);
  impl.shards.reserve(static_cast<size_t>(impl.options.num_shards));
  for (int64_t i = 0; i < impl.options.num_shards; ++i) {
    impl.shards.push_back(std::make_unique<Impl::Shard>());
  }
  for (const auto& [id, path] : listed) {
    auto entry = std::make_shared<StoreEntry>();
    entry->id = id;
    entry->path = path;
    std::error_code size_ec;
    uintmax_t bytes = fs::file_size(path, size_ec);
    entry->file_bytes = size_ec ? 0 : static_cast<int64_t>(bytes);
    entry->shard = std::hash<std::string>{}(entry->id) %
                   impl.shards.size();
    entry->tick = impl.tick;
    impl.shards[entry->shard]->entries.emplace(entry->id, entry);
    impl.ids.push_back(entry->id);
  }
  std::sort(impl.ids.begin(), impl.ids.end());
  return store;
}

int64_t ModelStore::num_known_models() const {
  std::lock_guard<std::mutex> lock(impl_->ids_mu);
  return static_cast<int64_t>(impl_->ids.size());
}

std::vector<std::string> ModelStore::individual_ids() const {
  std::lock_guard<std::mutex> lock(impl_->ids_mu);
  return impl_->ids;
}

bool ModelStore::resident(const std::string& id) const {
  Impl::Shard& shard = impl_->ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  return it != shard.entries.end() && it->second->model != nullptr;
}

Result<ModelHandle> ModelStore::Get(const std::string& id) {
  [[maybe_unused]] std::chrono::steady_clock::time_point start;
  if constexpr (obs::kMetricsEnabled) {
    start = std::chrono::steady_clock::now();
  }
  [[maybe_unused]] auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  Impl::Shard& shard = impl_->ShardFor(id);
  std::shared_ptr<StoreEntry> entry;
  uint64_t load_generation = 0;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      return Status::NotFound(StrCat("no snapshot for individual: ", id));
    }
    entry = it->second;
    impl_->lookups.fetch_add(1, std::memory_order_relaxed);
    while (true) {
      if (entry->model != nullptr) {
        // Warm hit: pin and refresh recency under the shard lock (the
        // only place pins are incremented, so eviction's pins==0 check
        // under the same lock cannot race with a new pin).
        entry->pins.fetch_add(1, std::memory_order_relaxed);
        entry->last_used.store(impl_->NextTick(), std::memory_order_relaxed);
        std::shared_ptr<models::Forecaster> model = entry->model;
        std::shared_ptr<plan::PlanCache> plans = entry->plans;
        lock.unlock();
        impl_->warm_hits.fetch_add(1, std::memory_order_relaxed);
        impl_->UpdateHitRate();
        if constexpr (obs::kMetricsEnabled) {
          EMAF_METRIC_HISTOGRAM_OBSERVE("serve.store.warm_acquire_seconds",
                                        elapsed(),
                                        obs::DefaultSecondsBounds());
        }
        return ModelHandle(std::move(entry), std::move(model),
                           std::move(plans));
      }
      if (!entry->loading) break;
      // Another thread is cold-loading this id; coalesce on it rather
      // than hitting the disk twice (single-flight).
      shard.cv.wait(lock);
    }
    entry->loading = true;
    load_generation = entry->generation;
  }

  // Cold path — no locks held for admission or the disk load.
  auto fail = [&](Status status) -> Result<ModelHandle> {
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      entry->loading = false;
    }
    shard.cv.notify_all();
    return status;
  };

  // Admission estimate: a reload knows its exact in-memory size from the
  // previous residency; a first-time load scales the snapshot file size
  // by the load dtype (the payload is raw f64 weights, so an f32 resident
  // lands near half of it).
  int64_t admission_bytes = entry->resident_bytes;
  if (admission_bytes == 0) {
    admission_bytes = impl_->options.load_dtype == tensor::DType::kF32
                          ? entry->file_bytes / 2
                          : entry->file_bytes;
  }
  Status admitted = impl_->EnsureBudgetFor(admission_bytes);
  if (!admitted.ok()) return fail(admitted);

  if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.store.load/", id))) {
    impl_->load_failures.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_COUNTER_ADD("serve.store.load_failures_total", 1);
    return fail(
        Status::Unavailable(StrCat("injected fault: serve.store.load/", id)));
  }
  Rng rng(impl_->options.seed);
  Result<std::unique_ptr<models::Forecaster>> loaded =
      models::LoadForecasterSnapshot(entry->path, &rng,
                                     impl_->options.load_dtype);
  if (!loaded.ok()) {
    impl_->load_failures.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_COUNTER_ADD("serve.store.load_failures_total", 1);
    return fail(Status(loaded.status().code(),
                       StrCat("loading model ", id, ": ",
                              loaded.status().message())));
  }
  // Eval mode is set exactly once, here: the request path never writes to
  // the module tree, which is what makes concurrent requests against one
  // model race-free (core::Predict).
  loaded.value()->SetTraining(false);
  std::shared_ptr<models::Forecaster> model = std::move(loaded).value();
  std::shared_ptr<plan::PlanCache> plans = std::make_shared<plan::PlanCache>();
  // What the budget actually pays for: the loaded tensors' bytes at the
  // store's dtype (parameters dominate a model's footprint; the few baked
  // graph buffers are not enumerable through the Module interface).
  int64_t model_bytes = 0;
  for (tensor::Tensor* t : model->Parameters()) model_bytes += t->byte_size();
  bool installed = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    entry->loading = false;
    if (entry->generation == load_generation) {
      entry->model = model;
      entry->resident_bytes = model_bytes;
      entry->plans = plans;
      installed = true;
    }
    // On a generation mismatch a Publish/Invalidate landed while the disk
    // load ran: the bytes just loaded are already superseded, so they are
    // handed only to this request (the handle below co-owns them) and the
    // store stays empty for the id — the next Get cold-loads the new path.
    entry->pins.fetch_add(1, std::memory_order_relaxed);
    entry->last_used.store(impl_->NextTick(), std::memory_order_relaxed);
  }
  shard.cv.notify_all();
  impl_->cold_loads.fetch_add(1, std::memory_order_relaxed);
  EMAF_METRIC_COUNTER_ADD("serve.store.cold_loads_total", 1);
  if (installed) {
    impl_->resident_models.fetch_add(1, std::memory_order_relaxed);
    impl_->resident_bytes.fetch_add(model_bytes, std::memory_order_relaxed);
    impl_->UpdateGauges();
  }
  impl_->UpdateHitRate();
  if constexpr (obs::kMetricsEnabled) {
    EMAF_METRIC_HISTOGRAM_OBSERVE("serve.store.cold_load_seconds", elapsed(),
                                  obs::DefaultSecondsBounds());
  }
  // Concurrent admissions can race past the budget check together; shed
  // any overshoot now (best effort — this request keeps its model).
  impl_->TrimOverBudget();
  return ModelHandle(std::move(entry), std::move(model), std::move(plans));
}

int64_t ModelStore::EvictIdle(int64_t max_to_evict) {
  std::set<std::string> skip;
  int64_t evicted = 0;
  while (max_to_evict < 0 || evicted < max_to_evict) {
    if (!impl_->EvictLruIdle(&skip)) break;
    ++evicted;
  }
  return evicted;
}

Status ModelStore::Publish(const std::string& id, const std::string& path,
                           uint64_t version) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || ec) {
    return Status::NotFound(
        StrCat("Publish(", id, "): snapshot file not found: ", path));
  }
  uintmax_t bytes = fs::file_size(path, ec);
  const int64_t file_bytes = ec ? 0 : static_cast<int64_t>(bytes);
  if (version == 0) version = VersionFromFilename(path);

  Impl::Shard& shard = impl_->ShardFor(id);
  bool added = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::shared_ptr<StoreEntry> entry;
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      entry = std::make_shared<StoreEntry>();
      entry->id = id;
      entry->shard = std::hash<std::string>{}(id) % impl_->shards.size();
      entry->tick = impl_->tick;
      shard.entries.emplace(id, entry);
      added = true;
    } else {
      entry = it->second;
    }
    if (entry->model != nullptr) {
      // Same critical section as the eviction path: the store's references
      // to the stale residency and its PlanCache drop here; in-flight
      // handles co-own both, so pinned requests finish on the old bytes.
      entry->model.reset();
      entry->plans.reset();
      impl_->resident_models.fetch_sub(1, std::memory_order_relaxed);
      impl_->resident_bytes.fetch_sub(entry->resident_bytes,
                                      std::memory_order_relaxed);
    }
    // The old residency's size says nothing about the new snapshot's, so
    // the estimate resets instead of leaking into swap-admission math.
    entry->resident_bytes = 0;
    entry->path = path;
    entry->file_bytes = file_bytes;
    ++entry->generation;  // a cold load in flight must not install
  }
  if (added) {
    std::lock_guard<std::mutex> lock(impl_->ids_mu);
    impl_->ids.insert(
        std::lower_bound(impl_->ids.begin(), impl_->ids.end(), id), id);
  }
  impl_->swaps.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = impl_->max_published.load(std::memory_order_relaxed);
  while (version > prev &&
         !impl_->max_published.compare_exchange_weak(
             prev, version, std::memory_order_relaxed)) {
  }
  EMAF_METRIC_COUNTER_ADD("serve.store.swaps_total", 1);
  EMAF_METRIC_GAUGE_SET("serve.store.published_version",
                        static_cast<double>(impl_->max_published.load(
                            std::memory_order_relaxed)));
  impl_->UpdateGauges();
  return Status::Ok();
}

bool ModelStore::Invalidate(const std::string& id) {
  Impl::Shard& shard = impl_->ShardFor(id);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    StoreEntry& entry = *it->second;
    // Unconditional: a cold load in flight may already hold bytes read
    // before whatever prompted the invalidation (e.g. an in-place snapshot
    // rewrite), so it must not install either.
    ++entry.generation;
    // The snapshot file may have been rewritten to a different size; both
    // cached figures are re-derived on the next load.
    std::error_code ec;
    uintmax_t bytes = std::filesystem::file_size(entry.path, ec);
    if (!ec) entry.file_bytes = static_cast<int64_t>(bytes);
    if (entry.model != nullptr) {
      entry.model.reset();
      entry.plans.reset();
      impl_->resident_models.fetch_sub(1, std::memory_order_relaxed);
      impl_->resident_bytes.fetch_sub(entry.resident_bytes,
                                      std::memory_order_relaxed);
      entry.resident_bytes = 0;
      dropped = true;
    }
  }
  if (dropped) {
    impl_->invalidations.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_COUNTER_ADD("serve.store.invalidations_total", 1);
    impl_->UpdateGauges();
  }
  return dropped;
}

Status ModelStore::ReloadManifest() {
  namespace fs = std::filesystem;
  const fs::path manifest_path =
      fs::path(impl_->snapshot_dir) / kManifestFilename;
  std::error_code ec;
  if (!fs::is_regular_file(manifest_path, ec) || ec) {
    return Status::NotFound(
        StrCat("manifest not found: ", manifest_path.string()));
  }
  // Parse and validate the whole rewrite before touching any state: a
  // malformed line rejects the reload and the old mapping keeps serving.
  std::vector<std::pair<std::string, std::string>> listed;
  EMAF_RETURN_IF_ERROR(
      ReadManifest(impl_->snapshot_dir, manifest_path, &listed));
  std::sort(listed.begin(), listed.end());
  for (const auto& [id, path] : listed) {
    bool changed = true;
    {
      Impl::Shard& shard = impl_->ShardFor(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(id);
      if (it != shard.entries.end() && it->second->path == path) {
        changed = false;  // unchanged mapping: leave the residency alone
      }
    }
    if (changed) EMAF_RETURN_IF_ERROR(Publish(id, path));
  }
  return Status::Ok();
}

Result<std::string> ModelStore::snapshot_path(const std::string& id) const {
  Impl::Shard& shard = impl_->ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    return Status::NotFound(StrCat("no snapshot for individual: ", id));
  }
  return it->second->path;
}

uint64_t ModelStore::max_published_version() const {
  return impl_->max_published.load(std::memory_order_relaxed);
}

ModelStore::Stats ModelStore::stats() const {
  Stats stats;
  stats.lookups = impl_->lookups.load(std::memory_order_relaxed);
  stats.warm_hits = impl_->warm_hits.load(std::memory_order_relaxed);
  stats.cold_loads = impl_->cold_loads.load(std::memory_order_relaxed);
  stats.evictions = impl_->evictions.load(std::memory_order_relaxed);
  stats.load_failures = impl_->load_failures.load(std::memory_order_relaxed);
  stats.exhausted = impl_->exhausted.load(std::memory_order_relaxed);
  stats.swaps = impl_->swaps.load(std::memory_order_relaxed);
  stats.invalidations = impl_->invalidations.load(std::memory_order_relaxed);
  stats.max_published_version =
      impl_->max_published.load(std::memory_order_relaxed);
  stats.resident_models =
      impl_->resident_models.load(std::memory_order_relaxed);
  stats.resident_bytes = impl_->resident_bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace emaf::serve
