// RequestScheduler: bounded admission and deterministic micro-batching in
// front of the ModelStore (DESIGN.md, "Model store & scheduler").
//
// Requests enter through Submit(), which either enqueues them (returning a
// RequestTicket the caller later reads the result from) or — when the
// admission queue is full — rejects them immediately with kUnavailable.
// That is the backpressure contract: a saturated server sheds load at the
// door instead of growing its queue without bound.
//
// Batching is driven by a *virtual clock*: Submit stamps each request with
// the clock's current tick, and Pump() closes a micro-batch when it is
// full (`max_batch` requests) or when the oldest pending request has aged
// `max_delay_ticks`. No wall-clock time enters the decision path, so a
// test driving a ManualClock reproduces the exact same batch boundaries
// every run — and the same boundaries at any thread-pool size, because a
// closed batch executes with one request per pre-sized slot (bitwise
// identical results at 1, 2 or 8 threads). Requests for the same
// individual inside one batch coalesce on the store's single-flight cold
// load, so a burst for one tenant costs one disk read.
//
// The scheduler never self-dispatches: the owner (a server loop, the
// InferenceEngine facade, a test) calls Pump() on its own cadence, or
// Flush() to drain everything regardless of age.
//
// Deadlines: a request may carry `deadline_ticks` (relative to its
// arrival tick; 0 = none). Pump sheds already-expired requests at
// batch-close time, *before* any store lookup or forward pass, completing
// their tickets with kDeadlineExceeded — doomed work never burns a
// forward. A second check at batch-entry (inside Execute / the shared
// ExecuteForecast) catches requests that expire between close and slot
// start.
//
// Instrumentation: serve.scheduler.submitted_total / rejected_total /
// batches_total / executed_total / failed_total / expired_total
// (counters), serve.scheduler.queue_depth (gauge),
// serve.scheduler.batch_size (histogram).

#ifndef EMAF_SERVE_SCHEDULER_H_
#define EMAF_SERVE_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "serve/clock.h"
#include "serve/forecast_op.h"
#include "serve/model_store.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct SchedulerOptions {
  // Admission bound: Submit rejects with kUnavailable once this many
  // requests are pending. <= 0 means unbounded (no backpressure) — used
  // by the engine facade, whose callers hand it complete batches.
  int64_t max_queue = 256;
  // A batch closes as soon as it holds this many requests. Clamped >= 1.
  int64_t max_batch = 8;
  // A non-full batch closes once its oldest request is this many virtual
  // ticks old. 0 = every Pump() drains whatever is pending.
  uint64_t max_delay_ticks = 1;
  // Execute through each model's compiled-plan cache (bitwise-identical
  // bytes, module fallback). Mirrors EngineOptions.use_compiled_plans.
  bool use_compiled_plans = true;
};

// Completion slot for one submitted request. Tickets are cheap to copy;
// result() is valid once done() — with a synchronous Pump/Flush driver,
// that is immediately after the call that dispatched the request.
class RequestTicket {
 public:
  RequestTicket() = default;

  bool valid() const { return slot_ != nullptr; }
  bool done() const;
  // The forecast or the per-request error. Checked failure unless done().
  const Result<tensor::Tensor>& result() const;

 private:
  friend class RequestScheduler;
  struct Slot;
  explicit RequestTicket(std::shared_ptr<Slot> slot);

  std::shared_ptr<Slot> slot_;
};

class RequestScheduler {
 public:
  // `store`, `arena` and `clock` must outlive the scheduler; `arena` may
  // be null (requests then run on the plain heap).
  RequestScheduler(ModelStore* store, tensor::InferenceArena* arena,
                   const SchedulerOptions& options, const VirtualClock* clock);

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  // Enqueues one request, stamped with the clock's current tick.
  // kUnavailable when the queue is at max_queue (backpressure — the
  // request is NOT queued; the caller retries later or sheds load).
  Result<RequestTicket> Submit(const ForecastRequest& request);

  // Closes every batch due at the current tick (full batches plus an aged
  // head) and executes them on the global ThreadPool, blocking until they
  // finish. Returns the number of requests executed.
  int64_t Pump();
  // As Pump, but closes everything pending regardless of age.
  int64_t Flush();

  int64_t queue_depth() const;

  struct Stats {
    uint64_t submitted = 0;  // accepted into the queue
    uint64_t rejected = 0;   // refused with kUnavailable (queue full)
    uint64_t batches = 0;    // micro-batches dispatched
    uint64_t executed = 0;   // requests completed (ok or error)
    // Of `executed`, how many completed with an error status (store load
    // failure or forecast error). Before this counter existed a tenant
    // failing inside a batch was indistinguishable from success in the
    // stats, even though its peers were served — the fault-injection
    // server test pins both halves of that contract.
    uint64_t failed = 0;
    // Requests whose deadline elapsed before a forward pass ran: shed at
    // batch-close or caught at batch-entry, completed with
    // kDeadlineExceeded. Disjoint from `failed`; shed requests are not
    // counted in `executed` (they were never dispatched into a batch).
    uint64_t expired = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    ForecastRequest request;
    std::shared_ptr<RequestTicket::Slot> slot;
    uint64_t arrival = 0;
    // Absolute expiry tick (arrival + deadline_ticks, saturating);
    // kNoExpiry when the request carries no deadline.
    uint64_t expiry = ~uint64_t{0};
  };
  using Batch = std::vector<Pending>;

  // Pops all closable batches off the queue (under the lock), shedding
  // expired requests (completed with kDeadlineExceeded) as a side effect.
  std::vector<Batch> CloseBatches(bool flush);
  // Runs one batch: per-request store lookup + forecast into its slot.
  void Execute(Batch* batch);

  ModelStore* store_;
  tensor::InferenceArena* arena_;
  SchedulerOptions options_;
  const VirtualClock* clock_;

  mutable std::mutex mu_;
  std::deque<Pending> pending_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> expired_{0};
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_SCHEDULER_H_
