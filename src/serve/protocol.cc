#include "serve/protocol.h"

#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "tensor/shape.h"

namespace emaf::serve {

namespace {

// Little-endian scalar append/read. memcpy keeps this well-defined on any
// alignment; the host is little-endian (x86-64), matching the wire order.
template <typename T>
void AppendLe(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
T ReadLe(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

std::string CrcHex(uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string hex(8, '0');
  for (int i = 7; i >= 0; --i) {
    hex[static_cast<size_t>(i)] = digits[crc & 0xF];
    crc >>= 4;
  }
  return hex;
}

// Shared prefix validation for the one-shot and streaming decoders: each
// field is checked as soon as its bytes are available, in wire order, so
// a v1 frame (whose 20-byte header is shorter than ours) dies on its
// version byte — before the decoder could misread its layout, and before
// any CRC check. Once the full header is present, fills the announced
// tenant/payload lengths and sets *header_done.
Status ValidatePrefix(std::string_view bytes, size_t max_frame_bytes,
                      size_t* tenant_len, size_t* payload_len,
                      bool* header_done) {
  *header_done = false;
  const size_t magic_avail = std::min(bytes.size(), sizeof(kFrameMagic));
  if (std::memcmp(bytes.data(), kFrameMagic, magic_avail) != 0) {
    std::string got;
    for (size_t i = 0; i < magic_avail; ++i) {
      if (i > 0) got += ' ';
      got += StrCat(static_cast<int>(static_cast<unsigned char>(bytes[i])));
    }
    return Status::InvalidArgument(StrCat(
        "bad magic: frame does not start with \"EMAF\" (got bytes ", got,
        ")"));
  }
  if (bytes.size() < 5) return Status::Ok();
  const uint8_t version = static_cast<uint8_t>(bytes[4]);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", static_cast<int>(version),
               ": this endpoint speaks version ",
               static_cast<int>(kProtocolVersion), " only"));
  }
  if (bytes.size() < 6) return Status::Ok();
  const uint8_t type = static_cast<uint8_t>(bytes[5]);
  if (!IsKnownFrameType(type)) {
    return Status::InvalidArgument(StrCat(
        "unknown frame type ", static_cast<int>(type),
        " (known types: 1=FORECAST_REQUEST .. 9=APPEND_REPLY)"));
  }
  if (bytes.size() < kFrameHeaderBytes) return Status::Ok();
  *tenant_len = ReadLe<uint16_t>(bytes.data() + 6);
  *payload_len = ReadLe<uint32_t>(bytes.data() + 8);
  const size_t total =
      kFrameHeaderBytes + *tenant_len + *payload_len + kFrameTrailerBytes;
  if (total > max_frame_bytes) {
    return Status::InvalidArgument(StrCat(
        "payload length too large: tenant id length ", *tenant_len,
        " + payload length ", *payload_len, " gives a ", total,
        "-byte frame, over the ", max_frame_bytes, "-byte ceiling"));
  }
  const uint8_t flags = static_cast<uint8_t>(bytes[20]);
  if ((flags & static_cast<uint8_t>(~kFrameFlagMask)) != 0) {
    return Status::InvalidArgument(StrCat(
        "reserved flags bits set: flags byte is ", static_cast<int>(flags),
        ", known bits are ", static_cast<int>(kFrameFlagMask)));
  }
  const uint64_t deadline = ReadLe<uint64_t>(bytes.data() + 21);
  if ((flags & kFrameFlagHasDeadline) == 0 && deadline != 0) {
    return Status::InvalidArgument(StrCat(
        "deadline field is ", deadline,
        " ticks but the HAS_DEADLINE flag is not set"));
  }
  *header_done = true;
  return Status::Ok();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kForecastRequest:
      return "FORECAST_REQUEST";
    case FrameType::kForecastResponse:
      return "FORECAST_RESPONSE";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
    case FrameType::kHealth:
      return "HEALTH";
    case FrameType::kHealthReply:
      return "HEALTH_REPLY";
    case FrameType::kAppend:
      return "APPEND";
    case FrameType::kAppendReply:
      return "APPEND_REPLY";
  }
  return "UNKNOWN";
}

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kForecastRequest) &&
         type <= static_cast<uint8_t>(FrameType::kAppendReply);
}

size_t EncodedFrameBytes(const Frame& frame) {
  return kFrameHeaderBytes + frame.tenant_id.size() + frame.payload.size() +
         kFrameTrailerBytes;
}

std::string EncodeFrame(const Frame& frame) {
  EMAF_CHECK(frame.tenant_id.size() <= std::numeric_limits<uint16_t>::max())
      << "tenant id does not fit the u16 length field: "
      << frame.tenant_id.size() << " bytes";
  EMAF_CHECK(EncodedFrameBytes(frame) <= kDefaultMaxFrameBytes)
      << "frame exceeds kDefaultMaxFrameBytes: " << EncodedFrameBytes(frame);
  EMAF_CHECK((frame.flags & static_cast<uint8_t>(~kFrameFlagMask)) == 0)
      << "frame sets reserved flag bits: " << static_cast<int>(frame.flags);
  EMAF_CHECK(frame.deadline_ticks == 0 || frame.has_deadline())
      << "deadline_ticks set without kFrameFlagHasDeadline; use SetDeadline";
  std::string out;
  out.reserve(EncodedFrameBytes(frame));
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.push_back(static_cast<char>(frame.type));
  AppendLe<uint16_t>(&out, static_cast<uint16_t>(frame.tenant_id.size()));
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(frame.payload.size()));
  AppendLe<uint64_t>(&out, frame.request_id);
  out.push_back(static_cast<char>(frame.flags));
  AppendLe<uint64_t>(&out, frame.deadline_ticks);
  out.append(frame.tenant_id);
  out.append(frame.payload);
  AppendLe<uint32_t>(&out, core::Crc32(out));
  return out;
}

Result<Frame> DecodeFrame(std::string_view bytes, size_t max_frame_bytes) {
  size_t tenant_len = 0;
  size_t payload_len = 0;
  bool header_done = false;
  EMAF_RETURN_IF_ERROR(ValidatePrefix(bytes, max_frame_bytes, &tenant_len,
                                      &payload_len, &header_done));
  if (!header_done) {
    return Status::InvalidArgument(
        StrCat("truncated header: got ", bytes.size(),
               " byte(s), need the ", kFrameHeaderBytes, "-byte frame header"));
  }
  const size_t total =
      kFrameHeaderBytes + tenant_len + payload_len + kFrameTrailerBytes;
  if (bytes.size() < total) {
    return Status::InvalidArgument(
        StrCat("truncated frame: header announces ", total,
               " bytes (tenant id ", tenant_len, ", payload ", payload_len,
               "), got ", bytes.size()));
  }
  if (bytes.size() > total) {
    return Status::InvalidArgument(
        StrCat("trailing bytes after frame: frame is ", total, " bytes, got ",
               bytes.size()));
  }
  const uint32_t stored_crc =
      ReadLe<uint32_t>(bytes.data() + total - kFrameTrailerBytes);
  const uint32_t actual_crc =
      core::Crc32(bytes.substr(0, total - kFrameTrailerBytes));
  if (stored_crc != actual_crc) {
    return Status::DataLoss(StrCat("crc mismatch: frame carries 0x",
                                   CrcHex(stored_crc), ", computed 0x",
                                   CrcHex(actual_crc)));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(bytes[5]);
  frame.request_id = ReadLe<uint64_t>(bytes.data() + 12);
  frame.flags = static_cast<uint8_t>(bytes[20]);
  frame.deadline_ticks = ReadLe<uint64_t>(bytes.data() + 21);
  frame.tenant_id.assign(bytes.data() + kFrameHeaderBytes, tenant_len);
  frame.payload.assign(bytes.data() + kFrameHeaderBytes + tenant_len,
                       payload_len);
  return frame;
}

// --- Typed payloads --------------------------------------------------------

std::string EncodeTensorPayload(const tensor::Tensor& tensor) {
  const tensor::Shape& shape = tensor.shape();
  EMAF_CHECK(shape.rank() <= 8) << "tensor rank over the wire limit of 8";
  std::string out;
  out.reserve(4 + 4 * static_cast<size_t>(shape.rank()) +
              8 * static_cast<size_t>(tensor.NumElements()));
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(shape.rank()));
  for (int64_t dim : shape.dims()) {
    EMAF_CHECK(dim >= 0 && dim <= std::numeric_limits<uint32_t>::max());
    AppendLe<uint32_t>(&out, static_cast<uint32_t>(dim));
  }
  out.append(reinterpret_cast<const char*>(tensor.data()),
             8 * static_cast<size_t>(tensor.NumElements()));
  return out;
}

Result<tensor::Tensor> DecodeTensorPayload(std::string_view payload) {
  if (payload.size() < 4) {
    return Status::InvalidArgument(
        StrCat("tensor payload truncated: ", payload.size(),
               " byte(s), need the 4-byte rank"));
  }
  const uint32_t rank = ReadLe<uint32_t>(payload.data());
  if (rank > 8) {
    return Status::InvalidArgument(
        StrCat("tensor payload rank ", rank, " over the wire limit of 8"));
  }
  if (payload.size() < 4 + 4 * static_cast<size_t>(rank)) {
    return Status::InvalidArgument(
        StrCat("tensor payload truncated: rank ", rank, " needs ",
               4 + 4 * static_cast<size_t>(rank), " header bytes, got ",
               payload.size()));
  }
  std::vector<int64_t> dims(rank);
  uint64_t numel = 1;
  // The payload itself bounds any decodable shape: every element needs 8
  // data bytes, so the announced product can never exceed payload/8 —
  // whatever frame ceiling the transport was configured with. The
  // division form keeps the running product overflow-free.
  const uint64_t max_numel = payload.size() / 8;
  for (uint32_t i = 0; i < rank; ++i) {
    dims[i] = ReadLe<uint32_t>(payload.data() + 4 + 4 * i);
    const uint64_t dim = static_cast<uint64_t>(dims[i]);
    if (dim != 0 && numel > max_numel / dim) {
      return Status::InvalidArgument(
          StrCat("tensor payload dims announce more than ", max_numel,
                 " elements, over what the ", payload.size(),
                 "-byte payload can hold"));
    }
    numel *= dim;
  }
  const size_t data_offset = 4 + 4 * static_cast<size_t>(rank);
  const size_t data_bytes = payload.size() - data_offset;
  if (data_bytes != 8 * numel) {
    return Status::InvalidArgument(
        StrCat("tensor payload data length ", data_bytes,
               " does not match the announced shape (", numel,
               " doubles = ", 8 * numel, " bytes)"));
  }
  std::vector<double> values(numel);
  std::memcpy(values.data(), payload.data() + data_offset, data_bytes);
  return tensor::Tensor::FromVector(tensor::Shape(std::move(dims)),
                                    std::move(values));
}

std::string EncodeStatusPayload(const Status& status) {
  EMAF_CHECK(!status.ok()) << "error frames carry errors, not OK";
  std::string out;
  AppendLe<uint32_t>(&out, static_cast<uint32_t>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload, Status* decoded) {
  EMAF_CHECK(decoded != nullptr);
  if (payload.size() < 4) {
    return Status::InvalidArgument(
        StrCat("status payload truncated: ", payload.size(),
               " byte(s), need the 4-byte status code"));
  }
  const uint32_t code = ReadLe<uint32_t>(payload.data());
  if (code == 0 ||
      code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument(
        StrCat("status payload carries invalid status code ", code));
  }
  *decoded = Status(static_cast<StatusCode>(code),
                    std::string(payload.substr(4)));
  return Status::Ok();
}

const char* ServeStateName(ServeState state) {
  switch (state) {
    case ServeState::kStarting:
      return "STARTING";
    case ServeState::kServing:
      return "SERVING";
    case ServeState::kDraining:
      return "DRAINING";
  }
  return "UNKNOWN";
}

namespace {
// u8 state | u64 resident | u64 known | u64 queue depth | u64 max
// published version.
constexpr size_t kHealthPayloadBytes = 1 + 8 + 8 + 8 + 8;
}  // namespace

std::string EncodeHealthPayload(const HealthInfo& info) {
  std::string out;
  out.reserve(kHealthPayloadBytes);
  out.push_back(static_cast<char>(info.state));
  AppendLe<uint64_t>(&out, info.resident_models);
  AppendLe<uint64_t>(&out, info.known_models);
  AppendLe<uint64_t>(&out, info.queue_depth);
  AppendLe<uint64_t>(&out, info.max_published_version);
  return out;
}

Result<HealthInfo> DecodeHealthPayload(std::string_view payload) {
  if (payload.size() != kHealthPayloadBytes) {
    return Status::InvalidArgument(
        StrCat("health payload is ", payload.size(), " byte(s), expected ",
               kHealthPayloadBytes));
  }
  const uint8_t state = static_cast<uint8_t>(payload[0]);
  if (state > static_cast<uint8_t>(ServeState::kDraining)) {
    return Status::InvalidArgument(StrCat(
        "health payload carries unknown serve state ",
        static_cast<int>(state), " (known states: 0=STARTING .. 2=DRAINING)"));
  }
  HealthInfo info;
  info.state = static_cast<ServeState>(state);
  info.resident_models = ReadLe<uint64_t>(payload.data() + 1);
  info.known_models = ReadLe<uint64_t>(payload.data() + 9);
  info.queue_depth = ReadLe<uint64_t>(payload.data() + 17);
  info.max_published_version = ReadLe<uint64_t>(payload.data() + 25);
  return info;
}

std::string EncodeAppendReplyPayload(uint64_t sequence) {
  std::string out;
  out.reserve(8);
  AppendLe<uint64_t>(&out, sequence);
  return out;
}

Result<uint64_t> DecodeAppendReplyPayload(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::InvalidArgument(
        StrCat("append-reply payload is ", payload.size(),
               " byte(s), expected the 8-byte sequence number"));
  }
  return ReadLe<uint64_t>(payload.data());
}

// --- FrameDecoder ----------------------------------------------------------

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(std::string_view bytes) {
  if (failed_) return;  // stream already dead; don't grow the buffer
  // Compact once the consumed prefix dominates, keeping Feed amortized O(n).
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(bytes);
}

Status FrameDecoder::Precheck() {
  const std::string_view pending =
      std::string_view(buffer_).substr(offset_);
  // ValidatePrefix rejects each field as soon as it arrives — garbage
  // magic after 4 bytes, a foreign protocol version after 5 — so broken
  // streams die before buffering anything.
  size_t tenant_len = 0;
  size_t payload_len = 0;
  bool header_done = false;
  EMAF_RETURN_IF_ERROR(ValidatePrefix(pending, max_frame_bytes_, &tenant_len,
                                      &payload_len, &header_done));
  if (header_done) {
    total_ =
        kFrameHeaderBytes + tenant_len + payload_len + kFrameTrailerBytes;
  }
  return Status::Ok();
}

std::optional<Result<Frame>> FrameDecoder::Next() {
  if (failed_) return Result<Frame>(error_);
  if (buffer_.size() == offset_) return std::nullopt;
  if (total_ == 0) {
    Status header = Precheck();
    if (!header.ok()) {
      failed_ = true;
      error_ = header;
      buffer_.clear();
      offset_ = 0;
      return Result<Frame>(error_);
    }
    if (total_ == 0) return std::nullopt;  // header still incomplete
  }
  if (buffer_.size() - offset_ < total_) return std::nullopt;
  Result<Frame> frame = DecodeFrame(
      std::string_view(buffer_).substr(offset_, total_), max_frame_bytes_);
  offset_ += total_;
  total_ = 0;
  if (!frame.ok()) {
    // CRC or payload-level failure: framing may look intact but the bytes
    // are untrustworthy, so the stream is terminal like any other error.
    failed_ = true;
    error_ = frame.status();
    buffer_.clear();
    offset_ = 0;
  }
  return frame;
}

}  // namespace emaf::serve
