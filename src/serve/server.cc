#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "online/observation_log.h"
#include "tensor/arena.h"

namespace emaf::serve {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrCat(what, ": ", std::strerror(errno)));
}

}  // namespace

struct Server::Impl {
  // One accepted socket. Owned exclusively by the loop thread.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;  // accept-order index; names the fault sites
    FrameDecoder decoder;
    std::string out;       // encoded frames awaiting the socket
    size_t out_offset = 0;
    bool want_write = false;  // EPOLLOUT currently armed
    bool closing = false;     // close once `out` drains

    explicit Conn(size_t max_frame_bytes) : decoder(max_frame_bytes) {}
  };

  // One admitted forecast request whose ticket has not completed yet.
  struct InFlight {
    RequestTicket ticket;
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point start;
  };

  ServerOptions options;
  // optional: ModelStore is only constructible via ModelStore::Open.
  std::optional<ModelStore> model_store;
  tensor::InferenceArena arena;
  ManualClock clock;
  std::optional<RequestScheduler> scheduler;
  // Streaming ingestion journal; engaged only when observation_log_dir is
  // set. The log does its own locking — appends land on the loop thread,
  // while an in-process online pipeline may read tails from another.
  std::optional<online::ObservationLog> observation_log;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  uint16_t bound_port = 0;
  std::thread loop;
  std::atomic<bool> stop{false};
  bool stopped = false;  // guards double Stop(); main thread only

  // Graceful-drain state machine (DESIGN.md, "Request lifecycle & failure
  // semantics"). `drain_requested` is the cross-thread signal; the loop
  // thread owns the transition into kDraining and sets `drained` once the
  // queue, the in-flight set and (best-effort) the write buffers are empty.
  std::atomic<uint8_t> serve_state{static_cast<uint8_t>(ServeState::kStarting)};
  std::atomic<bool> drain_requested{false};
  std::atomic<bool> drained{false};
  int64_t drain_turns = 0;  // loop thread only

  bool draining() const {
    return serve_state.load(std::memory_order_acquire) ==
           static_cast<uint8_t>(ServeState::kDraining);
  }

  uint64_t next_conn_id = 2;  // 0 = listen socket, 1 = wake eventfd
  std::map<uint64_t, std::unique_ptr<Conn>> conns;
  std::vector<InFlight> in_flight;

  // Stats are written by the loop thread, read from any thread.
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> requests_failed{0};
  std::atomic<uint64_t> appends_ok{0};
  std::atomic<uint64_t> appends_failed{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> slow_reader_drops{0};

  // Joins the loop thread, then closes every socket (idempotent; main
  // thread only). Descriptors are closed only after the join, so the loop
  // never races a close — and clients of a Stop()ed-but-still-alive Server
  // see EOF instead of hanging on a half-dead connection.
  void Shutdown() {
    if (stopped) return;
    stopped = true;
    stop.store(true, std::memory_order_release);
    if (wake_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t r = ::write(wake_fd, &one, sizeof(one));
    }
    if (loop.joinable()) loop.join();
    for (auto& [id, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    listen_fd = wake_fd = epoll_fd = -1;
  }

  ~Impl() { Shutdown(); }

  // --- Socket plumbing (loop thread only) ----------------------------------

  void EpollSet(Conn* conn) {
    epoll_event event{};
    event.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
    event.data.u64 = conn->id;
    EMAF_CHECK(epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn->fd, &event) == 0)
        << "epoll_ctl(MOD): " << std::strerror(errno);
  }

  void CloseConn(uint64_t conn_id) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns.erase(it);
    connections_closed.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_GAUGE_SET("serve.server.active_connections",
                          static_cast<double>(conns.size()));
    // In-flight requests of this connection keep executing; their results
    // are discarded in DrainCompleted when the conn id no longer resolves.
  }

  void SendFrame(Conn* conn, const Frame& frame) {
    conn->out.append(EncodeFrame(frame));
    frames_sent.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_COUNTER_ADD("serve.server.frames_sent_total", 1);
    const uint64_t conn_id = conn->id;
    FlushWrites(conn);  // may close the connection; re-resolve before use
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    conn = it->second.get();
    // A peer that keeps the request direction busy but never reads its
    // socket would grow `out` without limit — the scheduler queue bounds
    // forecast responses, but pong and error replies bypass admission.
    // Such a slow reader is dropped once its backlog exceeds the ceiling.
    if (conn->out.size() - conn->out_offset >
        options.max_conn_buffered_bytes) {
      slow_reader_drops.fetch_add(1, std::memory_order_relaxed);
      EMAF_METRIC_COUNTER_ADD("serve.server.slow_reader_drops_total", 1);
      CloseConn(conn_id);
    }
  }

  void SendError(Conn* conn, uint64_t request_id, const Status& status) {
    Frame frame;
    frame.type = FrameType::kError;
    frame.request_id = request_id;
    frame.payload = EncodeStatusPayload(status);
    SendFrame(conn, frame);
  }

  // Drains as much of conn->out as the socket accepts; arms EPOLLOUT for
  // the rest. Closes the connection on write failure or injected fault.
  void FlushWrites(Conn* conn) {
    if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.server.write/", conn->id))) {
      CloseConn(conn->id);
      return;
    }
    while (conn->out_offset < conn->out.size()) {
      // MSG_NOSIGNAL: writing to a peer that already reset the connection
      // must fail with EPIPE (a normal close, handled below), never raise
      // SIGPIPE and kill the whole server.
      ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                         conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        bytes_written.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.server.bytes_written_total",
                                static_cast<uint64_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      CloseConn(conn->id);  // peer vanished mid-write
      return;
    }
    if (conn->out_offset == conn->out.size()) {
      conn->out.clear();
      conn->out_offset = 0;
      if (conn->closing) {
        CloseConn(conn->id);
        return;
      }
      if (conn->want_write) {
        conn->want_write = false;
        EpollSet(conn);
      }
    } else if (!conn->want_write) {
      conn->want_write = true;
      EpollSet(conn);
    }
  }

  void AcceptAll() {
    while (true) {
      int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure; the listener stays armed
      }
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      EMAF_METRIC_COUNTER_ADD("serve.server.connections_total", 1);
      if (EMAF_FAULT_SHOULD_FAIL("serve.server.accept") ||
          static_cast<int64_t>(conns.size()) >= options.max_connections) {
        ::close(fd);
        connections_closed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (options.send_buffer_bytes > 0) {
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                   sizeof(options.send_buffer_bytes));
      }
      auto conn = std::make_unique<Conn>(options.max_frame_bytes);
      conn->fd = fd;
      conn->id = next_conn_id++;
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.u64 = conn->id;
      EMAF_CHECK(epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &event) == 0)
          << "epoll_ctl(ADD): " << std::strerror(errno);
      conns.emplace(conn->id, std::move(conn));
      EMAF_METRIC_GAUGE_SET("serve.server.active_connections",
                            static_cast<double>(conns.size()));
    }
  }

  void HandleFrame(Conn* conn, Frame frame) {
    frames_received.fetch_add(1, std::memory_order_relaxed);
    EMAF_METRIC_COUNTER_ADD("serve.server.frames_received_total", 1);
    switch (frame.type) {
      case FrameType::kPing: {
        Frame pong;
        pong.type = FrameType::kPong;
        pong.request_id = frame.request_id;
        SendFrame(conn, pong);
        return;
      }
      case FrameType::kHealth: {
        // Answered in every state — a draining server must keep telling
        // its load balancer *why* it refuses work, or probes would read
        // the refusals as a crash.
        HealthInfo info;
        info.state =
            static_cast<ServeState>(serve_state.load(std::memory_order_acquire));
        info.resident_models = static_cast<uint64_t>(
            std::max<int64_t>(0, model_store->stats().resident_models));
        info.known_models =
            static_cast<uint64_t>(model_store->num_known_models());
        info.queue_depth = static_cast<uint64_t>(scheduler->queue_depth());
        info.max_published_version = model_store->max_published_version();
        Frame reply;
        reply.type = FrameType::kHealthReply;
        reply.request_id = frame.request_id;
        reply.payload = EncodeHealthPayload(info);
        SendFrame(conn, reply);
        return;
      }
      case FrameType::kForecastRequest: {
        if (draining()) {
          // New work during drain gets a structured refusal, not a hang:
          // the client's retry policy treats it like any backpressure
          // rejection and goes elsewhere.
          requests_rejected.fetch_add(1, std::memory_order_relaxed);
          EMAF_METRIC_COUNTER_ADD("serve.server.rejected_total", 1);
          SendError(conn, frame.request_id,
                    Status::Unavailable(
                        "draining: server is shutting down and no longer "
                        "admits forecast requests"));
          return;
        }
        Result<tensor::Tensor> window = DecodeTensorPayload(frame.payload);
        if (!window.ok()) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          EMAF_METRIC_COUNTER_ADD("serve.server.protocol_errors_total", 1);
          SendError(conn, frame.request_id, window.status());
          return;  // framing is intact; the connection survives
        }
        Result<RequestTicket> ticket = scheduler->Submit(
            ForecastRequest{frame.tenant_id, std::move(window).value(),
                            frame.has_deadline() ? frame.deadline_ticks : 0});
        if (!ticket.ok()) {
          // The backpressure door: a saturated queue answers a structured
          // kUnavailable immediately instead of hanging or dropping.
          requests_rejected.fetch_add(1, std::memory_order_relaxed);
          EMAF_METRIC_COUNTER_ADD("serve.server.rejected_total", 1);
          SendError(conn, frame.request_id, ticket.status());
          return;
        }
        in_flight.push_back(InFlight{std::move(ticket).value(), conn->id,
                                     frame.request_id,
                                     std::chrono::steady_clock::now()});
        return;
      }
      case FrameType::kAppend: {
        if (draining()) {
          appends_failed.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, frame.request_id,
                    Status::Unavailable(
                        "draining: server is shutting down and no longer "
                        "accepts observation appends"));
          return;
        }
        if (!observation_log.has_value()) {
          appends_failed.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, frame.request_id,
                    Status::FailedPrecondition(
                        "observation appends are disabled: the server was "
                        "started without an observation_log_dir"));
          return;
        }
        Result<tensor::Tensor> row = DecodeTensorPayload(frame.payload);
        if (!row.ok()) {
          protocol_errors.fetch_add(1, std::memory_order_relaxed);
          EMAF_METRIC_COUNTER_ADD("serve.server.protocol_errors_total", 1);
          SendError(conn, frame.request_id, row.status());
          return;
        }
        if (row.value().rank() != 1) {
          appends_failed.fetch_add(1, std::memory_order_relaxed);
          SendError(conn, frame.request_id,
                    Status::InvalidArgument(
                        StrCat("kAppend payload must be one observation row "
                               "[V], got rank ",
                               row.value().rank())));
          return;
        }
        Result<uint64_t> seq = observation_log->Append(
            frame.tenant_id,
            std::span<const double>(row.value().data(),
                                    static_cast<size_t>(row.value().dim(0))));
        if (!seq.ok()) {
          appends_failed.fetch_add(1, std::memory_order_relaxed);
          EMAF_METRIC_COUNTER_ADD("serve.server.appends_failed_total", 1);
          SendError(conn, frame.request_id, seq.status());
          return;
        }
        appends_ok.fetch_add(1, std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.server.appends_total", 1);
        Frame reply;
        reply.type = FrameType::kAppendReply;
        reply.request_id = frame.request_id;
        reply.payload = EncodeAppendReplyPayload(seq.value());
        SendFrame(conn, reply);
        return;
      }
      default: {
        // Clients send requests and pings; anything else means the peer is
        // confused, and with it the stream.
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.server.protocol_errors_total", 1);
        // `closing` is set before the send: SendError's flush may close the
        // connection (write fault, or fully drained), after which `conn` is
        // gone and must not be touched.
        conn->closing = true;
        SendError(conn, frame.request_id,
                  Status::InvalidArgument(
                      StrCat("unexpected frame type ",
                             FrameTypeName(frame.type), " from a client")));
        return;
      }
    }
  }

  void HandleRead(uint64_t conn_id) {
    auto it = conns.find(conn_id);
    if (it == conns.end()) return;
    Conn* conn = it->second.get();
    if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.server.read/", conn->id))) {
      CloseConn(conn_id);
      return;
    }
    char buffer[4096];
    bool peer_closed = false;
    while (true) {
      ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
      if (n > 0) {
        bytes_read.fetch_add(static_cast<uint64_t>(n),
                             std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.server.bytes_read_total",
                                static_cast<uint64_t>(n));
        conn->decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      peer_closed = true;  // ECONNRESET and friends
      break;
    }
    // Dispatch every complete frame buffered so far — all of them before
    // the next Pump(), so one segment of pipelined requests meets the
    // admission queue as one burst.
    while (std::optional<Result<Frame>> next = conn->decoder.Next()) {
      if (!next->ok()) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        EMAF_METRIC_COUNTER_ADD("serve.server.protocol_errors_total", 1);
        // closing first: the flush inside SendError may free `conn`.
        conn->closing = true;
        SendError(conn, /*request_id=*/0, next->status());
        return;
      }
      // A frame may close the connection (unexpected type); stop if so.
      HandleFrame(conn, std::move(next)->value());
      if (conns.find(conn_id) == conns.end()) return;
      if (conn->closing) break;
    }
    if (peer_closed) {
      // Flush what we can, then drop. In-flight work is discarded on
      // completion; the store was never pinned on this path.
      conn->closing = true;
      FlushWrites(conn);
      if (conns.find(conn_id) != conns.end()) CloseConn(conn_id);
    }
  }

  // Encodes every completed ticket into its connection's write buffer (or
  // discards it when the connection is gone).
  void DrainCompleted() {
    size_t kept = 0;
    for (size_t i = 0; i < in_flight.size(); ++i) {
      InFlight& entry = in_flight[i];
      if (!entry.ticket.done()) {
        if (kept != i) in_flight[kept] = std::move(entry);
        ++kept;
        continue;
      }
      const Result<tensor::Tensor>& result = entry.ticket.result();
      auto it = conns.find(entry.conn_id);
      if (it != conns.end()) {
        if (result.ok()) {
          requests_ok.fetch_add(1, std::memory_order_relaxed);
          Frame response;
          response.type = FrameType::kForecastResponse;
          response.request_id = entry.request_id;
          response.payload = EncodeTensorPayload(result.value());
          SendFrame(it->second.get(), response);
        } else {
          requests_failed.fetch_add(1, std::memory_order_relaxed);
          SendError(it->second.get(), entry.request_id, result.status());
        }
        if constexpr (obs::kMetricsEnabled) {
          EMAF_METRIC_HISTOGRAM_OBSERVE(
              "serve.server.request_seconds",
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            entry.start)
                  .count(),
              obs::DefaultSecondsBounds());
        }
      }
    }
    in_flight.resize(kept);
  }

  // Transition into kDraining (loop thread only): stop accepting — the
  // listen socket closes outright, so new connects are refused instead of
  // parking in the kernel backlog forever.
  void EnterDrain() {
    serve_state.store(static_cast<uint8_t>(ServeState::kDraining),
                      std::memory_order_release);
    if (listen_fd >= 0) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    drain_turns = 0;
  }

  // One drain turn after the scheduler flushed: true once shutdown may
  // complete — every admitted request finished and every write buffer
  // drained (or the linger bound expired; a peer that never reads cannot
  // hold the process hostage).
  bool DrainFinished() {
    if (scheduler->queue_depth() > 0 || !in_flight.empty()) return false;
    bool writes_flushed = true;
    for (auto& [id, conn] : conns) {
      if (conn->out.size() > conn->out_offset) {
        FlushWrites(conn.get());  // best-effort, bounded by the linger
      }
    }
    for (auto& [id, conn] : conns) {
      if (conn->out.size() > conn->out_offset) {
        writes_flushed = false;
        break;
      }
    }
    ++drain_turns;
    return writes_flushed || drain_turns > options.drain_linger_turns;
  }

  void Loop() {
    serve_state.store(static_cast<uint8_t>(ServeState::kServing),
                      std::memory_order_release);
    epoll_event events[64];
    while (!stop.load(std::memory_order_acquire)) {
      if (drain_requested.load(std::memory_order_acquire) && !draining()) {
        EnterDrain();
      }
      int n = epoll_wait(epoll_fd, events, 64,
                         static_cast<int>(options.poll_timeout_ms));
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == 0) {
          AcceptAll();
        } else if (id == 1) {
          uint64_t token = 0;
          [[maybe_unused]] ssize_t r =
              ::read(wake_fd, &token, sizeof(token));
        } else {
          if (events[i].events & (EPOLLHUP | EPOLLERR)) {
            // Let HandleRead consume whatever arrived before the hangup.
            HandleRead(id);
            CloseConn(id);
            continue;
          }
          if (events[i].events & EPOLLIN) HandleRead(id);
          auto it = conns.find(id);
          if (it != conns.end() && (events[i].events & EPOLLOUT)) {
            FlushWrites(it->second.get());
          }
        }
      }
      // One virtual tick per loop turn: batches age by event-loop turns,
      // never by wall clock, so batching is reproducible from arrivals.
      clock.Advance(1);
      if (draining()) {
        // Nothing new will arrive: age no longer matters, run everything
        // admitted so every outstanding ticket reaches a terminal state.
        scheduler->Flush();
        DrainCompleted();
        if (DrainFinished()) {
          std::vector<uint64_t> ids;
          ids.reserve(conns.size());
          for (auto& [id, conn] : conns) ids.push_back(id);
          for (uint64_t id : ids) CloseConn(id);
          drained.store(true, std::memory_order_release);
          return;  // drain complete; the loop parks until join
        }
        continue;
      }
      scheduler->Pump();
      DrainCompleted();
    }
    // Shutdown: run whatever was admitted so no ticket is left dangling,
    // then discard the results (their clients are being dropped anyway).
    scheduler->Flush();
    DrainCompleted();
  }
};

// --- Server ----------------------------------------------------------------

Server::Server() : impl_(std::make_unique<Impl>()) {}
Server::Server(Server&&) noexcept = default;

Server& Server::operator=(Server&& other) noexcept {
  if (this != &other) {
    if (impl_ != nullptr) impl_->Shutdown();
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Server::~Server() {
  if (impl_ != nullptr) impl_->Shutdown();
}

Result<Server> Server::Start(const std::string& snapshot_dir,
                             const ServerOptions& options) {
  Result<ModelStore> store = ModelStore::Open(snapshot_dir, options.store);
  if (!store.ok()) return store.status();

  Server server;
  Impl& impl = *server.impl_;
  impl.options = options;
  impl.model_store.emplace(std::move(store).value());
  impl.scheduler.emplace(&*impl.model_store, &impl.arena, options.scheduler,
                         &impl.clock);
  if (!options.observation_log_dir.empty()) {
    Result<online::ObservationLog> log =
        online::ObservationLog::Open(options.observation_log_dir);
    if (!log.ok()) return log.status();
    impl.observation_log.emplace(std::move(log).value());
  }

  impl.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (impl.listen_fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(impl.listen_fd, 128) != 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return Errno("getsockname");
  }
  impl.bound_port = ntohs(addr.sin_port);

  impl.wake_fd = ::eventfd(0, EFD_NONBLOCK);
  if (impl.wake_fd < 0) return Errno("eventfd");
  impl.epoll_fd = ::epoll_create1(0);
  if (impl.epoll_fd < 0) return Errno("epoll_create1");
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = 0;
  if (epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, impl.listen_fd, &event) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  event.data.u64 = 1;
  if (epoll_ctl(impl.epoll_fd, EPOLL_CTL_ADD, impl.wake_fd, &event) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  impl.loop = std::thread([impl_ptr = server.impl_.get()] {
    impl_ptr->Loop();
  });
  EMAF_LOG(INFO) << "serve::Server listening on 127.0.0.1:" << impl.bound_port
                 << " (" << impl.model_store->num_known_models()
                 << " tenants known)";
  return server;
}

uint16_t Server::port() const { return impl_->bound_port; }

void Server::Stop() { impl_->Shutdown(); }

void Server::BeginDrain() {
  Impl& impl = *impl_;
  impl.drain_requested.store(true, std::memory_order_release);
  if (impl.wake_fd >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(impl.wake_fd, &one, sizeof(one));
  }
}

bool Server::WaitDrained(int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!impl_->drained.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ServeState Server::state() const {
  return static_cast<ServeState>(
      impl_->serve_state.load(std::memory_order_acquire));
}

Server::Stats Server::stats() const {
  const Impl& impl = *impl_;
  Stats stats;
  stats.connections_accepted =
      impl.connections_accepted.load(std::memory_order_relaxed);
  stats.connections_closed =
      impl.connections_closed.load(std::memory_order_relaxed);
  stats.frames_received = impl.frames_received.load(std::memory_order_relaxed);
  stats.frames_sent = impl.frames_sent.load(std::memory_order_relaxed);
  stats.bytes_read = impl.bytes_read.load(std::memory_order_relaxed);
  stats.bytes_written = impl.bytes_written.load(std::memory_order_relaxed);
  stats.requests_ok = impl.requests_ok.load(std::memory_order_relaxed);
  stats.requests_rejected =
      impl.requests_rejected.load(std::memory_order_relaxed);
  stats.requests_failed =
      impl.requests_failed.load(std::memory_order_relaxed);
  stats.appends_ok = impl.appends_ok.load(std::memory_order_relaxed);
  stats.appends_failed = impl.appends_failed.load(std::memory_order_relaxed);
  stats.protocol_errors =
      impl.protocol_errors.load(std::memory_order_relaxed);
  stats.slow_reader_drops =
      impl.slow_reader_drops.load(std::memory_order_relaxed);
  stats.active_connections =
      impl.connections_accepted.load(std::memory_order_relaxed) >=
              impl.connections_closed.load(std::memory_order_relaxed)
          ? static_cast<int64_t>(
                impl.connections_accepted.load(std::memory_order_relaxed) -
                impl.connections_closed.load(std::memory_order_relaxed))
          : 0;
  return stats;
}

ModelStore& Server::store() { return *impl_->model_store; }

RequestScheduler::Stats Server::scheduler_stats() const {
  return impl_->scheduler->stats();
}

online::ObservationLog* Server::observation_log() {
  return impl_->observation_log.has_value() ? &*impl_->observation_log
                                            : nullptr;
}

}  // namespace emaf::serve
