// Wire protocol for the network serving front-end (DESIGN.md, "Network
// serving"): a small length-prefixed binary framing, encoded and decoded
// by pure functions with no socket dependency, so the codec is unit- and
// fuzz-testable in complete isolation from the event loop.
//
// Frame layout, version 2 (all integers little-endian):
//
//   offset size  field
//   0      4     magic            'E' 'M' 'A' 'F'
//   4      1     version          kProtocolVersion (currently 2)
//   5      1     type             FrameType
//   6      2     tenant id length (u16)
//   8      4     payload length   (u32)
//   12     8     request id       (u64, echoed verbatim in every reply)
//   20     1     flags            (bit 0 = HAS_DEADLINE; others reserved,
//                                  must be zero)
//   21     8     deadline         (u64 virtual-clock ticks, relative to
//                                  server-side arrival; meaningful only
//                                  with HAS_DEADLINE, else must be zero)
//   29     ...   tenant id bytes
//   ...    ...   payload bytes
//   last   4     CRC-32 (IEEE, same polynomial as the checkpoint journal)
//                over every preceding byte of the frame
//
// v2 appends the flags byte and the deadline to the v1 header, so every
// v1 field keeps its offset. The deadline travels in *virtual-clock
// ticks* (see serve/clock.h), not milliseconds: the server's batching
// clock is the only time base deadline expiry is judged against, which
// keeps shed/execute decisions reproducible under a test's ManualClock.
//
// Decode validates each field as soon as its bytes are available, in
// wire order — magic, version, type, lengths against the frame-size
// ceiling, flags, deadline consistency, completeness, CRC — and every
// rejection is a Status whose message names the offending field, so a
// conformance suite can pin the exact failure for each corruption.
// Version negotiation is deliberately minimal: a server rejects any
// version other than its own with a message naming both versions (a v1
// frame dies on its version byte, before the v2 decoder could misread
// its shorter header, and before any CRC check), and the client surfaces
// that message; there is no downgrade path.
//
// Payload conventions per frame type:
//   kForecastRequest   tensor payload — the window [B, L, V]
//   kForecastResponse  tensor payload — the forecast [B, V]; doubles travel
//                      as raw IEEE-754 bytes, so a served forecast is
//                      bitwise identical to the in-process tensor
//   kError             status payload — u32 StatusCode + message bytes
//   kPing / kPong      empty
//   kHealth            empty (a readiness probe)
//   kHealthReply       health payload — u8 ServeState + u64 resident
//                      models + u64 known models + u64 queue depth +
//                      u64 max published snapshot version (0 until a
//                      hot-swap Publish lands; lets a client detect a
//                      completed swap without side channels)
//   kAppend            tensor payload — one observation row [V] appended
//                      to the tenant's streaming log (DESIGN.md, "Online
//                      ingestion & hot-swap"); same header, same framing,
//                      so the v2 protocol grows the streaming-ingestion
//                      direction without a version bump
//   kAppendReply       append-reply payload — u64 sequence number the log
//                      assigned to the appended observation
//
// FrameDecoder is the incremental flavor for byte streams: feed it
// whatever read() returned (1 byte at a time is fine) and it yields
// complete frames, or a terminal error on a corrupt stream.

#ifndef EMAF_SERVE_PROTOCOL_H_
#define EMAF_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tensor/tensor.h"

namespace emaf::serve {

inline constexpr char kFrameMagic[4] = {'E', 'M', 'A', 'F'};
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 29;
inline constexpr size_t kFrameTrailerBytes = 4;  // CRC-32

// Header flags byte (offset 20). Unknown bits are rejected by name.
inline constexpr uint8_t kFrameFlagHasDeadline = 0x01;
inline constexpr uint8_t kFrameFlagMask = kFrameFlagHasDeadline;
// Ceiling on one whole frame (header + tenant + payload + CRC). A peer
// announcing a larger frame is rejected from the header alone, before any
// payload bytes are buffered.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

enum class FrameType : uint8_t {
  kForecastRequest = 1,
  kForecastResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kHealth = 6,
  kHealthReply = 7,
  kAppend = 8,
  kAppendReply = 9,
};

// "FORECAST_REQUEST", ...; "UNKNOWN" for values outside the enum.
const char* FrameTypeName(FrameType type);
bool IsKnownFrameType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  // kFrameFlag* bits. Encode checks consistency: deadline_ticks != 0
  // requires kFrameFlagHasDeadline (use SetDeadline to keep them in sync).
  uint8_t flags = 0;
  // Relative deadline in virtual-clock ticks; meaningful only when
  // kFrameFlagHasDeadline is set (0 is treated as no deadline).
  uint64_t deadline_ticks = 0;
  std::string tenant_id;  // empty for ping/pong/error/health
  std::string payload;

  void SetDeadline(uint64_t ticks) {
    flags = static_cast<uint8_t>(flags | kFrameFlagHasDeadline);
    deadline_ticks = ticks;
  }
  bool has_deadline() const { return (flags & kFrameFlagHasDeadline) != 0; }

  bool operator==(const Frame& other) const = default;
};

// Total encoded size of `frame` on the wire.
size_t EncodedFrameBytes(const Frame& frame);

// Serializes one frame. Checked failure if the tenant id exceeds the u16
// length field or the whole frame exceeds kDefaultMaxFrameBytes — both are
// caller bugs, not runtime conditions.
std::string EncodeFrame(const Frame& frame);

// Decodes exactly one frame occupying all of `bytes`. Rejections (all
// messages name the offending field):
//   kInvalidArgument — truncated header/frame, bad magic, unsupported
//                      version, unknown frame type, tenant/payload length
//                      exceeding `max_frame_bytes`, reserved flag bits,
//                      a deadline without its flag, trailing bytes;
//   kDataLoss        — CRC mismatch (frame bytes corrupted in flight).
Result<Frame> DecodeFrame(std::string_view bytes,
                          size_t max_frame_bytes = kDefaultMaxFrameBytes);

// --- Typed payloads --------------------------------------------------------

// u32 rank | u32 dim[rank] | raw little-endian IEEE-754 doubles. The raw
// bytes make the tensor round-trip bitwise exact.
std::string EncodeTensorPayload(const tensor::Tensor& tensor);
// kInvalidArgument when the payload is malformed (rank > 8, dim overflow,
// byte count not matching the announced shape).
Result<tensor::Tensor> DecodeTensorPayload(std::string_view payload);

// u32 StatusCode | message bytes. Encoding an OK status is a checked
// failure: error frames carry errors.
std::string EncodeStatusPayload(const Status& status);
// Fills `decoded` with the carried (error) status; the return value is the
// decode outcome itself — kInvalidArgument when the payload is malformed.
// (Not Result<Status>: Result's value/error constructors would collide.)
Status DecodeStatusPayload(std::string_view payload, Status* decoded);

// Lifecycle state a server reports in kHealthReply frames. A load
// balancer (or the bench) gates traffic on kServing; kDraining means
// finish what you have in flight and go elsewhere.
enum class ServeState : uint8_t {
  kStarting = 0,
  kServing = 1,
  kDraining = 2,
};

// "STARTING", "SERVING", "DRAINING"; "UNKNOWN" outside the enum.
const char* ServeStateName(ServeState state);

struct HealthInfo {
  ServeState state = ServeState::kStarting;
  uint64_t resident_models = 0;  // pinned or idle in the ModelStore
  uint64_t known_models = 0;     // registered snapshot ids
  uint64_t queue_depth = 0;      // scheduler admission queue
  // Highest snapshot version the store has hot-swapped in via Publish
  // (0 = nothing published since Open). Monotonic, so a client polling
  // health can tell exactly when a fine-tuned snapshot went live.
  uint64_t max_published_version = 0;

  bool operator==(const HealthInfo& other) const = default;
};

// u8 ServeState | u64 resident | u64 known | u64 queue depth |
// u64 max published version.
std::string EncodeHealthPayload(const HealthInfo& info);
// kInvalidArgument when truncated, oversized, or carrying an unknown
// state value; messages name the offending field.
Result<HealthInfo> DecodeHealthPayload(std::string_view payload);

// u64 sequence number assigned by the observation log — the kAppendReply
// payload.
std::string EncodeAppendReplyPayload(uint64_t sequence);
// kInvalidArgument when the payload is not exactly 8 bytes.
Result<uint64_t> DecodeAppendReplyPayload(std::string_view payload);

// --- Incremental decoding --------------------------------------------------

// Reassembles frames from an arbitrary chunking of the byte stream.
// Malformed input is detected as early as its field arrives (bad magic
// after 4 bytes, oversized length after the header) and is terminal: the
// stream has lost framing, so the caller should surface the error and
// close the connection. Buffering is bounded by one max-size frame.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes);

  void Feed(std::string_view bytes);

  // One decoded frame, nullopt when more bytes are needed, or the terminal
  // stream error (returned again on every later call).
  std::optional<Result<Frame>> Next();

  size_t buffered_bytes() const { return buffer_.size() - offset_; }
  bool failed() const { return failed_; }

 private:
  // Validates what is decodable from the buffered prefix without waiting
  // for the full frame. Sets `total_` once the header is complete.
  Status Precheck();

  size_t max_frame_bytes_;
  std::string buffer_;
  size_t offset_ = 0;  // consumed prefix, compacted periodically
  size_t total_ = 0;   // full size of the in-progress frame (0 = unknown)
  bool failed_ = false;
  Status error_;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_PROTOCOL_H_
