// In-repo client for the serve::Server wire protocol, shared by the
// loopback tests, the bench_serving load generator, and the quickstart
// example — one implementation of framing, request-id matching and error
// decoding instead of three.
//
// The client is a plain blocking TCP socket. Two usage styles:
//
//   - Request/response: Forecast() / Ping() send one frame and block until
//     the matching reply (by request id) arrives. A kError reply decodes
//     into the server's Status — so a rejected request surfaces exactly
//     the structured kUnavailable (or kNotFound, ...) the server sent.
//   - Pipelined: SendForecastRequest() queues any number of requests
//     without reading; ReadFrame() then yields replies in arrival order,
//     to be matched by request id. One thread may send while another
//     reads (the two directions share no state), which is how the
//     open-loop bench issues at a target rate regardless of completions.
//
// Retry: ForecastWithRetry() wraps Forecast() in the RetryPolicy from
// ClientOptions — retrying only kUnavailable (backpressure, a draining
// server, a dropped connection), reconnecting automatically when the
// stream itself broke (EPIPE/ECONNRESET, server close, corrupt framing),
// and backing off exponentially with jitter between attempts. The jitter
// stream is seeded and the sleeper injectable, so tests observe a
// bitwise-reproducible wait sequence.
//
// Test hooks: `write_chunk_bytes` splits every send into chunks of that
// many bytes (1 = the pathological byte-at-a-time client the server's
// reassembly must survive), and SendBytes() puts arbitrary bytes on the
// wire for conformance/fuzz cases.

#ifndef EMAF_SERVE_CLIENT_H_
#define EMAF_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/retry.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // 0 = each frame in one write(); N > 0 = split sends into N-byte chunks
  // (stress for the server's partial-read reassembly).
  size_t write_chunk_bytes = 0;
  // Receive timeout; a read that sees no byte for this long fails with
  // kDeadlineExceeded instead of hanging a test forever — a terminal
  // outcome, never retried (only genuine connection loss is retryable).
  // <= 0 = no timeout.
  int64_t recv_timeout_ms = 30000;
  // SO_RCVBUF for the socket (set before connect); 0 keeps the kernel
  // default and its autotuning. Tiny values make a deliberately-not-reading
  // client exert real backpressure, which the slow-reader tests rely on.
  int recv_buffer_bytes = 0;
  // Policy for ForecastWithRetry. The default (max_attempts = 1) makes
  // it behave exactly like Forecast.
  RetryPolicy retry;
  // Called with each backoff wait in ms; nullptr = real sleep. Tests
  // inject a recorder to observe the deterministic wait sequence without
  // slowing the suite down.
  std::function<void(int64_t)> backoff_sleeper;
};

class Client {
 public:
  static Result<Client> Connect(uint16_t port,
                                const ClientOptions& options = {});

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  ~Client();  // closes the socket

  bool connected() const { return fd_ >= 0; }
  void Close();
  // True once the byte stream is untrustworthy (connection dropped,
  // corrupt framing): further sends/reads on this connection cannot
  // succeed, only Reconnect() can.
  bool stream_broken() const { return stream_broken_; }

  // Drops the current connection (if any) and dials the same host:port
  // again with a fresh decoder. Request ids keep counting up, so replies
  // from before the reconnect can never be confused with new ones.
  Status Reconnect();

  // Blocking request/response round trips. `deadline_ticks` travels in
  // the frame header (0 = none): the server sheds the request with
  // kDeadlineExceeded once that many virtual-clock ticks pass without a
  // forward running.
  Result<tensor::Tensor> Forecast(const std::string& tenant_id,
                                  const tensor::Tensor& window,
                                  uint64_t deadline_ticks = 0);
  Status Ping();
  // Readiness probe; answered even by a draining server.
  Result<HealthInfo> Health();
  // Streams one observation row into the tenant's server-side journal
  // (kAppend); returns the sequence number the log assigned. Surfaces the
  // server's refusal verbatim (kFailedPrecondition when ingestion is
  // disabled, kUnavailable when draining).
  Result<uint64_t> Append(const std::string& tenant_id,
                          const std::vector<double>& values);

  // As Forecast, but retried per ClientOptions::retry: only kUnavailable
  // is retried (never kDeadlineExceeded or kInvalidArgument), with
  // deterministic exponential backoff + jitter between attempts and an
  // automatic Reconnect when the connection itself broke. Returns the
  // last attempt's error when the budget runs out.
  Result<tensor::Tensor> ForecastWithRetry(const std::string& tenant_id,
                                           const tensor::Tensor& window,
                                           uint64_t deadline_ticks = 0);

  // Pipelined sending; returns the request id to match the reply with.
  Result<uint64_t> SendForecastRequest(const std::string& tenant_id,
                                       const tensor::Tensor& window,
                                       uint64_t deadline_ticks = 0);

  // Raw frame / byte access for tests and the load generator.
  Status SendFrame(const Frame& frame);
  Status SendBytes(std::string_view bytes);
  // Next frame from the server, in arrival order. kUnavailable when the
  // server closed the connection; kDeadlineExceeded when the receive
  // timeout expired; kInvalidArgument / kDataLoss when the reply stream
  // is malformed.
  Result<Frame> ReadFrame();

 private:
  Client(int fd, uint16_t port, const ClientOptions& options);

  int fd_ = -1;
  uint16_t port_ = 0;  // remembered for Reconnect
  ClientOptions options_;
  FrameDecoder decoder_;
  uint64_t next_request_id_ = 1;
  bool stream_broken_ = false;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_CLIENT_H_
