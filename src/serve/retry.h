// Client-side retry policy: which failures are worth a second attempt,
// and how long to wait between attempts.
//
// The retryable set is deliberately tiny — kUnavailable only. That code
// covers exactly the transient conditions (admission-queue backpressure,
// a draining server, a dropped connection) where a later attempt can
// genuinely succeed. kDeadlineExceeded is never retried: by the time a
// retry could answer, the deadline has long passed and the answer is
// stale. kInvalidArgument (and every other code) is never retried: the
// request itself is wrong and will be wrong again.
//
// Backoff is exponential with jitter, computed from an explicit Rng so a
// test seeding the same policy observes the exact same wait sequence —
// bitwise reproducible, like every other scheduling decision in the
// serving stack (DESIGN.md, "Request lifecycle & failure semantics").

#ifndef EMAF_SERVE_RETRY_H_
#define EMAF_SERVE_RETRY_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"

namespace emaf::serve {

struct RetryPolicy {
  // Total attempts, including the first; 1 = no retry. Clamped >= 1.
  int64_t max_attempts = 1;
  // Backoff before retry k (1-based) grows as base << (k-1), capped.
  int64_t base_backoff_ms = 10;
  int64_t max_backoff_ms = 1000;
  // Seeds the jitter stream; the same seed reproduces the same waits.
  uint64_t jitter_seed = 0x45'4d'41'46;  // "EMAF"
};

// True only for kUnavailable (see the header comment for why).
bool IsRetryableStatus(StatusCode code);
inline bool IsRetryableStatus(const Status& status) {
  return IsRetryableStatus(status.code());
}

// Wait before retry attempt `attempt` (1-based: the wait after the
// attempt-1 failure). Exponential growth clamped to max_backoff_ms, then
// jittered to [half, full] of the clamped value — desynchronizing a
// thundering herd without ever collapsing the wait to zero. Deterministic
// in (policy, attempt, rng state).
int64_t BackoffWithJitterMs(const RetryPolicy& policy, int64_t attempt,
                            Rng* rng);

}  // namespace emaf::serve

#endif  // EMAF_SERVE_RETRY_H_
