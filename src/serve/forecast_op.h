// The one forecast operation every serving path executes, factored out so
// the direct engine path and the scheduler's micro-batch path share a
// single definition of the request contract:
//
//   - metrics: serve.requests_total is bumped and serve.request_seconds
//     observed for every executed request, whichever path ran it;
//   - fault site serve.request/<id> fails exactly this request;
//   - the forward runs inside an ArenaScope on the caller-provided pool
//     and through core::Predict (tape-free, write-free on eval models);
//   - when a plan::PlanCache is supplied, the request executes through a
//     compiled plan instead of the module graph — bitwise-identical bytes
//     (the plan compiler verifies equality before serving; see DESIGN.md
//     "Compiled plans") — with automatic module fallback when the plan
//     cannot compile or fault site plan.execute/<id> fires.
//
// Callers hand in an already-resident model (a pinned ModelStore handle or
// an eagerly loaded engine model); this layer never loads or evicts.

#ifndef EMAF_SERVE_FORECAST_OP_H_
#define EMAF_SERVE_FORECAST_OP_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "models/forecaster.h"
#include "plan/plan_cache.h"
#include "serve/clock.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct ForecastRequest {
  std::string individual_id;
  tensor::Tensor window;  // [B, L, V]
  // Relative deadline in virtual-clock ticks from the request's arrival
  // at the scheduler; 0 = no deadline. Expired requests are shed with
  // kDeadlineExceeded before any forward pass runs.
  uint64_t deadline_ticks = 0;
};

// Absolute expiry against a virtual clock, as threaded from the scheduler
// into ExecuteForecast. Default-constructed = no deadline (never expires).
struct Deadline {
  const VirtualClock* clock = nullptr;
  uint64_t expiry_tick = ~uint64_t{0};

  bool expired() const {
    return clock != nullptr && clock->Ticks() > expiry_tick;
  }
};

// One forecast: window [B, L, V] -> [B, V]. `model` must be non-null and
// in eval mode; `arena` may be null to run on the plain heap; `plans`
// null runs the module path unconditionally (plans disabled). The
// deadline is re-checked at entry — before the plan/module branch — so a
// request that expired between batch-close and slot start returns
// kDeadlineExceeded without burning a forward pass.
Result<tensor::Tensor> ExecuteForecast(models::Forecaster* model,
                                       const std::string& individual_id,
                                       const tensor::Tensor& window,
                                       tensor::InferenceArena* arena,
                                       plan::PlanCache* plans = nullptr,
                                       const Deadline& deadline = {});

}  // namespace emaf::serve

#endif  // EMAF_SERVE_FORECAST_OP_H_
