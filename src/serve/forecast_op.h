// The one forecast operation every serving path executes, factored out so
// the direct engine path and the scheduler's micro-batch path share a
// single definition of the request contract:
//
//   - metrics: serve.requests_total is bumped and serve.request_seconds
//     observed for every executed request, whichever path ran it;
//   - fault site serve.request/<id> fails exactly this request;
//   - the forward runs inside an ArenaScope on the caller-provided pool
//     and through core::Predict (tape-free, write-free on eval models).
//
// Callers hand in an already-resident model (a pinned ModelStore handle or
// an eagerly loaded engine model); this layer never loads or evicts.

#ifndef EMAF_SERVE_FORECAST_OP_H_
#define EMAF_SERVE_FORECAST_OP_H_

#include <string>

#include "common/status.h"
#include "models/forecaster.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct ForecastRequest {
  std::string individual_id;
  tensor::Tensor window;  // [B, L, V]
};

// One forecast: window [B, L, V] -> [B, V]. `model` must be non-null and
// in eval mode; `arena` may be null to run on the plain heap.
Result<tensor::Tensor> ExecuteForecast(models::Forecaster* model,
                                       const std::string& individual_id,
                                       const tensor::Tensor& window,
                                       tensor::InferenceArena* arena);

}  // namespace emaf::serve

#endif  // EMAF_SERVE_FORECAST_OP_H_
