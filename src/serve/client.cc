#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace emaf::serve {

Client::Client(int fd, const ClientOptions& options)
    : fd_(fd), options_(options), decoder_(options.max_frame_bytes) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      options_(std::move(other.options_)),
      decoder_(std::move(other.decoder_)),
      next_request_id_(other.next_request_id_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    options_ = std::move(other.options_);
    decoder_ = std::move(other.decoder_);
    next_request_id_ = other.next_request_id_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(uint16_t port, const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_buffer_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.recv_buffer_bytes,
               sizeof(options.recv_buffer_bytes));
  }
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad host: ", options.host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(StrCat("connect to ", options.host,
                                               ":", port, ": ",
                                               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return Client(fd, options);
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t chunk = bytes.size() - offset;
    if (options_.write_chunk_bytes > 0) {
      chunk = std::min(chunk, options_.write_chunk_bytes);
    }
    // MSG_NOSIGNAL: a server that closed this stream (protocol error, slow
    // reader) must surface as a Status, not as a SIGPIPE killing the
    // process. EPIPE/ECONNRESET are that normal close.
    ssize_t n = ::send(fd_, bytes.data() + offset, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("server closed the connection");
      }
      return Status::Unavailable(StrCat("write: ", std::strerror(errno)));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::SendFrame(const Frame& frame) {
  return SendBytes(EncodeFrame(frame));
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  while (true) {
    if (std::optional<Result<Frame>> next = decoder_.Next()) {
      return std::move(*next);
    }
    char buffer[4096];
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable(
          StrCat("no reply within ", options_.recv_timeout_ms, " ms"));
    }
    return Status::Unavailable(StrCat("read: ", std::strerror(errno)));
  }
}

Result<uint64_t> Client::SendForecastRequest(const std::string& tenant_id,
                                             const tensor::Tensor& window) {
  Frame frame;
  frame.type = FrameType::kForecastRequest;
  frame.request_id = next_request_id_++;
  frame.tenant_id = tenant_id;
  frame.payload = EncodeTensorPayload(window);
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  return frame.request_id;
}

Result<tensor::Tensor> Client::Forecast(const std::string& tenant_id,
                                        const tensor::Tensor& window) {
  Result<uint64_t> id = SendForecastRequest(tenant_id, window);
  if (!id.ok()) return id.status();
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != id.value()) continue;  // stale reply
    if (reply.value().type == FrameType::kForecastResponse) {
      return DecodeTensorPayload(reply.value().payload);
    }
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      if (!parse.ok()) return parse;
      return carried;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

Status Client::Ping() {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = next_request_id_++;
  EMAF_RETURN_IF_ERROR(SendFrame(ping));
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != ping.request_id) continue;
    if (reply.value().type == FrameType::kPong) return Status::Ok();
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      return parse.ok() ? carried : parse;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

}  // namespace emaf::serve
