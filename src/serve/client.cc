#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/string_util.h"

namespace emaf::serve {

Client::Client(int fd, uint16_t port, const ClientOptions& options)
    : fd_(fd), port_(port), options_(options),
      decoder_(options.max_frame_bytes) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      options_(std::move(other.options_)),
      decoder_(std::move(other.decoder_)),
      next_request_id_(other.next_request_id_),
      stream_broken_(other.stream_broken_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    options_ = std::move(other.options_);
    decoder_ = std::move(other.decoder_);
    next_request_id_ = other.next_request_id_;
    stream_broken_ = other.stream_broken_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(uint16_t port, const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_buffer_bytes > 0) {
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.recv_buffer_bytes,
               sizeof(options.recv_buffer_bytes));
  }
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("bad host: ", options.host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(StrCat("connect to ", options.host,
                                               ":", port, ": ",
                                               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return Client(fd, port, options);
}

Status Client::Reconnect() {
  Close();
  Result<Client> fresh = Connect(port_, options_);
  if (!fresh.ok()) return fresh.status();
  // Adopt the new socket and decoder but keep counting request ids from
  // where this client left off — replies from a previous connection can
  // then never alias a new request.
  fd_ = fresh.value().fd_;
  fresh.value().fd_ = -1;
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  stream_broken_ = false;
  return Status::Ok();
}

Status Client::SendBytes(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t chunk = bytes.size() - offset;
    if (options_.write_chunk_bytes > 0) {
      chunk = std::min(chunk, options_.write_chunk_bytes);
    }
    // MSG_NOSIGNAL: a server that closed this stream (protocol error, slow
    // reader) must surface as a Status, not as a SIGPIPE killing the
    // process. EPIPE/ECONNRESET are that normal close.
    ssize_t n = ::send(fd_, bytes.data() + offset, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      stream_broken_ = true;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("server closed the connection");
      }
      return Status::Unavailable(StrCat("write: ", std::strerror(errno)));
    }
    offset += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Client::SendFrame(const Frame& frame) {
  return SendBytes(EncodeFrame(frame));
}

Result<Frame> Client::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  while (true) {
    if (std::optional<Result<Frame>> next = decoder_.Next()) {
      // A terminal decode failure means framing is lost: the connection
      // can only be torn down, so mark the stream broken for retry logic.
      if (decoder_.failed()) stream_broken_ = true;
      return std::move(*next);
    }
    char buffer[4096];
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      decoder_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      stream_broken_ = true;
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The caller's wait budget ran out, not the connection: the stream
      // is intact (a late reply may still arrive), so this is a terminal
      // per-request outcome, deliberately not retryable.
      return Status::DeadlineExceeded(
          StrCat("no reply within ", options_.recv_timeout_ms, " ms"));
    }
    stream_broken_ = true;
    return Status::Unavailable(StrCat("read: ", std::strerror(errno)));
  }
}

Result<uint64_t> Client::SendForecastRequest(const std::string& tenant_id,
                                             const tensor::Tensor& window,
                                             uint64_t deadline_ticks) {
  Frame frame;
  frame.type = FrameType::kForecastRequest;
  frame.request_id = next_request_id_++;
  if (deadline_ticks > 0) frame.SetDeadline(deadline_ticks);
  frame.tenant_id = tenant_id;
  frame.payload = EncodeTensorPayload(window);
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  return frame.request_id;
}

Result<tensor::Tensor> Client::Forecast(const std::string& tenant_id,
                                        const tensor::Tensor& window,
                                        uint64_t deadline_ticks) {
  Result<uint64_t> id = SendForecastRequest(tenant_id, window, deadline_ticks);
  if (!id.ok()) return id.status();
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != id.value()) continue;  // stale reply
    if (reply.value().type == FrameType::kForecastResponse) {
      return DecodeTensorPayload(reply.value().payload);
    }
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      if (!parse.ok()) return parse;
      return carried;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

Status Client::Ping() {
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = next_request_id_++;
  EMAF_RETURN_IF_ERROR(SendFrame(ping));
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != ping.request_id) continue;
    if (reply.value().type == FrameType::kPong) return Status::Ok();
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      return parse.ok() ? carried : parse;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

Result<HealthInfo> Client::Health() {
  Frame probe;
  probe.type = FrameType::kHealth;
  probe.request_id = next_request_id_++;
  Status sent = SendFrame(probe);
  if (!sent.ok()) return sent;
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != probe.request_id) continue;
    if (reply.value().type == FrameType::kHealthReply) {
      return DecodeHealthPayload(reply.value().payload);
    }
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      if (!parse.ok()) return parse;
      return carried;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

Result<uint64_t> Client::Append(const std::string& tenant_id,
                                const std::vector<double>& values) {
  tensor::Tensor row =
      tensor::Tensor::Zeros(tensor::Shape{static_cast<int64_t>(values.size())});
  std::copy(values.begin(), values.end(), row.data());
  Frame frame;
  frame.type = FrameType::kAppend;
  frame.request_id = next_request_id_++;
  frame.tenant_id = tenant_id;
  frame.payload = EncodeTensorPayload(row);
  Status sent = SendFrame(frame);
  if (!sent.ok()) return sent;
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) return reply.status();
    if (reply.value().request_id != frame.request_id) continue;
    if (reply.value().type == FrameType::kAppendReply) {
      return DecodeAppendReplyPayload(reply.value().payload);
    }
    if (reply.value().type == FrameType::kError) {
      Status carried = Status::Ok();
      Status parse = DecodeStatusPayload(reply.value().payload, &carried);
      if (!parse.ok()) return parse;
      return carried;
    }
    return Status::Internal(StrCat("unexpected reply frame type ",
                                   FrameTypeName(reply.value().type)));
  }
}

Result<tensor::Tensor> Client::ForecastWithRetry(const std::string& tenant_id,
                                                 const tensor::Tensor& window,
                                                 uint64_t deadline_ticks) {
  const RetryPolicy& policy = options_.retry;
  const int64_t attempts = std::max<int64_t>(1, policy.max_attempts);
  Rng jitter(policy.jitter_seed);
  Status last = Status::Ok();
  for (int64_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      const int64_t wait_ms =
          BackoffWithJitterMs(policy, attempt - 1, &jitter);
      if (options_.backoff_sleeper) {
        options_.backoff_sleeper(wait_ms);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
      }
    }
    if (!connected() || stream_broken_) {
      Status redial = Reconnect();
      if (!redial.ok()) {
        // Connect failures are kUnavailable (transient) or config errors
        // (terminal); the shared retryability test handles both.
        last = redial;
        if (!IsRetryableStatus(last)) return last;
        continue;
      }
    }
    Result<tensor::Tensor> out = Forecast(tenant_id, window, deadline_ticks);
    if (out.ok()) return out;
    last = out.status();
    if (!IsRetryableStatus(last)) return last;
  }
  return last;
}

}  // namespace emaf::serve
