#include "serve/inference_engine.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "models/registry.h"

namespace emaf::serve {

namespace {

// hits / (hits + misses), 0 before the first request. Only consumed by
// the metrics gauge, so unused when the build compiles metrics out.
[[maybe_unused]] double HitRate(const tensor::InferenceArena::Stats& stats) {
  uint64_t total = stats.hits + stats.misses;
  if (total == 0) return 0.0;
  return static_cast<double>(stats.hits) / static_cast<double>(total);
}

}  // namespace

Result<InferenceEngine> InferenceEngine::Load(const std::string& snapshot_dir,
                                              const EngineOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(snapshot_dir, ec) || ec) {
    return Status::NotFound(
        StrCat("snapshot directory not found: ", snapshot_dir));
  }
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(snapshot_dir, ec)) {
    if (entry.path().extension() == options.extension) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::Internal(
        StrCat("cannot list snapshot directory ", snapshot_dir, ": ",
               ec.message()));
  }
  // Directory iteration order is unspecified; sort for determinism.
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    return Status::NotFound(StrCat("no *", options.extension,
                                   " snapshots in ", snapshot_dir));
  }

  InferenceEngine engine;
  for (const fs::path& path : files) {
    std::string filename = path.filename().string();
    if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.load/", filename))) {
      return Status::Unavailable(
          StrCat("injected fault: serve.load/", filename));
    }
    Rng rng(options.seed);
    Result<std::unique_ptr<models::Forecaster>> model =
        models::LoadForecasterSnapshot(path.string(), &rng);
    if (!model.ok()) {
      return Status(model.status().code(),
                    StrCat("loading ", filename, ": ",
                           model.status().message()));
    }
    // Eval mode is set exactly once, here: the request path never writes
    // to the module tree, which is what makes concurrent requests against
    // one model race-free (core::Predict).
    model.value()->SetTraining(false);
    engine.models_.emplace(path.stem().string(), std::move(model).value());
  }
  EMAF_METRIC_GAUGE_SET("serve.loaded_models",
                        static_cast<double>(engine.models_.size()));
  return engine;
}

std::vector<std::string> InferenceEngine::individual_ids() const {
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, unused] : models_) ids.push_back(id);
  return ids;
}

models::Forecaster* InferenceEngine::model(const std::string& id) const {
  auto it = models_.find(id);
  return it == models_.end() ? nullptr : it->second.get();
}

Result<tensor::Tensor> InferenceEngine::Forecast(
    const std::string& individual_id, const tensor::Tensor& window) {
  EMAF_METRIC_SCOPED_TIMER("serve.request_seconds");
  EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
  auto it = models_.find(individual_id);
  if (it == models_.end()) {
    return Status::NotFound(
        StrCat("no model loaded for individual: ", individual_id));
  }
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.request/", individual_id))) {
    return Status::Unavailable(
        StrCat("injected fault: serve.request/", individual_id));
  }
  tensor::Tensor prediction;
  {
    // Every tensor allocated by the forward pass draws from the shared
    // pool; the buffers return to it as the intermediates die, so a
    // steady-state request performs zero heap allocation.
    tensor::ArenaScope scope(&arena_);
    prediction = core::Predict(it->second.get(), window);
  }
  EMAF_METRIC_GAUGE_SET("serve.arena_hit_rate", HitRate(arena_.stats()));
  return prediction;
}

std::vector<Result<tensor::Tensor>> InferenceEngine::ForecastBatch(
    const std::vector<ForecastRequest>& requests) {
  std::vector<Result<tensor::Tensor>> results(
      requests.size(), Status::Internal("request not executed"));
  if (requests.empty()) return results;
  // Requests are independent and each writes its own pre-sized slot, so
  // any schedule produces bitwise the serial result (DESIGN.md, "Parallel
  // execution model").
  common::ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(requests.size()), /*grain=*/1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const ForecastRequest& request = requests[static_cast<size_t>(i)];
          results[static_cast<size_t>(i)] =
              Forecast(request.individual_id, request.window);
        }
      });
  return results;
}

}  // namespace emaf::serve
