#include "serve/inference_engine.h"

#include <map>
#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "serve/scheduler.h"

namespace emaf::serve {

namespace {

// hits / (hits + misses), 0 before the first request. Only consumed by
// the metrics gauge, so unused when the build compiles metrics out.
[[maybe_unused]] double HitRate(const tensor::InferenceArena::Stats& stats) {
  uint64_t total = stats.hits + stats.misses;
  if (total == 0) return 0.0;
  return static_cast<double>(stats.hits) / static_cast<double>(total);
}

}  // namespace

// Heap-allocated so the scheduler's pointers into the store/arena/clock
// survive moves of the engine value.
struct InferenceEngine::State {
  EngineOptions options;
  std::optional<ModelStore> store;
  tensor::InferenceArena arena;
  ManualClock clock;
  // Eager mode: one pinned handle per id keeps every model resident and
  // its model() pointer stable. Empty in budgeted mode.
  std::map<std::string, ModelHandle> pinned;
  std::unique_ptr<RequestScheduler> scheduler;

  void UpdateServeGauges() {
    EMAF_METRIC_GAUGE_SET(
        "serve.loaded_models",
        static_cast<double>(store->stats().resident_models));
    EMAF_METRIC_GAUGE_SET("serve.arena_hit_rate", HitRate(arena.stats()));
  }
};

InferenceEngine::InferenceEngine() : state_(std::make_unique<State>()) {}
InferenceEngine::InferenceEngine(InferenceEngine&&) noexcept = default;
InferenceEngine& InferenceEngine::operator=(InferenceEngine&&) noexcept =
    default;
InferenceEngine::~InferenceEngine() = default;

Result<InferenceEngine> InferenceEngine::Load(const std::string& snapshot_dir,
                                              const EngineOptions& options) {
  InferenceEngine engine;
  State& state = *engine.state_;
  state.options = options;

  ModelStoreOptions store_options;
  store_options.extension = options.extension;
  store_options.seed = options.seed;
  store_options.max_resident_models = options.max_resident_models;
  store_options.max_resident_bytes = options.max_resident_bytes;
  store_options.load_dtype = options.inference_dtype;
  Result<ModelStore> store = ModelStore::Open(snapshot_dir, store_options);
  if (!store.ok()) return store.status();
  state.store.emplace(std::move(store).value());

  const bool eager =
      options.max_resident_models <= 0 && options.max_resident_bytes <= 0;
  if (eager) {
    for (const std::string& id : state.store->individual_ids()) {
      // The PR-4 fault site keyed by filename, kept for compatibility
      // (the store's own site is serve.store.load/<id>).
      std::string filename = StrCat(id, options.extension);
      if (EMAF_FAULT_SHOULD_FAIL(StrCat("serve.load/", filename))) {
        return Status::Unavailable(
            StrCat("injected fault: serve.load/", filename));
      }
      Result<ModelHandle> handle = state.store->Get(id);
      if (!handle.ok()) return handle.status();
      state.pinned.emplace(id, std::move(handle).value());
    }
  }
  state.UpdateServeGauges();

  SchedulerOptions scheduler_options;
  scheduler_options.use_compiled_plans = options.use_compiled_plans;
  scheduler_options.max_queue = 0;  // ForecastBatch never rejects
  // One micro-batch per ForecastBatch call: the whole request vector fans
  // out at once, exactly the PR-4 dispatch shape.
  scheduler_options.max_batch = int64_t{1} << 30;
  scheduler_options.max_delay_ticks = 0;
  state.scheduler = std::make_unique<RequestScheduler>(
      &*state.store, &state.arena, scheduler_options, &state.clock);
  return engine;
}

int64_t InferenceEngine::num_models() const {
  return state_->store->num_known_models();
}

std::vector<std::string> InferenceEngine::individual_ids() const {
  return state_->store->individual_ids();
}

models::Forecaster* InferenceEngine::model(const std::string& id) const {
  auto it = state_->pinned.find(id);
  return it == state_->pinned.end() ? nullptr : it->second.get();
}

Result<tensor::Tensor> InferenceEngine::Forecast(
    const std::string& individual_id, const tensor::Tensor& window) {
  Result<ModelHandle> handle = state_->store->Get(individual_id);
  if (!handle.ok()) {
    // Keep serve.requests_total covering every request, including ones
    // that fail before execution (unknown id, budget, load fault).
    EMAF_METRIC_COUNTER_ADD("serve.requests_total", 1);
    return handle.status();
  }
  Result<tensor::Tensor> prediction = ExecuteForecast(
      handle.value().get(), individual_id, window, &state_->arena,
      state_->options.use_compiled_plans ? handle.value().plans() : nullptr);
  state_->UpdateServeGauges();
  return prediction;
}

std::vector<Result<tensor::Tensor>> InferenceEngine::ForecastBatch(
    const std::vector<ForecastRequest>& requests) {
  std::vector<Result<tensor::Tensor>> results(
      requests.size(), Status::Internal("request not executed"));
  if (requests.empty()) return results;
  std::vector<RequestTicket> tickets;
  tickets.reserve(requests.size());
  for (const ForecastRequest& request : requests) {
    Result<RequestTicket> ticket = state_->scheduler->Submit(request);
    // The engine's scheduler queue is unbounded, so Submit cannot reject.
    tickets.push_back(std::move(ticket).value());
  }
  state_->scheduler->Flush();
  for (size_t i = 0; i < tickets.size(); ++i) {
    results[i] = tickets[i].result();
  }
  state_->UpdateServeGauges();
  return results;
}

tensor::InferenceArena::Stats InferenceEngine::arena_stats() const {
  return state_->arena.stats();
}

ModelStore& InferenceEngine::store() { return *state_->store; }
const ModelStore& InferenceEngine::store() const { return *state_->store; }

}  // namespace emaf::serve
