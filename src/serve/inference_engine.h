// InferenceEngine: the serving facade (DESIGN.md, "Serving layer" and
// "Model store & scheduler").
//
// Since the model-store split the engine is a thin composition of the two
// serving primitives: a serve::ModelStore owns which models are resident
// (lazy loading, refcounted pins, LRU eviction under a budget) and a
// serve::RequestScheduler owns batching. The engine's PR-4 public API and
// metric names (serve.requests_total, serve.request_seconds,
// serve.loaded_models, serve.arena_hit_rate) and fault sites
// (serve.load/<file>, serve.request/<id>) are unchanged.
//
// Two residency modes, selected by EngineOptions:
//   - eager (default, both budgets unlimited): Load() cold-loads every
//     snapshot up front and pins it resident forever — exactly the PR-4
//     engine. model() returns stable pointers; nothing is ever evicted.
//   - budgeted (a budget set): Load() only lists the directory; models
//     load on first request and the least-recently-used idle ones are
//     evicted when the budget is exceeded. Served bytes are identical to
//     eager mode for any eviction/reload schedule (snapshot round-trips
//     are bit-exact), which the anchor test proves per model family.
//
// Request guarantees (inherited from the PR-4 engine, now enforced in
// serve::ExecuteForecast): tape-free (NoGradGuard), allocation-free at
// steady state (shared InferenceArena), write-free on eval-mode models,
// and batch outputs bitwise identical at any thread count.

#ifndef EMAF_SERVE_INFERENCE_ENGINE_H_
#define EMAF_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/forecaster.h"
#include "serve/forecast_op.h"
#include "serve/model_store.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct EngineOptions {
  // Snapshot filename extension looked for in the directory; the stem is
  // the individual id ("i07.snapshot" serves individual "i07").
  std::string extension = ".snapshot";
  // Seed for model construction. Irrelevant to the forecasts — every
  // weight is overwritten by the snapshot load — but fixed so the engine
  // itself is deterministic.
  uint64_t seed = 0x5e59edULL;
  // Residency budgets, forwarded to the ModelStore. <= 0 = unlimited;
  // both unlimited selects eager mode (load-and-pin-everything, the PR-4
  // behavior). See ModelStoreOptions for the budget semantics.
  int64_t max_resident_models = 0;
  int64_t max_resident_bytes = 0;
  // Execute requests through compiled inference plans (DESIGN.md,
  // "Compiled plans"): the first request per resident model records the
  // forward into a flat instruction plan, later requests interpret it.
  // Served bytes are bitwise identical either way (verified at compile
  // time); off replays the module graph per request.
  bool use_compiled_plans = true;
  // Element type models execute in (DESIGN.md, "Dtype layer & SIMD
  // dispatch"). The default, kF64, is the historical bit-pinned path.
  // kF32 cold-loads residents as f32 (half the memory), runs the f32
  // op/plan kernels (AVX2-dispatched), and converts each request's window
  // and forecast at the engine boundary — the wire stays doubles, at the
  // cost of float rounding in the forecast values.
  tensor::DType inference_dtype = tensor::DType::kF64;
};

class InferenceEngine {
 public:
  // Opens the snapshot directory. Eager mode additionally loads every
  // `<id><extension>` file, sorted by filename, and fails if any snapshot
  // is unreadable (fault site serve.load/<filename>); budgeted mode
  // defers loading (and load errors) to the first request per id. Fails
  // if the directory is missing or holds no snapshots.
  static Result<InferenceEngine> Load(const std::string& snapshot_dir,
                                      const EngineOptions& options = {});

  InferenceEngine(InferenceEngine&&) noexcept;
  InferenceEngine& operator=(InferenceEngine&&) noexcept;
  ~InferenceEngine();

  // Snapshots known in the directory (all resident in eager mode).
  int64_t num_models() const;
  // Sorted ids of the known individuals.
  std::vector<std::string> individual_ids() const;
  // Eager mode: the pinned model for `id` (stable for the engine's
  // lifetime), nullptr when unknown. Budgeted mode: always nullptr —
  // residency is transient, so callers must go through Forecast, which
  // pins the model for the duration of the request.
  models::Forecaster* model(const std::string& id) const;

  // One forecast: window [B, L, V] -> [B, V]. NotFound for an unknown id;
  // Unavailable when fault site serve.request/<id> fires; in budgeted
  // mode also kResourceExhausted when the budget is exceeded and every
  // resident model is pinned.
  Result<tensor::Tensor> Forecast(const std::string& individual_id,
                                  const tensor::Tensor& window);

  // Runs a batch of requests through the scheduler as one micro-batch on
  // the global ThreadPool. Results align with `requests`; each request
  // computes independently into its own slot, so the output is bitwise
  // identical at any thread count.
  std::vector<Result<tensor::Tensor>> ForecastBatch(
      const std::vector<ForecastRequest>& requests);

  // Buffer-pool statistics of the engine's arena (hit rate, outstanding).
  tensor::InferenceArena::Stats arena_stats() const;

  // The underlying model store — residency stats, EvictIdle, etc.
  ModelStore& store();
  const ModelStore& store() const;

 private:
  InferenceEngine();

  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_INFERENCE_ENGINE_H_
