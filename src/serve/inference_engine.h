// InferenceEngine: the serving half of the train/serve split (DESIGN.md,
// "Serving layer").
//
// A training process saves one snapshot per individual via
// models::SaveForecasterSnapshot; the engine loads a directory of those
// snapshots, rebuilds every model from its embedded config, puts it in
// eval mode once, and then answers 1-lag forecast requests:
//
//   - tape-free: every forward runs under NoGradGuard (core::Predict), so
//     no GradFn node is ever allocated on the serve path;
//   - allocation-free at steady state: all requests run inside the
//     engine's shared tensor::InferenceArena, so after the first (warm-up)
//     request per model every tensor buffer is recycled from the pool;
//   - write-free on models: eval mode is set at load time and
//     core::Predict never touches the training flag of a model already in
//     eval mode, so concurrent requests against one model are race-free;
//   - deterministic: a request's bytes equal Evaluator's prediction for
//     the same model and window, at any thread count.
//
// Instrumentation: serve.request_seconds (histogram),
// serve.requests_total (counter), serve.loaded_models and
// serve.arena_hit_rate (gauges). Fault sites: serve.load/<file> fails a
// snapshot load, serve.request/<id> fails one request.

#ifndef EMAF_SERVE_INFERENCE_ENGINE_H_
#define EMAF_SERVE_INFERENCE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/forecaster.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::serve {

struct EngineOptions {
  // Snapshot filename extension looked for in the directory; the stem is
  // the individual id ("i07.snapshot" serves individual "i07").
  std::string extension = ".snapshot";
  // Seed for model construction. Irrelevant to the forecasts — every
  // weight is overwritten by the snapshot load — but fixed so the engine
  // itself is deterministic.
  uint64_t seed = 0x5e59edULL;
};

struct ForecastRequest {
  std::string individual_id;
  tensor::Tensor window;  // [B, L, V]
};

class InferenceEngine {
 public:
  // Loads every `<id><extension>` file in `snapshot_dir`, sorted by
  // filename. Fails if the directory is missing, holds no snapshots, or
  // any snapshot is unreadable (fault site serve.load/<filename>).
  static Result<InferenceEngine> Load(const std::string& snapshot_dir,
                                      const EngineOptions& options = {});

  InferenceEngine(InferenceEngine&&) = default;
  InferenceEngine& operator=(InferenceEngine&&) = default;

  int64_t num_models() const { return static_cast<int64_t>(models_.size()); }
  // Sorted ids of the loaded individuals.
  std::vector<std::string> individual_ids() const;
  // The loaded model for `id`; nullptr when unknown. Models are in eval
  // mode; callers must not mutate them.
  models::Forecaster* model(const std::string& id) const;

  // One forecast: window [B, L, V] -> [B, V]. NotFound for an unknown id;
  // Unavailable when fault site serve.request/<id> fires.
  Result<tensor::Tensor> Forecast(const std::string& individual_id,
                                  const tensor::Tensor& window);

  // Runs a batch of requests concurrently on the global ThreadPool.
  // Results align with `requests`; each request computes independently
  // into its own slot, so the output is bitwise identical at any thread
  // count.
  std::vector<Result<tensor::Tensor>> ForecastBatch(
      const std::vector<ForecastRequest>& requests);

  // Buffer-pool statistics of the engine's arena (hit rate, outstanding).
  tensor::InferenceArena::Stats arena_stats() const { return arena_.stats(); }

 private:
  InferenceEngine() = default;

  std::map<std::string, std::unique_ptr<models::Forecaster>> models_;
  // Shared by all request threads; Acquire/release are briefly locked.
  tensor::InferenceArena arena_;
};

}  // namespace emaf::serve

#endif  // EMAF_SERVE_INFERENCE_ENGINE_H_
