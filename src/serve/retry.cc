#include "serve/retry.h"

#include <algorithm>

#include "common/check.h"

namespace emaf::serve {

bool IsRetryableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

int64_t BackoffWithJitterMs(const RetryPolicy& policy, int64_t attempt,
                            Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  EMAF_CHECK(attempt >= 1) << "backoff is for retries; attempt " << attempt;
  const int64_t base = std::max<int64_t>(1, policy.base_backoff_ms);
  const int64_t cap = std::max<int64_t>(base, policy.max_backoff_ms);
  // base << (attempt-1), saturating at the cap without overflowing: stop
  // doubling as soon as the cap is reached.
  int64_t backoff = base;
  for (int64_t k = 1; k < attempt && backoff < cap; ++k) {
    backoff = backoff > cap / 2 ? cap : backoff * 2;
  }
  backoff = std::min(backoff, cap);
  // Jitter to [half, full]: never zero (a zero wait defeats backoff),
  // never over the cap.
  return backoff / 2 + rng->UniformInt(0, backoff - backoff / 2);
}

}  // namespace emaf::serve
