#include "common/status.h"

namespace emaf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace emaf
