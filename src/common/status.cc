#include "common/status.h"

namespace emaf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  constexpr StatusCode kAllCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kFailedPrecondition,
      StatusCode::kInternal,     StatusCode::kDataLoss,
      StatusCode::kResourceExhausted, StatusCode::kAborted,
      StatusCode::kUnavailable,       StatusCode::kDeadlineExceeded};
  for (StatusCode code : kAllCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace emaf
