#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/metrics.h"

namespace emaf::common {

namespace {

thread_local bool in_worker = false;

// Shared state of one ParallelFor call. Chunks are claimed by atomically
// advancing `next_chunk`; the thread that finishes the last chunk signals
// the caller. Heap-allocated and shared so helper tasks outlive an
// exceptional unwind of the caller.
struct ParallelForState {
  int64_t begin = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  int64_t end = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  int64_t chunks_done = 0;  // guarded by mu
  std::exception_ptr error;  // guarded by mu; first failure wins

  // Claims and runs chunks until none remain. Skips (but still counts)
  // chunks once a failure is recorded so the caller's wait terminates.
  void RunChunks() {
    for (;;) {
      int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      // "Stolen" = claimed by a pool worker rather than the calling
      // thread; the ratio tells how much ParallelFor actually fans out.
      if (ThreadPool::InWorker()) {
        EMAF_METRIC_COUNTER_ADD("threadpool.chunks_stolen", 1);
      } else {
        EMAF_METRIC_COUNTER_ADD("threadpool.chunks_caller", 1);
      }
      if (!failed.load(std::memory_order_relaxed)) {
        int64_t lo = begin + chunk * grain;
        int64_t hi = std::min(lo + grain, end);
        try {
          // Injected task fault: thrown inside the chunk's try block so it
          // takes the exact path a failing ParallelFor body takes.
          if (EMAF_FAULT_SHOULD_FAIL("threadpool.task")) {
            throw std::runtime_error("injected fault: threadpool.task");
          }
          (*fn)(lo, hi);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (++chunks_done == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(std::max<int64_t>(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int64_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Drain semantics with zero workers: nothing can be queued (Submit runs
  // inline), and workers only exit once the queue is empty.
}

void ThreadPool::WorkerLoop() {
  in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      EMAF_METRIC_GAUGE_SET("threadpool.queue_depth",
                            static_cast<double>(queue_.size()));
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  EMAF_CHECK(task != nullptr);
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  // Inline when there is no worker to hand off to — or when called from a
  // worker: a task that enqueues subtasks and waits on their futures would
  // deadlock once every worker is occupied by a waiting parent.
  if (workers_.empty() || in_worker) {
    EMAF_METRIC_COUNTER_ADD("threadpool.tasks_inline", 1);
    (*packaged)();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    EMAF_CHECK(!stopping_) << "Submit() on a stopping ThreadPool";
    queue_.emplace_back([packaged] { (*packaged)(); });
    EMAF_METRIC_COUNTER_ADD("threadpool.tasks_submitted", 1);
    EMAF_METRIC_GAUGE_SET("threadpool.queue_depth",
                          static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  EMAF_CHECK_GE(grain, 1);
  // Serial fast path: size-1 pool, single chunk, or nested call from a
  // worker (outer ParallelFor tasks already occupy the pool; recursing
  // onto the queue could deadlock and would oversubscribe anyway).
  if (num_threads_ <= 1 || end - begin <= grain || in_worker) {
    EMAF_METRIC_COUNTER_ADD("threadpool.parallel_for_serial", 1);
    for (int64_t lo = begin; lo < end; lo += grain) {
      // Same injection site as the parallel path, so a fault spec behaves
      // identically at any thread count.
      if (EMAF_FAULT_SHOULD_FAIL("threadpool.task")) {
        throw std::runtime_error("injected fault: threadpool.task");
      }
      fn(lo, std::min(lo + grain, end));
    }
    return;
  }
  EMAF_METRIC_COUNTER_ADD("threadpool.parallel_for_parallel", 1);

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = (end - begin + grain - 1) / grain;
  state->fn = &fn;

  // One helper task per worker that could usefully claim a chunk; the
  // caller is the +1th participant. Helpers that wake up late simply find
  // no chunks left.
  int64_t helpers = std::min<int64_t>(static_cast<int64_t>(workers_.size()),
                                      state->num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) {
      queue_.emplace_back([state] { state->RunChunks(); });
    }
  }
  cv_.notify_all();

  state->RunChunks();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock,
                      [&] { return state->chunks_done == state->num_chunks; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

bool ThreadPool::InWorker() { return in_worker; }

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool == nullptr) {
    int64_t hardware =
        static_cast<int64_t>(std::thread::hardware_concurrency());
    pool = std::make_unique<ThreadPool>(
        GetEnvInt64("EMAF_NUM_THREADS", std::max<int64_t>(1, hardware)));
  }
  return *pool;
}

void ThreadPool::SetGlobalNumThreads(int64_t num_threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  GlobalPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace emaf::common
