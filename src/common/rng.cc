#include "common/rng.h"

#include "common/check.h"

namespace emaf {

int64_t Rng::UniformInt(int64_t low, int64_t high) {
  EMAF_CHECK_LE(low, high);
  std::uniform_int_distribution<int64_t> dist(low, high);
  return dist(engine_);
}

void Rng::FillUniform(std::vector<double>* out, double low, double high) {
  for (double& v : *out) v = Uniform(low, high);
}

void Rng::FillNormal(std::vector<double>* out, double mean, double stddev) {
  for (double& v : *out) v = Normal(mean, stddev);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t population,
                                                   int64_t count) {
  EMAF_CHECK_GE(population, count);
  EMAF_CHECK_GE(count, 0);
  std::vector<int64_t> all(population);
  for (int64_t i = 0; i < population; ++i) all[i] = i;
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (int64_t i = 0; i < count; ++i) {
    int64_t j = UniformInt(i, population - 1);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace emaf
