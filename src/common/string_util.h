// Small string helpers used across the library (splitting CSV lines,
// building table cells, formatting floats with fixed precision).

#ifndef EMAF_COMMON_STRING_UTIL_H_
#define EMAF_COMMON_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace emaf {

// Splits `text` on `delimiter`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

// True if `text` begins with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

// Formats `value` with `digits` digits after the decimal point ("0.845").
std::string FormatFixed(double value, int digits);

// Formats `value` with 17 significant digits — enough to distinguish every
// IEEE double, so ParseDouble(FormatExact(v)) == v bit-for-bit. Used by
// the checkpoint journal and grid reports, whose byte-for-byte resume
// contract depends on exact round-tripping.
std::string FormatExact(double value);

// Concatenates the streamed representation of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream stream;
  (stream << ... << args);
  return stream.str();
}

// Parses a double / int64; returns false on any trailing garbage.
bool ParseDouble(std::string_view text, double* value);
bool ParseInt64(std::string_view text, long long* value);

}  // namespace emaf

#endif  // EMAF_COMMON_STRING_UTIL_H_
