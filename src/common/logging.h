// Minimal leveled logging to stderr.
//
// Usage:
//   EMAF_LOG(INFO) << "trained individual " << id << " mse=" << mse;
//
// The minimum emitted severity defaults to INFO and can be raised with the
// environment variable EMAF_LOG_LEVEL (one of DEBUG, INFO, WARNING, ERROR).

#ifndef EMAF_COMMON_LOGGING_H_
#define EMAF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace emaf {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the process-wide minimum severity that is actually emitted.
LogSeverity MinLogSeverity();

// Overrides the minimum emitted severity (tests use this to silence output).
void SetMinLogSeverity(LogSeverity severity);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace emaf

#define EMAF_LOG_DEBUG ::emaf::LogSeverity::kDebug
#define EMAF_LOG_INFO ::emaf::LogSeverity::kInfo
#define EMAF_LOG_WARNING ::emaf::LogSeverity::kWarning
#define EMAF_LOG_ERROR ::emaf::LogSeverity::kError

#define EMAF_LOG(severity) \
  ::emaf::internal_logging::LogMessage(EMAF_LOG_##severity, __FILE__, __LINE__)

#endif  // EMAF_COMMON_LOGGING_H_
