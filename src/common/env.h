// Helpers for reading configuration knobs from environment variables.
// Used by the benchmark harness (EMAF_BENCH_* variables, see DESIGN.md).

#ifndef EMAF_COMMON_ENV_H_
#define EMAF_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace emaf {

// Returns the variable's value, or `default_value` when unset / unparsable.
int64_t GetEnvInt64(const char* name, int64_t default_value);
double GetEnvDouble(const char* name, double default_value);
std::string GetEnvString(const char* name, const std::string& default_value);
bool GetEnvBool(const char* name, bool default_value);

}  // namespace emaf

#endif  // EMAF_COMMON_ENV_H_
