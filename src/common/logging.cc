#include "common/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace emaf {
namespace {

LogSeverity ParseSeverityFromEnv() {
  const char* value = std::getenv("EMAF_LOG_LEVEL");
  if (value == nullptr) return LogSeverity::kInfo;
  if (std::strcmp(value, "DEBUG") == 0) return LogSeverity::kDebug;
  if (std::strcmp(value, "INFO") == 0) return LogSeverity::kInfo;
  if (std::strcmp(value, "WARNING") == 0) return LogSeverity::kWarning;
  if (std::strcmp(value, "ERROR") == 0) return LogSeverity::kError;
  return LogSeverity::kInfo;
}

LogSeverity& MutableMinLogSeverity() {
  static LogSeverity severity = ParseSeverityFromEnv();
  return severity;
}

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

// Strips leading directories so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

LogSeverity MinLogSeverity() { return MutableMinLogSeverity(); }

void SetMinLogSeverity(LogSeverity severity) {
  MutableMinLogSeverity() = severity;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << SeverityName(severity) << " [" << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity()) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal_logging
}  // namespace emaf
