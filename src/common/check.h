// Assertion macros for programming errors.
//
// emaf does not use exceptions: invariant violations and misuse of the API
// are reported through EMAF_CHECK*, which print the failing condition, the
// source location, and an optional streamed message, then abort. Recoverable
// errors (I/O, parsing) use Status/Result from common/status.h instead.

#ifndef EMAF_COMMON_CHECK_H_
#define EMAF_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace emaf {
namespace internal_check {

// Collects a streamed message and aborts when destroyed. Used only via the
// EMAF_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "EMAF_CHECK failure: " << condition << " at " << file << ":"
            << line;
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace emaf

#define EMAF_CHECK(condition)                                          \
  if (condition) {                                                     \
  } else /* NOLINT */                                                  \
    ::emaf::internal_check::CheckFailureStream(#condition, __FILE__,   \
                                               __LINE__)

#define EMAF_CHECK_BINARY(a, b, op)                                        \
  if ((a)op(b)) {                                                          \
  } else /* NOLINT */                                                      \
    ::emaf::internal_check::CheckFailureStream(#a " " #op " " #b,          \
                                               __FILE__, __LINE__)         \
        << "(" << (a) << " vs " << (b) << ")"

#define EMAF_CHECK_EQ(a, b) EMAF_CHECK_BINARY(a, b, ==)
#define EMAF_CHECK_NE(a, b) EMAF_CHECK_BINARY(a, b, !=)
#define EMAF_CHECK_LT(a, b) EMAF_CHECK_BINARY(a, b, <)
#define EMAF_CHECK_LE(a, b) EMAF_CHECK_BINARY(a, b, <=)
#define EMAF_CHECK_GT(a, b) EMAF_CHECK_BINARY(a, b, >)
#define EMAF_CHECK_GE(a, b) EMAF_CHECK_BINARY(a, b, >=)

#endif  // EMAF_COMMON_CHECK_H_
