// Scoped tracing (`emaf::obs`): RAII spans emitted as a Chrome
// `chrome://tracing` / Perfetto-compatible JSON trace file.
//
// Model (see DESIGN.md, "Observability layer"):
//   - A span is a (begin, end) event pair on one thread. EMAF_TRACE_SPAN
//     creates an RAII object recording "B" at construction and "E" at
//     destruction, both stamped with a steady-clock timestamp
//     (microseconds since recorder start) and a small dense thread id.
//   - Recording is runtime-gated: spans are dropped with one relaxed
//     atomic load unless tracing was enabled — by setting the
//     EMAF_TRACE_FILE environment variable (checked once, on first use)
//     or by calling Trace::Enable(path) (tests, benches).
//   - Flush() sorts events by timestamp (stable, so same-timestamp
//     begin/end pairs keep program order) and writes the standard
//     {"traceEvents": [...]} JSON object. When enabled via environment
//     variable, the recorder also flushes at process exit.
//   - Tracing is SIDE-BAND ONLY: span lifetimes never alter RNG streams,
//     scheduling decisions, or reduction order, preserving the bitwise
//     serial==parallel determinism contract.
//
// The whole facility compiles to no-ops under -DEMAF_METRICS=OFF, same as
// metrics.h.
//
// Usage:
//   void TrainOne() {
//     EMAF_TRACE_SPAN("TrainForecaster");          // literal name
//     EMAF_TRACE_SPAN_DYN(StrCat("cell/", label)); // computed name
//     ...
//   }

#ifndef EMAF_COMMON_TRACE_H_
#define EMAF_COMMON_TRACE_H_

#include <string>

#include "common/metrics.h"  // EMAF_METRICS_ENABLED
#include "common/status.h"

namespace emaf::obs {

class Trace {
 public:
  // True when spans are being recorded. First call latches EMAF_TRACE_FILE
  // from the environment.
  static bool Enabled();

  // Starts recording; Flush() (and process exit) will write to `path`.
  // Discards any previously buffered events.
  static void Enable(const std::string& path);

  // Stops recording and discards buffered events without writing.
  static void Disable();

  // Writes buffered events to the enabled path and clears the buffer.
  // No-op (Ok) when tracing is disabled.
  static Status Flush();

  // Dense per-thread id (0 = first thread that recorded), stable for the
  // thread's lifetime. Exposed for tests.
  static int64_t CurrentThreadId();
};

#if EMAF_METRICS_ENABLED

// RAII span. Prefer the EMAF_TRACE_SPAN macros, which compile away under
// EMAF_METRICS=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, const char* category = "emaf");
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  bool active_;  // latched at construction so B/E stay balanced even if
                 // tracing toggles mid-span
  std::string name_;
  const char* category_;
  double begin_ts_us_ = 0.0;
};

#define EMAF_TRACE_INTERNAL_CONCAT2(a, b) a##b
#define EMAF_TRACE_INTERNAL_CONCAT(a, b) EMAF_TRACE_INTERNAL_CONCAT2(a, b)

#define EMAF_TRACE_SPAN(name)                              \
  ::emaf::obs::ScopedSpan EMAF_TRACE_INTERNAL_CONCAT(      \
      emaf_trace_span_, __LINE__)(name)
#define EMAF_TRACE_SPAN_DYN(name_expr) EMAF_TRACE_SPAN(name_expr)

#else  // !EMAF_METRICS_ENABLED

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string, const char* = "emaf") {}
};

#define EMAF_TRACE_SPAN(name) ((void)0)
#define EMAF_TRACE_SPAN_DYN(name_expr) ((void)0)

#endif  // EMAF_METRICS_ENABLED

}  // namespace emaf::obs

#endif  // EMAF_COMMON_TRACE_H_
