// Deterministic work-stealing thread pool.
//
// A fixed set of workers shares one task queue; `ParallelFor` additionally
// lets idle threads (including the caller) steal unclaimed index chunks
// from a shared atomic cursor, so load balances without any per-chunk
// locking. Determinism contract: a chunk's computation never depends on
// which thread runs it — callers write results into pre-sized disjoint
// slots, so a parallel run is bit-for-bit identical to the serial one
// (see DESIGN.md, "Parallel execution model").
//
// The pool size comes from EMAF_NUM_THREADS (default: hardware
// concurrency) the first time `Global()` is used; tests and benches can
// swap it with `SetGlobalNumThreads`.

#ifndef EMAF_COMMON_THREAD_POOL_H_
#define EMAF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace emaf::common {

class ThreadPool {
 public:
  // `num_threads` counts the caller: a pool of N spawns N-1 workers and
  // the calling thread participates in ParallelFor. N <= 1 means fully
  // serial ParallelFor (no worker threads are used for it).
  explicit ThreadPool(int64_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains the queue (every submitted task still runs), then joins.
  ~ThreadPool();

  int64_t num_threads() const { return num_threads_; }

  // Enqueues one task. The returned future rethrows the task's exception
  // on get(). Runs inline (before returning) with no workers
  // (num_threads <= 1) or when called from inside a pool task — a parent
  // task blocking on a child future must not deadlock the pool.
  std::future<void> Submit(std::function<void()> task);

  // Splits [begin, end) into chunks of at most `grain` indices and calls
  // `fn(chunk_begin, chunk_end)` for each, caller and workers stealing
  // chunks until none remain. Blocks until every chunk finished. The
  // first exception thrown by `fn` is rethrown here (remaining chunks are
  // skipped). Runs inline (exact serial order) when the pool is size 1,
  // the range fits one chunk, or when called from inside a pool task
  // (nested parallelism stays serial rather than deadlocking).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // True when the current thread is a pool worker running a task.
  static bool InWorker();

  // Process-wide pool, created on first use with EMAF_NUM_THREADS.
  static ThreadPool& Global();

  // Replaces the global pool (joins the old one first). For tests and
  // benchmarks; must not race with concurrent Global() use.
  static void SetGlobalNumThreads(int64_t num_threads);

 private:
  void WorkerLoop();

  int64_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace emaf::common

#endif  // EMAF_COMMON_THREAD_POOL_H_
