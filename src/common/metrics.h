// Structured metrics: counters, gauges, and fixed-bucket histograms in a
// process-wide registry (`emaf::obs`).
//
// Model (see DESIGN.md, "Observability layer"):
//   - Instruments are registered once by name under a mutex and live for
//     the process lifetime; the returned pointers are stable, so call
//     sites cache them in a function-local static and the hot path is a
//     single relaxed atomic op — no lock, no allocation.
//   - Reads (value(), Snapshot()) are lock-free on the instrument values:
//     a snapshot taken while 8 threads write observes some valid
//     intermediate state, never tears, and never blocks the writers.
//   - Metrics are SIDE-BAND ONLY. They never feed back into computation,
//     RNG streams, or reduction order, so the bitwise
//     serial==parallel determinism contract (DESIGN.md, "Parallel
//     execution model") is unaffected by instrumentation. Aggregates that
//     sum doubles across threads (Histogram::sum) are themselves only
//     approximately schedule-independent — fine for telemetry, which is
//     why nothing numeric ever reads them back.
//
// Compile-out: configuring with -DEMAF_METRICS=OFF defines
// EMAF_METRICS_ENABLED=0 and every EMAF_METRIC_* macro expands to
// ((void)0); the stub registry below keeps non-macro callers (e.g. the
// bench harness) compiling, with Snapshot() returning an empty snapshot.
//
// Usage:
//   EMAF_METRIC_COUNTER_ADD("experiment.cells_total", 1);
//   EMAF_METRIC_GAUGE_ADD("threadpool.queue_depth", -1.0);
//   EMAF_METRIC_HISTOGRAM_OBSERVE("trainer.epoch_loss", loss,
//                                 ::emaf::obs::DefaultLossBounds());
//   { EMAF_METRIC_SCOPED_TIMER("graph.build_seconds"); BuildGraph(); }

#ifndef EMAF_COMMON_METRICS_H_
#define EMAF_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#if !defined(EMAF_METRICS_ENABLED)
#define EMAF_METRICS_ENABLED 1
#endif

namespace emaf::obs {

inline constexpr bool kMetricsEnabled = EMAF_METRICS_ENABLED != 0;

// --- Snapshot structs (defined in both build modes) ------------------------

struct HistogramSnapshot {
  // Upper bucket bounds (inclusive); counts has bounds.size() + 1 entries,
  // the last being the overflow bucket (> bounds.back()).
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  // Deterministically ordered JSON object:
  // {"counters":{...},"gauges":{...},"histograms":{"h":{"count":..,
  //  "sum":..,"bounds":[..],"counts":[..]}}}
  std::string ToJson() const;
};

// Default bucket bounds (seconds) for wall-clock histograms: 100us..30s,
// roughly x3 per bucket.
const std::vector<double>& DefaultSecondsBounds();
// Default bucket bounds for loss / gradient-norm histograms: 1e-4..100,
// decades with a 3x midpoint.
const std::vector<double>& DefaultValueBounds();

#if EMAF_METRICS_ENABLED

// --- Instruments -----------------------------------------------------------

// Monotone counter. All ops are relaxed atomics: counts are exact (every
// Add lands) but carry no ordering relative to other memory.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-value gauge with atomic add (CAS loop) for up/down tracking such as
// queue depth.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. A sample lands in the first bucket whose upper
// bound is >= the value (bounds are inclusive); values above the last
// bound land in the overflow bucket. Bounds are fixed at registration, so
// Observe is one binary search plus three relaxed atomic ops.
class Histogram {
 public:
  // `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --- Registry --------------------------------------------------------------

class Registry {
 public:
  // Process-wide registry (leaked singleton: instruments may be written
  // from worker threads up to process exit, so it is never destroyed).
  static Registry& Global();

  // Get-or-create by name. Pointers are stable for the process lifetime.
  // A histogram's bounds are fixed by its first registration; later calls
  // with the same name ignore `bounds`.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  // Consistent-enough snapshot while writers run: each value is read with
  // one relaxed load; no writer is blocked.
  MetricsSnapshot Snapshot() const;

  // Zeroes every registered instrument, keeping registrations (and thus
  // all cached pointers) valid. Benches call this at run start so the
  // embedded snapshot covers exactly one run.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps only, never the values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Observes the elapsed seconds of its scope into a histogram (bucketed by
// DefaultSecondsBounds). Instantiate through EMAF_METRIC_SCOPED_TIMER so
// the object (and its clock reads) vanish under EMAF_METRICS=OFF.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() {
    histogram_->Observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

#else  // !EMAF_METRICS_ENABLED

// No-op stubs: same surface, all inline and empty, so -DEMAF_METRICS=OFF
// builds carry no atomics, locks, or clock reads from instrumentation.

class Counter {
 public:
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void Observe(double) {}
  uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  const std::vector<double>& bounds() const;
  std::vector<uint64_t> bucket_counts() const { return {}; }
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

class Registry {
 public:
  static Registry& Global();
  Counter* GetCounter(std::string_view);
  Gauge* GetGauge(std::string_view);
  Histogram* GetHistogram(std::string_view, std::vector<double>);
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

#endif  // EMAF_METRICS_ENABLED

}  // namespace emaf::obs

// --- Instrumentation macros ------------------------------------------------
// Each macro caches the instrument pointer in a function-local static, so
// the registry lock is taken once per call site, not per call. The
// do-while scope keeps the static's name from colliding across sites.

#if EMAF_METRICS_ENABLED

#define EMAF_METRIC_COUNTER_ADD(name, n)                      \
  do {                                                        \
    static ::emaf::obs::Counter* emaf_metric_counter =        \
        ::emaf::obs::Registry::Global().GetCounter(name);     \
    emaf_metric_counter->Add(n);                              \
  } while (0)

// Uncached variant for computed names (one registry lookup per call; use
// only off the innermost hot path). The cached macro above must only be
// used with a name that is constant at the call site.
#define EMAF_METRIC_COUNTER_ADD_DYN(name, n) \
  ::emaf::obs::Registry::Global().GetCounter(name)->Add(n)

#define EMAF_METRIC_GAUGE_SET(name, v)                        \
  do {                                                        \
    static ::emaf::obs::Gauge* emaf_metric_gauge =            \
        ::emaf::obs::Registry::Global().GetGauge(name);       \
    emaf_metric_gauge->Set(v);                                \
  } while (0)

#define EMAF_METRIC_GAUGE_ADD(name, delta)                    \
  do {                                                        \
    static ::emaf::obs::Gauge* emaf_metric_gauge =            \
        ::emaf::obs::Registry::Global().GetGauge(name);       \
    emaf_metric_gauge->Add(delta);                            \
  } while (0)

// `bounds` is evaluated once (first pass through the call site).
#define EMAF_METRIC_HISTOGRAM_OBSERVE(name, value, bounds)        \
  do {                                                            \
    static ::emaf::obs::Histogram* emaf_metric_histogram =        \
        ::emaf::obs::Registry::Global().GetHistogram(name, bounds); \
    emaf_metric_histogram->Observe(value);                        \
  } while (0)

#define EMAF_METRIC_INTERNAL_CONCAT2(a, b) a##b
#define EMAF_METRIC_INTERNAL_CONCAT(a, b) EMAF_METRIC_INTERNAL_CONCAT2(a, b)

// Statement macro declaring a scope-timing RAII object.
#define EMAF_METRIC_SCOPED_TIMER(name)                                      \
  static ::emaf::obs::Histogram* EMAF_METRIC_INTERNAL_CONCAT(               \
      emaf_metric_timer_hist_, __LINE__) =                                  \
      ::emaf::obs::Registry::Global().GetHistogram(                         \
          name, ::emaf::obs::DefaultSecondsBounds());                       \
  ::emaf::obs::ScopedHistogramTimer EMAF_METRIC_INTERNAL_CONCAT(            \
      emaf_metric_timer_, __LINE__)(                                        \
      EMAF_METRIC_INTERNAL_CONCAT(emaf_metric_timer_hist_, __LINE__))

#else  // !EMAF_METRICS_ENABLED

#define EMAF_METRIC_COUNTER_ADD(name, n) ((void)0)
#define EMAF_METRIC_COUNTER_ADD_DYN(name, n) ((void)0)
#define EMAF_METRIC_GAUGE_SET(name, v) ((void)0)
#define EMAF_METRIC_GAUGE_ADD(name, delta) ((void)0)
#define EMAF_METRIC_HISTOGRAM_OBSERVE(name, value, bounds) ((void)0)
#define EMAF_METRIC_SCOPED_TIMER(name) ((void)0)

#endif  // EMAF_METRICS_ENABLED

#endif  // EMAF_COMMON_METRICS_H_
