// Status / Result<T>: error propagation for recoverable failures.
//
// emaf forbids exceptions; functions that can fail for reasons outside the
// programmer's control (missing file, malformed CSV, ...) return Status or
// Result<T>. Programming errors use EMAF_CHECK instead.

#ifndef EMAF_COMMON_STATUS_H_
#define EMAF_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace emaf {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  // Unrecoverable data corruption: a malformed CSV record, a journal entry
  // whose checksum does not match, a NaN-poisoned graph.
  kDataLoss = 5,
  // A bounded resource ran out (retry budget, memory, queue capacity).
  kResourceExhausted = 6,
  // The operation was aborted before completing — e.g. training stopped by
  // the divergence guard.
  kAborted = 7,
  // A transient dependency failed (worker task fault); retrying later may
  // succeed.
  kUnavailable = 8,
  // The caller's deadline elapsed before the operation completed. Never
  // retryable: by the time the answer could arrive nobody wants it.
  kDeadlineExceeded = 9,
};

// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Inverse of StatusCodeName; nullopt for unknown names. Used to round-trip
// codes through the checkpoint journal.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Aborted(std::string message) {
    return Status(StatusCode::kAborted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. Access to value() on an error Result is a checked failure.
// T need not be default-constructible.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    EMAF_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EMAF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    EMAF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    EMAF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace emaf

// Propagates an error Status from the current function.
#define EMAF_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::emaf::Status emaf_status_ = (expr);     \
    if (!emaf_status_.ok()) return emaf_status_; \
  } while (false)

#endif  // EMAF_COMMON_STATUS_H_
