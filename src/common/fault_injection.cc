#include "common/fault_injection.h"

#if EMAF_FAULT_INJECTION_ENABLED

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace emaf::fault {

namespace {

// SplitMix64-style avalanche; maps (seed, entry hash, token) to [0, 1).
double UniformDraw(uint64_t seed, uint64_t entry_hash, uint64_t token) {
  uint64_t z = seed ^ (entry_hash * 0x9e3779b97f4a7c15ULL) ^
               (token + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct Entry {
  SiteSpec spec;
  uint64_t hash = 0;
  std::atomic<int64_t> evaluations{0};
  std::atomic<int64_t> fires{0};
};

struct Config {
  uint64_t seed = 0;
  // Stable addresses: Entry holds atomics and is neither movable nor
  // copyable.
  std::vector<std::unique_ptr<Entry>> entries;
};

// Guards (re)configuration; lookups read `active_config` without the lock
// (reconfiguration during parallel regions is documented as unsupported).
std::mutex& ConfigMutex() {
  static std::mutex mu;
  return mu;
}

std::shared_ptr<Config>& ConfigSlot() {
  static std::shared_ptr<Config> config;
  return config;
}

std::atomic<bool> g_active{false};

std::shared_ptr<Config> ActiveConfig() {
  std::lock_guard<std::mutex> lock(ConfigMutex());
  std::shared_ptr<Config>& slot = ConfigSlot();
  if (slot == nullptr) {
    // First use: configure from the environment.
    auto config = std::make_shared<Config>();
    std::string spec = GetEnvString("EMAF_FAULT_SPEC", "");
    uint64_t seed = static_cast<uint64_t>(
        GetEnvInt64("EMAF_FAULT_SEED", 0x5eedf417));
    Result<std::vector<SiteSpec>> parsed = ParseFaultSpec(spec);
    EMAF_CHECK(parsed.ok()) << "EMAF_FAULT_SPEC: "
                            << parsed.status().ToString();
    config->seed = seed;
    for (SiteSpec& site : parsed.value()) {
      auto entry = std::make_unique<Entry>();
      entry->spec = std::move(site);
      entry->hash = HashString(entry->spec.site);
      config->entries.push_back(std::move(entry));
    }
    g_active.store(!config->entries.empty(), std::memory_order_relaxed);
    if (!config->entries.empty()) {
      EMAF_LOG(WARNING) << "fault injection ACTIVE (" << spec << ")";
    }
    slot = std::move(config);
  }
  return slot;
}

// Longest configured entry matching `site` (exact, or prefix ending at a
// '/' boundary); nullptr when none match.
Entry* FindEntry(Config* config, std::string_view site) {
  Entry* best = nullptr;
  for (const std::unique_ptr<Entry>& entry : config->entries) {
    const std::string& name = entry->spec.site;
    bool matches =
        site == name ||
        (site.size() > name.size() && site[name.size()] == '/' &&
         site.substr(0, name.size()) == name);
    if (matches && (best == nullptr ||
                    name.size() > best->spec.site.size())) {
      best = entry.get();
    }
  }
  return best;
}

bool Decide(Config* config, Entry* entry, uint64_t token) {
  if (entry == nullptr) return false;
  if (entry->spec.probability <= 0.0) return false;
  if (entry->spec.probability < 1.0 &&
      UniformDraw(config->seed, entry->hash, token) >=
          entry->spec.probability) {
    return false;
  }
  if (entry->spec.max_triggers >= 0) {
    // Atomically claim one of the bounded triggers.
    int64_t claimed = entry->fires.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= entry->spec.max_triggers) return false;
  } else {
    entry->fires.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace

Result<std::vector<SiteSpec>> ParseFaultSpec(std::string_view spec) {
  std::vector<SiteSpec> sites;
  if (StrTrim(spec).empty()) return sites;
  for (const std::string& raw : StrSplit(spec, ',')) {
    std::string entry = StrTrim(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrCat("fault spec entry '", entry, "' is not site=prob[:max]"));
    }
    SiteSpec site;
    site.site = StrTrim(entry.substr(0, eq));
    std::string value = entry.substr(eq + 1);
    size_t colon = value.find(':');
    std::string prob_text =
        colon == std::string::npos ? value : value.substr(0, colon);
    if (!ParseDouble(StrTrim(prob_text), &site.probability) ||
        site.probability < 0.0 || site.probability > 1.0) {
      return Status::InvalidArgument(
          StrCat("fault spec entry '", entry,
                 "' has a bad probability (want [0, 1])"));
    }
    if (colon != std::string::npos) {
      long long max_triggers = 0;
      if (!ParseInt64(StrTrim(value.substr(colon + 1)), &max_triggers) ||
          max_triggers < 0) {
        return Status::InvalidArgument(
            StrCat("fault spec entry '", entry, "' has a bad max_triggers"));
      }
      site.max_triggers = max_triggers;
    }
    sites.push_back(std::move(site));
  }
  return sites;
}

bool Active() {
  // Cheap steady-state check; falls through to lazy env configuration
  // exactly once per process.
  static std::once_flag once;
  std::call_once(once, [] { ActiveConfig(); });
  return g_active.load(std::memory_order_relaxed);
}

bool ShouldFail(std::string_view site) {
  std::shared_ptr<Config> config = ActiveConfig();
  Entry* entry = FindEntry(config.get(), site);
  if (entry == nullptr) return false;
  uint64_t token = static_cast<uint64_t>(
      entry->evaluations.fetch_add(1, std::memory_order_relaxed));
  return Decide(config.get(), entry, token);
}

bool ShouldFail(std::string_view site, uint64_t token) {
  std::shared_ptr<Config> config = ActiveConfig();
  Entry* entry = FindEntry(config.get(), site);
  if (entry == nullptr) return false;
  entry->evaluations.fetch_add(1, std::memory_order_relaxed);
  return Decide(config.get(), entry, token);
}

Status Configure(std::string_view spec, uint64_t seed) {
  Result<std::vector<SiteSpec>> parsed = ParseFaultSpec(spec);
  if (!parsed.ok()) return parsed.status();
  auto config = std::make_shared<Config>();
  config->seed = seed;
  for (SiteSpec& site : parsed.value()) {
    auto entry = std::make_unique<Entry>();
    entry->spec = std::move(site);
    entry->hash = HashString(entry->spec.site);
    config->entries.push_back(std::move(entry));
  }
  std::lock_guard<std::mutex> lock(ConfigMutex());
  g_active.store(!config->entries.empty(), std::memory_order_relaxed);
  ConfigSlot() = std::move(config);
  return Status::Ok();
}

void CrashNow(std::string_view site) {
  EMAF_LOG(WARNING) << "fault injection: simulated crash at '" << site
                    << "' (exit " << kCrashExitCode << ")";
  std::_Exit(kCrashExitCode);
}

}  // namespace emaf::fault

#endif  // EMAF_FAULT_INJECTION_ENABLED
