#include "common/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace emaf::obs {

namespace {

// Doubles in snapshots are printed round-trip exact so a snapshot diff
// never lies about what the registry held.
void AppendDouble(std::ostringstream* out, double v) {
  out->precision(17);
  *out << v;
}

void AppendQuoted(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ", ";
    first = false;
    AppendQuoted(&out, name);
    out << ": " << value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ", ";
    first = false;
    AppendQuoted(&out, name);
    out << ": ";
    AppendDouble(&out, value);
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ", ";
    first = false;
    AppendQuoted(&out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": ";
    AppendDouble(&out, h.sum);
    out << ", \"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out << ", ";
      AppendDouble(&out, h.bounds[i]);
    }
    out << "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << h.counts[i];
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

const std::vector<double>& DefaultSecondsBounds() {
  static const std::vector<double> bounds = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                             3e-2, 0.1,  0.3,  1.0,  3.0,
                                             10.0, 30.0};
  return bounds;
}

const std::vector<double>& DefaultValueBounds() {
  static const std::vector<double> bounds = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                             3e-2, 0.1,  0.3,  1.0,  3.0,
                                             10.0, 30.0, 100.0};
  return bounds;
}

#if EMAF_METRICS_ENABLED

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  EMAF_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EMAF_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose (inclusive) upper bound admits the value; the
  // overflow bucket is index bounds_.size().
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts = bucket_counts();
  snapshot.count = count();
  snapshot.sum = sum();
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // leaked: see header
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

#else  // !EMAF_METRICS_ENABLED

namespace {
Counter stub_counter;
Gauge stub_gauge;
Histogram stub_histogram{{}};
const std::vector<double> stub_bounds;
}  // namespace

const std::vector<double>& Histogram::bounds() const { return stub_bounds; }

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Counter* Registry::GetCounter(std::string_view) { return &stub_counter; }
Gauge* Registry::GetGauge(std::string_view) { return &stub_gauge; }
Histogram* Registry::GetHistogram(std::string_view, std::vector<double>) {
  return &stub_histogram;
}

#endif  // EMAF_METRICS_ENABLED

}  // namespace emaf::obs
