#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/env.h"
#include "common/string_util.h"

namespace emaf::obs {

namespace {

std::atomic<int64_t> next_thread_id{0};
thread_local int64_t tls_thread_id = -1;

int64_t ThreadIdImpl() {
  if (tls_thread_id < 0) {
    tls_thread_id = next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

#if EMAF_METRICS_ENABLED

struct TraceEvent {
  double ts_us;  // microseconds since recorder origin
  int64_t tid;
  char phase;  // 'B' or 'E'
  std::string name;
  const char* category;
};

// Leaked singleton: spans may close on worker threads during process
// teardown, after function-static destructors would have run.
struct TraceState {
  std::mutex mu;
  std::atomic<bool> enabled{false};
  std::string path;                 // guarded by mu
  std::vector<TraceEvent> events;   // guarded by mu
  bool atexit_registered = false;   // guarded by mu
  // Fixed at process start (never reset by Enable) so timestamps stay
  // monotone across enable/disable cycles.
  const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

TraceState& State() {
  static TraceState* state = new TraceState;
  return *state;
}

double NowMicros(const TraceState& state) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state.origin)
      .count();
}

void AtExitFlush() {
  // Best effort; a failed write at exit has no one left to report to.
  (void)Trace::Flush();
}

void InitFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::string path = GetEnvString("EMAF_TRACE_FILE", "");
    if (!path.empty()) Trace::Enable(path);
  });
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

#endif  // EMAF_METRICS_ENABLED

}  // namespace

int64_t Trace::CurrentThreadId() { return ThreadIdImpl(); }

#if EMAF_METRICS_ENABLED

bool Trace::Enabled() {
  InitFromEnvOnce();
  return State().enabled.load(std::memory_order_relaxed);
}

void Trace::Enable(const std::string& path) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.path = path;
  state.events.clear();
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(AtExitFlush);
  }
  state.enabled.store(true, std::memory_order_relaxed);
}

void Trace::Disable() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.enabled.store(false, std::memory_order_relaxed);
  state.events.clear();
}

Status Trace::Flush() {
  TraceState& state = State();
  std::string path;
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.enabled.load(std::memory_order_relaxed)) return Status::Ok();
    path = state.path;
    events.swap(state.events);
  }
  if (events.empty()) return Status::Ok();
  // Stable by timestamp: same-stamp begin/end pairs keep program order, so
  // the emitted stream is balanced and non-decreasing in ts.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open trace file: ", path));
  }
  out.precision(17);
  out << "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::string name;
    AppendEscaped(&name, e.name);
    out << "{\"name\": \"" << name << "\", \"cat\": \"" << e.category
        << "\", \"ph\": \"" << e.phase << "\", \"ts\": " << e.ts_us
        << ", \"pid\": 1, \"tid\": " << e.tid << "}"
        << (i + 1 < events.size() ? ",\n" : "\n");
  }
  out << "]}\n";
  out.flush();
  if (!out.good()) {
    return Status::Internal(StrCat("trace write failed: ", path));
  }
  return Status::Ok();
}

ScopedSpan::ScopedSpan(std::string name, const char* category)
    : active_(Trace::Enabled()),
      name_(std::move(name)),
      category_(category) {
  if (!active_) return;
  // The begin timestamp is taken here; both events are appended at
  // destruction under one lock, so the buffer only ever holds balanced
  // pairs (a Flush can never split a span).
  begin_ts_us_ = NowMicros(State());
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceState& state = State();
  double end_ts = NowMicros(state);
  int64_t tid = ThreadIdImpl();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.enabled.load(std::memory_order_relaxed)) return;
  state.events.push_back({begin_ts_us_, tid, 'B', name_, category_});
  state.events.push_back({end_ts, tid, 'E', name_, category_});
}

#else  // !EMAF_METRICS_ENABLED

bool Trace::Enabled() { return false; }
void Trace::Enable(const std::string&) {}
void Trace::Disable() {}
Status Trace::Flush() { return Status::Ok(); }

#endif  // EMAF_METRICS_ENABLED

}  // namespace emaf::obs
