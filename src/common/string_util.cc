#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iomanip>

namespace emaf {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string FormatFixed(double value, int digits) {
  std::ostringstream stream;
  stream << std::fixed << std::setprecision(digits) << value;
  return stream.str();
}

std::string FormatExact(double value) {
  std::ostringstream stream;
  stream.precision(17);
  stream << value;
  return stream.str();
}

bool ParseDouble(std::string_view text, double* value) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(trimmed.c_str(), &end);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return false;
  *value = parsed;
  return true;
}

bool ParseInt64(std::string_view text, long long* value) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno != 0 || end != trimmed.c_str() + trimmed.size()) return false;
  *value = parsed;
  return true;
}

}  // namespace emaf
