// Deterministic random number generation.
//
// Every stochastic component in emaf (weight init, dropout, data
// generation, random graphs) draws from an explicitly passed Rng, so a
// whole experiment is reproducible from a single seed. Rng also supports
// cheap forking (`Fork(stream_id)`) to derive independent per-individual /
// per-layer streams from one master seed.

#ifndef EMAF_COMMON_RNG_H_
#define EMAF_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace emaf {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent generator; distinct stream_ids give streams that
  // do not collide even when drawn in different orders.
  Rng Fork(uint64_t stream_id) const {
    // SplitMix64-style mixing of (seed, stream_id).
    uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return Rng(z);
  }

  uint64_t seed() const { return seed_; }

  double Uniform() { return uniform_(engine_); }
  double Uniform(double low, double high) {
    return low + (high - low) * Uniform();
  }
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return mean + stddev * normal_(engine_);
  }
  // Uniform integer in [low, high] inclusive.
  int64_t UniformInt(int64_t low, int64_t high);
  bool Bernoulli(double p) { return Uniform() < p; }

  // Fills `out` with iid draws.
  void FillUniform(std::vector<double>* out, double low, double high);
  void FillNormal(std::vector<double>* out, double mean, double stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int64_t i = static_cast<int64_t>(values->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(0, i);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Samples `count` distinct indices from [0, population).
  std::vector<int64_t> SampleWithoutReplacement(int64_t population,
                                                int64_t count);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace emaf

#endif  // EMAF_COMMON_RNG_H_
