// emaf::fault — deterministic fault injection for robustness testing.
//
// A fault "site" is a named point in the code that may be forced to fail:
//
//   if (EMAF_FAULT_SHOULD_FAIL("data.csv.load")) {
//     return Status::DataLoss("injected fault: data.csv.load");
//   }
//
// Which sites fail is controlled by EMAF_FAULT_SPEC, a comma-separated
// list of `site=probability[:max_triggers]` entries, e.g.
//
//   EMAF_FAULT_SPEC="trainer.step/A3TGCN:CORR:0.5:3:static=1,graph.construction=0.5:2"
//
// An entry matches a runtime site when it is equal to it, or is a prefix
// of it ending at a '/' boundary ("trainer.step" matches
// "trainer.step/<cell-key>/i0"); the longest matching entry wins, so a
// broad spec can be narrowed per cell or per individual. Decisions are
// deterministic: the n-th evaluation of an entry (or the evaluation with
// explicit token t) fires iff mix(EMAF_FAULT_SEED, entry, n-or-t) <
// probability, and `max_triggers` bounds how many evaluations may fire.
// Token-based checks (EMAF_FAULT_SHOULD_FAIL_T) are schedule-independent;
// counter-based checks depend on evaluation order across threads and are
// meant for probability-1 or single-threaded scenarios.
//
// Like emaf::obs, the whole subsystem compiles to nothing under
// -DEMAF_FAULT_INJECTION=OFF: every macro folds to a false/void constant,
// no emaf::fault symbol enters libemaf.a, and release numerics are
// provably untouched (the golden harness is run against both builds).
// Header-only stubs below keep test code compiling either way.

#ifndef EMAF_COMMON_FAULT_INJECTION_H_
#define EMAF_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

#if !defined(EMAF_FAULT_INJECTION_ENABLED)
#define EMAF_FAULT_INJECTION_ENABLED 1
#endif

namespace emaf::fault {

inline constexpr bool kFaultInjectionEnabled = EMAF_FAULT_INJECTION_ENABLED != 0;

// Exit code used by EMAF_FAULT_CRASH_POINT so a parent process (or test)
// can tell an injected crash from a genuine failure.
inline constexpr int kCrashExitCode = 86;

// One parsed EMAF_FAULT_SPEC entry.
struct SiteSpec {
  std::string site;
  double probability = 0.0;
  int64_t max_triggers = -1;  // < 0 = unlimited
};

#if EMAF_FAULT_INJECTION_ENABLED

// Parses an EMAF_FAULT_SPEC string. Empty input yields an empty list.
Result<std::vector<SiteSpec>> ParseFaultSpec(std::string_view spec);

// True when any site is configured. One relaxed atomic load — the fast
// path every EMAF_FAULT_* macro takes in a fault-free process.
bool Active();

// Counter-based decision for `site` (token = per-entry evaluation count).
bool ShouldFail(std::string_view site);
// Token-based decision: deterministic for a given (seed, entry, token)
// regardless of thread schedule. Use a stable id (epoch, StreamId).
bool ShouldFail(std::string_view site, uint64_t token);

// Replaces the active configuration (tests; also called lazily on first
// use with the EMAF_FAULT_SPEC / EMAF_FAULT_SEED environment variables).
// An empty spec deactivates injection. Not thread-safe against concurrent
// ShouldFail: reconfigure only between parallel regions.
Status Configure(std::string_view spec, uint64_t seed);

// Logs and terminates the process with kCrashExitCode, skipping all
// destructors — simulates a hard crash for checkpoint/resume testing.
[[noreturn]] void CrashNow(std::string_view site);

#else  // !EMAF_FAULT_INJECTION_ENABLED

// Inline no-op stubs so tests and tools referencing emaf::fault compile in
// OFF builds without pulling any symbol into the library.
inline Result<std::vector<SiteSpec>> ParseFaultSpec(std::string_view) {
  return std::vector<SiteSpec>{};
}
inline bool Active() { return false; }
inline bool ShouldFail(std::string_view) { return false; }
inline bool ShouldFail(std::string_view, uint64_t) { return false; }
inline Status Configure(std::string_view, uint64_t) { return Status::Ok(); }

#endif  // EMAF_FAULT_INJECTION_ENABLED

}  // namespace emaf::fault

// --- Injection-site macros -------------------------------------------------
// The OFF variants never evaluate their arguments, so sites may build
// dynamic names (StrCat(...)) without cost in release builds.

#if EMAF_FAULT_INJECTION_ENABLED

#define EMAF_FAULT_ACTIVE() (::emaf::fault::Active())
#define EMAF_FAULT_SHOULD_FAIL(site) \
  (::emaf::fault::Active() && ::emaf::fault::ShouldFail((site)))
#define EMAF_FAULT_SHOULD_FAIL_T(site, token) \
  (::emaf::fault::Active() && ::emaf::fault::ShouldFail((site), (token)))
// Hard-crash site (checkpoint testing): exits the process when it fires.
#define EMAF_FAULT_CRASH_POINT(site)                                   \
  do {                                                                 \
    if (::emaf::fault::Active() && ::emaf::fault::ShouldFail((site))) { \
      ::emaf::fault::CrashNow((site));                                 \
    }                                                                  \
  } while (0)

#else  // !EMAF_FAULT_INJECTION_ENABLED

#define EMAF_FAULT_ACTIVE() (false)
#define EMAF_FAULT_SHOULD_FAIL(site) (false)
#define EMAF_FAULT_SHOULD_FAIL_T(site, token) (false)
#define EMAF_FAULT_CRASH_POINT(site) ((void)0)

#endif  // EMAF_FAULT_INJECTION_ENABLED

#endif  // EMAF_COMMON_FAULT_INJECTION_H_
