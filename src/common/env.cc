#include "common/env.h"

#include <cstdlib>

#include "common/string_util.h"

namespace emaf {

int64_t GetEnvInt64(const char* name, int64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  long long parsed = 0;
  if (!ParseInt64(value, &parsed)) return default_value;
  return parsed;
}

double GetEnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) return default_value;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* value = std::getenv(name);
  return value == nullptr ? default_value : std::string(value);
}

bool GetEnvBool(const char* name, bool default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  std::string lowered = ToLower(value);
  if (lowered == "1" || lowered == "true" || lowered == "yes" ||
      lowered == "on") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "no" ||
      lowered == "off") {
    return false;
  }
  return default_value;
}

}  // namespace emaf
