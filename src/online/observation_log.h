// Append-only observation journal for streaming EMA ingestion (DESIGN.md,
// "Online ingestion & hot-swap").
//
// One file per individual (`<dir>/<id>.obslog`), one observation row per
// line, in the checkpoint journal's checksummed text format:
//
//   <crc32-hex>|v1|<seq>|<val0>|<val1>|...|<valN-1>
//
// The CRC-32 (same IEEE polynomial as core/checkpoint) covers everything
// after the first '|'; values are 17-significant-digit doubles
// (FormatExact), so a replayed row is bit-for-bit the appended row.
// Sequence numbers are assigned by the log, start at 1 per individual, and
// are strictly contiguous — a gap means lost data and fails recovery.
//
// Crash tolerance mirrors the checkpoint journal: a torn final line (the
// process died mid-append) is detected by its checksum, counted, and
// truncated away at Open so subsequent appends cannot bury corruption in
// the middle of the file; a corrupt or out-of-sequence record anywhere
// earlier is kDataLoss naming the file and line, because silently dropping
// acknowledged observations would break the replay contract.
//
// Determinism: the in-memory row store is populated only by recovery and
// by Append, in order, so Tail/Replay are pure functions of the log-file
// prefix — the property the windowed graph builder and fine-tune pipeline
// lean on for bitwise-reproducible rebuilds.
//
// Concurrency: one mutex over the whole log. Appends are rare (EMA
// cadence is prompts-per-day), so sharding would buy nothing.
//
// Instrumentation: online.log.appends_total / torn_tails_total (counters),
// online.log.individuals (gauge). Fault site online.append/<id> fails one
// Append with kUnavailable before any bytes are written.

#ifndef EMAF_ONLINE_OBSERVATION_LOG_H_
#define EMAF_ONLINE_OBSERVATION_LOG_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace emaf::online {

struct ObservationLogOptions {
  // Expected row width. > 0 enforces it on every append and recovered
  // file; 0 lets each individual's first row fix its own width.
  int64_t num_variables = 0;
};

class ObservationLog {
 public:
  // Opens (creating if needed) the log directory and recovers every
  // existing `*.obslog` file in it. kDataLoss on mid-file corruption;
  // kInvalidArgument when a recovered row width contradicts
  // `options.num_variables`.
  static Result<ObservationLog> Open(const std::string& dir,
                                     const ObservationLogOptions& options = {});

  ObservationLog(ObservationLog&&) noexcept;
  ObservationLog& operator=(ObservationLog&&) noexcept;
  ~ObservationLog();

  // Appends one observation row for `id` (creating its file on first use),
  // flushes it to the OS, and returns the assigned sequence number.
  //   kInvalidArgument — empty id, id with path separators, empty row, or
  //                      width mismatch with the individual's prior rows;
  //   kUnavailable     — fault site online.append/<id> fired (nothing
  //                      written);
  //   kInternal        — the file could not be opened or written.
  Result<uint64_t> Append(const std::string& id, std::span<const double> row);

  // Every recovered-or-appended row for `id`, oldest first, as [N, V].
  // kNotFound for an unknown id, kFailedPrecondition when it has no rows.
  Result<tensor::Tensor> Replay(const std::string& id) const;

  // The most recent min(max_rows, rows(id)) rows, oldest first, as [N, V]
  // — the windowed builder's input. Same errors as Replay; max_rows >= 1.
  Result<tensor::Tensor> Tail(const std::string& id, int64_t max_rows) const;

  // Ids with at least one row (sorted).
  std::vector<std::string> individual_ids() const;
  // Rows held for `id` (0 for unknown ids).
  int64_t rows(const std::string& id) const;
  // Highest sequence number assigned to `id` (0 for unknown ids).
  uint64_t last_sequence(const std::string& id) const;
  // Torn trailing lines truncated during Open (one per file at most).
  int64_t torn_tails_recovered() const;

  const std::string& dir() const;

 private:
  struct Impl;
  ObservationLog();

  std::unique_ptr<Impl> impl_;
};

// Serialized line for one observation (no trailing newline) and its
// inverse. Exposed for tests and for offline tooling that wants to read a
// log without an ObservationLog instance.
std::string EncodeObservationLine(uint64_t sequence,
                                  std::span<const double> values);
struct DecodedObservation {
  uint64_t sequence = 0;
  std::vector<double> values;
};
Result<DecodedObservation> DecodeObservationLine(std::string_view line);

}  // namespace emaf::online

#endif  // EMAF_ONLINE_OBSERVATION_LOG_H_
