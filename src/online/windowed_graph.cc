#include "online/windowed_graph.h"

#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"

namespace emaf::online {

int64_t CountEdgeChanges(const graph::AdjacencyMatrix& a,
                         const graph::AdjacencyMatrix& b) {
  if (a.num_nodes() != b.num_nodes()) {
    // Different variable sets share no edges: every edge of each counts.
    return a.NumUndirectedEdges() + b.NumUndirectedEdges();
  }
  int64_t changed = 0;
  for (int64_t i = 0; i < a.num_nodes(); ++i) {
    for (int64_t j = i + 1; j < a.num_nodes(); ++j) {
      const bool in_a = a.at(i, j) != 0.0 || a.at(j, i) != 0.0;
      const bool in_b = b.at(i, j) != 0.0 || b.at(j, i) != 0.0;
      if (in_a != in_b) ++changed;
    }
  }
  return changed;
}

WindowedGraphBuilder::WindowedGraphBuilder(WindowedGraphOptions options)
    : options_(std::move(options)) {}

Result<graph::AdjacencyMatrix> WindowedGraphBuilder::Build(
    const ObservationLog& log, const std::string& id) {
  if (options_.build.metric == graph::GraphMetric::kRandom) {
    return Status::InvalidArgument(
        "windowed graph builds reject kRandom: replicas replaying one log "
        "must derive identical graphs");
  }
  if (options_.keep_fraction <= 0.0 || options_.keep_fraction > 1.0) {
    return Status::InvalidArgument(StrCat("keep_fraction must be in (0, 1], got ",
                                          options_.keep_fraction));
  }
  if (options_.window_rows < options_.min_rows) {
    return Status::InvalidArgument(
        StrCat("window_rows (", options_.window_rows, ") < min_rows (",
               options_.min_rows, ")"));
  }
  Result<tensor::Tensor> tail = log.Tail(id, options_.window_rows);
  if (!tail.ok()) return tail.status();
  const tensor::Tensor& window = tail.value();
  if (window.dim(0) < options_.min_rows) {
    return Status::FailedPrecondition(
        StrCat("individual ", id, " has ", window.dim(0),
               " observation rows; windowed graph build needs at least ",
               options_.min_rows));
  }
  graph::AdjacencyMatrix adjacency =
      graph::BuildSimilarityGraph(window, options_.build);
  if (options_.keep_fraction < 1.0) {
    adjacency = graph::KeepTopFraction(adjacency, options_.keep_fraction);
  }
  EMAF_METRIC_COUNTER_ADD("online.graph.builds_total", 1);
  auto prev = previous_.find(id);
  if (prev != previous_.end()) {
    const int64_t changed = CountEdgeChanges(prev->second, adjacency);
    edges_changed_[id] = changed;
    EMAF_METRIC_GAUGE_SET("online.graph.edges_changed",
                          static_cast<double>(changed));
    prev->second = adjacency;
  } else {
    previous_.emplace(id, adjacency);
  }
  return adjacency;
}

int64_t WindowedGraphBuilder::last_edges_changed(const std::string& id) const {
  auto it = edges_changed_.find(id);
  return it == edges_changed_.end() ? -1 : it->second;
}

}  // namespace emaf::online
