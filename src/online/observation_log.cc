#include "online/observation_log.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "tensor/tensor.h"

namespace emaf::online {

namespace {

constexpr char kLogExtension[] = ".obslog";
constexpr char kLineVersion[] = "v1";

}  // namespace

std::string EncodeObservationLine(uint64_t sequence,
                                  std::span<const double> values) {
  // Everything after the leading CRC field, built first so the CRC can
  // cover it — mirroring EncodeJournalRecord.
  std::string body = StrCat(kLineVersion, "|", sequence);
  for (double v : values) {
    body += '|';
    body += FormatExact(v);
  }
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", core::Crc32(body));
  return StrCat(crc, "|", body);
}

Result<DecodedObservation> DecodeObservationLine(std::string_view line) {
  const size_t bar = line.find('|');
  if (bar == std::string_view::npos) {
    return Status::InvalidArgument("observation line has no CRC delimiter");
  }
  const std::string_view crc_hex = line.substr(0, bar);
  const std::string_view body = line.substr(bar + 1);
  long long crc_value = 0;
  {
    // Hex parse by hand: ParseInt64 reads decimal.
    if (crc_hex.size() != 8) {
      return Status::InvalidArgument(
          StrCat("observation line CRC field must be 8 hex digits, got \"",
                 crc_hex, "\""));
    }
    for (char c : crc_hex) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        return Status::InvalidArgument(
            StrCat("observation line CRC field must be 8 hex digits, got \"",
                   crc_hex, "\""));
      }
      crc_value = (crc_value << 4) | digit;
    }
  }
  if (static_cast<uint32_t>(crc_value) != core::Crc32(body)) {
    return Status::DataLoss("observation line CRC mismatch");
  }
  const std::vector<std::string> fields = StrSplit(body, '|');
  if (fields.size() < 3) {
    return Status::InvalidArgument(StrCat(
        "observation line has ", fields.size(),
        " fields after the CRC; expected at least version|seq|value"));
  }
  if (fields[0] != kLineVersion) {
    return Status::InvalidArgument(
        StrCat("observation line version \"", fields[0], "\" (expected ",
               kLineVersion, ")"));
  }
  DecodedObservation out;
  long long seq = 0;
  if (!ParseInt64(fields[1], &seq) || seq <= 0) {
    return Status::InvalidArgument(
        StrCat("observation line sequence \"", fields[1],
               "\" is not a positive integer"));
  }
  out.sequence = static_cast<uint64_t>(seq);
  out.values.reserve(fields.size() - 2);
  for (size_t i = 2; i < fields.size(); ++i) {
    double value = 0.0;
    if (!ParseDouble(fields[i], &value)) {
      return Status::InvalidArgument(
          StrCat("observation line value ", i - 2, " \"", fields[i],
                 "\" is not a double"));
    }
    out.values.push_back(value);
  }
  return out;
}

// --- ObservationLog --------------------------------------------------------

struct ObservationLog::Impl {
  struct Individual {
    std::ofstream out;       // append mode, opened lazily / at recovery
    uint64_t last_seq = 0;
    int64_t num_variables = 0;
    std::vector<double> rows;  // row-major [rows, num_variables]
    int64_t num_rows = 0;
  };

  std::string dir;
  ObservationLogOptions options;
  mutable std::mutex mu;
  std::map<std::string, Individual> individuals;
  int64_t torn_tails = 0;

  std::string PathFor(const std::string& id) const {
    return (std::filesystem::path(dir) / StrCat(id, kLogExtension)).string();
  }
};

ObservationLog::ObservationLog() : impl_(std::make_unique<Impl>()) {}
ObservationLog::ObservationLog(ObservationLog&&) noexcept = default;
ObservationLog& ObservationLog::operator=(ObservationLog&&) noexcept = default;
ObservationLog::~ObservationLog() = default;

Result<ObservationLog> ObservationLog::Open(
    const std::string& dir, const ObservationLogOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    return Status::Internal(
        StrCat("cannot create observation log directory ", dir));
  }
  ObservationLog log;
  Impl& impl = *log.impl_;
  impl.dir = dir;
  impl.options = options;

  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == kLogExtension) {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return Status::Internal(StrCat("cannot list observation log directory ",
                                   dir, ": ", ec.message()));
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    const std::string id = path.stem().string();
    Impl::Individual ind;
    std::ifstream in(path);
    if (!in) {
      return Status::Internal(
          StrCat("cannot read observation log ", path.string()));
    }
    std::string line;
    int64_t lineno = 0;
    // Byte length of the valid prefix, so a torn tail can be truncated
    // away before the file is reopened for appending.
    uintmax_t valid_bytes = 0;
    bool torn = false;
    while (std::getline(in, line)) {
      ++lineno;
      const size_t line_bytes = line.size() + 1;  // '\n'
      if (!line.empty() && line.back() == '\r') line.pop_back();
      Result<DecodedObservation> decoded = DecodeObservationLine(line);
      const bool last_line = in.peek() == std::ifstream::traits_type::eof();
      if (!decoded.ok()) {
        if (last_line) {
          // Torn append during a crash: the acknowledged prefix is intact,
          // so recover it and drop the tail.
          torn = true;
          break;
        }
        return Status::DataLoss(StrCat("observation log ", path.string(),
                                       " line ", lineno, ": ",
                                       decoded.status().message()));
      }
      const DecodedObservation& obs = decoded.value();
      if (obs.sequence != ind.last_seq + 1) {
        return Status::DataLoss(StrCat(
            "observation log ", path.string(), " line ", lineno,
            ": sequence ", obs.sequence, " after ", ind.last_seq,
            " (must be contiguous)"));
      }
      const int64_t width = static_cast<int64_t>(obs.values.size());
      const int64_t expected =
          ind.num_variables > 0 ? ind.num_variables : options.num_variables;
      if (expected > 0 && width != expected) {
        return Status::InvalidArgument(
            StrCat("observation log ", path.string(), " line ", lineno,
                   ": row width ", width, " != expected ", expected));
      }
      ind.num_variables = width;
      ind.last_seq = obs.sequence;
      ind.rows.insert(ind.rows.end(), obs.values.begin(), obs.values.end());
      ++ind.num_rows;
      valid_bytes += line_bytes;
    }
    in.close();
    if (torn) {
      ++impl.torn_tails;
      EMAF_METRIC_COUNTER_ADD("online.log.torn_tails_total", 1);
      fs::resize_file(path, valid_bytes, ec);
      if (ec) {
        return Status::Internal(StrCat("cannot truncate torn tail of ",
                                       path.string(), ": ", ec.message()));
      }
    }
    ind.out.open(path, std::ios::app);
    if (!ind.out) {
      return Status::Internal(
          StrCat("cannot reopen observation log ", path.string()));
    }
    impl.individuals.emplace(id, std::move(ind));
  }
  EMAF_METRIC_GAUGE_SET("online.log.individuals",
                        static_cast<double>(impl.individuals.size()));
  return log;
}

Result<uint64_t> ObservationLog::Append(const std::string& id,
                                        std::span<const double> row) {
  if (id.empty() || id.find('/') != std::string::npos ||
      id.find('\\') != std::string::npos) {
    return Status::InvalidArgument(
        StrCat("invalid observation log id: \"", id, "\""));
  }
  if (row.empty()) {
    return Status::InvalidArgument("observation row is empty");
  }
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("online.append/", id))) {
    return Status::Unavailable(StrCat("injected fault: online.append/", id));
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto [it, inserted] = impl_->individuals.try_emplace(id);
  Impl::Individual& ind = it->second;
  const int64_t width = static_cast<int64_t>(row.size());
  const int64_t expected =
      ind.num_variables > 0 ? ind.num_variables : impl_->options.num_variables;
  if (expected > 0 && width != expected) {
    if (inserted) impl_->individuals.erase(it);
    return Status::InvalidArgument(StrCat("observation row width ", width,
                                          " != expected ", expected,
                                          " for individual ", id));
  }
  if (!ind.out.is_open()) {
    ind.out.open(impl_->PathFor(id), std::ios::app);
    if (!ind.out) {
      if (inserted) impl_->individuals.erase(it);
      return Status::Internal(
          StrCat("cannot open observation log ", impl_->PathFor(id)));
    }
    if (inserted) {
      EMAF_METRIC_GAUGE_SET("online.log.individuals",
                            static_cast<double>(impl_->individuals.size()));
    }
  }
  const uint64_t seq = ind.last_seq + 1;
  ind.out << EncodeObservationLine(seq, row) << '\n' << std::flush;
  if (!ind.out) {
    return Status::Internal(
        StrCat("write to observation log failed for individual ", id));
  }
  ind.last_seq = seq;
  ind.num_variables = width;
  ind.rows.insert(ind.rows.end(), row.begin(), row.end());
  ++ind.num_rows;
  EMAF_METRIC_COUNTER_ADD("online.log.appends_total", 1);
  return seq;
}

Result<tensor::Tensor> ObservationLog::Replay(const std::string& id) const {
  return Tail(id, std::numeric_limits<int64_t>::max());
}

Result<tensor::Tensor> ObservationLog::Tail(const std::string& id,
                                            int64_t max_rows) const {
  if (max_rows < 1) {
    return Status::InvalidArgument(
        StrCat("Tail(", id, "): max_rows must be >= 1, got ", max_rows));
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->individuals.find(id);
  if (it == impl_->individuals.end()) {
    return Status::NotFound(StrCat("no observations for individual: ", id));
  }
  const Impl::Individual& ind = it->second;
  if (ind.num_rows == 0) {
    return Status::FailedPrecondition(
        StrCat("individual ", id, " has no observation rows"));
  }
  const int64_t n = std::min(max_rows, ind.num_rows);
  tensor::Tensor out = tensor::Tensor::Zeros(tensor::Shape{n, ind.num_variables});
  const double* src =
      ind.rows.data() + (ind.num_rows - n) * ind.num_variables;
  std::copy(src, src + n * ind.num_variables, out.data());
  return out;
}

std::vector<std::string> ObservationLog::individual_ids() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> ids;
  ids.reserve(impl_->individuals.size());
  for (const auto& [id, ind] : impl_->individuals) {
    if (ind.num_rows > 0) ids.push_back(id);
  }
  return ids;
}

int64_t ObservationLog::rows(const std::string& id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->individuals.find(id);
  return it == impl_->individuals.end() ? 0 : it->second.num_rows;
}

uint64_t ObservationLog::last_sequence(const std::string& id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->individuals.find(id);
  return it == impl_->individuals.end() ? 0 : it->second.last_seq;
}

int64_t ObservationLog::torn_tails_recovered() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->torn_tails;
}

const std::string& ObservationLog::dir() const { return impl_->dir; }

}  // namespace emaf::online
