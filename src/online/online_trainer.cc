#include "online/online_trainer.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "nn/serialize.h"
#include "ts/window.h"

namespace emaf::online {

OnlineTrainer::OnlineTrainer(OnlineTrainOptions options)
    : options_(std::move(options)) {}

Result<FineTuneResult> OnlineTrainer::FineTune(
    const std::string& id, const std::string& snapshot_path,
    const tensor::Tensor& window_data,
    const std::optional<graph::AdjacencyMatrix>& adjacency) {
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("online.train/", id))) {
    return Status::Unavailable(StrCat("injected fault: online.train/", id));
  }
  Result<std::string> blob = nn::ReadSnapshotConfig(snapshot_path);
  if (!blob.ok()) return blob.status();
  if (blob.value().empty()) {
    return Status::InvalidArgument(
        StrCat("snapshot ", snapshot_path,
               " embeds no model config; online fine-tuning needs a v2+ "
               "snapshot"));
  }
  Result<models::ModelConfig> parsed = models::ParseModelConfig(blob.value());
  if (!parsed.ok()) return parsed.status();
  models::ModelConfig config = std::move(parsed).value();

  if (window_data.rank() != 2 || window_data.dim(1) != config.num_variables) {
    return Status::InvalidArgument(StrCat(
        "fine-tune window for ", id, " must be [T, ", config.num_variables,
        "] to match the snapshot config"));
  }
  const int64_t rows = window_data.dim(0);
  if (rows <= config.input_length) {
    return Status::FailedPrecondition(
        StrCat("fine-tune for ", id, " has ", rows,
               " rows but needs more than input_length=", config.input_length,
               " for one training window"));
  }
  if (adjacency.has_value() && config.adjacency.has_value()) {
    if (adjacency->num_nodes() != config.num_variables) {
      return Status::InvalidArgument(
          StrCat("re-derived adjacency has ", adjacency->num_nodes(),
                 " nodes; snapshot config expects ", config.num_variables));
    }
    config.adjacency = *adjacency;
  }

  const ts::WindowDataset train = ts::BuildWindows(
      window_data, config.input_length, /*start=*/0, /*end=*/rows,
      /*allow_context=*/false);

  Status last_divergence = Status::Ok();
  for (int64_t attempt = 0; attempt < std::max<int64_t>(1, options_.max_attempts);
       ++attempt) {
    // The seed folds in the attempt so a retry's dropout stream differs
    // from the diverged one, but each (snapshot, window, attempt) triple
    // is still fully deterministic.
    Rng rng(options_.seed + static_cast<uint64_t>(attempt));
    Result<std::unique_ptr<models::Forecaster>> built =
        models::CreateForecaster(config, &rng);
    if (!built.ok()) return built.status();
    std::unique_ptr<models::Forecaster> model = std::move(built).value();
    // Warm start: parameters load by name/shape, and the adjacency —
    // being a baked constant, not a parameter — may differ from the
    // snapshot's without any shape mismatch.
    EMAF_RETURN_IF_ERROR(nn::LoadParameters(model.get(), snapshot_path));

    // epochs <= 0 is a pure warm-start rebind: the snapshot's weights
    // under the (possibly swapped) adjacency, no optimizer step. Used by
    // tests to witness the warm start and by the bench's static arm.
    if (options_.epochs <= 0) {
      model->SetTraining(false);
      EMAF_METRIC_COUNTER_ADD("online.train.fine_tunes_total", 1);
      FineTuneResult out;
      out.model = std::move(model);
      out.config = std::move(config);
      out.attempts = attempt + 1;
      return out;
    }

    core::TrainConfig train_config;
    train_config.epochs = options_.epochs;
    train_config.learning_rate =
        options_.learning_rate / static_cast<double>(int64_t{1} << attempt);
    train_config.detect_divergence = true;
    // First attempt honors the configured clip; retries force it on, as
    // the offline divergence-recovery policy does.
    train_config.grad_clip_norm =
        attempt == 0 ? options_.grad_clip_norm
                     : (options_.grad_clip_norm > 0.0 ? options_.grad_clip_norm
                                                      : 5.0);
    train_config.fault_scope = StrCat("online/", id);
    core::TrainResult result =
        core::TrainForecaster(model.get(), train, train_config);
    if (!result.diverged) {
      model->SetTraining(false);
      EMAF_METRIC_COUNTER_ADD("online.train.fine_tunes_total", 1);
      FineTuneResult out;
      out.model = std::move(model);
      out.config = std::move(config);
      out.train = std::move(result);
      out.attempts = attempt + 1;
      return out;
    }
    EMAF_METRIC_COUNTER_ADD("online.train.divergence_retries_total", 1);
    last_divergence = Status::Aborted(StrCat(
        "fine-tune for ", id, " diverged at epoch ", result.divergence_epoch,
        " (attempt ", attempt + 1, "/", options_.max_attempts,
        ", lr=", train_config.learning_rate, ")"));
  }
  EMAF_METRIC_COUNTER_ADD("online.train.refused_total", 1);
  return Status(last_divergence.code(),
                StrCat(last_divergence.message(),
                       "; refusing to publish — the previous snapshot keeps "
                       "serving"));
}

}  // namespace emaf::online
