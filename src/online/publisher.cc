#include "online/publisher.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "serve/model_store.h"

namespace emaf::online {

namespace {

constexpr char kSnapshotExtension[] = ".snapshot";

// `<stem>.v<N>.snapshot` -> (id, N); nullopt when the name has no version
// component. Mirrors the parser ModelStore::Publish uses to derive its
// watermark, so the two sides always agree on what a filename means.
std::optional<std::pair<std::string, uint64_t>> SplitVersionedName(
    const std::string& filename) {
  const std::string_view name = filename;
  if (!name.ends_with(kSnapshotExtension)) return std::nullopt;
  const std::string_view stem =
      name.substr(0, name.size() - std::char_traits<char>::length(
                                       kSnapshotExtension));
  const size_t dot_v = stem.rfind(".v");
  if (dot_v == std::string_view::npos) return std::nullopt;
  const std::string_view digits = stem.substr(dot_v + 2);
  if (digits.empty()) return std::nullopt;
  uint64_t version = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    version = version * 10 + static_cast<uint64_t>(c - '0');
  }
  return std::make_pair(std::string(stem.substr(0, dot_v)), version);
}

}  // namespace

struct SnapshotPublisher::Impl {
  std::string dir;
  mutable std::mutex mu;
  std::map<std::string, uint64_t> versions;      // latest per id
  std::map<std::string, std::string> manifest;   // id -> relative path

  Status RewriteManifest() {
    namespace fs = std::filesystem;
    const fs::path manifest_path = fs::path(dir) / serve::kManifestFilename;
    const fs::path tmp_path = fs::path(dir) / ".MANIFEST.tmp";
    {
      std::ofstream out(tmp_path, std::ios::trunc);
      if (!out) {
        return Status::Internal(
            StrCat("cannot write manifest ", tmp_path.string()));
      }
      out << "# rewritten by SnapshotPublisher; id<TAB>relative-path\n";
      for (const auto& [id, rel] : manifest) {
        out << id << '\t' << rel << '\n';
      }
      out.flush();
      if (!out) {
        return Status::Internal(
            StrCat("write to manifest ", tmp_path.string(), " failed"));
      }
    }
    std::error_code ec;
    fs::rename(tmp_path, manifest_path, ec);
    if (ec) {
      fs::remove(tmp_path, ec);
      return Status::Internal(StrCat("cannot move manifest into place: ",
                                     manifest_path.string()));
    }
    return Status::Ok();
  }
};

SnapshotPublisher::SnapshotPublisher() : impl_(std::make_unique<Impl>()) {}
SnapshotPublisher::SnapshotPublisher(SnapshotPublisher&&) noexcept = default;
SnapshotPublisher& SnapshotPublisher::operator=(SnapshotPublisher&&) noexcept =
    default;
SnapshotPublisher::~SnapshotPublisher() = default;

Result<SnapshotPublisher> SnapshotPublisher::Open(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir)) {
    return Status::Internal(StrCat("cannot create publish directory ", dir));
  }
  SnapshotPublisher publisher;
  Impl& impl = *publisher.impl_;
  impl.dir = dir;
  // Seed version counters above anything ever published here, whether or
  // not MANIFEST still mentions it — monotonicity must survive restarts.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto split = SplitVersionedName(entry.path().filename().string());
    if (!split.has_value()) continue;
    uint64_t& version = impl.versions[split->first];
    version = std::max(version, split->second);
  }
  if (ec) {
    return Status::Internal(
        StrCat("cannot list publish directory ", dir, ": ", ec.message()));
  }
  const fs::path manifest_path = fs::path(dir) / serve::kManifestFilename;
  if (fs::is_regular_file(manifest_path, ec) && !ec) {
    std::ifstream in(manifest_path);
    if (!in) {
      return Status::Internal(
          StrCat("cannot read manifest ", manifest_path.string()));
    }
    std::string line;
    int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      const size_t tab = line.find('\t');
      if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
        return Status::InvalidArgument(
            StrCat("manifest ", manifest_path.string(), " line ", lineno,
                   ": expected `id<TAB>relative-path`, got \"", line, "\""));
      }
      impl.manifest[line.substr(0, tab)] = line.substr(tab + 1);
    }
  }
  return publisher;
}

Result<PublishedSnapshot> SnapshotPublisher::Publish(
    const std::string& id, models::Forecaster* model,
    const models::ModelConfig& config) {
  namespace fs = std::filesystem;
  if (id.empty() || id.find('/') != std::string::npos ||
      id.find('\\') != std::string::npos) {
    return Status::InvalidArgument(StrCat("invalid publish id: \"", id, "\""));
  }
  // Pre-mutation by contract: a publish fault must leave the previous
  // version — file and MANIFEST entry both — exactly as it was.
  if (EMAF_FAULT_SHOULD_FAIL(StrCat("online.publish/", id))) {
    return Status::Unavailable(StrCat("injected fault: online.publish/", id));
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  const uint64_t version = impl_->versions[id] + 1;
  const std::string filename =
      StrCat(id, ".v", version, kSnapshotExtension);
  const fs::path full = fs::path(impl_->dir) / filename;
  const fs::path tmp = fs::path(impl_->dir) / StrCat(".", filename, ".tmp");
  Status saved = models::SaveForecasterSnapshot(model, config, tmp.string());
  if (!saved.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return saved;
  }
  std::error_code ec;
  fs::rename(tmp, full, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Internal(
        StrCat("cannot move snapshot into place: ", full.string()));
  }
  // The versioned file is durable from here on: even if the manifest
  // rewrite below fails, the version counter stays consumed and a rescan
  // at next Open seeds above it.
  impl_->versions[id] = version;
  impl_->manifest[id] = filename;
  EMAF_RETURN_IF_ERROR(impl_->RewriteManifest());
  EMAF_METRIC_COUNTER_ADD("online.publish.published_total", 1);
  uint64_t max_version = 0;
  for (const auto& [_, v] : impl_->versions) max_version = std::max(max_version, v);
  EMAF_METRIC_GAUGE_SET("online.publish.max_version",
                        static_cast<double>(max_version));
  PublishedSnapshot out;
  out.path = full.string();
  out.version = version;
  return out;
}

uint64_t SnapshotPublisher::latest_version(const std::string& id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->versions.find(id);
  return it == impl_->versions.end() ? 0 : it->second;
}

Result<std::string> SnapshotPublisher::latest_path(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->manifest.find(id);
  if (it == impl_->manifest.end()) {
    return Status::NotFound(StrCat("no published snapshot for: ", id));
  }
  return (std::filesystem::path(impl_->dir) / it->second).string();
}

const std::string& SnapshotPublisher::dir() const { return impl_->dir; }

}  // namespace emaf::online
