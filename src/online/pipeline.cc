#include "online/pipeline.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"

namespace emaf::online {

OnlinePipeline::OnlinePipeline(ObservationLog* log,
                               SnapshotPublisher* publisher,
                               serve::ModelStore* store,
                               OnlinePipelineOptions options)
    : log_(log),
      publisher_(publisher),
      store_(store),
      options_(std::move(options)),
      graph_builder_(options_.graph),
      trainer_(options_.train) {}

Result<UpdateOutcome> OnlinePipeline::UpdateIndividual(const std::string& id) {
  [[maybe_unused]] std::chrono::steady_clock::time_point start;
  if constexpr (obs::kMetricsEnabled) {
    start = std::chrono::steady_clock::now();
  }
  auto refused = [](Result<UpdateOutcome> r) {
    EMAF_METRIC_COUNTER_ADD("online.pipeline.refused_total", 1);
    return r;
  };

  // Warm-start source: whatever the store is serving right now.
  Result<std::string> snapshot = store_->snapshot_path(id);
  if (!snapshot.ok()) return refused(snapshot.status());

  Result<tensor::Tensor> window = log_->Tail(id, options_.graph.window_rows);
  if (!window.ok()) return refused(window.status());

  // Graph re-derivation is best-effort below the builder's minimum: a
  // fine-tune on the snapshot's own graph still beats no update at all.
  std::optional<graph::AdjacencyMatrix> adjacency;
  bool rederived = false;
  if (options_.rederive_graph &&
      window.value().dim(0) >= options_.graph.min_rows) {
    Result<graph::AdjacencyMatrix> built = graph_builder_.Build(*log_, id);
    if (!built.ok()) return refused(built.status());
    adjacency = std::move(built).value();
    rederived = true;
  }

  Result<FineTuneResult> tuned =
      trainer_.FineTune(id, snapshot.value(), window.value(), adjacency);
  if (!tuned.ok()) return refused(tuned.status());

  Result<PublishedSnapshot> published = publisher_->Publish(
      id, tuned.value().model.get(), tuned.value().config);
  if (!published.ok()) return refused(published.status());

  // Only now — the new version durably on disk — does serving retarget.
  Status swapped = store_->Publish(id, published.value().path,
                                   published.value().version);
  if (!swapped.ok()) return refused(swapped);

  EMAF_METRIC_COUNTER_ADD("online.pipeline.updates_total", 1);
  if constexpr (obs::kMetricsEnabled) {
    EMAF_METRIC_HISTOGRAM_OBSERVE(
        "online.pipeline.update_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count(),
        obs::DefaultSecondsBounds());
  }
  UpdateOutcome outcome;
  outcome.version = published.value().version;
  outcome.path = published.value().path;
  outcome.rows_used = window.value().dim(0);
  // A build for a family that bakes no graph (LSTM/VAR, pure-learning
  // MTGNN) was ignored by the trainer; report what the published snapshot
  // actually carries.
  outcome.graph_rederived =
      rederived && tuned.value().config.adjacency.has_value();
  outcome.edges_changed = graph_builder_.last_edges_changed(id);
  outcome.final_loss = tuned.value().train.final_loss;
  outcome.attempts = tuned.value().attempts;
  return outcome;
}

}  // namespace emaf::online
