// Versioned snapshot publication for zero-downtime hot swap (DESIGN.md,
// "Online ingestion & hot-swap").
//
// A fine-tuned model becomes servable by writing a *new* snapshot file —
// never overwriting the one in service — named with a per-individual
// monotonic version: `<id>.v<N>.snapshot`. The write goes to a `.tmp`
// sibling first and is renamed into place, so a crash mid-publish leaves
// either the complete new file or nothing; the previous version is intact
// either way. After the file lands, the directory's MANIFEST is rewritten
// the same way (tmp + rename) to map the id to its newest version, which
// is what lets a serving process pick the swap up via
// ModelStore::ReloadManifest without restart.
//
// Version monotonicity is an invariant, not a convention: Open() scans
// both the MANIFEST and every `<id>.v<N>.snapshot` file already in the
// directory and seeds each id's counter above anything ever published
// there, so versions never regress across process restarts — the property
// the store's max_published_version watermark (and the health probe field
// built on it) relies on.
//
// Fault site online.publish/<id> fails a Publish before any byte is
// written, proving the old version keeps serving when publication fails.
// Instrumentation: online.publish.published_total (counter),
// online.publish.max_version (gauge).

#ifndef EMAF_ONLINE_PUBLISHER_H_
#define EMAF_ONLINE_PUBLISHER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "models/registry.h"

namespace emaf::online {

struct PublishedSnapshot {
  std::string path;  // absolute-ish: `<dir>/<id>.v<N>.snapshot`
  uint64_t version = 0;
};

class SnapshotPublisher {
 public:
  // Opens (creating if needed) `dir` and seeds each id's version counter
  // from existing `<id>.v<N>.snapshot` files and MANIFEST entries.
  static Result<SnapshotPublisher> Open(const std::string& dir);

  SnapshotPublisher(SnapshotPublisher&&) noexcept;
  SnapshotPublisher& operator=(SnapshotPublisher&&) noexcept;
  ~SnapshotPublisher();

  // Writes `model` (config embedded) as the next version of `id` and
  // rewrites MANIFEST to point at it. On any failure nothing observable
  // changes: the previous version's file and MANIFEST entry are intact.
  //   kUnavailable — fault site online.publish/<id> fired (pre-mutation);
  //   kInternal    — write/rename failed (tmp files cleaned up).
  Result<PublishedSnapshot> Publish(const std::string& id,
                                    models::Forecaster* model,
                                    const models::ModelConfig& config);

  // Latest published version of `id` (0 = never published here).
  uint64_t latest_version(const std::string& id) const;
  // Path MANIFEST currently maps `id` to; kNotFound when absent.
  Result<std::string> latest_path(const std::string& id) const;

  const std::string& dir() const;

 private:
  struct Impl;
  SnapshotPublisher();

  std::unique_ptr<Impl> impl_;
};

}  // namespace emaf::online

#endif  // EMAF_ONLINE_PUBLISHER_H_
