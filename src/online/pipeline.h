// OnlinePipeline: the closed loop from a live observation to a served
// forecast (DESIGN.md, "Online ingestion & hot-swap").
//
// UpdateIndividual(id) runs the whole chain for one individual:
//
//   ObservationLog tail  ->  WindowedGraphBuilder (re-derived adjacency)
//     ->  OnlineTrainer (warm start from the snapshot the store serves)
//     ->  SnapshotPublisher (new `<id>.v<N>.snapshot` + MANIFEST rewrite)
//     ->  ModelStore::Publish (zero-downtime hot swap)
//
// Each stage can refuse — too few rows, a diverged fine-tune, an injected
// publish fault — and a refusal anywhere leaves the previously published
// version serving untouched: the pipeline never mutates the store before
// the publisher has durably landed the new file.
//
// The graph stage is skipped (not failed) when the individual's window is
// still below the builder's minimum or the snapshot's family bakes no
// graph; the fine-tune then keeps the snapshot's own adjacency.
//
// Instrumentation: online.pipeline.updates_total / refused_total
// (counters), online.pipeline.update_seconds (histogram — the update
// latency the bench reports p50/p99 of).

#ifndef EMAF_ONLINE_PIPELINE_H_
#define EMAF_ONLINE_PIPELINE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "online/observation_log.h"
#include "online/online_trainer.h"
#include "online/publisher.h"
#include "online/windowed_graph.h"
#include "serve/model_store.h"

namespace emaf::online {

struct OnlinePipelineOptions {
  WindowedGraphOptions graph;
  OnlineTrainOptions train;
  // When false the fine-tune always keeps the snapshot's baked adjacency
  // (graph re-derivation off — the "static graph" ablation arm).
  bool rederive_graph = true;
};

struct UpdateOutcome {
  uint64_t version = 0;      // version just published and swapped in
  std::string path;          // its snapshot file
  int64_t rows_used = 0;     // log rows the fine-tune saw
  bool graph_rederived = false;
  int64_t edges_changed = -1;  // vs. previous build; -1 when unknown
  double final_loss = 0.0;
  int64_t attempts = 1;
};

class OnlinePipeline {
 public:
  // Borrows all four collaborators; they must outlive the pipeline. The
  // publisher's directory is typically the store's snapshot directory, so
  // ReloadManifest on a different process of the same directory converges
  // to the same mapping this pipeline pushes into `store` directly.
  OnlinePipeline(ObservationLog* log, SnapshotPublisher* publisher,
                 serve::ModelStore* store, OnlinePipelineOptions options);

  // Runs the full update chain for `id`. Error codes are the stages' own
  // (see each header); whatever the stage, a failure means the previous
  // snapshot version is still the one serving.
  Result<UpdateOutcome> UpdateIndividual(const std::string& id);

  const OnlinePipelineOptions& options() const { return options_; }

 private:
  ObservationLog* log_;
  SnapshotPublisher* publisher_;
  serve::ModelStore* store_;
  OnlinePipelineOptions options_;
  WindowedGraphBuilder graph_builder_;
  OnlineTrainer trainer_;
};

}  // namespace emaf::online

#endif  // EMAF_ONLINE_PIPELINE_H_
