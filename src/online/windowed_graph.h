// Sliding-window similarity-graph re-derivation for the online pipeline
// (DESIGN.md, "Online ingestion & hot-swap").
//
// The paper derives each individual's variable graph from their full EMA
// history once, offline. Streaming ingestion makes the history a moving
// target: as observations land, the graph that best explains the
// individual drifts. WindowedGraphBuilder re-derives the Section III-D
// similarity graph (EUC / kNN / DTW / CORR, then the GDT sparsification)
// over the most recent `window_rows` observations of the log — exactly
// the rows a ts::SlidingBuffer of that capacity would retain — so a
// fine-tune sees a graph matched to the data it trains on.
//
// Determinism: Build is a pure function of the log prefix it reads
// (ObservationLog::Tail is deterministic, the similarity builders are
// deterministic, kRandom is rejected), so two replicas replaying one log
// derive bitwise-identical graphs.
//
// Instrumentation: online.graph.builds_total (counter) and
// online.graph.edges_changed (gauge) — undirected edges whose presence
// differs between consecutive builds for the same individual, the drift
// signal an operator watches to decide how often fine-tunes are worth it.

#ifndef EMAF_ONLINE_WINDOWED_GRAPH_H_
#define EMAF_ONLINE_WINDOWED_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "graph/adjacency.h"
#include "graph/construction.h"
#include "online/observation_log.h"

namespace emaf::online {

struct WindowedGraphOptions {
  // Rows of log tail the graph is derived from. A build needs at least
  // `min_rows` to be meaningful (correlations over 2 rows are noise).
  int64_t window_rows = 64;
  int64_t min_rows = 8;
  // Section III-D builder configuration. kRandom is rejected at Build
  // time: a nondeterministic graph would break replica convergence.
  graph::GraphBuildOptions build;
  // Graph-density threshold applied after the metric (paper's GDT).
  double keep_fraction = 1.0;
};

class WindowedGraphBuilder {
 public:
  explicit WindowedGraphBuilder(WindowedGraphOptions options);

  // Derives the graph over the last min(window_rows, rows(id)) rows of
  // `log` for `id`.
  //   kInvalidArgument    — options request kRandom, or bad fraction;
  //   kNotFound           — `id` has no rows in the log;
  //   kFailedPrecondition — fewer than min_rows rows available.
  Result<graph::AdjacencyMatrix> Build(const ObservationLog& log,
                                       const std::string& id);

  // Undirected edge-presence difference between the last two Build calls
  // for `id` (-1 before the second build). Also exported as the
  // online.graph.edges_changed gauge.
  int64_t last_edges_changed(const std::string& id) const;

  const WindowedGraphOptions& options() const { return options_; }

 private:
  WindowedGraphOptions options_;
  // Previous build per individual, for the delta metric. Value semantics,
  // no locking: the pipeline owns one builder.
  std::map<std::string, graph::AdjacencyMatrix> previous_;
  std::map<std::string, int64_t> edges_changed_;
};

// Undirected edges present in exactly one of the two graphs (symmetric
// difference of the edge sets). Exposed for tests.
int64_t CountEdgeChanges(const graph::AdjacencyMatrix& a,
                         const graph::AdjacencyMatrix& b);

}  // namespace emaf::online

#endif  // EMAF_ONLINE_WINDOWED_GRAPH_H_
