// Few-epoch warm-start fine-tuning for streaming ingestion (DESIGN.md,
// "Online ingestion & hot-swap").
//
// The offline protocol (core/trainer) trains 300 epochs from random
// initialization. Online updates invert both choices: the model starts
// from the latest published snapshot's weights and takes only a few
// gentle epochs over the sliding window, so an update costs milliseconds
// and cannot wander far from a model that was already serving well.
//
// When the windowed graph builder re-derived a fresher adjacency, the
// warm start crosses graphs: the model is *constructed* from the
// snapshot's embedded config with the adjacency swapped (graph operators
// are baked constants, not parameters), then the snapshot's parameters
// are loaded by name/shape — valid because the adjacency never appears in
// the parameter list, so every shape matches.
//
// Divergence is refused, not published: the trainer reuses the offline
// divergence guard, retries a bounded number of times with a halved
// learning rate and gradient clipping forced on (the same recovery
// policy the experiment grid uses), and if every attempt diverges returns
// kAborted — the caller publishes nothing and the previous snapshot
// keeps serving.
//
// Instrumentation: online.train.fine_tunes_total /
// divergence_retries_total / refused_total (counters). Fault site
// online.train/<id> fails one FineTune with kUnavailable before any work.

#ifndef EMAF_ONLINE_ONLINE_TRAINER_H_
#define EMAF_ONLINE_ONLINE_TRAINER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "core/trainer.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "tensor/tensor.h"

namespace emaf::online {

struct OnlineTrainOptions {
  // Warm-start epochs per update (vs. 300 offline). <= 0 skips training
  // entirely: a pure warm-start rebind of the snapshot's weights under
  // the (possibly swapped) adjacency.
  int64_t epochs = 20;
  // First-attempt learning rate — a fifth of the offline 0.01, since the
  // weights already sit near a minimum.
  double learning_rate = 0.002;
  // Divergence retries: attempt k trains at learning_rate / 2^k with
  // grad_clip_norm forced on (the offline recovery policy).
  int64_t max_attempts = 2;
  double grad_clip_norm = 5.0;
  // Seeds model construction (weights are then overwritten by the warm
  // start, so this only fixes dropout/aux streams deterministically).
  uint64_t seed = 0xf1e77e5ULL;
};

struct FineTuneResult {
  // The fine-tuned model (train mode off) and the config it was built
  // from — the snapshot's embedded config, adjacency swapped when a
  // fresher one was supplied. Both feed straight into
  // SnapshotPublisher::Publish.
  std::unique_ptr<models::Forecaster> model;
  models::ModelConfig config;
  core::TrainResult train;
  int64_t attempts = 1;
};

class OnlineTrainer {
 public:
  explicit OnlineTrainer(OnlineTrainOptions options);

  // Warm-starts from `snapshot_path` and fine-tunes on all 1-lag windows
  // of `window_data` ([T, V], oldest first — an ObservationLog tail).
  // `adjacency`, when present, replaces the config's baked graph; it is
  // ignored for configs without one (LSTM/VAR, pure-graph-learning
  // MTGNN), where swapping would change the module structure.
  //   kUnavailable        — fault site online.train/<id> fired;
  //   kInvalidArgument    — snapshot config unreadable (v1 file), V
  //                         mismatch, or adjacency of the wrong size;
  //   kFailedPrecondition — too few rows for one training window;
  //   kAborted            — every attempt diverged; publish nothing, the
  //                         previous snapshot keeps serving.
  Result<FineTuneResult> FineTune(
      const std::string& id, const std::string& snapshot_path,
      const tensor::Tensor& window_data,
      const std::optional<graph::AdjacencyMatrix>& adjacency = std::nullopt);

  const OnlineTrainOptions& options() const { return options_; }

 private:
  OnlineTrainOptions options_;
};

}  // namespace emaf::online

#endif  // EMAF_ONLINE_ONLINE_TRAINER_H_
