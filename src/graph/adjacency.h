// AdjacencyMatrix: dense weighted V x V graph over the EMA variables.
//
// Similarity graphs in this library are non-negative, zero-diagonal and
// (for the distance-based builders) symmetric. The matrix is a plain value
// type; models convert it to the operator they need via graph/spectral.h.

#ifndef EMAF_GRAPH_ADJACENCY_H_
#define EMAF_GRAPH_ADJACENCY_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::graph {

class AdjacencyMatrix {
 public:
  // Zero matrix over `num_nodes` nodes.
  explicit AdjacencyMatrix(int64_t num_nodes);
  // From a square [V, V] tensor (values copied).
  static AdjacencyMatrix FromTensor(const tensor::Tensor& t);

  int64_t num_nodes() const { return num_nodes_; }

  double at(int64_t i, int64_t j) const;
  void set(int64_t i, int64_t j, double value);

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  // Number of nonzero off-diagonal entries (directed count).
  int64_t NumDirectedEdges() const;
  // Number of unordered {i, j} pairs with a nonzero weight in either
  // direction.
  int64_t NumUndirectedEdges() const;
  // NumDirectedEdges / (V * (V - 1)).
  double Density() const;

  bool IsSymmetric(double tolerance = 1e-12) const;
  bool IsNonNegative() const;
  bool HasZeroDiagonal(double tolerance = 1e-12) const;

  // In-place: A <- (A + A^T) / 2.
  void Symmetrize();
  void ZeroDiagonal();
  // Scales so the maximum entry is 1 (no-op on an all-zero matrix).
  void NormalizeMaxToOne();

  tensor::Tensor ToTensor() const;

  bool operator==(const AdjacencyMatrix& other) const {
    return num_nodes_ == other.num_nodes_ && values_ == other.values_;
  }

 private:
  int64_t num_nodes_;
  std::vector<double> values_;  // row-major [V, V]
};

}  // namespace emaf::graph

#endif  // EMAF_GRAPH_ADJACENCY_H_
