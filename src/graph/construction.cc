#include "graph/construction.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "ts/distance.h"
#include "ts/stats.h"

namespace emaf::graph {

namespace {

// Extracts column v of a [T, V] matrix.
std::vector<double> Column(const tensor::Tensor& data, int64_t v) {
  int64_t rows = data.dim(0);
  int64_t cols = data.dim(1);
  std::vector<double> out(static_cast<size_t>(rows));
  const double* d = data.data();
  for (int64_t t = 0; t < rows; ++t) out[static_cast<size_t>(t)] = d[t * cols + v];
  return out;
}

// Turns a symmetric distance matrix into Gaussian-kernel similarities.
AdjacencyMatrix KernelFromDistances(const std::vector<double>& dist,
                                    int64_t n) {
  // sigma = mean off-diagonal distance; an all-zero distance matrix (all
  // series identical) maps to the complete graph with unit weights.
  double total = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += dist[static_cast<size_t>(i * n + j)];
      ++count;
    }
  }
  double sigma = count > 0 ? total / static_cast<double>(count) : 1.0;
  if (sigma == 0.0) sigma = 1.0;
  AdjacencyMatrix adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double d = dist[static_cast<size_t>(i * n + j)];
      adj.set(i, j, std::exp(-(d * d) / (2.0 * sigma * sigma)));
    }
  }
  return adj;
}

AdjacencyMatrix BuildEuclidean(const tensor::Tensor& data) {
  int64_t n = data.dim(1);
  std::vector<std::vector<double>> cols(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) cols[static_cast<size_t>(v)] = Column(data, v);
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double d = ts::EuclideanDistance(cols[static_cast<size_t>(i)],
                                       cols[static_cast<size_t>(j)]);
      dist[static_cast<size_t>(i * n + j)] = d;
      dist[static_cast<size_t>(j * n + i)] = d;
    }
  }
  return KernelFromDistances(dist, n);
}

AdjacencyMatrix BuildKnn(const tensor::Tensor& data, int64_t k) {
  AdjacencyMatrix sim = BuildEuclidean(data);
  int64_t n = sim.num_nodes();
  EMAF_CHECK_GE(k, 1);
  AdjacencyMatrix out(n);
  std::vector<std::pair<double, int64_t>> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int64_t filled = 0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      row[static_cast<size_t>(filled++)] = {sim.at(i, j), j};
    }
    int64_t keep = std::min(k, filled);
    std::partial_sort(row.begin(), row.begin() + keep, row.begin() + filled,
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    for (int64_t r = 0; r < keep; ++r) {
      out.set(i, row[static_cast<size_t>(r)].second,
              row[static_cast<size_t>(r)].first);
    }
  }
  // Undirected: an edge exists if either endpoint selected it.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double v = std::max(out.at(i, j), out.at(j, i));
      out.set(i, j, v);
      out.set(j, i, v);
    }
  }
  return out;
}

AdjacencyMatrix BuildDtw(const tensor::Tensor& data, int64_t window) {
  int64_t n = data.dim(1);
  std::vector<std::vector<double>> cols(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) cols[static_cast<size_t>(v)] = Column(data, v);
  ts::DtwOptions options;
  options.window = window;
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double d = ts::DtwDistance(cols[static_cast<size_t>(i)],
                                 cols[static_cast<size_t>(j)], options);
      dist[static_cast<size_t>(i * n + j)] = d;
      dist[static_cast<size_t>(j * n + i)] = d;
    }
  }
  return KernelFromDistances(dist, n);
}

AdjacencyMatrix BuildCorrelation(const tensor::Tensor& data) {
  int64_t n = data.dim(1);
  std::vector<std::vector<double>> cols(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) cols[static_cast<size_t>(v)] = Column(data, v);
  AdjacencyMatrix adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double r = std::abs(ts::PearsonCorrelation(cols[static_cast<size_t>(i)],
                                                 cols[static_cast<size_t>(j)]));
      adj.set(i, j, r);
      adj.set(j, i, r);
    }
  }
  return adj;
}

AdjacencyMatrix BuildRandom(int64_t n, Rng* rng) {
  EMAF_CHECK(rng != nullptr) << "random graphs need an Rng";
  AdjacencyMatrix adj(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double w = rng->Uniform();
      adj.set(i, j, w);
      adj.set(j, i, w);
    }
  }
  return adj;
}

}  // namespace

std::string GraphMetricName(GraphMetric metric) {
  switch (metric) {
    case GraphMetric::kEuclidean:
      return "EUC";
    case GraphMetric::kKnn:
      return "kNN";
    case GraphMetric::kDtw:
      return "DTW";
    case GraphMetric::kCorrelation:
      return "CORR";
    case GraphMetric::kRandom:
      return "RAND";
  }
  return "UNKNOWN";
}

AdjacencyMatrix BuildSimilarityGraph(const tensor::Tensor& data,
                                     const GraphBuildOptions& options,
                                     Rng* rng) {
  EMAF_CHECK_EQ(data.rank(), 2) << "expected [T, V]";
  EMAF_CHECK_GE(data.dim(0), 2) << "need at least two time points";
  EMAF_CHECK_GE(data.dim(1), 2) << "need at least two variables";
  EMAF_TRACE_SPAN_DYN(StrCat("BuildGraph/", GraphMetricName(options.metric)));
  EMAF_METRIC_SCOPED_TIMER("graph.build_seconds");
  EMAF_METRIC_COUNTER_ADD_DYN(
      StrCat("graph.builds_total.", GraphMetricName(options.metric)), 1);
  AdjacencyMatrix graph(1);
  switch (options.metric) {
    case GraphMetric::kEuclidean:
      graph = BuildEuclidean(data);
      break;
    case GraphMetric::kKnn:
      graph = BuildKnn(data, options.knn_k);
      break;
    case GraphMetric::kDtw:
      graph = BuildDtw(data, options.dtw_window);
      break;
    case GraphMetric::kCorrelation:
      graph = BuildCorrelation(data);
      break;
    case GraphMetric::kRandom:
      graph = BuildRandom(data.dim(1), rng);
      break;
    default:
      EMAF_CHECK(false) << "unknown graph metric";
  }
  if (EMAF_FAULT_SHOULD_FAIL("graph.construction")) {
    // NaN-poison one edge weight: downstream numeric-health guards
    // (HasNonFinite in ExperimentRunner) must catch this before training.
    graph.set(0, 1, std::numeric_limits<double>::quiet_NaN());
    graph.set(1, 0, std::numeric_limits<double>::quiet_NaN());
  }
  return graph;
}

AdjacencyMatrix KeepTopFraction(const AdjacencyMatrix& adjacency,
                                double fraction) {
  EMAF_CHECK_GT(fraction, 0.0);
  EMAF_CHECK_LE(fraction, 1.0);
  EMAF_CHECK(adjacency.IsSymmetric(1e-9))
      << "KeepTopFraction requires a symmetric graph";
  if (fraction == 1.0) return adjacency;
  int64_t n = adjacency.num_nodes();
  std::vector<std::pair<double, std::pair<int64_t, int64_t>>> pairs;
  pairs.reserve(static_cast<size_t>(n * (n - 1) / 2));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      pairs.push_back({adjacency.at(i, j), {i, j}});
    }
  }
  int64_t keep = static_cast<int64_t>(
      std::llround(fraction * static_cast<double>(pairs.size())));
  keep = std::max<int64_t>(keep, 1);
  keep = std::min<int64_t>(keep, static_cast<int64_t>(pairs.size()));
  std::partial_sort(pairs.begin(), pairs.begin() + keep, pairs.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  AdjacencyMatrix out(n);
  for (int64_t e = 0; e < keep; ++e) {
    auto [w, ij] = pairs[static_cast<size_t>(e)];
    out.set(ij.first, ij.second, w);
    out.set(ij.second, ij.first, w);
  }
  return out;
}

AdjacencyMatrix RandomGraphWithEdgeCount(int64_t num_nodes,
                                         int64_t num_undirected_edges,
                                         Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  int64_t max_edges = num_nodes * (num_nodes - 1) / 2;
  EMAF_CHECK_GE(num_undirected_edges, 0);
  EMAF_CHECK_LE(num_undirected_edges, max_edges);
  std::vector<int64_t> chosen =
      rng->SampleWithoutReplacement(max_edges, num_undirected_edges);
  // Map flat pair index -> (i, j), i < j.
  AdjacencyMatrix adj(num_nodes);
  for (int64_t flat : chosen) {
    int64_t i = 0;
    int64_t remaining = flat;
    int64_t row_size = num_nodes - 1;
    while (remaining >= row_size) {
      remaining -= row_size;
      ++i;
      --row_size;
    }
    int64_t j = i + 1 + remaining;
    double w = rng->Uniform(0.1, 1.0);
    adj.set(i, j, w);
    adj.set(j, i, w);
  }
  return adj;
}

}  // namespace emaf::graph
