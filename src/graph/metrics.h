// Comparisons and summary statistics over graphs — used to characterize
// constructed graphs (Table I scenarios) and to compare MTGNN-learned
// graphs against static ones (Experiment C reports their correlation).

#ifndef EMAF_GRAPH_METRICS_H_
#define EMAF_GRAPH_METRICS_H_

#include "graph/adjacency.h"

namespace emaf::graph {

struct DegreeStats {
  double mean_degree = 0.0;      // unweighted, off-diagonal
  double max_degree = 0.0;
  double mean_strength = 0.0;    // weighted degree
  int64_t isolated_nodes = 0;
};

DegreeStats ComputeDegreeStats(const AdjacencyMatrix& adjacency);

// Pearson correlation between the off-diagonal entries of two graphs over
// the same node set (what the paper reports as "88% correlation" between
// the learned and static graph).
double GraphCorrelation(const AdjacencyMatrix& a, const AdjacencyMatrix& b);

// Jaccard overlap of undirected edge sets.
double EdgeJaccard(const AdjacencyMatrix& a, const AdjacencyMatrix& b);

struct RecoveryScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Scores how well `candidate`'s strongest edges recover the edges of
// `ground_truth`: the candidate is thresholded to the same undirected edge
// count as the truth, then precision/recall/F1 are computed on edge sets.
RecoveryScore ScoreEdgeRecovery(const AdjacencyMatrix& candidate,
                                const AdjacencyMatrix& ground_truth);

}  // namespace emaf::graph

#endif  // EMAF_GRAPH_METRICS_H_
