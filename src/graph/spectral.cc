#include "graph/spectral.h"

#include <cmath>

#include "common/check.h"

namespace emaf::graph {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Degree of each row of a (possibly self-looped) adjacency copy.
std::vector<double> RowDegrees(const std::vector<double>& a, int64_t n) {
  std::vector<double> deg(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < n; ++j) total += a[static_cast<size_t>(i * n + j)];
    deg[static_cast<size_t>(i)] = total;
  }
  return deg;
}

std::vector<double> WithSelfLoops(const AdjacencyMatrix& adjacency,
                                  bool add_self_loops) {
  int64_t n = adjacency.num_nodes();
  std::vector<double> a = adjacency.values();
  if (add_self_loops) {
    for (int64_t i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += 1.0;
  }
  return a;
}

}  // namespace

Tensor SymNormalizedAdjacency(const AdjacencyMatrix& adjacency,
                              bool add_self_loops) {
  int64_t n = adjacency.num_nodes();
  std::vector<double> a = WithSelfLoops(adjacency, add_self_loops);
  std::vector<double> deg = RowDegrees(a, n);
  std::vector<double> inv_sqrt(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double d = deg[static_cast<size_t>(i)];
    inv_sqrt[static_cast<size_t>(i)] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      a[static_cast<size_t>(i * n + j)] *= inv_sqrt[static_cast<size_t>(i)] *
                                           inv_sqrt[static_cast<size_t>(j)];
    }
  }
  return Tensor::FromVector(Shape{n, n}, std::move(a));
}

Tensor RowNormalizedAdjacency(const AdjacencyMatrix& adjacency,
                              bool add_self_loops) {
  int64_t n = adjacency.num_nodes();
  std::vector<double> a = WithSelfLoops(adjacency, add_self_loops);
  std::vector<double> deg = RowDegrees(a, n);
  for (int64_t i = 0; i < n; ++i) {
    double d = deg[static_cast<size_t>(i)];
    if (d == 0.0) continue;
    for (int64_t j = 0; j < n; ++j) {
      a[static_cast<size_t>(i * n + j)] /= d;
    }
  }
  return Tensor::FromVector(Shape{n, n}, std::move(a));
}

double PowerIterationEigenvalue(const Tensor& matrix, int64_t max_iterations,
                                double tolerance) {
  EMAF_CHECK_EQ(matrix.rank(), 2);
  EMAF_CHECK_EQ(matrix.dim(0), matrix.dim(1));
  int64_t n = matrix.dim(0);
  const double* m = matrix.data();
  std::vector<double> v(static_cast<size_t>(n), 1.0 / std::sqrt(n));
  std::vector<double> mv(static_cast<size_t>(n), 0.0);
  double lambda = 0.0;
  for (int64_t it = 0; it < max_iterations; ++it) {
    for (int64_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        acc += m[i * n + j] * v[static_cast<size_t>(j)];
      }
      mv[static_cast<size_t>(i)] = acc;
    }
    double norm = 0.0;
    for (double x : mv) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == 0.0) return 0.0;  // matrix annihilates the iterate
    double new_lambda = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      new_lambda += v[static_cast<size_t>(i)] * mv[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < n; ++i) {
      v[static_cast<size_t>(i)] = mv[static_cast<size_t>(i)] / norm;
    }
    if (std::abs(new_lambda - lambda) < tolerance) return new_lambda;
    lambda = new_lambda;
  }
  return lambda;
}

Tensor ScaledLaplacian(const AdjacencyMatrix& adjacency) {
  int64_t n = adjacency.num_nodes();
  // L = I - D^-1/2 A D^-1/2 (no self loops here: classic Laplacian).
  Tensor norm = SymNormalizedAdjacency(adjacency, /*add_self_loops=*/false);
  std::vector<double> l(static_cast<size_t>(n * n), 0.0);
  const double* a = norm.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      l[static_cast<size_t>(i * n + j)] = (i == j ? 1.0 : 0.0) - a[i * n + j];
    }
  }
  Tensor laplacian = Tensor::FromVector(Shape{n, n}, l);
  double lambda_max = PowerIterationEigenvalue(laplacian);
  if (!(lambda_max > 1e-9)) lambda_max = 2.0;  // safe spectral upper bound
  double* ld = laplacian.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ld[i * n + j] = 2.0 * ld[i * n + j] / lambda_max - (i == j ? 1.0 : 0.0);
    }
  }
  return laplacian;
}

std::vector<Tensor> ChebyshevPolynomials(const AdjacencyMatrix& adjacency,
                                         int64_t order) {
  EMAF_CHECK_GE(order, 1);
  int64_t n = adjacency.num_nodes();
  std::vector<Tensor> polys;
  polys.reserve(static_cast<size_t>(order));
  polys.push_back(Tensor::Eye(n));
  if (order == 1) return polys;
  Tensor scaled = ScaledLaplacian(adjacency);
  polys.push_back(scaled);
  const double* l = scaled.data();
  for (int64_t k = 2; k < order; ++k) {
    const double* prev = polys[static_cast<size_t>(k - 1)].data();
    const double* prev2 = polys[static_cast<size_t>(k - 2)].data();
    std::vector<double> next(static_cast<size_t>(n * n), 0.0);
    // next = 2 * L~ * prev - prev2
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t kk = 0; kk < n; ++kk) {
        double lik = l[i * n + kk];
        if (lik == 0.0) continue;
        for (int64_t j = 0; j < n; ++j) {
          next[static_cast<size_t>(i * n + j)] += 2.0 * lik * prev[kk * n + j];
        }
      }
      for (int64_t j = 0; j < n; ++j) {
        next[static_cast<size_t>(i * n + j)] -= prev2[i * n + j];
      }
    }
    polys.push_back(Tensor::FromVector(Shape{n, n}, std::move(next)));
  }
  return polys;
}

}  // namespace emaf::graph
