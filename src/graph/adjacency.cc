#include "graph/adjacency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace emaf::graph {

AdjacencyMatrix::AdjacencyMatrix(int64_t num_nodes)
    : num_nodes_(num_nodes),
      values_(static_cast<size_t>(num_nodes * num_nodes), 0.0) {
  EMAF_CHECK_GT(num_nodes, 0);
}

AdjacencyMatrix AdjacencyMatrix::FromTensor(const tensor::Tensor& t) {
  EMAF_CHECK_EQ(t.rank(), 2);
  EMAF_CHECK_EQ(t.dim(0), t.dim(1));
  AdjacencyMatrix adj(t.dim(0));
  adj.values_ = t.ToVector();
  return adj;
}

double AdjacencyMatrix::at(int64_t i, int64_t j) const {
  EMAF_CHECK_GE(i, 0);
  EMAF_CHECK_LT(i, num_nodes_);
  EMAF_CHECK_GE(j, 0);
  EMAF_CHECK_LT(j, num_nodes_);
  return values_[static_cast<size_t>(i * num_nodes_ + j)];
}

void AdjacencyMatrix::set(int64_t i, int64_t j, double value) {
  EMAF_CHECK_GE(i, 0);
  EMAF_CHECK_LT(i, num_nodes_);
  EMAF_CHECK_GE(j, 0);
  EMAF_CHECK_LT(j, num_nodes_);
  values_[static_cast<size_t>(i * num_nodes_ + j)] = value;
}

int64_t AdjacencyMatrix::NumDirectedEdges() const {
  int64_t count = 0;
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = 0; j < num_nodes_; ++j) {
      if (i != j && at(i, j) != 0.0) ++count;
    }
  }
  return count;
}

int64_t AdjacencyMatrix::NumUndirectedEdges() const {
  int64_t count = 0;
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = i + 1; j < num_nodes_; ++j) {
      if (at(i, j) != 0.0 || at(j, i) != 0.0) ++count;
    }
  }
  return count;
}

double AdjacencyMatrix::Density() const {
  if (num_nodes_ < 2) return 0.0;
  return static_cast<double>(NumDirectedEdges()) /
         static_cast<double>(num_nodes_ * (num_nodes_ - 1));
}

bool AdjacencyMatrix::IsSymmetric(double tolerance) const {
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = i + 1; j < num_nodes_; ++j) {
      if (std::abs(at(i, j) - at(j, i)) > tolerance) return false;
    }
  }
  return true;
}

bool AdjacencyMatrix::IsNonNegative() const {
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  return true;
}

bool AdjacencyMatrix::HasZeroDiagonal(double tolerance) const {
  for (int64_t i = 0; i < num_nodes_; ++i) {
    if (std::abs(at(i, i)) > tolerance) return false;
  }
  return true;
}

void AdjacencyMatrix::Symmetrize() {
  for (int64_t i = 0; i < num_nodes_; ++i) {
    for (int64_t j = i + 1; j < num_nodes_; ++j) {
      double v = 0.5 * (at(i, j) + at(j, i));
      set(i, j, v);
      set(j, i, v);
    }
  }
}

void AdjacencyMatrix::ZeroDiagonal() {
  for (int64_t i = 0; i < num_nodes_; ++i) set(i, i, 0.0);
}

void AdjacencyMatrix::NormalizeMaxToOne() {
  double max_v = 0.0;
  for (double v : values_) max_v = std::max(max_v, std::abs(v));
  if (max_v == 0.0) return;
  for (double& v : values_) v /= max_v;
}

tensor::Tensor AdjacencyMatrix::ToTensor() const {
  return tensor::Tensor::FromVector(tensor::Shape{num_nodes_, num_nodes_},
                                    values_);
}

}  // namespace emaf::graph
