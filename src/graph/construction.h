// Similarity-graph builders over an individual's [T, V] data matrix —
// the graph-construction strategies of Section III-D / Table I.
//
// Distance-based metrics (Euclidean, DTW) are converted to similarity
// weights with a Gaussian kernel exp(-d^2 / (2 sigma^2)), sigma = mean
// off-diagonal distance, so all builders produce weights in [0, 1] with a
// zero diagonal. Sparsification to a graph-density threshold (GDT) is a
// separate step (KeepTopFraction) so every metric is thresholded the same
// way.

#ifndef EMAF_GRAPH_CONSTRUCTION_H_
#define EMAF_GRAPH_CONSTRUCTION_H_

#include <string>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "tensor/tensor.h"
#include "ts/dtw.h"

namespace emaf::graph {

enum class GraphMetric {
  kEuclidean,    // Gaussian kernel of pairwise L2 distance
  kKnn,          // Euclidean similarity, k strongest neighbours per node
  kDtw,          // Gaussian kernel of pairwise DTW distance
  kCorrelation,  // |Pearson correlation|
  kRandom,       // uniform random symmetric weights (control condition)
};

// "EUC", "kNN", "DTW", "CORR", "RAND" — the labels used in the paper's
// tables.
std::string GraphMetricName(GraphMetric metric);

struct GraphBuildOptions {
  GraphMetric metric = GraphMetric::kCorrelation;
  // Neighbours kept per node for kKnn.
  int64_t knn_k = 5;
  // Sakoe-Chiba half-width for kDtw; < 0 = unconstrained.
  int64_t dtw_window = -1;
};

// Builds the similarity graph over the V columns of `data` ([T, V]).
// `rng` is required for kRandom and ignored otherwise.
AdjacencyMatrix BuildSimilarityGraph(const tensor::Tensor& data,
                                     const GraphBuildOptions& options,
                                     Rng* rng = nullptr);

// Keeps the strongest `fraction` of undirected off-diagonal weight pairs
// (the paper's GDT: 20%, 40%, 100%) and zeroes the rest. Requires a
// symmetric input; fraction 1.0 is the identity.
AdjacencyMatrix KeepTopFraction(const AdjacencyMatrix& adjacency,
                                double fraction);

// Random symmetric graph with exactly `num_undirected_edges` edges and
// uniform weights — used as the matched-edge-count control.
AdjacencyMatrix RandomGraphWithEdgeCount(int64_t num_nodes,
                                         int64_t num_undirected_edges,
                                         Rng* rng);

}  // namespace emaf::graph

#endif  // EMAF_GRAPH_CONSTRUCTION_H_
