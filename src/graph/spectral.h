// Spectral operators derived from an adjacency matrix: the constant tensors
// consumed by the GNN layers in nn/graph_conv.h.

#ifndef EMAF_GRAPH_SPECTRAL_H_
#define EMAF_GRAPH_SPECTRAL_H_

#include <vector>

#include "graph/adjacency.h"
#include "tensor/tensor.h"

namespace emaf::graph {

// D^-1/2 (A + I) D^-1/2 (Kipf-Welling renormalization trick). Isolated
// nodes keep their self-loop.
tensor::Tensor SymNormalizedAdjacency(const AdjacencyMatrix& adjacency,
                                      bool add_self_loops = true);

// D^-1 (A + I): row-stochastic propagation operator (MTGNN mix-hop).
tensor::Tensor RowNormalizedAdjacency(const AdjacencyMatrix& adjacency,
                                      bool add_self_loops = true);

// Scaled graph Laplacian 2 L / lambda_max - I with L = I - D^-1/2 A D^-1/2.
// lambda_max is estimated by power iteration (falls back to the safe upper
// bound 2 when iteration does not converge).
tensor::Tensor ScaledLaplacian(const AdjacencyMatrix& adjacency);

// Chebyshev polynomial stack T_0..T_{order-1} of the scaled Laplacian:
// T_0 = I, T_1 = L~, T_k = 2 L~ T_{k-1} - T_{k-2}.
std::vector<tensor::Tensor> ChebyshevPolynomials(
    const AdjacencyMatrix& adjacency, int64_t order);

// Largest-magnitude eigenvalue of a symmetric matrix, by power iteration.
double PowerIterationEigenvalue(const tensor::Tensor& matrix,
                                int64_t max_iterations = 200,
                                double tolerance = 1e-10);

}  // namespace emaf::graph

#endif  // EMAF_GRAPH_SPECTRAL_H_
