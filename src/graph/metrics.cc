#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "ts/stats.h"

namespace emaf::graph {

DegreeStats ComputeDegreeStats(const AdjacencyMatrix& adjacency) {
  int64_t n = adjacency.num_nodes();
  DegreeStats stats;
  double total_degree = 0.0;
  double total_strength = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t degree = 0;
    double strength = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double w = adjacency.at(i, j);
      if (w != 0.0) {
        ++degree;
        strength += w;
      }
    }
    total_degree += static_cast<double>(degree);
    total_strength += strength;
    stats.max_degree = std::max(stats.max_degree, static_cast<double>(degree));
    if (degree == 0) ++stats.isolated_nodes;
  }
  stats.mean_degree = total_degree / static_cast<double>(n);
  stats.mean_strength = total_strength / static_cast<double>(n);
  return stats;
}

double GraphCorrelation(const AdjacencyMatrix& a, const AdjacencyMatrix& b) {
  EMAF_CHECK_EQ(a.num_nodes(), b.num_nodes());
  int64_t n = a.num_nodes();
  std::vector<double> va;
  std::vector<double> vb;
  va.reserve(static_cast<size_t>(n * (n - 1)));
  vb.reserve(static_cast<size_t>(n * (n - 1)));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      va.push_back(a.at(i, j));
      vb.push_back(b.at(i, j));
    }
  }
  return ts::PearsonCorrelation(va, vb);
}

double EdgeJaccard(const AdjacencyMatrix& a, const AdjacencyMatrix& b) {
  EMAF_CHECK_EQ(a.num_nodes(), b.num_nodes());
  int64_t n = a.num_nodes();
  int64_t both = 0;
  int64_t either = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      bool in_a = a.at(i, j) != 0.0 || a.at(j, i) != 0.0;
      bool in_b = b.at(i, j) != 0.0 || b.at(j, i) != 0.0;
      if (in_a && in_b) ++both;
      if (in_a || in_b) ++either;
    }
  }
  return either == 0 ? 1.0 : static_cast<double>(both) / either;
}

RecoveryScore ScoreEdgeRecovery(const AdjacencyMatrix& candidate,
                                const AdjacencyMatrix& ground_truth) {
  EMAF_CHECK_EQ(candidate.num_nodes(), ground_truth.num_nodes());
  int64_t n = candidate.num_nodes();
  int64_t truth_edges = ground_truth.NumUndirectedEdges();
  RecoveryScore score;
  if (truth_edges == 0) return score;

  // Select the candidate's strongest `truth_edges` undirected pairs.
  std::vector<std::pair<double, int64_t>> pairs;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double w = std::max(std::abs(candidate.at(i, j)),
                          std::abs(candidate.at(j, i)));
      pairs.push_back({w, i * n + j});
    }
  }
  int64_t keep = std::min<int64_t>(truth_edges,
                                   static_cast<int64_t>(pairs.size()));
  std::partial_sort(pairs.begin(), pairs.begin() + keep, pairs.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  int64_t hits = 0;
  for (int64_t e = 0; e < keep; ++e) {
    if (pairs[static_cast<size_t>(e)].first == 0.0) break;  // no more edges
    int64_t i = pairs[static_cast<size_t>(e)].second / n;
    int64_t j = pairs[static_cast<size_t>(e)].second % n;
    if (ground_truth.at(i, j) != 0.0 || ground_truth.at(j, i) != 0.0) ++hits;
  }
  score.precision = static_cast<double>(hits) / static_cast<double>(keep);
  score.recall = static_cast<double>(hits) / static_cast<double>(truth_edges);
  double denom = score.precision + score.recall;
  score.f1 = denom > 0.0 ? 2.0 * score.precision * score.recall / denom : 0.0;
  return score;
}

}  // namespace emaf::graph
