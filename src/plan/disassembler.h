// Deterministic text rendering of a Plan, for humans and for the golden
// disassembly test (tests/golden/plan_*.txt): instruction-selection or
// fusion drift shows up as a diff, not a silent perf change.

#ifndef EMAF_PLAN_DISASSEMBLER_H_
#define EMAF_PLAN_DISASSEMBLER_H_

#include <string>

#include "plan/ir.h"

namespace emaf::plan {

std::string Disassemble(const Plan& plan);

}  // namespace emaf::plan

#endif  // EMAF_PLAN_DISASSEMBLER_H_
