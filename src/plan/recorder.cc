#include "plan/recorder.h"

#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "core/evaluator.h"
#include "plan/interpreter.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/plan_hook.h"

namespace emaf::plan {
namespace {

using tensor::Scalar;
using tensor::Shape;
using tensor::Tensor;
namespace ph = tensor::plan_hook;

// One recorded leaf op, inputs already resolved to slot refs. `value` is
// the op's SSA id (value 0 is the window; op i produces value i + 1).
struct Node {
  OpCode op;
  std::vector<SlotRef> inputs;
  Scalar s0 = 0.0;
  Scalar s1 = 0.0;
  std::vector<int64_t> ints;
  Shape out_shape;
  Tensor out_tensor;  // the warm-up value; becomes a constant if folded
  int32_t value = 0;
  bool dead = false;
};

// plan_hook::OpKind and OpCode share layout by construction; keep the
// cast checked at both ends.
static_assert(static_cast<int>(ph::OpKind::kAdd) ==
              static_cast<int>(OpCode::kAdd));
static_assert(static_cast<int>(ph::OpKind::kConv2d) ==
              static_cast<int>(OpCode::kConv2d));

class RecordingSink final : public ph::Sink {
 public:
  explicit RecordingSink(const Tensor& window) {
    slots_[window.impl().get()] = 0;
  }

  void Record(ph::OpRecord record) override {
    Node node;
    node.op = static_cast<OpCode>(record.kind);
    node.inputs.reserve(record.inputs.size());
    for (const Tensor& in : record.inputs) node.inputs.push_back(SlotFor(in));
    node.s0 = record.s0;
    node.s1 = record.s1;
    node.ints = std::move(record.ints);
    node.out_shape = record.output.shape();
    node.value = static_cast<int32_t>(nodes_.size()) + 1;
    // Later ops must resolve this output by impl identity; holding the
    // tensor also pins the impl address against reuse while recording.
    slots_[record.output.impl().get()] = node.value;
    node.out_tensor = std::move(record.output);
    nodes_.push_back(std::move(node));
  }

  // The slot a tensor resolves to: a previously recorded value, or a new
  // captured constant (parameters, baked operators, Zeros/Ones fills).
  SlotRef SlotFor(const Tensor& t) {
    if (t.impl() == nullptr) return kNoSlot;  // Conv2d's absent bias
    auto it = slots_.find(t.impl().get());
    if (it != slots_.end()) return it->second;
    SlotRef ref = ConstantRef(static_cast<int32_t>(constants_.size()));
    constants_.push_back(t);
    slots_[t.impl().get()] = ref;
    return ref;
  }

  // Resolves without capturing: kNoSlot when the tensor was never seen.
  SlotRef Lookup(const Tensor& t) const {
    auto it = slots_.find(t.impl().get());
    return it == slots_.end() ? kNoSlot : it->second;
  }

  std::vector<Node>& nodes() { return nodes_; }
  std::vector<Tensor>& constants() { return constants_; }

 private:
  std::unordered_map<const void*, SlotRef> slots_;
  std::vector<Node> nodes_;
  std::vector<Tensor> constants_;
};

bool IsElementwise(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kMaximum:
    case OpCode::kMinimum:
    case OpCode::kNeg:
    case OpCode::kExp:
    case OpCode::kLog:
    case OpCode::kSqrt:
    case OpCode::kAbs:
    case OpCode::kPow:
    case OpCode::kClamp:
    case OpCode::kAddScalar:
    case OpCode::kMulScalar:
    case OpCode::kRelu:
    case OpCode::kLeakyRelu:
    case OpCode::kElu:
    case OpCode::kSigmoid:
    case OpCode::kTanh:
      return true;
    default:
      return false;
  }
}

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()) || a.dtype() != b.dtype()) return false;
  return std::memcmp(a.raw_data(), b.raw_data(),
                     static_cast<size_t>(a.byte_size())) == 0;
}

}  // namespace

Result<std::shared_ptr<const Plan>> Compile(models::Forecaster* model,
                                            const Tensor& window) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK(window.impl() != nullptr);

  // ---- Record the warm-up forward. Arena routing is suspended so every
  // tensor the plan keeps (constants, the verification baseline) owns its
  // storage instead of borrowing a recyclable arena buffer.
  RecordingSink sink(window);
  Tensor recorded_out;
  {
    tensor::ArenaScope no_arena(nullptr);
    ph::ScopedSink scope(&sink);
    recorded_out = core::Predict(model, window);
  }

  std::vector<Node>& nodes = sink.nodes();
  std::vector<Tensor>& constants = sink.constants();
  SlotRef output = sink.Lookup(recorded_out);
  if (output == kNoSlot) {
    return Status::FailedPrecondition(
        StrCat("plan: ", model->name(),
               " forward is opaque to recording (output produced outside "
               "the hooked ops)"));
  }
  const int64_t recorded_ops = static_cast<int64_t>(nodes.size());

  // ---- Constant fold: an op fed only by constants is evaluated once at
  // record time (we already have its value) and dropped. This swallows
  // parameter-only subgraphs — MTGNN's graph learner, A3TGCN's period
  // attention — whole.
  std::vector<SlotRef> value_ref(nodes.size() + 1);
  value_ref[0] = kInputReg;
  for (Node& node : nodes) value_ref[node.value] = node.value;
  int64_t folded = 0;
  for (Node& node : nodes) {
    bool all_const = true;
    for (SlotRef& in : node.inputs) {
      if (IsRegister(in)) in = value_ref[in];  // producer may have folded
      if (IsRegister(in)) all_const = false;
    }
    if (!all_const) continue;
    SlotRef ref = ConstantRef(static_cast<int32_t>(constants.size()));
    constants.push_back(node.out_tensor);
    value_ref[node.value] = ref;
    node.dead = true;
    ++folded;
  }
  if (IsRegister(output)) output = value_ref[output];

  // ---- Dead-code elimination, backwards from the output.
  {
    std::vector<char> live(nodes.size() + 1, 0);
    if (IsRegister(output) && output != kInputReg) live[output] = 1;
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
      if (it->dead) continue;
      if (!live[it->value]) {
        it->dead = true;
        continue;
      }
      for (SlotRef in : it->inputs) {
        if (IsRegister(in) && in != kInputReg) live[in] = 1;
      }
    }
  }

  // ---- Fusion. Survivors in order; value -> surviving index maps.
  std::vector<int32_t> order;  // surviving node indices
  std::unordered_map<SlotRef, int32_t> producer;  // value -> index in order
  for (int32_t i = 0; i < static_cast<int32_t>(nodes.size()); ++i) {
    if (nodes[i].dead) continue;
    producer[nodes[i].value] = static_cast<int32_t>(order.size());
    order.push_back(i);
  }
  std::unordered_map<SlotRef, std::vector<int32_t>> consumers;
  for (int32_t k = 0; k < static_cast<int32_t>(order.size()); ++k) {
    for (SlotRef in : nodes[order[k]].inputs) {
      if (IsRegister(in) && in != kInputReg) consumers[in].push_back(k);
    }
  }
  auto shape_of = [&](SlotRef ref) -> const Shape& {
    if (IsConstant(ref)) return constants[ConstantIndex(ref)].shape();
    if (ref == kInputReg) return window.shape();
    return nodes[order[producer.at(ref)]].out_shape;
  };
  auto fusable = [&](const Node& node) {
    if (!IsElementwise(node.op)) return false;
    for (SlotRef in : node.inputs) {
      if (!(shape_of(in) == node.out_shape)) return false;
    }
    return true;
  };

  // chain_of[k]: index of the chain surviving-op k belongs to, else -1.
  std::vector<int32_t> chain_of(order.size(), -1);
  std::vector<std::vector<int32_t>> chains;  // member surviving-indices
  for (int32_t head = 0; head < static_cast<int32_t>(order.size()); ++head) {
    if (chain_of[head] >= 0 || !fusable(nodes[order[head]])) continue;
    std::vector<int32_t> members = {head};
    SlotRef tail = nodes[order[head]].value;
    while (tail != output) {
      auto it = consumers.find(tail);
      if (it == consumers.end() || it->second.size() != 1) break;
      int32_t next = it->second[0];
      const Node& cand = nodes[order[next]];
      if (chain_of[next] >= 0 || !fusable(cand)) break;
      // A binary extension's other operand must already exist when the
      // chain (placed at the head's position) runs: a constant, the
      // window, or a value produced before the head. Operands produced
      // between head and `next` would be pulled ahead of their producer.
      bool ok = true;
      for (SlotRef in : cand.inputs) {
        if (in == tail || !IsRegister(in)) continue;
        if (in != kInputReg && producer.at(in) >= head) ok = false;
      }
      if (!ok) break;
      members.push_back(next);
      tail = cand.value;
    }
    if (members.size() < 2) continue;
    for (int32_t m : members) chain_of[m] = static_cast<int32_t>(chains.size());
    chains.push_back(std::move(members));
  }

  // ---- Emit: registers in program order, chains at their head position
  // producing the final member's value. Constants are deep-copied into
  // the plan (a captured parameter tensor aliases the live module
  // storage; a folded value may be a Reshape view of one), so a compiled
  // plan is a true snapshot of the weights it was recorded from and owns
  // heap storage independent of any arena.
  tensor::ArenaScope no_arena(nullptr);
  auto plan = std::make_shared<Plan>();
  plan->family = model->name();
  plan->input_shape = window.shape();
  plan->output_shape = recorded_out.shape();
  plan->dtype = window.dtype();
  plan->recorded_ops = recorded_ops;
  plan->folded_constants = folded;

  std::unordered_map<SlotRef, int32_t> reg_of;  // value -> register
  reg_of[kInputReg] = kInputReg;
  std::unordered_map<int32_t, int32_t> const_of;  // old const idx -> new
  auto remap = [&](SlotRef ref) -> SlotRef {
    if (ref == kNoSlot || ref == kAccSlot) return ref;
    if (IsRegister(ref)) return reg_of.at(ref);
    auto [it, inserted] =
        const_of.try_emplace(ConstantIndex(ref),
                             static_cast<int32_t>(plan->constants.size()));
    if (inserted) {
      plan->constants.push_back(constants[ConstantIndex(ref)].Clone());
    }
    return ConstantRef(it->second);
  };

  for (int32_t k = 0; k < static_cast<int32_t>(order.size()); ++k) {
    const Node& node = nodes[order[k]];
    int32_t chain = chain_of[k];
    if (chain >= 0 && chains[chain][0] != k) continue;  // fused into head
    Instruction ins;
    int32_t out_value;
    if (chain < 0) {
      ins.op = node.op;
      ins.s0 = node.s0;
      ins.s1 = node.s1;
      ins.ints = node.ints;
      ins.out_shape = node.out_shape;
      for (SlotRef in : node.inputs) ins.inputs.push_back(remap(in));
      out_value = node.value;
    } else {
      const std::vector<int32_t>& members = chains[chain];
      ins.op = OpCode::kFusedChain;
      ins.inputs.push_back(remap(node.inputs[0]));  // the stream
      SlotRef tail = kNoSlot;  // head's step sees no accumulator yet
      for (size_t m = 0; m < members.size(); ++m) {
        const Node& step_node = nodes[order[members[m]]];
        FusedStep step;
        step.op = step_node.op;
        step.s0 = step_node.s0;
        step.s1 = step_node.s1;
        if (step_node.inputs.size() == 2) {
          SlotRef lhs = step_node.inputs[0];
          SlotRef rhs = step_node.inputs[1];
          if (m == 0) {
            // Head: inputs[0] streams, inputs[1] is the operand (they may
            // alias, e.g. Mul(x, x)).
            step.operand = remap(rhs);
            step.acc_rhs = false;
          } else if (lhs == tail && rhs == tail) {
            step.operand = kAccSlot;
          } else if (lhs == tail) {
            step.operand = remap(rhs);
            step.acc_rhs = false;
          } else {
            step.operand = remap(lhs);
            step.acc_rhs = true;
          }
        }
        ins.steps.push_back(step);
        tail = step_node.value;
      }
      const Node& last = nodes[order[members.back()]];
      ins.out_shape = last.out_shape;
      out_value = last.value;
      plan->fused_chains += 1;
      plan->fused_ops += static_cast<int64_t>(members.size());
    }
    ins.out = plan->num_regs++;
    reg_of[out_value] = ins.out;
    plan->instructions.push_back(std::move(ins));
  }
  plan->output = remap(output);

  // ---- Release lists: a register's backing buffer returns to the arena
  // right after its last reader, like module intermediates dying.
  {
    std::vector<int32_t> last_use(plan->num_regs, -1);
    for (int32_t k = 0; k < static_cast<int32_t>(plan->instructions.size());
         ++k) {
      const Instruction& ins = plan->instructions[k];
      for (SlotRef in : ins.inputs) {
        if (IsRegister(in)) last_use[in] = k;
      }
      for (const FusedStep& step : ins.steps) {
        if (IsRegister(step.operand)) last_use[step.operand] = k;
      }
    }
    if (IsRegister(plan->output)) last_use[plan->output] = -1;  // kept
    for (int32_t r = 0; r < plan->num_regs; ++r) {
      if (last_use[r] >= 0) {
        plan->instructions[last_use[r]].release.push_back(r);
      }
    }
  }

  // ---- Verify before anyone serves from this plan. First: replaying the
  // plan on the warm-up window must reproduce the recorded output
  // bitwise. Second: on a perturbed window, the plan must match a fresh
  // module forward bitwise — the check that catches input-dependent data
  // wrongly captured as a constant (a forward step the hooks cannot see
  // fails here, at compile time, instead of silently serving stale data).
  Result<Tensor> replay = Execute(*plan, window, nullptr);
  if (!replay.ok()) return replay.status();
  if (!BitwiseEqual(replay.value(), recorded_out)) {
    return Status::Internal(StrCat("plan: ", plan->family,
                                   " replay diverged from the recorded "
                                   "forward"));
  }
  Tensor probe = window.Clone();
  {
    // The nudge (multiples of 2^-7, exact in both dtypes) is applied in
    // the window's own element type.
    const int64_t n = probe.NumElements();
    if (probe.dtype() == tensor::DType::kF32) {
      float* d = probe.data<float>();
      for (int64_t i = 0; i < n; ++i) {
        d[i] += 0.0078125f * static_cast<float>(1 + (i % 5));
      }
    } else {
      Scalar* d = probe.data();
      for (int64_t i = 0; i < n; ++i) {
        d[i] += 0.0078125 * static_cast<Scalar>(1 + (i % 5));
      }
    }
  }
  Tensor module_probe;
  {
    tensor::ArenaScope no_arena(nullptr);
    module_probe = core::Predict(model, probe);
  }
  Result<Tensor> plan_probe = Execute(*plan, probe, nullptr);
  if (!plan_probe.ok()) return plan_probe.status();
  if (!BitwiseEqual(plan_probe.value(), module_probe)) {
    return Status::FailedPrecondition(
        StrCat("plan: ", plan->family,
               " forward does not track the input through hooked ops "
               "(perturbed-window verification failed)"));
  }

  EMAF_METRIC_COUNTER_ADD("plan.compiles_total", 1);
  EMAF_METRIC_COUNTER_ADD("plan.fused_chains", plan->fused_chains);
  return std::shared_ptr<const Plan>(std::move(plan));
}

}  // namespace emaf::plan
