// PlanCache: one compiled plan per resident model (DESIGN.md, "Compiled
// plans").
//
// The ModelStore hangs one PlanCache off each StoreEntry, created at cold
// load and dropped with the model at eviction — a reloaded model starts
// with an empty cache, so a stale plan can never outlive the weights it
// was recorded from. The cache holds the plan for the most recent window
// shape (EMA serving reuses one window geometry per tenant; a shape
// change recompiles and replaces). Compilation failures are remembered
// per shape so a forward the recorder cannot express degrades to the
// module path once, not per request; Disable() (the plan.execute fault
// reaction) turns the cache off permanently for this residency.

#ifndef EMAF_PLAN_PLAN_CACHE_H_
#define EMAF_PLAN_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "models/forecaster.h"
#include "plan/ir.h"
#include "tensor/tensor.h"

namespace emaf::plan {

class PlanCache {
 public:
  struct Acquired {
    // Null when the caller must run the module path (cache disabled, or
    // compilation failed for this shape).
    std::shared_ptr<const Plan> plan;
    // True when the plan was served without compiling on this call.
    bool hit = false;
  };

  // Returns the cached plan for window.shape(), compiling one if needed.
  // Thread-safe; concurrent callers for the same shape coalesce on the
  // cache mutex (one compiles, the rest wait and hit).
  Acquired GetOrCompile(models::Forecaster* model,
                        const tensor::Tensor& window);

  // Permanent module fallback for this cache (and thus this residency).
  void Disable() { disabled_.store(true, std::memory_order_relaxed); }
  bool disabled() const {
    return disabled_.load(std::memory_order_relaxed);
  }

  // Successful compiles over the cache lifetime (tests, bench).
  int64_t compiles() const {
    return compiles_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::shared_ptr<const Plan> plan_;
  tensor::Shape shape_;      // the shape plan_/failed_ refer to
  bool failed_ = false;      // Compile failed for shape_
  std::atomic<bool> disabled_{false};
  std::atomic<int64_t> compiles_{0};
};

}  // namespace emaf::plan

#endif  // EMAF_PLAN_PLAN_CACHE_H_
