// The kFusedChain per-element kernel.
//
// Lives in its own translation unit compiled with -ffp-contract=off: the
// staged module path evaluates each elementwise op as a separate loop, so
// no mul-then-add ever sits in one expression where the compiler could
// contract it into an FMA. The fused loop chains those expressions
// through `acc`, and under the toolchain's default contraction a
// Mul-step feeding an Add-step would become fma(a, b, c) — bitwise
// different from the staged bytes. Disabling contraction for just this
// TU restores the exact staged arithmetic at fused speed.

#ifndef EMAF_PLAN_FUSED_KERNEL_H_
#define EMAF_PLAN_FUSED_KERNEL_H_

#include <vector>

#include "plan/ir.h"
#include "tensor/tensor.h"

namespace emaf::plan {

// Runs instr.steps over every element of `stream`. operands[i] is the
// raw data pointer for step i's binary operand — elements of the stream's
// dtype (nullptr for unary steps and for kAccSlot steps, which read the
// accumulator instead). Allocates the output, of the stream's dtype, via
// MakeUninitialized under the caller's ArenaScope. The f32 path routes
// single-IEEE-op steps through the dispatched tensor/simd_f32.h kernels
// and keeps transcendental steps as float-pure scalar loops, so its bytes
// match the staged f32 module loops on either dispatch arm.
tensor::Tensor ExecuteFusedChain(const Instruction& instr,
                                 const tensor::Tensor& stream,
                                 const std::vector<const void*>& operands);

}  // namespace emaf::plan

#endif  // EMAF_PLAN_FUSED_KERNEL_H_
