// Compiled with -ffp-contract=off (see src/CMakeLists.txt) — the step
// formulas below must produce bit-identical results to the op lambdas in
// tensor/ops_elementwise.cc and tensor/ops_activation.cc, which each run
// in their own loop where no cross-op FMA contraction is possible.
//
// Execution is step-major: the output buffer starts as a copy of the
// stream, then each step runs as one tight pass over the whole buffer
// with the opcode switch hoisted out of the element loop, so the
// arithmetic cases vectorize like the original op loops do. Elements are
// independent, so per element this applies the exact same operations in
// the exact same order as a per-element chain would — bitwise identical —
// while the buffers involved (one chain's worth of activations) stay
// cache-resident between passes.
//
// The kernel is generic over the stream's element type. The f64 arm is
// the original scalar code (T-pure literals collapse to the same doubles).
// The f32 arm sends every single-IEEE-operation step (add/mul/max/relu/
// clamp/...) through tensor/simd_f32.h, whose AVX2 and scalar arms are
// bitwise-identical by contract, and keeps the transcendental steps
// (exp/log/pow/elu/sigmoid/tanh) as float-pure scalar loops that call the
// same libm floats the module-path op loops call.

#include "plan/fused_kernel.h"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "common/check.h"
#include "tensor/ops.h"
#include "tensor/simd_f32.h"

namespace emaf::plan {

using tensor::Scalar;
using tensor::Tensor;

namespace {

// One step applied across the whole buffer, in place. Mirrors the op
// lambdas verbatim: Sigmoid's branch-stable logistic, Elu's
// alpha * (exp(v) - 1), ... For binary steps `other` is the second
// operand array (dst itself when the step consumes the accumulator
// twice); for unary/scalar steps it is ignored.
template <typename T>
void ApplyStepT(const FusedStep& step, T* dst, const T* other, int64_t n) {
  auto binary = [&](auto op) {
    EMAF_CHECK(other != nullptr)
        << "binary fused step without an operand: " << OpCodeName(step.op);
    if (step.acc_rhs) {
      for (int64_t i = 0; i < n; ++i) dst[i] = op(other[i], dst[i]);
    } else {
      for (int64_t i = 0; i < n; ++i) dst[i] = op(dst[i], other[i]);
    }
  };
  switch (step.op) {
    case OpCode::kAdd:
      binary([](T a, T b) { return a + b; });
      break;
    case OpCode::kSub:
      binary([](T a, T b) { return a - b; });
      break;
    case OpCode::kMul:
      binary([](T a, T b) { return a * b; });
      break;
    case OpCode::kDiv:
      binary([](T a, T b) { return a / b; });
      break;
    case OpCode::kMaximum:
      binary([](T a, T b) { return a > b ? a : b; });
      break;
    case OpCode::kMinimum:
      binary([](T a, T b) { return a < b ? a : b; });
      break;
    case OpCode::kNeg:
      for (int64_t i = 0; i < n; ++i) dst[i] = -dst[i];
      break;
    case OpCode::kExp:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::exp(dst[i]);
      break;
    case OpCode::kLog:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::log(dst[i]);
      break;
    case OpCode::kSqrt:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::sqrt(dst[i]);
      break;
    case OpCode::kAbs:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::abs(dst[i]);
      break;
    case OpCode::kPow:
      // static_cast keeps the float instantiation on powf.
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = std::pow(dst[i], static_cast<T>(step.s0));
      }
      break;
    case OpCode::kClamp: {
      const T lo = static_cast<T>(step.s0);
      const T hi = static_cast<T>(step.s1);
      for (int64_t i = 0; i < n; ++i) {
        const T v = dst[i];
        dst[i] = v < lo ? lo : (v > hi ? hi : v);
      }
      break;
    }
    case OpCode::kAddScalar:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] + static_cast<T>(step.s0);
      break;
    case OpCode::kMulScalar:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] * static_cast<T>(step.s0);
      break;
    case OpCode::kRelu:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] > T(0) ? dst[i] : T(0);
      break;
    case OpCode::kLeakyRelu: {
      const T slope = static_cast<T>(step.s0);
      for (int64_t i = 0; i < n; ++i) {
        const T v = dst[i];
        dst[i] = v > T(0) ? v : slope * v;
      }
      break;
    }
    case OpCode::kElu: {
      const T alpha = static_cast<T>(step.s0);
      for (int64_t i = 0; i < n; ++i) {
        const T v = dst[i];
        dst[i] = v > T(0) ? v : alpha * (std::exp(v) - T(1));
      }
      break;
    }
    case OpCode::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        const T v = dst[i];
        if (v >= T(0)) {
          const T e = std::exp(-v);
          dst[i] = T(1) / (T(1) + e);
        } else {
          const T e = std::exp(v);
          dst[i] = e / (T(1) + e);
        }
      }
      break;
    case OpCode::kTanh:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::tanh(dst[i]);
      break;
    default:
      EMAF_CHECK(false) << "non-elementwise op in fused chain: "
                        << OpCodeName(step.op);
  }
}

// f32 steps that are a single IEEE operation per element go through the
// runtime-dispatched kernels; everything else (the transcendental steps)
// falls back to the float instantiation of the generic loop above.
void ApplyStepF32(const FusedStep& step, float* dst, const float* other,
                  int64_t n) {
  namespace simd = tensor::simd;
  const float s0 = static_cast<float>(step.s0);
  const float s1 = static_cast<float>(step.s1);
  simd::EwOp ew;
  switch (step.op) {
    case OpCode::kAdd:
      ew = simd::EwOp::kAdd;
      break;
    case OpCode::kSub:
      ew = simd::EwOp::kSub;
      break;
    case OpCode::kMul:
      ew = simd::EwOp::kMul;
      break;
    case OpCode::kDiv:
      ew = simd::EwOp::kDiv;
      break;
    case OpCode::kMaximum:
      ew = simd::EwOp::kMax;
      break;
    case OpCode::kMinimum:
      ew = simd::EwOp::kMin;
      break;
    case OpCode::kNeg:
      simd::UnaryF32(simd::UnOp::kNeg, dst, s0, s1, n);
      return;
    case OpCode::kAbs:
      simd::UnaryF32(simd::UnOp::kAbs, dst, s0, s1, n);
      return;
    case OpCode::kSqrt:
      simd::UnaryF32(simd::UnOp::kSqrt, dst, s0, s1, n);
      return;
    case OpCode::kRelu:
      simd::UnaryF32(simd::UnOp::kRelu, dst, s0, s1, n);
      return;
    case OpCode::kLeakyRelu:
      simd::UnaryF32(simd::UnOp::kLeakyRelu, dst, s0, s1, n);
      return;
    case OpCode::kClamp:
      simd::UnaryF32(simd::UnOp::kClamp, dst, s0, s1, n);
      return;
    case OpCode::kAddScalar:
      simd::UnaryF32(simd::UnOp::kAddScalar, dst, s0, s1, n);
      return;
    case OpCode::kMulScalar:
      simd::UnaryF32(simd::UnOp::kMulScalar, dst, s0, s1, n);
      return;
    default:
      ApplyStepT<float>(step, dst, other, n);
      return;
  }
  EMAF_CHECK(other != nullptr)
      << "binary fused step without an operand: " << OpCodeName(step.op);
  simd::BinaryF32(ew, dst, other, step.acc_rhs, n);
}

template <typename T>
Tensor ExecuteFusedChainT(const Instruction& instr, const Tensor& stream,
                          const std::vector<const void*>& operands) {
  Tensor out = tensor::MakeUninitialized(instr.out_shape, stream.dtype());
  T* dst = out.data<T>();
  const int64_t n = instr.out_shape.NumElements();
  std::memcpy(dst, stream.raw_data(), static_cast<size_t>(n) * sizeof(T));
  for (size_t s = 0; s < instr.steps.size(); ++s) {
    const FusedStep& step = instr.steps[s];
    const T* other = step.operand == kAccSlot
                         ? dst
                         : static_cast<const T*>(operands[s]);
    if constexpr (std::is_same_v<T, float>) {
      ApplyStepF32(step, dst, other, n);
    } else {
      ApplyStepT<T>(step, dst, other, n);
    }
  }
  return out;
}

}  // namespace

Tensor ExecuteFusedChain(const Instruction& instr, const Tensor& stream,
                         const std::vector<const void*>& operands) {
  EMAF_CHECK_EQ(operands.size(), instr.steps.size());
  if (stream.dtype() == tensor::DType::kF32) {
    return ExecuteFusedChainT<float>(instr, stream, operands);
  }
  return ExecuteFusedChainT<Scalar>(instr, stream, operands);
}

}  // namespace emaf::plan
