// Compiled with -ffp-contract=off (see src/CMakeLists.txt) — the step
// formulas below must produce bit-identical results to the op lambdas in
// tensor/ops_elementwise.cc and tensor/ops_activation.cc, which each run
// in their own loop where no cross-op FMA contraction is possible.
//
// Execution is step-major: the output buffer starts as a copy of the
// stream, then each step runs as one tight pass over the whole buffer
// with the opcode switch hoisted out of the element loop, so the
// arithmetic cases vectorize like the original op loops do. Elements are
// independent, so per element this applies the exact same operations in
// the exact same order as a per-element chain would — bitwise identical —
// while the buffers involved (one chain's worth of activations) stay
// cache-resident between passes.

#include "plan/fused_kernel.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "tensor/ops.h"

namespace emaf::plan {

using tensor::Scalar;
using tensor::Tensor;

namespace {

// One step applied across the whole buffer, in place. Mirrors the op
// lambdas verbatim: Sigmoid's branch-stable logistic, Elu's
// alpha * (exp(v) - 1.0), ... For binary steps `other` is the second
// operand array (dst itself when the step consumes the accumulator
// twice); for unary/scalar steps it is ignored.
void ApplyStep(const FusedStep& step, Scalar* dst, const Scalar* other,
               int64_t n) {
  auto binary = [&](auto op) {
    EMAF_CHECK(other != nullptr)
        << "binary fused step without an operand: " << OpCodeName(step.op);
    if (step.acc_rhs) {
      for (int64_t i = 0; i < n; ++i) dst[i] = op(other[i], dst[i]);
    } else {
      for (int64_t i = 0; i < n; ++i) dst[i] = op(dst[i], other[i]);
    }
  };
  switch (step.op) {
    case OpCode::kAdd:
      binary([](Scalar a, Scalar b) { return a + b; });
      break;
    case OpCode::kSub:
      binary([](Scalar a, Scalar b) { return a - b; });
      break;
    case OpCode::kMul:
      binary([](Scalar a, Scalar b) { return a * b; });
      break;
    case OpCode::kDiv:
      binary([](Scalar a, Scalar b) { return a / b; });
      break;
    case OpCode::kMaximum:
      binary([](Scalar a, Scalar b) { return a > b ? a : b; });
      break;
    case OpCode::kMinimum:
      binary([](Scalar a, Scalar b) { return a < b ? a : b; });
      break;
    case OpCode::kNeg:
      for (int64_t i = 0; i < n; ++i) dst[i] = -dst[i];
      break;
    case OpCode::kExp:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::exp(dst[i]);
      break;
    case OpCode::kLog:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::log(dst[i]);
      break;
    case OpCode::kSqrt:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::sqrt(dst[i]);
      break;
    case OpCode::kAbs:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::abs(dst[i]);
      break;
    case OpCode::kPow:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::pow(dst[i], step.s0);
      break;
    case OpCode::kClamp:
      for (int64_t i = 0; i < n; ++i) {
        const Scalar v = dst[i];
        dst[i] = v < step.s0 ? step.s0 : (v > step.s1 ? step.s1 : v);
      }
      break;
    case OpCode::kAddScalar:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] + step.s0;
      break;
    case OpCode::kMulScalar:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] * step.s0;
      break;
    case OpCode::kRelu:
      for (int64_t i = 0; i < n; ++i) dst[i] = dst[i] > 0 ? dst[i] : 0.0;
      break;
    case OpCode::kLeakyRelu:
      for (int64_t i = 0; i < n; ++i) {
        const Scalar v = dst[i];
        dst[i] = v > 0 ? v : step.s0 * v;
      }
      break;
    case OpCode::kElu:
      for (int64_t i = 0; i < n; ++i) {
        const Scalar v = dst[i];
        dst[i] = v > 0 ? v : step.s0 * (std::exp(v) - 1.0);
      }
      break;
    case OpCode::kSigmoid:
      for (int64_t i = 0; i < n; ++i) {
        const Scalar v = dst[i];
        if (v >= 0) {
          const Scalar e = std::exp(-v);
          dst[i] = 1.0 / (1.0 + e);
        } else {
          const Scalar e = std::exp(v);
          dst[i] = e / (1.0 + e);
        }
      }
      break;
    case OpCode::kTanh:
      for (int64_t i = 0; i < n; ++i) dst[i] = std::tanh(dst[i]);
      break;
    default:
      EMAF_CHECK(false) << "non-elementwise op in fused chain: "
                        << OpCodeName(step.op);
  }
}

}  // namespace

Tensor ExecuteFusedChain(const Instruction& instr, const Tensor& stream,
                         const std::vector<const Scalar*>& operands) {
  EMAF_CHECK_EQ(operands.size(), instr.steps.size());
  Tensor out = tensor::MakeUninitialized(instr.out_shape);
  Scalar* dst = out.data();
  const int64_t n = instr.out_shape.NumElements();
  std::memcpy(dst, stream.data(), static_cast<size_t>(n) * sizeof(Scalar));
  for (size_t s = 0; s < instr.steps.size(); ++s) {
    const FusedStep& step = instr.steps[s];
    const Scalar* other = step.operand == kAccSlot ? dst : operands[s];
    ApplyStep(step, dst, other, n);
  }
  return out;
}

}  // namespace emaf::plan
