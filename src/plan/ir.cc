#include "plan/ir.h"

namespace emaf::plan {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kAdd: return "Add";
    case OpCode::kSub: return "Sub";
    case OpCode::kMul: return "Mul";
    case OpCode::kDiv: return "Div";
    case OpCode::kMaximum: return "Maximum";
    case OpCode::kMinimum: return "Minimum";
    case OpCode::kNeg: return "Neg";
    case OpCode::kExp: return "Exp";
    case OpCode::kLog: return "Log";
    case OpCode::kSqrt: return "Sqrt";
    case OpCode::kAbs: return "Abs";
    case OpCode::kPow: return "Pow";
    case OpCode::kClamp: return "Clamp";
    case OpCode::kAddScalar: return "AddScalar";
    case OpCode::kMulScalar: return "MulScalar";
    case OpCode::kRelu: return "Relu";
    case OpCode::kLeakyRelu: return "LeakyRelu";
    case OpCode::kElu: return "Elu";
    case OpCode::kSigmoid: return "Sigmoid";
    case OpCode::kTanh: return "Tanh";
    case OpCode::kSoftmax: return "Softmax";
    case OpCode::kLogSoftmax: return "LogSoftmax";
    case OpCode::kMatMul: return "MatMul";
    case OpCode::kSumTo: return "SumTo";
    case OpCode::kReshape: return "Reshape";
    case OpCode::kPermute: return "Permute";
    case OpCode::kSlice: return "Slice";
    case OpCode::kCat: return "Cat";
    case OpCode::kPad: return "Pad";
    case OpCode::kBroadcastTo: return "BroadcastTo";
    case OpCode::kConv2d: return "Conv2d";
    case OpCode::kFusedChain: return "Fused";
  }
  return "?";
}

}  // namespace emaf::plan
