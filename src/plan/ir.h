// The compiled-plan IR (DESIGN.md, "Compiled plans").
//
// A Plan is a flat instruction list over numbered register slots plus a
// table of constants captured at record time (parameters, adjacency
// operators, parameter-only subgraph outputs). Register 0 is the request
// window; every other register is written exactly once by one instruction
// (SSA over a dense register file), and a release list on each
// instruction drops registers after their last use so the backing arena
// buffers recycle within a single request, exactly like the module path's
// intermediates dying as the forward walks the graph.
//
// Slot references are signed: ref >= 0 names a register, ref < 0 names
// constants[-1 - ref]. Two sentinels sit far outside both ranges: kNoSlot
// (absent operand, e.g. Conv2d without bias or a unary fused step) and
// kAccSlot (a binary fused step whose other operand is the chain
// accumulator itself, e.g. x * x).
//
// kFusedChain is the one opcode the recorder synthesizes: a run of
// same-shape elementwise ops collapsed into a single pass over the
// stream input, with each step's formula replicated per element in
// plan/fused_kernel.cc (compiled with -ffp-contract=off so staged and
// fused execution produce identical bytes).

#ifndef EMAF_PLAN_IR_H_
#define EMAF_PLAN_IR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace emaf::plan {

enum class OpCode : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMaximum,
  kMinimum,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kPow,        // s0 = exponent
  kClamp,      // s0 = low, s1 = high
  kAddScalar,  // s0 = addend
  kMulScalar,  // s0 = factor
  kRelu,
  kLeakyRelu,  // s0 = negative_slope
  kElu,        // s0 = alpha
  kSigmoid,
  kTanh,
  kSoftmax,     // ints = {axis}
  kLogSoftmax,  // ints = {axis}
  kMatMul,
  kSumTo,        // ints = target shape dims (empty = rank-0)
  kReshape,      // ints = output shape dims
  kPermute,      // ints = permutation
  kSlice,        // ints = {axis, start, end}
  kCat,          // ints = {axis}
  kPad,          // ints = {before_0, after_0, ...}
  kBroadcastTo,  // ints = output shape dims
  kConv2d,       // inputs = {input, weight[, bias]}; ints = {stride_h,
                 // stride_w, pad_h, pad_w, dilation_h, dilation_w}
  kFusedChain,   // inputs = {stream}; steps = per-element program
};

const char* OpCodeName(OpCode op);

// ref >= 0: register id (0 = request input). ref < 0: constants[-1-ref].
using SlotRef = int32_t;
inline constexpr SlotRef kInputReg = 0;
inline constexpr SlotRef kNoSlot = std::numeric_limits<int32_t>::min();
inline constexpr SlotRef kAccSlot = kNoSlot + 1;

inline bool IsRegister(SlotRef ref) { return ref >= 0; }
inline bool IsConstant(SlotRef ref) {
  return ref < 0 && ref != kNoSlot && ref != kAccSlot;
}
inline int32_t ConstantIndex(SlotRef ref) { return -1 - ref; }
inline SlotRef ConstantRef(int32_t index) { return -1 - index; }

// One elementwise step of a fused chain. Unary steps (operand == kNoSlot)
// transform the accumulator; binary steps combine it with operand[i]
// (acc_rhs says which side the accumulator is on — Sub/Div care).
struct FusedStep {
  OpCode op;
  SlotRef operand = kNoSlot;
  bool acc_rhs = false;
  tensor::Scalar s0 = 0.0;
  tensor::Scalar s1 = 0.0;
};

struct Instruction {
  OpCode op;
  std::vector<SlotRef> inputs;
  int32_t out = 0;  // register written (never a constant)
  // Resolved at record time; fused chains and the disassembly read it,
  // and Execute's output check compares against the plan output's.
  tensor::Shape out_shape;
  tensor::Scalar s0 = 0.0;
  tensor::Scalar s1 = 0.0;
  std::vector<int64_t> ints;
  std::vector<FusedStep> steps;   // kFusedChain only
  std::vector<int32_t> release;   // registers dead after this instruction
};

struct Plan {
  std::string family;            // Forecaster::name() at record time
  tensor::Shape input_shape;     // the window shape the plan was built for
  tensor::Shape output_shape;
  // Element type the plan was recorded under: every constant, register
  // and the window share it (mixed-dtype forwards do not record). The
  // interpreter rejects inputs of any other dtype.
  tensor::DType dtype = tensor::DType::kF64;
  int32_t num_regs = 1;          // register file size (>= 1: the input)
  SlotRef output = kInputReg;    // where the forecast lands
  std::vector<tensor::Tensor> constants;
  std::vector<Instruction> instructions;

  // Compile-time accounting (surfaced by the disassembly, golden-pinned).
  int64_t recorded_ops = 0;      // leaf ops in the raw recording
  int64_t folded_constants = 0;  // ops constant-folded away
  int64_t fused_chains = 0;      // kFusedChain instructions emitted
  int64_t fused_ops = 0;         // elementwise ops absorbed into chains
};

}  // namespace emaf::plan

#endif  // EMAF_PLAN_IR_H_
