#include "plan/plan_cache.h"

#include <utility>

#include "plan/recorder.h"

namespace emaf::plan {

PlanCache::Acquired PlanCache::GetOrCompile(models::Forecaster* model,
                                            const tensor::Tensor& window) {
  if (disabled()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  if (window.shape() == shape_) {
    if (plan_ != nullptr) return {plan_, /*hit=*/true};
    if (failed_) return {};
  }
  // New shape (or first call): compile under the lock so a burst for one
  // tenant records once. The forward run inside Compile is tape-free and
  // write-free on the eval-mode model, so it is safe alongside concurrent
  // module-path requests on other threads.
  shape_ = window.shape();
  plan_.reset();
  failed_ = false;
  Result<std::shared_ptr<const Plan>> compiled = Compile(model, window);
  if (!compiled.ok()) {
    failed_ = true;
    return {};
  }
  plan_ = std::move(compiled).value();
  compiles_.fetch_add(1, std::memory_order_relaxed);
  return {plan_, /*hit=*/false};
}

}  // namespace emaf::plan
