#include "plan/interpreter.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "plan/fused_kernel.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace emaf::plan {

using tensor::Scalar;
using tensor::Shape;
using tensor::Tensor;

Result<Tensor> Execute(const Plan& plan, const Tensor& input,
                       tensor::InferenceArena* arena) {
  if (!(input.shape() == plan.input_shape)) {
    return Status::InvalidArgument(
        StrCat("plan: ", plan.family, " compiled for input ",
               plan.input_shape.ToString(), ", got ",
               input.shape().ToString()));
  }
  if (input.dtype() != plan.dtype) {
    return Status::InvalidArgument(
        StrCat("plan: ", plan.family, " compiled for ",
               tensor::DTypeName(plan.dtype), " input, got ",
               tensor::DTypeName(input.dtype())));
  }
  EMAF_METRIC_COUNTER_ADD("plan.instructions_total",
                          static_cast<int64_t>(plan.instructions.size()));

  tensor::NoGradGuard guard;
  tensor::ArenaScope scope(arena);
  std::vector<Tensor> regs(plan.num_regs);
  regs[kInputReg] = input;
  auto resolve = [&](SlotRef ref) -> const Tensor& {
    return IsRegister(ref) ? regs[ref] : plan.constants[ConstantIndex(ref)];
  };

  for (const Instruction& ins : plan.instructions) {
    Tensor out;
    switch (ins.op) {
      case OpCode::kAdd:
        out = tensor::Add(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kSub:
        out = tensor::Sub(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kMul:
        out = tensor::Mul(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kDiv:
        out = tensor::Div(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kMaximum:
        out = tensor::Maximum(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kMinimum:
        out = tensor::Minimum(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kNeg:
        out = tensor::Neg(resolve(ins.inputs[0]));
        break;
      case OpCode::kExp:
        out = tensor::Exp(resolve(ins.inputs[0]));
        break;
      case OpCode::kLog:
        out = tensor::Log(resolve(ins.inputs[0]));
        break;
      case OpCode::kSqrt:
        out = tensor::Sqrt(resolve(ins.inputs[0]));
        break;
      case OpCode::kAbs:
        out = tensor::Abs(resolve(ins.inputs[0]));
        break;
      case OpCode::kPow:
        out = tensor::Pow(resolve(ins.inputs[0]), ins.s0);
        break;
      case OpCode::kClamp:
        out = tensor::Clamp(resolve(ins.inputs[0]), ins.s0, ins.s1);
        break;
      case OpCode::kAddScalar:
        out = tensor::AddScalar(resolve(ins.inputs[0]), ins.s0);
        break;
      case OpCode::kMulScalar:
        out = tensor::MulScalar(resolve(ins.inputs[0]), ins.s0);
        break;
      case OpCode::kRelu:
        out = tensor::Relu(resolve(ins.inputs[0]));
        break;
      case OpCode::kLeakyRelu:
        out = tensor::LeakyRelu(resolve(ins.inputs[0]), ins.s0);
        break;
      case OpCode::kElu:
        out = tensor::Elu(resolve(ins.inputs[0]), ins.s0);
        break;
      case OpCode::kSigmoid:
        out = tensor::Sigmoid(resolve(ins.inputs[0]));
        break;
      case OpCode::kTanh:
        out = tensor::Tanh(resolve(ins.inputs[0]));
        break;
      case OpCode::kSoftmax:
        out = tensor::Softmax(resolve(ins.inputs[0]), ins.ints[0]);
        break;
      case OpCode::kLogSoftmax:
        out = tensor::LogSoftmax(resolve(ins.inputs[0]), ins.ints[0]);
        break;
      case OpCode::kMatMul:
        out = tensor::MatMul(resolve(ins.inputs[0]), resolve(ins.inputs[1]));
        break;
      case OpCode::kSumTo:
        out = tensor::internal::SumTo(resolve(ins.inputs[0]),
                                      Shape(ins.ints));
        break;
      case OpCode::kReshape:
        out = tensor::Reshape(resolve(ins.inputs[0]), Shape(ins.ints));
        break;
      case OpCode::kPermute:
        out = tensor::Permute(resolve(ins.inputs[0]), ins.ints);
        break;
      case OpCode::kSlice:
        out = tensor::Slice(resolve(ins.inputs[0]), ins.ints[0], ins.ints[1],
                            ins.ints[2]);
        break;
      case OpCode::kCat: {
        std::vector<Tensor> parts;
        parts.reserve(ins.inputs.size());
        for (SlotRef ref : ins.inputs) parts.push_back(resolve(ref));
        out = tensor::Cat(parts, ins.ints[0]);
        break;
      }
      case OpCode::kPad: {
        std::vector<std::pair<int64_t, int64_t>> padding;
        padding.reserve(ins.ints.size() / 2);
        for (size_t i = 0; i + 1 < ins.ints.size(); i += 2) {
          padding.emplace_back(ins.ints[i], ins.ints[i + 1]);
        }
        out = tensor::Pad(resolve(ins.inputs[0]), padding);
        break;
      }
      case OpCode::kBroadcastTo:
        out = tensor::BroadcastTo(resolve(ins.inputs[0]), Shape(ins.ints));
        break;
      case OpCode::kConv2d: {
        tensor::Conv2dOptions options;
        options.stride_h = ins.ints[0];
        options.stride_w = ins.ints[1];
        options.pad_h = ins.ints[2];
        options.pad_w = ins.ints[3];
        options.dilation_h = ins.ints[4];
        options.dilation_w = ins.ints[5];
        Tensor bias;  // stays undefined when the record had no bias
        if (ins.inputs.size() > 2 && ins.inputs[2] != kNoSlot) {
          bias = resolve(ins.inputs[2]);
        }
        out = tensor::Conv2d(resolve(ins.inputs[0]), resolve(ins.inputs[1]),
                             bias, options);
        break;
      }
      case OpCode::kFusedChain: {
        const Tensor& stream = resolve(ins.inputs[0]);
        std::vector<const void*> operands(ins.steps.size(), nullptr);
        for (size_t s = 0; s < ins.steps.size(); ++s) {
          SlotRef ref = ins.steps[s].operand;
          if (ref != kNoSlot && ref != kAccSlot) {
            operands[s] = resolve(ref).raw_data();
          }
        }
        out = ExecuteFusedChain(ins, stream, operands);
        break;
      }
    }
    regs[ins.out] = std::move(out);
    for (int32_t dead : ins.release) regs[dead] = Tensor();
  }

  Tensor result = resolve(plan.output);
  EMAF_CHECK(result.impl() != nullptr);
  return result;
}

}  // namespace emaf::plan
