#include "plan/disassembler.h"

#include <sstream>

#include "common/string_util.h"

namespace emaf::plan {
namespace {

void AppendRef(std::ostringstream* out, SlotRef ref) {
  if (ref == kNoSlot) {
    *out << "_";
  } else if (ref == kAccSlot) {
    *out << "acc";
  } else if (IsConstant(ref)) {
    *out << "c" << ConstantIndex(ref);
  } else {
    *out << "%" << ref;
  }
}

bool HasScalarParams(OpCode op) {
  switch (op) {
    case OpCode::kPow:
    case OpCode::kAddScalar:
    case OpCode::kMulScalar:
    case OpCode::kLeakyRelu:
    case OpCode::kElu:
      return true;
    default:
      return false;
  }
}

void AppendParams(std::ostringstream* out, OpCode op, double s0, double s1,
                  const std::vector<int64_t>& ints) {
  if (HasScalarParams(op)) *out << ", " << FormatExact(s0);
  if (op == OpCode::kClamp) {
    *out << ", " << FormatExact(s0) << ", " << FormatExact(s1);
  }
  if (!ints.empty()) {
    *out << ", {";
    for (size_t i = 0; i < ints.size(); ++i) {
      if (i > 0) *out << ", ";
      *out << ints[i];
    }
    *out << "}";
  }
}

}  // namespace

std::string Disassemble(const Plan& plan) {
  std::ostringstream out;
  out << "plan " << plan.family << " input=" << plan.input_shape.ToString()
      << " output=" << plan.output_shape.ToString();
  // f64 is the recorded default and stays unmarked (the golden disassembly
  // texts predate dtypes); any other element type is called out.
  if (plan.dtype != tensor::DType::kF64) {
    out << " dtype=" << tensor::DTypeName(plan.dtype);
  }
  out << " regs=" << plan.num_regs << " constants=" << plan.constants.size()
      << " instructions=" << plan.instructions.size() << "\n";
  out << "  recorded=" << plan.recorded_ops
      << " folded=" << plan.folded_constants
      << " fused_chains=" << plan.fused_chains
      << " fused_ops=" << plan.fused_ops << "\n";
  for (size_t i = 0; i < plan.constants.size(); ++i) {
    out << "  c" << i << " = const " << plan.constants[i].shape().ToString()
        << "\n";
  }
  for (const Instruction& ins : plan.instructions) {
    out << "  %" << ins.out << " = " << OpCodeName(ins.op) << "(";
    for (size_t i = 0; i < ins.inputs.size(); ++i) {
      if (i > 0) out << ", ";
      AppendRef(&out, ins.inputs[i]);
    }
    if (ins.op == OpCode::kFusedChain) {
      for (const FusedStep& step : ins.steps) {
        out << "; " << OpCodeName(step.op);
        if (step.operand != kNoSlot) {
          out << " ";
          if (step.acc_rhs) out << "swap ";
          AppendRef(&out, step.operand);
        }
        std::ostringstream params;
        AppendParams(&params, step.op, step.s0, step.s1, {});
        out << params.str();
      }
    } else {
      AppendParams(&out, ins.op, ins.s0, ins.s1, ins.ints);
    }
    out << ") -> " << ins.out_shape.ToString();
    if (!ins.release.empty()) {
      out << " release";
      for (int32_t reg : ins.release) out << " %" << reg;
    }
    out << "\n";
  }
  out << "  return ";
  AppendRef(&out, plan.output);
  out << "\n";
  return out.str();
}

}  // namespace emaf::plan
