// Plan execution: a flat loop over Instruction, no tape, no virtual
// dispatch, no graph walk.
//
// Single-op instructions replay through exactly the free tensor-op
// functions the module forward called — same kernels, same floating-point
// order, hence bitwise-identical bytes at any thread-pool size (PR-1
// determinism). kFusedChain instructions run the per-element program in
// plan/fused_kernel.cc instead, one pass over the stream. Outputs draw
// from the caller's arena exactly like module intermediates, and each
// instruction's release list returns dead registers to the pool
// mid-request.

#ifndef EMAF_PLAN_INTERPRETER_H_
#define EMAF_PLAN_INTERPRETER_H_

#include "common/status.h"
#include "plan/ir.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace emaf::plan {

// Runs `plan` on `input` (must match plan.input_shape exactly — the cache
// keys plans by shape). `arena` may be null (plain heap). Bumps
// plan.instructions_total once per call.
Result<tensor::Tensor> Execute(const Plan& plan, const tensor::Tensor& input,
                               tensor::InferenceArena* arena);

}  // namespace emaf::plan

#endif  // EMAF_PLAN_INTERPRETER_H_
