// Plan recording: one warm-up forward, compiled to a static Plan.
//
// Compile() runs `model->Forward(window)` once under a tensor::plan_hook
// sink (tape-free, arena routing suspended so captured tensors own their
// storage) and lowers the recorded leaf-op stream:
//
//   1. capture   — every tensor the stream consumes that no recorded op
//                  produced (parameters, baked adjacency operators, ...)
//                  becomes a constant; the window is register 0;
//   2. fold      — an op whose inputs are all constants is dropped and
//                  its recorded output becomes a constant (this swallows
//                  parameter-only subgraphs like MTGNN's graph learner);
//   3. DCE       — ops whose results never reach the output are dropped;
//   4. fuse      — runs of same-shape elementwise ops with single
//                  consumers collapse into kFusedChain instructions;
//   5. allocate  — values get dense register ids and per-instruction
//                  release lists (arena buffers recycle within a request).
//
// The compiled plan is then *verified* before it is returned: it must
// reproduce the warm-up output bitwise, and — on a perturbed copy of the
// window — a fresh module forward bitwise. The second check is the guard
// against input-dependent data being wrongly captured as a constant (an
// unhooked op would be invisible to the recorder, not silently wrong at
// serve time): any such plan fails Compile and the caller stays on the
// module path. kFailedPrecondition is the expected failure for forwards the
// recorder cannot express; it is a fallback signal, not a bug.

#ifndef EMAF_PLAN_RECORDER_H_
#define EMAF_PLAN_RECORDER_H_

#include <memory>

#include "common/status.h"
#include "models/forecaster.h"
#include "plan/ir.h"
#include "tensor/tensor.h"

namespace emaf::plan {

Result<std::shared_ptr<const Plan>> Compile(models::Forecaster* model,
                                            const tensor::Tensor& window);

}  // namespace emaf::plan

#endif  // EMAF_PLAN_RECORDER_H_
