#include "tensor/shape.h"

#include <algorithm>

#include "common/check.h"

namespace emaf::tensor {

int64_t Shape::dim(int64_t axis) const {
  EMAF_CHECK_GE(axis, 0);
  EMAF_CHECK_LT(axis, rank());
  return dims_[axis];
}

int64_t Shape::CanonicalAxis(int64_t axis) const {
  int64_t r = rank();
  if (axis < 0) axis += r;
  EMAF_CHECK_GE(axis, 0) << "axis out of range for shape " << ToString();
  EMAF_CHECK_LT(axis, r) << "axis out of range for shape " << ToString();
  return axis;
}

int64_t Shape::DimChecked(int64_t axis) const {
  return dims_[CanonicalAxis(axis)];
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    EMAF_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t running = 1;
  for (int64_t i = rank() - 1; i >= 0; --i) {
    strides[i] = running;
    running *= dims_[i];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank);
  for (int64_t i = 0; i < rank; ++i) {
    int64_t da = i < rank - a.rank() ? 1 : a.dim(i - (rank - a.rank()));
    int64_t db = i < rank - b.rank() ? 1 : b.dim(i - (rank - b.rank()));
    if (da == db) {
      dims[i] = da;
    } else if (da == 1) {
      dims[i] = db;
    } else if (db == 1) {
      dims[i] = da;
    } else {
      EMAF_CHECK(false) << "shapes not broadcastable: " << a.ToString()
                        << " vs " << b.ToString();
    }
  }
  return Shape(dims);
}

bool IsBroadcastableTo(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  int64_t offset = to.rank() - from.rank();
  for (int64_t i = 0; i < from.rank(); ++i) {
    if (from.dim(i) != 1 && from.dim(i) != to.dim(i + offset)) return false;
  }
  return true;
}

std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to) {
  EMAF_CHECK(IsBroadcastableTo(from, to))
      << from.ToString() << " -> " << to.ToString();
  std::vector<int64_t> from_strides = from.Strides();
  std::vector<int64_t> strides(to.rank(), 0);
  int64_t offset = to.rank() - from.rank();
  for (int64_t i = 0; i < from.rank(); ++i) {
    strides[i + offset] = from.dim(i) == 1 ? 0 : from_strides[i];
  }
  return strides;
}

void UnravelIndex(int64_t flat, const Shape& shape,
                  std::vector<int64_t>* index) {
  index->resize(shape.rank());
  for (int64_t i = shape.rank() - 1; i >= 0; --i) {
    int64_t d = shape.dim(i);
    (*index)[i] = d == 0 ? 0 : flat % d;
    flat = d == 0 ? flat : flat / d;
  }
}

}  // namespace emaf::tensor
