// Runtime-dispatched f32 kernels: an AVX2/FMA arm and a scalar fallback
// that produce bitwise-identical results (DESIGN.md, "Dtype layer & SIMD
// dispatch").
//
// Dispatch: Enabled() is true when the CPU reports AVX2+FMA and the
// process was not started with EMAF_NO_SIMD=1; tests flip arms with
// SetEnabledForTest. Both arms of every kernel perform the same IEEE
// operations in the same order — the SIMD matmul arm uses
// _mm256_fmadd_ps where the scalar arm uses std::fmaf (one fused
// multiply-add either way), and the elementwise kernels are single
// IEEE-exact operations (add/mul/max/...) whose lane order never affects
// the per-element result. That is the contract the f32 plan path's
// bitwise determinism (across thread counts AND dispatch arms) rests on.
//
// This header is included from op and plan code; the implementation lives
// in its own TU (simd_f32.cc) compiled with -ffp-contract=off, pinned in
// src/CMakeLists.txt like plan/fused_kernel.cc, so the compiler cannot
// contract neighboring mul/add expressions into FMAs we did not write.
// The explicit std::fmaf calls are unaffected: contraction settings only
// govern *implicit* fusion.
//
// Layering: tensor/ must not see plan/ headers, so the fused-chain entry
// points take this file's own op enums; plan/fused_kernel.cc maps its
// OpCode values onto them.

#ifndef EMAF_TENSOR_SIMD_F32_H_
#define EMAF_TENSOR_SIMD_F32_H_

#include <cstdint>

namespace emaf::tensor::simd {

// True when the AVX2/FMA arm is active (CPUID check minus the
// EMAF_NO_SIMD=1 env knob, or the last SetEnabledForTest override).
bool Enabled();

// Test hook: force the scalar fallback (false) or re-run the CPUID+env
// probe (true). Returns the resulting Enabled() value — passing true on a
// machine without AVX2 still yields false.
bool SetEnabledForTest(bool enabled);

// C += A B on raw row-major f32 buffers; C must be zero-initialized (or
// hold a partial sum). Rows of C are fully independent — no zero-skip, no
// cross-row state — so callers may partition rows arbitrarily across
// threads and still get bytes identical to one serial call.
void MatMulF32(const float* a, const float* b, float* c, int64_t m,
               int64_t k, int64_t n);

// Binary elementwise ops that are a single IEEE operation per element
// (bitwise-equal across arms by IEEE determinism).
enum class EwOp : uint8_t { kAdd, kSub, kMul, kDiv, kMax, kMin };

// dst[i] = op(dst[i], other[i]) — or op(other[i], dst[i]) when `swapped`
// (for non-commutative ops whose accumulator is the right operand).
void BinaryF32(EwOp op, float* dst, const float* other, bool swapped,
               int64_t n);

// Unary elementwise ops that are a single IEEE operation per element.
// s0/s1 carry the op's immediates (clamp bounds, scalar addend, ...).
enum class UnOp : uint8_t {
  kNeg,
  kAbs,
  kSqrt,
  kRelu,
  kLeakyRelu,  // v > 0 ? v : s0 * v
  kClamp,      // min(max(v, s0), s1)
  kAddScalar,  // v + s0
  kMulScalar,  // v * s0
};

// dst[i] = op(dst[i], s0, s1), in place.
void UnaryF32(UnOp op, float* dst, float s0, float s1, int64_t n);

}  // namespace emaf::tensor::simd

#endif  // EMAF_TENSOR_SIMD_F32_H_
