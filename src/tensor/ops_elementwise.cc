#include <cmath>

#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"

namespace emaf::tensor {

namespace {

using internal::MapBinary;
using internal::MapUnary;
using internal::SumTo;

namespace ph = plan_hook;

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = MapBinary(a, b, [](auto x, auto y) { return x + y; });
  if (ph::Active()) ph::Record({ph::OpKind::kAdd, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Shape sa = a.shape();
    Shape sb = b.shape();
    SetGradFn(&out, "Add", {a, b}, [sa, sb](const Tensor& g) {
      return std::vector<Tensor>{SumTo(g, sa), SumTo(g, sb)};
    });
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = MapBinary(a, b, [](auto x, auto y) { return x - y; });
  if (ph::Active()) ph::Record({ph::OpKind::kSub, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Shape sa = a.shape();
    Shape sb = b.shape();
    SetGradFn(&out, "Sub", {a, b}, [sa, sb](const Tensor& g) {
      Tensor gb = SumTo(g, sb);
      Scalar* d = gb.data();
      const int64_t emaf_n = gb.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) d[i] = -d[i];
      return std::vector<Tensor>{SumTo(g, sa), gb};
    });
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out = MapBinary(a, b, [](auto x, auto y) { return x * y; });
  if (ph::Active()) ph::Record({ph::OpKind::kMul, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Tensor ad = a.Detach();
    Tensor bd = b.Detach();
    SetGradFn(&out, "Mul", {a, b}, [ad, bd](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{SumTo(Mul(g, bd), ad.shape()),
                                 SumTo(Mul(g, ad), bd.shape())};
    });
  }
  return out;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out = MapBinary(a, b, [](auto x, auto y) { return x / y; });
  if (ph::Active()) ph::Record({ph::OpKind::kDiv, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Tensor ad = a.Detach();
    Tensor bd = b.Detach();
    SetGradFn(&out, "Div", {a, b}, [ad, bd](const Tensor& g) {
      NoGradGuard guard;
      // d/da = g / b ; d/db = -g * a / b^2
      Tensor ga = SumTo(Div(g, bd), ad.shape());
      Tensor gb = SumTo(Neg(Div(Mul(g, ad), Mul(bd, bd))), bd.shape());
      return std::vector<Tensor>{ga, gb};
    });
  }
  return out;
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  Tensor out =
      MapBinary(a, b, [](auto x, auto y) { return x > y ? x : y; });
  if (ph::Active()) ph::Record({ph::OpKind::kMaximum, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Tensor ad = a.Detach();
    Tensor bd = b.Detach();
    SetGradFn(&out, "Maximum", {a, b}, [ad, bd](const Tensor& g) {
      NoGradGuard guard;
      // Subgradient: ties route to `a`.
      Tensor pick_a =
          MapBinary(ad, bd, [](Scalar x, Scalar y) { return x >= y ? 1.0 : 0.0; });
      Tensor pick_b =
          MapBinary(ad, bd, [](Scalar x, Scalar y) { return x >= y ? 0.0 : 1.0; });
      return std::vector<Tensor>{SumTo(Mul(g, pick_a), ad.shape()),
                                 SumTo(Mul(g, pick_b), bd.shape())};
    });
  }
  return out;
}

Tensor Minimum(const Tensor& a, const Tensor& b) {
  Tensor out =
      MapBinary(a, b, [](auto x, auto y) { return x < y ? x : y; });
  if (ph::Active()) ph::Record({ph::OpKind::kMinimum, {a, b}, out});
  if (ShouldRecord({a, b})) {
    Tensor ad = a.Detach();
    Tensor bd = b.Detach();
    SetGradFn(&out, "Minimum", {a, b}, [ad, bd](const Tensor& g) {
      NoGradGuard guard;
      Tensor pick_a =
          MapBinary(ad, bd, [](Scalar x, Scalar y) { return x <= y ? 1.0 : 0.0; });
      Tensor pick_b =
          MapBinary(ad, bd, [](Scalar x, Scalar y) { return x <= y ? 0.0 : 1.0; });
      return std::vector<Tensor>{SumTo(Mul(g, pick_a), ad.shape()),
                                 SumTo(Mul(g, pick_b), bd.shape())};
    });
  }
  return out;
}

Tensor Neg(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return -v; });
  if (ph::Active()) ph::Record({ph::OpKind::kNeg, {x}, out});
  if (ShouldRecord({x})) {
    SetGradFn(&out, "Neg", {x}, [](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{MapUnary(g, [](Scalar v) { return -v; })};
    });
  }
  return out;
}

Tensor Exp(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return std::exp(v); });
  if (ph::Active()) ph::Record({ph::OpKind::kExp, {x}, out});
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "Exp", {x}, [y](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{Mul(g, y)};
    });
  }
  return out;
}

Tensor Log(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return std::log(v); });
  if (ph::Active()) ph::Record({ph::OpKind::kLog, {x}, out});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "Log", {x}, [xd](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{Div(g, xd)};
    });
  }
  return out;
}

Tensor Sqrt(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return std::sqrt(v); });
  if (ph::Active()) ph::Record({ph::OpKind::kSqrt, {x}, out});
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "Sqrt", {x}, [y](const Tensor& g) {
      NoGradGuard guard;
      // d/dx sqrt(x) = 1 / (2 sqrt(x))
      return std::vector<Tensor>{Div(g, MulScalar(y, 2.0))};
    });
  }
  return out;
}

Tensor Abs(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return std::abs(v); });
  if (ph::Active()) ph::Record({ph::OpKind::kAbs, {x}, out});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "Abs", {x}, [xd](const Tensor& g) {
      NoGradGuard guard;
      Tensor sign =
          MapUnary(xd, [](Scalar v) { return v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0); });
      return std::vector<Tensor>{Mul(g, sign)};
    });
  }
  return out;
}

Tensor Pow(const Tensor& x, Scalar exponent) {
  Tensor out = MapUnary(x, [exponent](auto v) {
    // static_cast keeps the float instantiation on powf: std::pow(float,
    // double) would silently promote the whole element to double.
    return std::pow(v, static_cast<decltype(v)>(exponent));
  });
  if (ph::Active()) ph::Record({ph::OpKind::kPow, {x}, out, exponent});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "Pow", {x}, [xd, exponent](const Tensor& g) {
      NoGradGuard guard;
      Tensor deriv = MapUnary(
          xd, [exponent](Scalar v) { return exponent * std::pow(v, exponent - 1.0); });
      return std::vector<Tensor>{Mul(g, deriv)};
    });
  }
  return out;
}

Tensor Clamp(const Tensor& x, Scalar low, Scalar high) {
  EMAF_CHECK_LE(low, high);
  Tensor out = MapUnary(x, [low, high](auto v) {
    using T = decltype(v);
    const T lo = static_cast<T>(low);
    const T hi = static_cast<T>(high);
    return v < lo ? lo : (v > hi ? hi : v);
  });
  if (ph::Active()) ph::Record({ph::OpKind::kClamp, {x}, out, low, high});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "Clamp", {x}, [xd, low, high](const Tensor& g) {
      NoGradGuard guard;
      Tensor pass = MapUnary(xd, [low, high](Scalar v) {
        return (v >= low && v <= high) ? 1.0 : 0.0;
      });
      return std::vector<Tensor>{Mul(g, pass)};
    });
  }
  return out;
}

Tensor AddScalar(const Tensor& x, Scalar s) {
  Tensor out = MapUnary(
      x, [s](auto v) { return v + static_cast<decltype(v)>(s); });
  if (ph::Active()) ph::Record({ph::OpKind::kAddScalar, {x}, out, s});
  if (ShouldRecord({x})) {
    SetGradFn(&out, "AddScalar", {x}, [](const Tensor& g) {
      return std::vector<Tensor>{g.Clone()};
    });
  }
  return out;
}

Tensor MulScalar(const Tensor& x, Scalar s) {
  Tensor out = MapUnary(
      x, [s](auto v) { return v * static_cast<decltype(v)>(s); });
  if (ph::Active()) ph::Record({ph::OpKind::kMulScalar, {x}, out, s});
  if (ShouldRecord({x})) {
    SetGradFn(&out, "MulScalar", {x}, [s](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{internal::MapUnary(g, [s](Scalar v) { return v * s; })};
    });
  }
  return out;
}

}  // namespace emaf::tensor
