#include <algorithm>
#include <cstddef>
#include <cstring>

#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"

namespace emaf::tensor {

namespace {

namespace ph = plan_hook;

// Copies x into a tensor of shape `out_shape`, where reading follows
// `in_strides` (aligned to out_shape axes). Shared by Permute/BroadcastTo.
template <typename T>
Tensor StridedCopyT(const Tensor& x, const Shape& out_shape,
                    const std::vector<int64_t>& in_strides) {
  Tensor out = MakeUninitialized(out_shape, x.dtype());
  const std::vector<int64_t>& dims = out_shape.dims();
  int64_t rank = out_shape.rank();
  std::vector<int64_t> index(rank, 0);
  const T* xd = x.data<T>();
  T* od = out.data<T>();
  int64_t n = out_shape.NumElements();
  // Fast path: innermost axis is contiguous in the input -> copy rows.
  if (rank >= 1 && in_strides[rank - 1] == 1 && dims[rank - 1] > 1) {
    int64_t row = dims[rank - 1];
    int64_t rows = n / row;
    int64_t off = 0;
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(xd + off, xd + off + row, od + r * row);
      // Odometer over the outer axes only.
      for (int64_t axis = rank - 2; axis >= 0; --axis) {
        off += in_strides[axis];
        if (++index[axis] < dims[axis]) break;
        off -= in_strides[axis] * dims[axis];
        index[axis] = 0;
      }
    }
    return out;
  }
  int64_t off = 0;
  for (int64_t i = 0; i < n; ++i) {
    od[i] = xd[off];
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      off += in_strides[axis];
      if (++index[axis] < dims[axis]) break;
      off -= in_strides[axis] * dims[axis];
      index[axis] = 0;
    }
  }
  return out;
}

Tensor StridedCopy(const Tensor& x, const Shape& out_shape,
                   const std::vector<int64_t>& in_strides) {
  if (x.dtype() == DType::kF32) {
    return StridedCopyT<float>(x, out_shape, in_strides);
  }
  return StridedCopyT<Scalar>(x, out_shape, in_strides);
}

std::vector<int64_t> InversePerm(const std::vector<int64_t>& perm) {
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  return inverse;
}

}  // namespace

Tensor Reshape(const Tensor& x, const Shape& shape) {
  EMAF_CHECK_EQ(x.NumElements(), shape.NumElements())
      << "reshape " << x.shape().ToString() << " -> " << shape.ToString();
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->dtype = x.impl()->dtype;
  impl->storage = x.impl()->storage;  // view: same data
  Tensor out(std::move(impl));
  if (ph::Active()) {
    ph::Record({ph::OpKind::kReshape, {x}, out, 0.0, 0.0, shape.dims()});
  }
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    SetGradFn(&out, "Reshape", {x}, [x_shape](const Tensor& g) {
      return std::vector<Tensor>{Tensor::FromVector(x_shape, g.ToVector())};
    });
  }
  return out;
}

Tensor Permute(const Tensor& x, const std::vector<int64_t>& perm) {
  const Shape& xs = x.shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(perm.size()), xs.rank());
  std::vector<int64_t> seen(perm.size(), 0);
  std::vector<int64_t> out_dims(perm.size());
  std::vector<int64_t> x_strides = xs.Strides();
  std::vector<int64_t> in_strides(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    int64_t p = xs.CanonicalAxis(perm[i]);
    EMAF_CHECK_EQ(seen[p], 0) << "duplicate axis in permutation";
    seen[p] = 1;
    out_dims[i] = xs.dim(p);
    in_strides[i] = x_strides[p];
  }
  Shape out_shape(out_dims);
  Tensor out = StridedCopy(x, out_shape, in_strides);
  if (ph::Active()) ph::Record({ph::OpKind::kPermute, {x}, out, 0.0, 0.0, perm});
  if (ShouldRecord({x})) {
    std::vector<int64_t> canonical(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) canonical[i] = xs.CanonicalAxis(perm[i]);
    std::vector<int64_t> inverse = InversePerm(canonical);
    SetGradFn(&out, "Permute", {x}, [inverse](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{Permute(g, inverse)};
    });
  }
  return out;
}

Tensor Transpose(const Tensor& x, int64_t dim0, int64_t dim1) {
  int64_t a = x.shape().CanonicalAxis(dim0);
  int64_t b = x.shape().CanonicalAxis(dim1);
  std::vector<int64_t> perm(x.rank());
  for (int64_t i = 0; i < x.rank(); ++i) perm[i] = i;
  std::swap(perm[a], perm[b]);
  return Permute(x, perm);
}

Tensor TransposeLast2(const Tensor& x) {
  EMAF_CHECK_GE(x.rank(), 2);
  return Transpose(x, x.rank() - 2, x.rank() - 1);
}

Tensor Squeeze(const Tensor& x, int64_t dim) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  EMAF_CHECK_EQ(x.shape().dim(axis), 1)
      << "Squeeze on non-unit axis of " << x.shape().ToString();
  std::vector<int64_t> dims = x.shape().dims();
  dims.erase(dims.begin() + axis);
  return Reshape(x, Shape(dims));
}

Tensor Unsqueeze(const Tensor& x, int64_t dim) {
  int64_t rank = x.rank();
  if (dim < 0) dim += rank + 1;
  EMAF_CHECK_GE(dim, 0);
  EMAF_CHECK_LE(dim, rank);
  std::vector<int64_t> dims = x.shape().dims();
  dims.insert(dims.begin() + dim, 1);
  return Reshape(x, Shape(dims));
}

Tensor Slice(const Tensor& x, int64_t dim, int64_t start, int64_t end) {
  const Shape& xs = x.shape();
  int64_t axis = xs.CanonicalAxis(dim);
  int64_t d = xs.dim(axis);
  if (start < 0) start += d;
  if (end < 0) end += d;
  EMAF_CHECK_GE(start, 0);
  EMAF_CHECK_LE(end, d);
  EMAF_CHECK_LT(start, end) << "empty slice [" << start << ", " << end << ")";

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= xs.dim(i);
  for (int64_t i = axis + 1; i < xs.rank(); ++i) inner *= xs.dim(i);
  int64_t len = end - start;

  std::vector<int64_t> out_dims = xs.dims();
  out_dims[axis] = len;
  Tensor out = MakeUninitialized(Shape(out_dims), x.dtype());
  const int64_t esize = DTypeSize(x.dtype());
  const std::byte* xd = static_cast<const std::byte*>(x.raw_data());
  std::byte* od = static_cast<std::byte*>(out.raw_data());
  for (int64_t o = 0; o < outer; ++o) {
    const std::byte* src = xd + (o * d + start) * inner * esize;
    std::byte* dst = od + o * len * inner * esize;
    std::memcpy(dst, src, static_cast<size_t>(len * inner * esize));
  }
  if (ph::Active()) {
    ph::Record({ph::OpKind::kSlice, {x}, out, 0.0, 0.0, {axis, start, end}});
  }
  if (ShouldRecord({x})) {
    Shape x_shape = xs;
    SetGradFn(&out, "Slice", {x},
              [x_shape, outer, inner, d, len, start](const Tensor& g) {
                Tensor gx = Tensor::Zeros(x_shape);
                const Scalar* gd = g.data();
                Scalar* gxd = gx.data();
                for (int64_t o = 0; o < outer; ++o) {
                  const Scalar* src = gd + o * len * inner;
                  Scalar* dst = gxd + (o * d + start) * inner;
                  std::copy(src, src + len * inner, dst);
                }
                return std::vector<Tensor>{gx};
              });
  }
  return out;
}

Tensor Select(const Tensor& x, int64_t dim, int64_t index) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  if (index < 0) index += x.shape().dim(axis);
  Tensor sliced = Slice(x, axis, index, index + 1);
  return Squeeze(sliced, axis);
}

Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim) {
  EMAF_CHECK(!tensors.empty());
  const Shape& first = tensors[0].shape();
  int64_t axis = first.CanonicalAxis(dim);
  int64_t total = 0;
  for (const Tensor& t : tensors) {
    EMAF_CHECK_EQ(t.rank(), first.rank());
    for (int64_t i = 0; i < first.rank(); ++i) {
      if (i != axis) {
        EMAF_CHECK_EQ(t.shape().dim(i), first.dim(i))
            << "Cat shape mismatch on axis " << i;
      }
    }
    total += t.shape().dim(axis);
  }
  for (const Tensor& t : tensors) {
    EMAF_CHECK(t.dtype() == tensors[0].dtype())
        << "Cat inputs must share a dtype";
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[axis] = total;
  Shape out_shape(out_dims);
  Tensor out = MakeUninitialized(out_shape, tensors[0].dtype());

  int64_t outer = 1;
  int64_t inner = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= first.dim(i);
  for (int64_t i = axis + 1; i < first.rank(); ++i) inner *= first.dim(i);

  const int64_t esize = DTypeSize(out.dtype());
  std::byte* od = static_cast<std::byte*>(out.raw_data());
  int64_t written = 0;
  for (const Tensor& t : tensors) {
    int64_t len = t.shape().dim(axis);
    const std::byte* td = static_cast<const std::byte*>(t.raw_data());
    for (int64_t o = 0; o < outer; ++o) {
      const std::byte* src = td + o * len * inner * esize;
      std::byte* dst = od + (o * total + written) * inner * esize;
      std::memcpy(dst, src, static_cast<size_t>(len * inner * esize));
    }
    written += len;
  }

  if (ph::Active()) {
    ph::Record({ph::OpKind::kCat, tensors, out, 0.0, 0.0, {axis}});
  }
  if (ShouldRecord(tensors)) {
    std::vector<int64_t> lengths;
    lengths.reserve(tensors.size());
    for (const Tensor& t : tensors) lengths.push_back(t.shape().dim(axis));
    SetGradFn(&out, "Cat", tensors, [axis, lengths](const Tensor& g) {
      NoGradGuard guard;
      std::vector<Tensor> grads;
      grads.reserve(lengths.size());
      int64_t offset = 0;
      for (int64_t len : lengths) {
        grads.push_back(Slice(g, axis, offset, offset + len));
        offset += len;
      }
      return grads;
    });
  }
  return out;
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim) {
  EMAF_CHECK(!tensors.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const Tensor& t : tensors) expanded.push_back(Unsqueeze(t, dim));
  return Cat(expanded, dim);
}

Tensor Pad(const Tensor& x,
           const std::vector<std::pair<int64_t, int64_t>>& padding) {
  const Shape& xs = x.shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(padding.size()), xs.rank());
  std::vector<int64_t> out_dims(xs.rank());
  for (int64_t i = 0; i < xs.rank(); ++i) {
    EMAF_CHECK_GE(padding[i].first, 0);
    EMAF_CHECK_GE(padding[i].second, 0);
    out_dims[i] = xs.dim(i) + padding[i].first + padding[i].second;
  }
  Shape out_shape(out_dims);
  Tensor out = Tensor::Zeros(out_shape, x.dtype());

  // Copy x into the interior region via odometer over x indices.
  std::vector<int64_t> out_strides = out_shape.Strides();
  const std::vector<int64_t>& dims = xs.dims();
  int64_t rank = xs.rank();
  std::vector<int64_t> index(rank, 0);
  const int64_t esize = DTypeSize(x.dtype());
  const std::byte* xd = static_cast<const std::byte*>(x.raw_data());
  std::byte* od = static_cast<std::byte*>(out.raw_data());
  int64_t base = 0;
  for (int64_t i = 0; i < rank; ++i) base += padding[i].first * out_strides[i];
  int64_t n = xs.NumElements();
  // Rows along the innermost axis are contiguous in both tensors.
  int64_t row = dims[rank - 1];
  int64_t rows = n / row;
  int64_t off = base;
  for (int64_t r = 0; r < rows; ++r) {
    std::memcpy(od + off * esize, xd + r * row * esize,
                static_cast<size_t>(row * esize));
    for (int64_t axis = rank - 2; axis >= 0; --axis) {
      off += out_strides[axis];
      if (++index[axis] < dims[axis]) break;
      off -= out_strides[axis] * dims[axis];
      index[axis] = 0;
    }
  }

  if (ph::Active()) {
    std::vector<int64_t> flat;
    flat.reserve(padding.size() * 2);
    for (const auto& [before, after] : padding) {
      flat.push_back(before);
      flat.push_back(after);
    }
    ph::Record({ph::OpKind::kPad, {x}, out, 0.0, 0.0, std::move(flat)});
  }
  if (ShouldRecord({x})) {
    Shape x_shape = xs;
    SetGradFn(&out, "Pad", {x}, [x_shape, padding](const Tensor& g) {
      NoGradGuard guard;
      Tensor region = g;
      for (int64_t i = 0; i < x_shape.rank(); ++i) {
        region = Slice(region, i, padding[i].first,
                       padding[i].first + x_shape.dim(i));
      }
      return std::vector<Tensor>{region};
    });
  }
  return out;
}

Tensor BroadcastTo(const Tensor& x, const Shape& shape) {
  EMAF_CHECK(IsBroadcastableTo(x.shape(), shape))
      << x.shape().ToString() << " -> " << shape.ToString();
  std::vector<int64_t> in_strides = BroadcastStrides(x.shape(), shape);
  Tensor out = StridedCopy(x, shape, in_strides);
  if (ph::Active()) {
    ph::Record({ph::OpKind::kBroadcastTo, {x}, out, 0.0, 0.0, shape.dims()});
  }
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    SetGradFn(&out, "BroadcastTo", {x}, [x_shape](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{internal::SumTo(g, x_shape)};
    });
  }
  return out;
}

}  // namespace emaf::tensor
