// f32 kernel arms. Compiled with -ffp-contract=off (src/CMakeLists.txt) so
// every FMA below is one we wrote explicitly; see simd_f32.h for the
// bitwise SIMD-vs-scalar contract each pair of arms upholds.

#include "tensor/simd_f32.h"

#include <immintrin.h>

#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/env.h"

namespace emaf::tensor::simd {

namespace {

bool ProbeEnabled() {
  if (GetEnvBool("EMAF_NO_SIMD", false)) return false;
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

// -1 = not yet probed; tests overwrite via SetEnabledForTest.
std::atomic<int> g_enabled{-1};

// --- matmul arms ---------------------------------------------------------
//
// Both arms produce, for every element C[i][j], the chain
//   for kk in 0..k: C[i][j] = fmaf(A[i][kk], B[kk][j], C[i][j])
// in increasing kk order — the SIMD arm's 4-row / 8-lane blocking only
// reorders *which element* is updated next, never the per-element chain.

void MatMulF32Scalar(const float* __restrict__ a, const float* __restrict__ b,
                     float* __restrict__ c, int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        ci[j] = std::fmaf(v, brow[j], ci[j]);
      }
    }
  }
}

void MatMulF32Avx2(const float* __restrict__ a, const float* __restrict__ b,
                   float* __restrict__ c, int64_t m, int64_t k, int64_t n) {
  int64_t i = 0;
  // 4 rows of C per pass share each loaded row of B.
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    float* c0 = c + (i + 0) * n;
    float* c1 = c + (i + 1) * n;
    float* c2 = c + (i + 2) * n;
    float* c3 = c + (i + 3) * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float v0 = a0[kk];
      const float v1 = a1[kk];
      const float v2 = a2[kk];
      const float v3 = a3[kk];
      const __m256 w0 = _mm256_set1_ps(v0);
      const __m256 w1 = _mm256_set1_ps(v1);
      const __m256 w2 = _mm256_set1_ps(v2);
      const __m256 w3 = _mm256_set1_ps(v3);
      const float* brow = b + kk * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 bv = _mm256_loadu_ps(brow + j);
        _mm256_storeu_ps(c0 + j,
                         _mm256_fmadd_ps(w0, bv, _mm256_loadu_ps(c0 + j)));
        _mm256_storeu_ps(c1 + j,
                         _mm256_fmadd_ps(w1, bv, _mm256_loadu_ps(c1 + j)));
        _mm256_storeu_ps(c2 + j,
                         _mm256_fmadd_ps(w2, bv, _mm256_loadu_ps(c2 + j)));
        _mm256_storeu_ps(c3 + j,
                         _mm256_fmadd_ps(w3, bv, _mm256_loadu_ps(c3 + j)));
      }
      for (; j < n; ++j) {
        c0[j] = std::fmaf(v0, brow[j], c0[j]);
        c1[j] = std::fmaf(v1, brow[j], c1[j]);
        c2[j] = std::fmaf(v2, brow[j], c2[j]);
        c3[j] = std::fmaf(v3, brow[j], c3[j]);
      }
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float v = ai[kk];
      const float* brow = b + kk * n;
      int64_t j = 0;
      const __m256 w = _mm256_set1_ps(v);
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(ci + j, _mm256_fmadd_ps(w, _mm256_loadu_ps(brow + j),
                                                 _mm256_loadu_ps(ci + j)));
      }
      for (; j < n; ++j) {
        ci[j] = std::fmaf(v, brow[j], ci[j]);
      }
    }
  }
}

}  // namespace

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ProbeEnabled() ? 1 : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

bool SetEnabledForTest(bool enabled) {
  g_enabled.store(enabled ? (ProbeEnabled() ? 1 : 0) : 0,
                  std::memory_order_relaxed);
  return Enabled();
}

void MatMulF32(const float* a, const float* b, float* c, int64_t m, int64_t k,
               int64_t n) {
  if (Enabled()) {
    MatMulF32Avx2(a, b, c, m, k, n);
  } else {
    MatMulF32Scalar(a, b, c, m, k, n);
  }
}

void BinaryF32(EwOp op, float* dst, const float* other, bool swapped,
               int64_t n) {
  // Each op is one IEEE operation per element, so the 8-lane arm and the
  // scalar tail/fallback produce identical bytes. The scalar expressions
  // mirror the op-layer lambdas (ops_elementwise.cc) exactly — vmaxps(x,y)
  // is `x > y ? x : y` for every input including NaNs and signed zeros.
  const bool use_simd = Enabled();
  int64_t i = 0;
  switch (op) {
    case EwOp::kAdd:
      if (use_simd) {
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                                                  _mm256_loadu_ps(other + i)));
        }
      }
      for (; i < n; ++i) dst[i] = dst[i] + other[i];
      break;
    case EwOp::kSub:
      if (swapped) {
        if (use_simd) {
          for (; i + 8 <= n; i += 8) {
            _mm256_storeu_ps(dst + i,
                             _mm256_sub_ps(_mm256_loadu_ps(other + i),
                                           _mm256_loadu_ps(dst + i)));
          }
        }
        for (; i < n; ++i) dst[i] = other[i] - dst[i];
      } else {
        if (use_simd) {
          for (; i + 8 <= n; i += 8) {
            _mm256_storeu_ps(dst + i,
                             _mm256_sub_ps(_mm256_loadu_ps(dst + i),
                                           _mm256_loadu_ps(other + i)));
          }
        }
        for (; i < n; ++i) dst[i] = dst[i] - other[i];
      }
      break;
    case EwOp::kMul:
      if (use_simd) {
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i),
                                                  _mm256_loadu_ps(other + i)));
        }
      }
      for (; i < n; ++i) dst[i] = dst[i] * other[i];
      break;
    case EwOp::kDiv:
      if (swapped) {
        if (use_simd) {
          for (; i + 8 <= n; i += 8) {
            _mm256_storeu_ps(dst + i,
                             _mm256_div_ps(_mm256_loadu_ps(other + i),
                                           _mm256_loadu_ps(dst + i)));
          }
        }
        for (; i < n; ++i) dst[i] = other[i] / dst[i];
      } else {
        if (use_simd) {
          for (; i + 8 <= n; i += 8) {
            _mm256_storeu_ps(dst + i,
                             _mm256_div_ps(_mm256_loadu_ps(dst + i),
                                           _mm256_loadu_ps(other + i)));
          }
        }
        for (; i < n; ++i) dst[i] = dst[i] / other[i];
      }
      break;
    case EwOp::kMax: {
      const float* x = swapped ? other : dst;
      const float* y = swapped ? dst : other;
      if (use_simd) {
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_max_ps(_mm256_loadu_ps(x + i),
                                                  _mm256_loadu_ps(y + i)));
        }
      }
      for (; i < n; ++i) dst[i] = x[i] > y[i] ? x[i] : y[i];
      break;
    }
    case EwOp::kMin: {
      const float* x = swapped ? other : dst;
      const float* y = swapped ? dst : other;
      if (use_simd) {
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_min_ps(_mm256_loadu_ps(x + i),
                                                  _mm256_loadu_ps(y + i)));
        }
      }
      for (; i < n; ++i) dst[i] = x[i] < y[i] ? x[i] : y[i];
      break;
    }
  }
}

void UnaryF32(UnOp op, float* dst, float s0, float s1, int64_t n) {
  const bool use_simd = Enabled();
  int64_t i = 0;
  switch (op) {
    case UnOp::kNeg: {
      // IEEE negate flips the sign bit; XOR is that operation exactly.
      if (use_simd) {
        const __m256 sign = _mm256_set1_ps(-0.0f);
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i,
                           _mm256_xor_ps(_mm256_loadu_ps(dst + i), sign));
        }
      }
      for (; i < n; ++i) dst[i] = -dst[i];
      break;
    }
    case UnOp::kAbs: {
      if (use_simd) {
        const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i,
                           _mm256_and_ps(_mm256_loadu_ps(dst + i), mask));
        }
      }
      for (; i < n; ++i) dst[i] = std::fabs(dst[i]);
      break;
    }
    case UnOp::kSqrt:
      if (use_simd) {
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_sqrt_ps(_mm256_loadu_ps(dst + i)));
        }
      }
      for (; i < n; ++i) dst[i] = std::sqrt(dst[i]);
      break;
    case UnOp::kRelu: {
      // vmaxps(v, 0) is `v > 0 ? v : 0` for every input (NaN -> 0 in both).
      if (use_simd) {
        const __m256 zero = _mm256_setzero_ps();
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i,
                           _mm256_max_ps(_mm256_loadu_ps(dst + i), zero));
        }
      }
      for (; i < n; ++i) dst[i] = dst[i] > 0.0f ? dst[i] : 0.0f;
      break;
    }
    case UnOp::kLeakyRelu: {
      if (use_simd) {
        const __m256 zero = _mm256_setzero_ps();
        const __m256 slope = _mm256_set1_ps(s0);
        for (; i + 8 <= n; i += 8) {
          const __m256 v = _mm256_loadu_ps(dst + i);
          const __m256 pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
          _mm256_storeu_ps(
              dst + i, _mm256_blendv_ps(_mm256_mul_ps(slope, v), v, pos));
        }
      }
      for (; i < n; ++i) {
        dst[i] = dst[i] > 0.0f ? dst[i] : s0 * dst[i];
      }
      break;
    }
    case UnOp::kClamp: {
      // vmaxps(lo, v) is `v < lo ? lo : v` and vminps(hi, t) is
      // `t > hi ? hi : t` for every input (NaN passes through both), which
      // composes to the op lambda's `v < lo ? lo : (v > hi ? hi : v)`.
      if (use_simd) {
        const __m256 lo = _mm256_set1_ps(s0);
        const __m256 hi = _mm256_set1_ps(s1);
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(
              dst + i,
              _mm256_min_ps(hi, _mm256_max_ps(lo, _mm256_loadu_ps(dst + i))));
        }
      }
      for (; i < n; ++i) {
        const float v = dst[i];
        dst[i] = v < s0 ? s0 : (v > s1 ? s1 : v);
      }
      break;
    }
    case UnOp::kAddScalar: {
      if (use_simd) {
        const __m256 s = _mm256_set1_ps(s0);
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), s));
        }
      }
      for (; i < n; ++i) dst[i] = dst[i] + s0;
      break;
    }
    case UnOp::kMulScalar: {
      if (use_simd) {
        const __m256 s = _mm256_set1_ps(s0);
        for (; i + 8 <= n; i += 8) {
          _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), s));
        }
      }
      for (; i < n; ++i) dst[i] = dst[i] * s0;
      break;
    }
  }
}

}  // namespace emaf::tensor::simd
