#include <algorithm>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"
#include "tensor/simd_f32.h"

namespace emaf::tensor {

namespace internal {

void MatMulKernel(const Scalar* __restrict__ a, const Scalar* __restrict__ b,
                  Scalar* __restrict__ c, int64_t m, int64_t k, int64_t n) {
  // Row-blocked i-k-j: four A rows share each loaded B row, the j loop is
  // contiguous in B and C and auto-vectorizes. C must be zero-initialized
  // (or hold a partial sum).
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const Scalar* a0 = a + i * k;
    const Scalar* a1 = a0 + k;
    const Scalar* a2 = a1 + k;
    const Scalar* a3 = a2 + k;
    Scalar* c0 = c + i * n;
    Scalar* c1 = c0 + n;
    Scalar* c2 = c1 + n;
    Scalar* c3 = c2 + n;
    for (int64_t kk = 0; kk < k; ++kk) {
      Scalar v0 = a0[kk];
      Scalar v1 = a1[kk];
      Scalar v2 = a2[kk];
      Scalar v3 = a3[kk];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      const Scalar* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        Scalar bj = brow[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < m; ++i) {
    const Scalar* arow = a + i * k;
    Scalar* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      Scalar aik = arow[kk];
      if (aik == 0.0) continue;
      const Scalar* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void ParallelMatMul(const Scalar* a, const Scalar* b, Scalar* c, int64_t m,
                    int64_t k, int64_t n) {
  common::ThreadPool& pool = common::ThreadPool::Global();
  if (pool.num_threads() <= 1 || m < 8 || m * k * n < kMatMulParallelMinFlops) {
    EMAF_METRIC_COUNTER_ADD("matmul.dispatch_serial", 1);
    MatMulKernel(a, b, c, m, k, n);
    return;
  }
  EMAF_METRIC_COUNTER_ADD("matmul.dispatch_parallel", 1);
  // Chunk in units of the kernel's 4-row block: a chunk starting at a
  // multiple of 4 replays exactly the serial schedule for its rows (the
  // sub-4 remainder, if any, lands in the final chunk just as it does at
  // the end of a serial sweep), so the output is bitwise identical.
  int64_t num_blocks = (m + 3) / 4;
  int64_t grain = std::max<int64_t>(
      1, num_blocks / (pool.num_threads() * 4));
  pool.ParallelFor(0, num_blocks, grain, [&](int64_t b0, int64_t b1) {
    int64_t r0 = b0 * 4;
    int64_t r1 = std::min(b1 * 4, m);
    MatMulKernel(a + r0 * k, b, c + r0 * n, r1 - r0, k, n);
  });
}

void ParallelMatMul(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  common::ThreadPool& pool = common::ThreadPool::Global();
  if (pool.num_threads() <= 1 || m < 8 || m * k * n < kMatMulParallelMinFlops) {
    EMAF_METRIC_COUNTER_ADD("matmul.dispatch_serial", 1);
    simd::MatMulF32(a, b, c, m, k, n);
    return;
  }
  EMAF_METRIC_COUNTER_ADD("matmul.dispatch_parallel", 1);
  // Rows of the f32 kernel are fully independent (simd_f32.h: no
  // zero-skip, no cross-row state), so any row partition is bitwise-safe;
  // chunk at the kernel's 4-row block so full blocks stay intact.
  int64_t num_blocks = (m + 3) / 4;
  int64_t grain = std::max<int64_t>(
      1, num_blocks / (pool.num_threads() * 4));
  pool.ParallelFor(0, num_blocks, grain, [&](int64_t b0, int64_t b1) {
    int64_t r0 = b0 * 4;
    int64_t r1 = std::min(b1 * 4, m);
    simd::MatMulF32(a + r0 * k, b, c + r0 * n, r1 - r0, k, n);
  });
}

}  // namespace internal

namespace {

// Shape of the leading (batch) axes, i.e. everything but the last two.
Shape BatchShape(const Shape& s) {
  std::vector<int64_t> dims(s.dims().begin(), s.dims().end() - 2);
  return Shape(dims);
}

// The serial per-batch kernel for each element type: f64 keeps the
// zero-skipping MatMulKernel verbatim (golden bytes), f32 routes through
// the dispatched simd kernel.
inline void SerialKernel(const Scalar* a, const Scalar* b, Scalar* c,
                         int64_t m, int64_t k, int64_t n) {
  internal::MatMulKernel(a, b, c, m, k, n);
}
inline void SerialKernel(const float* a, const float* b, float* c, int64_t m,
                         int64_t k, int64_t n) {
  simd::MatMulF32(a, b, c, m, k, n);
}

// The dtype-generic compute body of MatMul: out must be zero-initialized
// with the broadcast-batched output shape.
template <typename T>
void MatMulCompute(const Tensor& a, const Tensor& b, Tensor* out, int64_t m,
                   int64_t k, int64_t n, const Shape& a_batch,
                   const Shape& b_batch, const Shape& batch) {
  const T* ad = a.data<T>();
  const T* bd = b.data<T>();
  T* od = out->data<T>();

  if (b.rank() == 2) {
    // Shared right matrix: collapse all leading axes of `a` into rows and
    // run one large matmul — the hot path for linear layers and graph
    // propagation.
    int64_t rows = a.NumElements() / k;
    internal::ParallelMatMul(ad, bd, od, rows, k, n);
    return;
  }
  // General broadcast-batched case, batch offsets via odometer. The
  // odometer walk is cheap and stays serial; the per-batch kernels run
  // in parallel over pre-computed offsets when the total work is large
  // enough (each batch writes a disjoint output slab, and each batch's
  // kernel is the same call as in the serial loop, so the result is
  // bitwise identical).
  std::vector<int64_t> a_strides = BroadcastStrides(a_batch, batch);
  std::vector<int64_t> b_strides = BroadcastStrides(b_batch, batch);
  const std::vector<int64_t>& batch_dims = batch.dims();
  int64_t batch_rank = batch.rank();
  int64_t num_batches = batch.NumElements();
  std::vector<int64_t> index(static_cast<size_t>(batch_rank), 0);
  std::vector<int64_t> a_offsets(static_cast<size_t>(num_batches));
  std::vector<int64_t> b_offsets(static_cast<size_t>(num_batches));
  int64_t a_off = 0;
  int64_t b_off = 0;
  for (int64_t batch_idx = 0; batch_idx < num_batches; ++batch_idx) {
    a_offsets[static_cast<size_t>(batch_idx)] = a_off * m * k;
    b_offsets[static_cast<size_t>(batch_idx)] = b_off * k * n;
    for (int64_t axis = batch_rank - 1; axis >= 0; --axis) {
      a_off += a_strides[axis];
      b_off += b_strides[axis];
      if (++index[axis] < batch_dims[axis]) break;
      a_off -= a_strides[axis] * batch_dims[axis];
      b_off -= b_strides[axis] * batch_dims[axis];
      index[axis] = 0;
    }
  }
  common::ThreadPool& pool = common::ThreadPool::Global();
  bool parallel = pool.num_threads() > 1 && num_batches > 1 &&
                  num_batches * m * k * n >= internal::kMatMulParallelMinFlops;
  auto run_batches = [&](int64_t lo, int64_t hi) {
    for (int64_t batch_idx = lo; batch_idx < hi; ++batch_idx) {
      SerialKernel(ad + a_offsets[static_cast<size_t>(batch_idx)],
                   bd + b_offsets[static_cast<size_t>(batch_idx)],
                   od + batch_idx * m * n, m, k, n);
    }
  };
  if (parallel) {
    EMAF_METRIC_COUNTER_ADD("matmul.batched_dispatch_parallel", 1);
    pool.ParallelFor(0, num_batches, 1, run_batches);
  } else {
    EMAF_METRIC_COUNTER_ADD("matmul.batched_dispatch_serial", 1);
    run_batches(0, num_batches);
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EMAF_CHECK_GE(a.rank(), 2) << "MatMul input must have rank >= 2";
  EMAF_CHECK_GE(b.rank(), 2) << "MatMul input must have rank >= 2";
  int64_t m = a.dim(-2);
  int64_t k = a.dim(-1);
  int64_t k2 = b.dim(-2);
  int64_t n = b.dim(-1);
  EMAF_CHECK_EQ(k, k2) << "MatMul inner dimension mismatch: "
                       << a.shape().ToString() << " x " << b.shape().ToString();

  EMAF_CHECK(a.dtype() == b.dtype())
      << "MatMul on " << DTypeName(a.dtype()) << " and "
      << DTypeName(b.dtype());
  Shape a_batch = BatchShape(a.shape());
  Shape b_batch = BatchShape(b.shape());
  Shape batch = BroadcastShapes(a_batch, b_batch);
  std::vector<int64_t> out_dims = batch.dims();
  out_dims.push_back(m);
  out_dims.push_back(n);
  Tensor out = Tensor::Zeros(Shape(out_dims), a.dtype());

  if (a.dtype() == DType::kF32) {
    MatMulCompute<float>(a, b, &out, m, k, n, a_batch, b_batch, batch);
  } else {
    MatMulCompute<Scalar>(a, b, &out, m, k, n, a_batch, b_batch, batch);
  }

  if (plan_hook::Active()) {
    plan_hook::Record({plan_hook::OpKind::kMatMul, {a, b}, out});
  }
  if (ShouldRecord({a, b})) {
    Tensor ad_saved = a.Detach();
    Tensor bd_saved = b.Detach();
    SetGradFn(&out, "MatMul", {a, b}, [ad_saved, bd_saved](const Tensor& g) {
      NoGradGuard guard;
      // dA = g B^T, reduced over broadcast batch dims; likewise dB.
      Tensor ga = internal::SumTo(MatMul(g, TransposeLast2(bd_saved)),
                                  ad_saved.shape());
      Tensor gb;
      if (bd_saved.rank() == 2) {
        // dB = sum_batch A^T g = (collapsed A)^T (collapsed g): one kernel
        // call instead of a batched matmul plus reduction.
        int64_t k = bd_saved.dim(0);
        int64_t n = bd_saved.dim(1);
        int64_t rows = ad_saved.NumElements() / k;
        Tensor at = TransposeLast2(Reshape(ad_saved, Shape{rows, k}));
        gb = Tensor::Zeros(bd_saved.shape());
        internal::ParallelMatMul(at.data(), g.data(), gb.data(), k, rows, n);
      } else {
        gb = internal::SumTo(MatMul(TransposeLast2(ad_saved), g),
                             bd_saved.shape());
      }
      return std::vector<Tensor>{ga, gb};
    });
  }
  return out;
}

}  // namespace emaf::tensor
