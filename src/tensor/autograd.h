// Reverse-mode autodiff tape.
//
// Every differentiable op attaches a GradFn to its output. GradFn keeps the
// op's input tensors alive and a closure mapping the output gradient to
// per-input gradients. RunBackward topologically sorts the graph reachable
// from the root and accumulates gradients into leaf tensors that were
// created with requires_grad.

#ifndef EMAF_TENSOR_AUTOGRAD_H_
#define EMAF_TENSOR_AUTOGRAD_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::tensor {

struct GradFn {
  // Op name, for error messages and debugging.
  std::string name;
  // The op's inputs (graph edges point from output to inputs).
  std::vector<Tensor> inputs;
  // Maps d(loss)/d(output) to {d(loss)/d(input_i)}. Entries may be undefined
  // Tensors for inputs that do not need gradients.
  std::function<std::vector<Tensor>(const Tensor& grad_output)> backward;
};

// Whether ops currently record GradFn nodes (thread-local).
bool GradModeEnabled();

// RAII guard that disables gradient recording in its scope (evaluation,
// data preprocessing, optimizer updates).
class NoGradGuard {
 public:
  NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
  ~NoGradGuard();
};

// Backward sweep from `root` (must be a single-element tensor). Gradients
// are accumulated (+=) into the .grad of reachable leaves, so call
// ZeroGrad between steps (optimizers do this).
void RunBackward(const Tensor& root);

// Helper for op implementations: true if the op applied to `inputs` should
// record a GradFn (grad mode on and at least one input tracks gradients).
bool ShouldRecord(const std::vector<Tensor>& inputs);

// Attaches a GradFn to `output` (sets grad_fn; marks it as tracking grads).
void SetGradFn(Tensor* output, std::string name, std::vector<Tensor> inputs,
               std::function<std::vector<Tensor>(const Tensor&)> backward);

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_AUTOGRAD_H_
