// Tensor: contiguous row-major N-d array with a runtime element type
// (DType: f64 for training and the default serving path, f32 for the
// opt-in inference path) and tape-based reverse-mode autodiff.
//
// A Tensor is a cheap handle (shared_ptr) onto a TensorImpl. Math lives in
// free functions (tensor/ops.h); each differentiable op records a GradFn
// node so `loss.Backward()` can later accumulate gradients into every leaf
// created with requires_grad — see tensor/autograd.h.
//
// Storage is a raw byte buffer tagged with a DType. The checked non-
// template data() accessors are the f64 fast path every pre-dtype call
// site uses (they CHECK the tensor is f64); dtype-generic code reads
// through data<T>() or raw_data(). Gradients are always f64 — autograd
// never runs on f32 tensors.
//
// Tensors are always contiguous; Reshape shares storage, every other shape
// op copies. No in-place differentiable ops exist: optimizers mutate
// parameter storage directly through data(), outside the tape.

#ifndef EMAF_TENSOR_TENSOR_H_
#define EMAF_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace emaf::tensor {

using Scalar = double;

struct GradFn;  // defined in tensor/autograd.h

// Internal representation. Treat as private to the tensor subsystem.
struct TensorImpl {
  Shape shape;
  DType dtype = DType::kF64;
  std::shared_ptr<std::vector<std::byte>> storage;
  bool requires_grad = false;
  // Non-null for op outputs that participate in the autodiff graph.
  std::shared_ptr<GradFn> grad_fn;
  // Gradient accumulated by Backward() for leaves with requires_grad.
  std::shared_ptr<TensorImpl> grad;
};

class Tensor {
 public:
  // An undefined tensor; defined() is false, most other calls CHECK-fail.
  Tensor() = default;

  // --- Factories -----------------------------------------------------------
  static Tensor Zeros(const Shape& shape, DType dtype = DType::kF64);
  static Tensor Ones(const Shape& shape, DType dtype = DType::kF64);
  static Tensor Full(const Shape& shape, Scalar value,
                     DType dtype = DType::kF64);
  static Tensor FromVector(const Shape& shape, std::vector<Scalar> values);
  static Tensor FromScalar(Scalar value);  // rank-0
  static Tensor Eye(int64_t n);
  static Tensor Arange(int64_t n);  // [0, 1, ..., n-1], shape [n]
  static Tensor Uniform(const Shape& shape, Scalar low, Scalar high, Rng* rng);
  static Tensor Normal(const Shape& shape, Scalar mean, Scalar stddev,
                       Rng* rng);
  static Tensor Bernoulli(const Shape& shape, Scalar p, Rng* rng);

  // --- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  DType dtype() const;
  int64_t rank() const { return shape().rank(); }
  int64_t dim(int64_t axis) const { return shape().DimChecked(axis); }
  int64_t NumElements() const { return shape().NumElements(); }
  // NumElements() * DTypeSize(dtype()): the in-memory payload size.
  int64_t byte_size() const;
  std::string ToString() const;  // shape + values (small tensors only)

  // --- Data access ---------------------------------------------------------
  // f64 accessors (CHECK dtype() == kF64): the path every pre-dtype call
  // site compiles against unchanged.
  Scalar* data();
  const Scalar* data() const;
  // Typed accessors; CHECK that T matches dtype().
  template <typename T>
  T* data() {
    return static_cast<T*>(CheckedRawData(DTypeOf<T>::value));
  }
  template <typename T>
  const T* data() const {
    return static_cast<const T*>(CheckedRawData(DTypeOf<T>::value));
  }
  // Untyped storage pointer (any dtype); size is byte_size().
  void* raw_data();
  const void* raw_data() const;
  // Element by multi-index (converted through Scalar for any dtype).
  Scalar At(const std::vector<int64_t>& index) const;
  void Set(const std::vector<int64_t>& index, Scalar value);
  // Value of a single-element tensor.
  Scalar item() const;
  std::vector<Scalar> ToVector() const;
  void Fill(Scalar value);

  // Deep copy of values; result is a leaf outside the autodiff graph.
  Tensor Clone() const;
  // Same storage, detached from the graph (no grad_fn, requires_grad off).
  Tensor Detach() const;
  // Converting copy to `dtype` (a leaf outside the graph); returns *this
  // unchanged when the dtype already matches.
  Tensor CastTo(DType dtype) const;

  // --- Autograd ------------------------------------------------------------
  Tensor& SetRequiresGrad(bool requires_grad);
  bool requires_grad() const;
  // True if gradients flow through this tensor (leaf flag or recorded op).
  bool TracksGrad() const;
  // Gradient accumulated by Backward(); undefined Tensor if none.
  Tensor grad() const;
  void ZeroGrad();
  // Reverse-mode sweep from this (single-element) tensor.
  void Backward() const;

  // Internal: wraps an impl. Used by ops and the autograd engine.
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  void* CheckedRawData(DType expected) const;

  std::shared_ptr<TensorImpl> impl_;
};

// Creates a defined tensor with uninitialized storage (ops use this).
Tensor MakeUninitialized(const Shape& shape, DType dtype = DType::kF64);

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_TENSOR_H_
