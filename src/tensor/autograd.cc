#include "tensor/autograd.h"

#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/metrics.h"

namespace emaf::tensor {

namespace {

thread_local int no_grad_depth = 0;

// Adds `delta` into `acc` (initializing `acc` on first use). Shapes must
// match exactly; ops are responsible for reducing broadcasts beforehand.
void AccumulateGrad(Tensor* acc, const Tensor& delta) {
  if (!acc->defined()) {
    *acc = delta.Clone();
    return;
  }
  EMAF_CHECK(acc->shape() == delta.shape())
      << "gradient shape mismatch: " << acc->shape().ToString() << " vs "
      << delta.shape().ToString();
  Scalar* a = acc->data();
  const Scalar* d = delta.data();
  const int64_t n = acc->NumElements();
  for (int64_t i = 0; i < n; ++i) a[i] += d[i];
}

}  // namespace

bool GradModeEnabled() { return no_grad_depth == 0; }

NoGradGuard::NoGradGuard() { ++no_grad_depth; }
NoGradGuard::~NoGradGuard() { --no_grad_depth; }

bool ShouldRecord(const std::vector<Tensor>& inputs) {
  if (!GradModeEnabled()) return false;
  for (const Tensor& t : inputs) {
    if (t.defined() && t.TracksGrad()) return true;
  }
  return false;
}

void SetGradFn(Tensor* output, std::string name, std::vector<Tensor> inputs,
               std::function<std::vector<Tensor>(const Tensor&)> backward) {
  EMAF_CHECK(output->defined());
  EMAF_METRIC_COUNTER_ADD("tensor.gradfn_allocs", 1);
  auto fn = std::make_shared<GradFn>();
  fn->name = std::move(name);
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  output->impl()->grad_fn = std::move(fn);
}

void RunBackward(const Tensor& root) {
  EMAF_CHECK(root.defined());
  EMAF_CHECK_EQ(root.NumElements(), 1)
      << "Backward() requires a single-element tensor";

  // Post-order DFS (iterative) to get a topological order of impls.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  // Keep shared ownership of every visited impl for the duration.
  std::unordered_map<TensorImpl*, std::shared_ptr<TensorImpl>> owned;

  struct Frame {
    std::shared_ptr<TensorImpl> impl;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({root.impl(), 0});
  visited.insert(root.impl().get());
  owned[root.impl().get()] = root.impl();

  while (!stack.empty()) {
    Frame& frame = stack.back();
    GradFn* fn = frame.impl->grad_fn.get();
    size_t num_children = fn == nullptr ? 0 : fn->inputs.size();
    if (frame.next_child < num_children) {
      const Tensor& child = fn->inputs[frame.next_child++];
      if (child.defined() && child.TracksGrad() &&
          visited.insert(child.impl().get()).second) {
        owned[child.impl().get()] = child.impl();
        stack.push_back({child.impl(), 0});
      }
    } else {
      topo.push_back(frame.impl.get());
      stack.pop_back();
    }
  }
  // topo is children-before-parents; reverse for root-first traversal.

  std::unordered_map<TensorImpl*, Tensor> grads;
  grads[root.impl().get()] =
      Tensor::Ones(root.shape());

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* impl = *it;
    auto grad_it = grads.find(impl);
    if (grad_it == grads.end()) continue;  // unreachable branch
    Tensor grad = grad_it->second;

    if (impl->grad_fn == nullptr) {
      if (impl->requires_grad) {
        // Leaf: accumulate into persistent .grad.
        Tensor current = impl->grad == nullptr ? Tensor() : Tensor(impl->grad);
        AccumulateGrad(&current, grad);
        impl->grad = current.impl();
      }
      continue;
    }

    GradFn* fn = impl->grad_fn.get();
    std::vector<Tensor> input_grads = fn->backward(grad);
    EMAF_CHECK_EQ(input_grads.size(), fn->inputs.size())
        << "op " << fn->name << " returned wrong number of gradients";
    for (size_t i = 0; i < fn->inputs.size(); ++i) {
      const Tensor& input = fn->inputs[i];
      if (!input.defined() || !input.TracksGrad()) continue;
      const Tensor& ig = input_grads[i];
      if (!ig.defined()) continue;
      EMAF_CHECK(ig.shape() == input.shape())
          << "op " << fn->name << " produced gradient of shape "
          << ig.shape().ToString() << " for input of shape "
          << input.shape().ToString();
      AccumulateGrad(&grads[input.impl().get()], ig);
    }
    // Free this node's gradient buffer early.
    grads.erase(grad_it);
  }
}

}  // namespace emaf::tensor
