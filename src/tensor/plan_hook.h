// plan_hook: a thread-local recording tap inside the tensor ops.
//
// When a Sink is installed (ScopedSink), every *leaf* op — the ones that
// actually touch scalar storage, not the composites built from them —
// reports one OpRecord after computing its output: the op kind, the input
// and output tensors (by handle, so the recorder can key on TensorImpl
// identity), and the op's scalar/integer parameters. emaf::plan replays a
// model forward under a sink to build a compiled inference plan
// (DESIGN.md, "Compiled plans").
//
// The tap is deliberately dumb: it neither interprets nor validates the
// stream, and with no sink installed each op pays a single thread-local
// pointer load. Recording is per-thread, so one thread compiling a plan
// never observes ops executed by concurrent requests.

#ifndef EMAF_TENSOR_PLAN_HOOK_H_
#define EMAF_TENSOR_PLAN_HOOK_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::tensor::plan_hook {

// Leaf ops that can appear in a recorded stream. Composite ops (Transpose,
// Select, Stack, Mean, ...) decompose into these before the tap fires, so
// the enum stays closed over what the interpreter must replay.
enum class OpKind : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMaximum,
  kMinimum,
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kPow,        // s0 = exponent
  kClamp,      // s0 = low, s1 = high
  kAddScalar,  // s0 = addend
  kMulScalar,  // s0 = factor
  kRelu,
  kLeakyRelu,  // s0 = negative_slope
  kElu,        // s0 = alpha
  kSigmoid,
  kTanh,
  kSoftmax,     // ints = {axis}
  kLogSoftmax,  // ints = {axis}
  kMatMul,
  kSumTo,        // ints = target shape dims (empty = rank-0)
  kReshape,      // ints = output shape dims
  kPermute,      // ints = permutation
  kSlice,        // ints = {axis, start, end} (canonical)
  kCat,          // ints = {axis}
  kPad,          // ints = {before_0, after_0, before_1, after_1, ...}
  kBroadcastTo,  // ints = output shape dims
  kConv2d,       // inputs = {input, weight, bias?}; ints = {stride_h,
                 // stride_w, pad_h, pad_w, dilation_h, dilation_w}
};

struct OpRecord {
  OpKind kind;
  // Input handles in op-argument order. May contain an undefined Tensor
  // (Conv2d's optional bias), which the recorder passes through as-is.
  std::vector<Tensor> inputs;
  Tensor output;
  Scalar s0 = 0.0;
  Scalar s1 = 0.0;
  std::vector<int64_t> ints;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Record(OpRecord record) = 0;
};

namespace internal {
extern thread_local Sink* tls_sink;
}  // namespace internal

// True when the calling thread has a sink installed — the only cost ops
// pay when nothing is recording.
inline bool Active() { return internal::tls_sink != nullptr; }

// Forwards one record to the calling thread's sink (must be Active()).
void Record(OpRecord record);

// Installs `sink` as the calling thread's recorder for the scope's
// lifetime; restores the previous sink (normally none) on exit.
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

}  // namespace emaf::tensor::plan_hook

#endif  // EMAF_TENSOR_PLAN_HOOK_H_
