#include "tensor/op_common.h"
#include "tensor/ops.h"

namespace emaf::tensor {

Tensor MseLoss(const Tensor& prediction, const Tensor& target) {
  EMAF_CHECK(prediction.shape() == target.shape())
      << "MseLoss shape mismatch: " << prediction.shape().ToString() << " vs "
      << target.shape().ToString();
  Tensor diff = Sub(prediction, target);
  return Mean(Mul(diff, diff));
}

Tensor MaeLoss(const Tensor& prediction, const Tensor& target) {
  EMAF_CHECK(prediction.shape() == target.shape())
      << "MaeLoss shape mismatch: " << prediction.shape().ToString() << " vs "
      << target.shape().ToString();
  return Mean(Abs(Sub(prediction, target)));
}

Tensor HuberLoss(const Tensor& prediction, const Tensor& target,
                 Scalar delta) {
  EMAF_CHECK(prediction.shape() == target.shape());
  EMAF_CHECK_GT(delta, 0.0);
  Tensor a = Abs(Sub(prediction, target));
  // 0.5 * min(a, delta)^2 + delta * max(a - delta, 0); the two branches
  // agree in value and derivative at |a| == delta.
  Tensor quad = MulScalar(Pow(Clamp(a, 0.0, delta), 2.0), 0.5);
  Tensor lin = MulScalar(Relu(AddScalar(a, -delta)), delta);
  return Mean(Add(quad, lin));
}

}  // namespace emaf::tensor
