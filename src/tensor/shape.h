// Shape: dimension list of an N-d tensor, plus row-major stride and
// broadcasting arithmetic shared by every tensor op.

#ifndef EMAF_TENSOR_SHAPE_H_
#define EMAF_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace emaf::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t axis) const;
  // Like dim(), but accepts negative axes (-1 = last).
  int64_t DimChecked(int64_t axis) const;
  // Maps a possibly-negative axis into [0, rank).
  int64_t CanonicalAxis(int64_t axis) const;

  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t NumElements() const;

  // Row-major (C order) strides, in elements.
  std::vector<int64_t> Strides() const;

  // "[2, 3, 4]"
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

// Broadcast result of two shapes under NumPy rules; CHECK-fails when the
// shapes are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

// True if `from` can be broadcast to `to`.
bool IsBroadcastableTo(const Shape& from, const Shape& to);

// Strides for reading a tensor of shape `from` as if it had shape `to`
// (stride 0 on broadcast axes). `from` must be broadcastable to `to`.
std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to);

// Converts a flat row-major index in `shape` to a multi-index.
void UnravelIndex(int64_t flat, const Shape& shape,
                  std::vector<int64_t>* index);

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_SHAPE_H_
