// Internal helpers shared by op implementations. Not part of the public API.

#ifndef EMAF_TENSOR_OP_COMMON_H_
#define EMAF_TENSOR_OP_COMMON_H_

#include <vector>

#include "common/check.h"
#include "tensor/autograd.h"
#include "tensor/dtype.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace emaf::tensor::internal {

// C += A B on raw row-major buffers; C must be zero-initialized (or hold a
// partial sum to accumulate into). Defined in ops_matmul.cc.
void MatMulKernel(const Scalar* a, const Scalar* b, Scalar* c, int64_t m,
                  int64_t k, int64_t n);

// MatMulKernel parallelized over rows of C on the global ThreadPool.
// Partitions only at multiples of the kernel's 4-row block, so every row
// runs the exact serial instruction sequence and the result is bitwise
// identical to one MatMulKernel call at any thread count. Stays serial
// below a flop threshold (kMatMulParallelMinFlops) where fork/join
// overhead would dominate. Defined in ops_matmul.cc.
void ParallelMatMul(const Scalar* a, const Scalar* b, Scalar* c, int64_t m,
                    int64_t k, int64_t n);

// f32 overload: rows of C are fully independent in the f32 kernel
// (simd_f32.h), so any row partition is bitwise-safe at any thread count.
// Dispatches to the AVX2/FMA microkernel or its scalar-fmaf fallback per
// simd::Enabled(); both arms produce identical bytes.
void ParallelMatMul(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);

// m * k * n below which ParallelMatMul runs serially.
inline constexpr int64_t kMatMulParallelMinFlops = 1 << 17;

// Applies `f(x_i)` elementwise into a fresh tensor of x's dtype (no
// autograd recording; callers attach their own GradFn). `f` must be
// generic (or Scalar-typed for f64-only callers such as backward passes);
// at float instantiation every literal inside `f` must be T-pure or the
// arithmetic silently promotes to double.
template <typename T, typename F>
Tensor MapUnaryT(const Tensor& x, F f) {
  Tensor out = MakeUninitialized(x.shape(), x.dtype());
  const T* xd = x.template data<T>();
  T* od = out.template data<T>();
  int64_t n = x.NumElements();
  for (int64_t i = 0; i < n; ++i) od[i] = f(xd[i]);
  return out;
}

template <typename F>
Tensor MapUnary(const Tensor& x, F f) {
  if (x.dtype() == DType::kF32) return MapUnaryT<float>(x, f);
  return MapUnaryT<double>(x, f);
}

// Applies `f(a_i, b_i)` with broadcasting into a fresh tensor (no autograd).
template <typename T, typename F>
Tensor MapBinaryT(const Tensor& a, const Tensor& b, F f) {
  if (a.shape() == b.shape()) {
    Tensor out = MakeUninitialized(a.shape(), a.dtype());
    const T* ad = a.template data<T>();
    const T* bd = b.template data<T>();
    T* od = out.template data<T>();
    int64_t n = a.NumElements();
    for (int64_t i = 0; i < n; ++i) od[i] = f(ad[i], bd[i]);
    return out;
  }
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = MakeUninitialized(out_shape, a.dtype());
  std::vector<int64_t> a_strides = BroadcastStrides(a.shape(), out_shape);
  std::vector<int64_t> b_strides = BroadcastStrides(b.shape(), out_shape);
  const std::vector<int64_t>& dims = out_shape.dims();
  int64_t rank = out_shape.rank();
  std::vector<int64_t> index(rank, 0);
  const T* ad = a.template data<T>();
  const T* bd = b.template data<T>();
  T* od = out.template data<T>();
  int64_t n = out_shape.NumElements();
  int64_t a_off = 0;
  int64_t b_off = 0;
  for (int64_t i = 0; i < n; ++i) {
    od[i] = f(ad[a_off], bd[b_off]);
    // Odometer increment over the multi-index, updating offsets in place.
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      a_off += a_strides[axis];
      b_off += b_strides[axis];
      if (++index[axis] < dims[axis]) break;
      // Carry: rewind this axis.
      a_off -= a_strides[axis] * dims[axis];
      b_off -= b_strides[axis] * dims[axis];
      index[axis] = 0;
    }
  }
  return out;
}

template <typename F>
Tensor MapBinary(const Tensor& a, const Tensor& b, F f) {
  EMAF_CHECK(a.dtype() == b.dtype())
      << "binary op on " << DTypeName(a.dtype()) << " and "
      << DTypeName(b.dtype());
  if (a.dtype() == DType::kF32) return MapBinaryT<float>(a, b, f);
  return MapBinaryT<double>(a, b, f);
}

}  // namespace emaf::tensor::internal

#endif  // EMAF_TENSOR_OP_COMMON_H_
