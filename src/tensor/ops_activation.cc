#include <cmath>

#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"

namespace emaf::tensor {

namespace {

using internal::MapUnary;

namespace ph = plan_hook;

void DecomposeAround(const Shape& shape, int64_t axis, int64_t* outer,
                     int64_t* d, int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < axis; ++i) *outer *= shape.dim(i);
  *d = shape.dim(axis);
  for (int64_t i = axis + 1; i < shape.rank(); ++i) *inner *= shape.dim(i);
}

template <typename T>
void SoftmaxCompute(const Tensor& x, Tensor* out, int64_t outer, int64_t d,
                    int64_t inner) {
  const T* xd = x.data<T>();
  T* od = out->data<T>();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      T max_v = xd[(o * d) * inner + i];
      for (int64_t k = 1; k < d; ++k) {
        max_v = std::max(max_v, xd[(o * d + k) * inner + i]);
      }
      T denom = T(0);
      for (int64_t k = 0; k < d; ++k) {
        T e = std::exp(xd[(o * d + k) * inner + i] - max_v);
        od[(o * d + k) * inner + i] = e;
        denom += e;
      }
      for (int64_t k = 0; k < d; ++k) od[(o * d + k) * inner + i] /= denom;
    }
  }
}

template <typename T>
void LogSoftmaxCompute(const Tensor& x, Tensor* out, int64_t outer, int64_t d,
                       int64_t inner) {
  const T* xd = x.data<T>();
  T* od = out->data<T>();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      T max_v = xd[(o * d) * inner + i];
      for (int64_t k = 1; k < d; ++k) {
        max_v = std::max(max_v, xd[(o * d + k) * inner + i]);
      }
      T denom = T(0);
      for (int64_t k = 0; k < d; ++k) {
        denom += std::exp(xd[(o * d + k) * inner + i] - max_v);
      }
      T log_denom = max_v + std::log(denom);
      for (int64_t k = 0; k < d; ++k) {
        int64_t idx = (o * d + k) * inner + i;
        od[idx] = xd[idx] - log_denom;
      }
    }
  }
}

}  // namespace

Tensor Relu(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) {
    using T = decltype(v);
    return v > T(0) ? v : T(0);
  });
  if (ph::Active()) ph::Record({ph::OpKind::kRelu, {x}, out});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "Relu", {x}, [xd](const Tensor& g) {
      NoGradGuard guard;
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* xv = xd.data();
      Scalar* o = gx.data();
      const int64_t emaf_n = g.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) {
        o[i] = xv[i] > 0 ? gd[i] : 0.0;
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor LeakyRelu(const Tensor& x, Scalar negative_slope) {
  Tensor out = MapUnary(x, [negative_slope](auto v) {
    using T = decltype(v);
    return v > T(0) ? v : static_cast<T>(negative_slope) * v;
  });
  if (ph::Active()) {
    ph::Record({ph::OpKind::kLeakyRelu, {x}, out, negative_slope});
  }
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    SetGradFn(&out, "LeakyRelu", {x}, [xd, negative_slope](const Tensor& g) {
      NoGradGuard guard;
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* xv = xd.data();
      Scalar* o = gx.data();
      const int64_t emaf_n = g.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) {
        o[i] = xv[i] > 0 ? gd[i] : negative_slope * gd[i];
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor Elu(const Tensor& x, Scalar alpha) {
  Tensor out = MapUnary(x, [alpha](auto v) {
    using T = decltype(v);
    return v > T(0) ? v : static_cast<T>(alpha) * (std::exp(v) - T(1));
  });
  if (ph::Active()) ph::Record({ph::OpKind::kElu, {x}, out, alpha});
  if (ShouldRecord({x})) {
    Tensor xd = x.Detach();
    Tensor y = out.Detach();
    SetGradFn(&out, "Elu", {x}, [xd, y, alpha](const Tensor& g) {
      NoGradGuard guard;
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* xv = xd.data();
      const Scalar* yv = y.data();
      Scalar* o = gx.data();
      const int64_t emaf_n = g.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) {
        // d/dx elu = 1 for x>0 else elu(x)+alpha.
        o[i] = xv[i] > 0 ? gd[i] : gd[i] * (yv[i] + alpha);
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) {
    using T = decltype(v);
    // Numerically stable logistic.
    if (v >= T(0)) {
      T e = std::exp(-v);
      return T(1) / (T(1) + e);
    }
    T e = std::exp(v);
    return e / (T(1) + e);
  });
  if (ph::Active()) ph::Record({ph::OpKind::kSigmoid, {x}, out});
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "Sigmoid", {x}, [y](const Tensor& g) {
      NoGradGuard guard;
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* yv = y.data();
      Scalar* o = gx.data();
      const int64_t emaf_n = g.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) {
        o[i] = gd[i] * yv[i] * (1.0 - yv[i]);
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor Tanh(const Tensor& x) {
  Tensor out = MapUnary(x, [](auto v) { return std::tanh(v); });
  if (ph::Active()) ph::Record({ph::OpKind::kTanh, {x}, out});
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "Tanh", {x}, [y](const Tensor& g) {
      NoGradGuard guard;
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* yv = y.data();
      Scalar* o = gx.data();
      const int64_t emaf_n = g.NumElements();
      for (int64_t i = 0; i < emaf_n; ++i) {
        o[i] = gd[i] * (1.0 - yv[i] * yv[i]);
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor Softmax(const Tensor& x, int64_t dim) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  int64_t outer;
  int64_t d;
  int64_t inner;
  DecomposeAround(x.shape(), axis, &outer, &d, &inner);
  EMAF_CHECK_GT(d, 0);

  Tensor out = MakeUninitialized(x.shape(), x.dtype());
  if (x.dtype() == DType::kF32) {
    SoftmaxCompute<float>(x, &out, outer, d, inner);
  } else {
    SoftmaxCompute<Scalar>(x, &out, outer, d, inner);
  }

  if (ph::Active()) {
    ph::Record({ph::OpKind::kSoftmax, {x}, out, 0.0, 0.0, {axis}});
  }
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "Softmax", {x}, [y, outer, d, inner](const Tensor& g) {
      NoGradGuard guard;
      // gx = (g - sum_k g_k y_k) * y, per slice.
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* yv = y.data();
      Scalar* o = gx.data();
      for (int64_t ob = 0; ob < outer; ++ob) {
        for (int64_t i = 0; i < inner; ++i) {
          Scalar dot = 0.0;
          for (int64_t k = 0; k < d; ++k) {
            int64_t idx = (ob * d + k) * inner + i;
            dot += gd[idx] * yv[idx];
          }
          for (int64_t k = 0; k < d; ++k) {
            int64_t idx = (ob * d + k) * inner + i;
            o[idx] = (gd[idx] - dot) * yv[idx];
          }
        }
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor LogSoftmax(const Tensor& x, int64_t dim) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  int64_t outer;
  int64_t d;
  int64_t inner;
  DecomposeAround(x.shape(), axis, &outer, &d, &inner);
  EMAF_CHECK_GT(d, 0);

  Tensor out = MakeUninitialized(x.shape(), x.dtype());
  if (x.dtype() == DType::kF32) {
    LogSoftmaxCompute<float>(x, &out, outer, d, inner);
  } else {
    LogSoftmaxCompute<Scalar>(x, &out, outer, d, inner);
  }

  if (ph::Active()) {
    ph::Record({ph::OpKind::kLogSoftmax, {x}, out, 0.0, 0.0, {axis}});
  }
  if (ShouldRecord({x})) {
    Tensor y = out.Detach();
    SetGradFn(&out, "LogSoftmax", {x}, [y, outer, d, inner](const Tensor& g) {
      NoGradGuard guard;
      // gx = g - softmax(x) * sum_k g_k, per slice.
      Tensor gx = MakeUninitialized(g.shape());
      const Scalar* gd = g.data();
      const Scalar* yv = y.data();
      Scalar* o = gx.data();
      for (int64_t ob = 0; ob < outer; ++ob) {
        for (int64_t i = 0; i < inner; ++i) {
          Scalar total = 0.0;
          for (int64_t k = 0; k < d; ++k) {
            total += gd[(ob * d + k) * inner + i];
          }
          for (int64_t k = 0; k < d; ++k) {
            int64_t idx = (ob * d + k) * inner + i;
            o[idx] = gd[idx] - std::exp(yv[idx]) * total;
          }
        }
      }
      return std::vector<Tensor>{gx};
    });
  }
  return out;
}

Tensor Dropout(const Tensor& x, Scalar p, bool training, Rng* rng) {
  EMAF_CHECK_GE(p, 0.0);
  EMAF_CHECK_LT(p, 1.0) << "Dropout probability must be < 1";
  if (!training || p == 0.0) return x;
  EMAF_CHECK(rng != nullptr);
  Scalar keep = 1.0 - p;
  Tensor mask = MakeUninitialized(x.shape());
  Scalar* md = mask.data();
  const int64_t emaf_n = mask.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) {
    md[i] = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
  }
  Tensor out = internal::MapBinary(x, mask, [](Scalar a, Scalar b) { return a * b; });
  if (ShouldRecord({x})) {
    SetGradFn(&out, "Dropout", {x}, [mask](const Tensor& g) {
      NoGradGuard guard;
      return std::vector<Tensor>{internal::MapBinary(
          g, mask, [](Scalar a, Scalar b) { return a * b; })};
    });
  }
  return out;
}

}  // namespace emaf::tensor
