// Element types a Tensor can hold (DESIGN.md, "Dtype layer & SIMD
// dispatch").
//
// Training and the default serving path run on kF64 (`Scalar`); kF32 is
// the inference dtype opened end to end by the dtype-generic op layer:
// half the resident bytes per tenant and twice the SIMD lane width on the
// V=26 dense kernels that dominate the serving loop. The enum values are
// also the on-disk dtype byte of snapshot format v3, so they must never
// be renumbered.

#ifndef EMAF_TENSOR_DTYPE_H_
#define EMAF_TENSOR_DTYPE_H_

#include <cstdint>

namespace emaf::tensor {

enum class DType : uint8_t {
  kF64 = 0,  // double — training and the pinned default inference path
  kF32 = 1,  // float — opt-in inference path (EngineOptions::inference_dtype)
};

inline constexpr int64_t DTypeSize(DType dtype) {
  return dtype == DType::kF64 ? 8 : 4;
}

inline constexpr const char* DTypeName(DType dtype) {
  return dtype == DType::kF64 ? "f64" : "f32";
}

inline constexpr bool IsValidDType(uint8_t byte) {
  return byte == static_cast<uint8_t>(DType::kF64) ||
         byte == static_cast<uint8_t>(DType::kF32);
}

// The DType tag for a C++ scalar type; the primary template is left
// undefined so any other element type fails to compile.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kF64;
};
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kF32;
};

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_DTYPE_H_
