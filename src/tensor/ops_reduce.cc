#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"

namespace emaf::tensor {

namespace {
namespace ph = plan_hook;
}  // namespace

namespace internal {

namespace {

template <typename T>
void SumToAccumulate(const Tensor& x, Tensor* out,
                     const std::vector<int64_t>& t_strides) {
  const Shape& xs = x.shape();
  const std::vector<int64_t>& dims = xs.dims();
  int64_t rank = xs.rank();
  std::vector<int64_t> index(rank, 0);
  const T* xd = x.template data<T>();
  T* od = out->template data<T>();
  int64_t n = xs.NumElements();
  int64_t off = 0;
  for (int64_t i = 0; i < n; ++i) {
    od[off] += xd[i];
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      off += t_strides[axis];
      if (++index[axis] < dims[axis]) break;
      off -= t_strides[axis] * dims[axis];
      index[axis] = 0;
    }
  }
}

}  // namespace

Tensor SumTo(const Tensor& x, const Shape& target) {
  if (x.shape() == target) {
    Tensor out = x.Clone();
    if (ph::Active()) {
      ph::Record({ph::OpKind::kSumTo, {x}, out, 0.0, 0.0, target.dims()});
    }
    return out;
  }
  EMAF_CHECK(IsBroadcastableTo(target, x.shape()))
      << "cannot sum-reduce " << x.shape().ToString() << " to "
      << target.ToString();
  Tensor out = Tensor::Zeros(target, x.dtype());
  std::vector<int64_t> t_strides = BroadcastStrides(target, x.shape());
  if (x.dtype() == DType::kF32) {
    SumToAccumulate<float>(x, &out, t_strides);
  } else {
    SumToAccumulate<Scalar>(x, &out, t_strides);
  }
  if (ph::Active()) {
    ph::Record({ph::OpKind::kSumTo, {x}, out, 0.0, 0.0, target.dims()});
  }
  return out;
}

}  // namespace internal

namespace {

// Canonicalizes reduction axes: sorted, unique, non-negative.
std::vector<int64_t> CanonicalDims(const Shape& shape,
                                   const std::vector<int64_t>& dims) {
  std::vector<int64_t> out;
  out.reserve(dims.size());
  for (int64_t d : dims) out.push_back(shape.CanonicalAxis(d));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Shape with reduced axes kept as size 1.
Shape KeepShape(const Shape& shape, const std::vector<int64_t>& dims) {
  std::vector<int64_t> kept = shape.dims();
  for (int64_t d : dims) kept[d] = 1;
  return Shape(kept);
}

// Shape with reduced axes removed.
Shape DropShape(const Shape& shape, const std::vector<int64_t>& dims) {
  std::vector<int64_t> out;
  size_t j = 0;
  for (int64_t i = 0; i < shape.rank(); ++i) {
    if (j < dims.size() && dims[j] == i) {
      ++j;
      continue;
    }
    out.push_back(shape.dim(i));
  }
  return Shape(out);
}

// Expands `g` (of keep-shape) to `full` by copying along broadcast axes.
Tensor ExpandFrom(const Tensor& g, const Shape& full) {
  Tensor out = MakeUninitialized(full);
  std::vector<int64_t> g_strides = BroadcastStrides(g.shape(), full);
  const std::vector<int64_t>& dims = full.dims();
  int64_t rank = full.rank();
  std::vector<int64_t> index(rank, 0);
  const Scalar* gd = g.data();
  Scalar* od = out.data();
  int64_t n = full.NumElements();
  int64_t off = 0;
  for (int64_t i = 0; i < n; ++i) {
    od[i] = gd[off];
    for (int64_t axis = rank - 1; axis >= 0; --axis) {
      off += g_strides[axis];
      if (++index[axis] < dims[axis]) break;
      off -= g_strides[axis] * dims[axis];
      index[axis] = 0;
    }
  }
  return out;
}

// Decomposes `shape` around `dim` into [outer, d, inner] extents.
void OuterInner(const Shape& shape, int64_t dim, int64_t* outer, int64_t* d,
                int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape.dim(i);
  *d = shape.dim(dim);
  for (int64_t i = dim + 1; i < shape.rank(); ++i) *inner *= shape.dim(i);
}

enum class ExtremeKind { kMax, kMin };

template <typename T>
void ExtremeScan(const Tensor& x, Tensor* values, std::vector<int64_t>* arg,
                 int64_t outer, int64_t d, int64_t inner, ExtremeKind kind) {
  const T* xd = x.data<T>();
  T* vd = values->data<T>();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best_k = 0;
      T best = xd[(o * d) * inner + i];
      for (int64_t k = 1; k < d; ++k) {
        T v = xd[(o * d + k) * inner + i];
        bool better = kind == ExtremeKind::kMax ? v > best : v < best;
        if (better) {
          best = v;
          best_k = k;
        }
      }
      vd[o * inner + i] = best;
      (*arg)[o * inner + i] = best_k;
    }
  }
}

Tensor Extreme(const Tensor& x, int64_t dim, bool keepdim, ExtremeKind kind) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  int64_t outer;
  int64_t d;
  int64_t inner;
  OuterInner(x.shape(), axis, &outer, &d, &inner);
  EMAF_CHECK_GT(d, 0) << "reduction over empty axis";

  Shape keep = KeepShape(x.shape(), {axis});
  Tensor values = MakeUninitialized(keep, x.dtype());
  auto arg = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(outer * inner));
  if (x.dtype() == DType::kF32) {
    ExtremeScan<float>(x, &values, arg.get(), outer, d, inner, kind);
  } else {
    ExtremeScan<Scalar>(x, &values, arg.get(), outer, d, inner, kind);
  }

  Shape out_shape = keepdim ? keep : DropShape(x.shape(), {axis});
  Tensor out = Reshape(values, out_shape);
  // Reshape above may record a GradFn chained to `values` (which has none),
  // so clear autograd state and attach our own node.
  out = out.Detach();
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    const char* name = kind == ExtremeKind::kMax ? "Max" : "Min";
    SetGradFn(&out, name, {x},
              [arg, x_shape, outer, d, inner](const Tensor& g) {
                NoGradGuard guard;
                Tensor gx = Tensor::Zeros(x_shape);
                const Scalar* gd = g.data();
                Scalar* gxd = gx.data();
                for (int64_t o = 0; o < outer; ++o) {
                  for (int64_t i = 0; i < inner; ++i) {
                    int64_t k = (*arg)[o * inner + i];
                    gxd[(o * d + k) * inner + i] += gd[o * inner + i];
                  }
                }
                return std::vector<Tensor>{gx};
              });
  }
  return out;
}

template <typename T>
void ArgMaxScan(const Tensor& x, Tensor* out, int64_t outer, int64_t d,
                int64_t inner) {
  const T* xd = x.data<T>();
  T* od = out->data<T>();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      int64_t best_k = 0;
      T best = xd[(o * d) * inner + i];
      for (int64_t k = 1; k < d; ++k) {
        T v = xd[(o * d + k) * inner + i];
        if (v > best) {
          best = v;
          best_k = k;
        }
      }
      od[o * inner + i] = static_cast<T>(best_k);
    }
  }
}

template <typename T>
void TopKMaskCompute(const Tensor& x, Tensor* mask, int64_t k, int64_t outer,
                     int64_t d, int64_t inner) {
  const T* xd = x.data<T>();
  T* md = mask->data<T>();
  std::vector<std::pair<T, int64_t>> slice(static_cast<size_t>(d));
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        slice[j] = {xd[(o * d + j) * inner + i], j};
      }
      // Keep the k largest; ties resolved toward the lower index.
      std::nth_element(slice.begin(), slice.begin() + (k - 1), slice.end(),
                       [](const auto& a, const auto& b) {
                         if (a.first != b.first) return a.first > b.first;
                         return a.second < b.second;
                       });
      for (int64_t j = 0; j < k; ++j) {
        md[(o * d + slice[j].second) * inner + i] = T(1);
      }
    }
  }
}

}  // namespace

Tensor Sum(const Tensor& x) {
  Tensor out = Tensor::Zeros(Shape{}, x.dtype());
  const int64_t emaf_n = x.NumElements();
  if (x.dtype() == DType::kF32) {
    const float* xd = x.data<float>();
    float acc = 0.0f;
    for (int64_t i = 0; i < emaf_n; ++i) acc += xd[i];
    out.data<float>()[0] = acc;
  } else {
    const Scalar* xd = x.data();
    Scalar acc = 0.0;
    for (int64_t i = 0; i < emaf_n; ++i) acc += xd[i];
    out.data()[0] = acc;
  }
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    SetGradFn(&out, "Sum", {x}, [x_shape](const Tensor& g) {
      return std::vector<Tensor>{Tensor::Full(x_shape, g.item())};
    });
  }
  return out;
}

Tensor Sum(const Tensor& x, const std::vector<int64_t>& dims, bool keepdim) {
  if (dims.empty()) {
    // Sum over no axes is the identity (clone to keep value semantics).
    Tensor out = x.Clone();
    if (ShouldRecord({x})) {
      SetGradFn(&out, "SumNoAxes", {x}, [](const Tensor& g) {
        return std::vector<Tensor>{g.Clone()};
      });
    }
    return out;
  }
  std::vector<int64_t> axes = CanonicalDims(x.shape(), dims);
  Shape keep = KeepShape(x.shape(), axes);
  Tensor reduced = internal::SumTo(x, keep);
  Shape out_shape = keepdim ? keep : DropShape(x.shape(), axes);
  // `reduced` is freshly materialized and tracks no grad, so reshaping it
  // in place (storage-sharing) is safe and avoids a second allocation.
  Tensor out = Reshape(reduced, out_shape);
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    SetGradFn(&out, "SumDims", {x}, [x_shape, keep](const Tensor& g) {
      NoGradGuard guard;
      Tensor gk = Tensor::FromVector(keep, g.ToVector());
      return std::vector<Tensor>{ExpandFrom(gk, x_shape)};
    });
  }
  return out;
}

Tensor Mean(const Tensor& x) {
  int64_t n = x.NumElements();
  EMAF_CHECK_GT(n, 0);
  Tensor out = Tensor::Zeros(Shape{}, x.dtype());
  if (x.dtype() == DType::kF32) {
    const float* xd = x.data<float>();
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i) acc += xd[i];
    out.data<float>()[0] = acc / static_cast<float>(n);
  } else {
    const Scalar* xd = x.data();
    Scalar acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += xd[i];
    out.data()[0] = acc / static_cast<Scalar>(n);
  }
  if (ShouldRecord({x})) {
    Shape x_shape = x.shape();
    SetGradFn(&out, "Mean", {x}, [x_shape, n](const Tensor& g) {
      return std::vector<Tensor>{
          Tensor::Full(x_shape, g.item() / static_cast<Scalar>(n))};
    });
  }
  return out;
}

Tensor Mean(const Tensor& x, const std::vector<int64_t>& dims, bool keepdim) {
  std::vector<int64_t> axes = CanonicalDims(x.shape(), dims);
  int64_t count = 1;
  for (int64_t d : axes) count *= x.shape().dim(d);
  EMAF_CHECK_GT(count, 0) << "mean over empty axes";
  Tensor summed = Sum(x, dims, keepdim);
  return MulScalar(summed, 1.0 / static_cast<Scalar>(count));
}

Tensor Max(const Tensor& x, int64_t dim, bool keepdim) {
  return Extreme(x, dim, keepdim, ExtremeKind::kMax);
}

Tensor Min(const Tensor& x, int64_t dim, bool keepdim) {
  return Extreme(x, dim, keepdim, ExtremeKind::kMin);
}

Tensor ArgMax(const Tensor& x, int64_t dim, bool keepdim) {
  int64_t axis = x.shape().CanonicalAxis(dim);
  int64_t outer;
  int64_t d;
  int64_t inner;
  OuterInner(x.shape(), axis, &outer, &d, &inner);
  EMAF_CHECK_GT(d, 0);
  Shape keep = KeepShape(x.shape(), {axis});
  Shape out_shape = keepdim ? keep : DropShape(x.shape(), {axis});
  Tensor out = Tensor::Zeros(out_shape, x.dtype());
  if (x.dtype() == DType::kF32) {
    ArgMaxScan<float>(x, &out, outer, d, inner);
  } else {
    ArgMaxScan<Scalar>(x, &out, outer, d, inner);
  }
  return out;
}

Tensor TopKMask(const Tensor& x, int64_t k, int64_t dim) {
  EMAF_CHECK_GE(k, 0);
  int64_t axis = x.shape().CanonicalAxis(dim);
  int64_t outer;
  int64_t d;
  int64_t inner;
  OuterInner(x.shape(), axis, &outer, &d, &inner);
  Tensor mask = Tensor::Zeros(x.shape(), x.dtype());
  if (k >= d) {
    mask.Fill(1.0);
    return mask;
  }
  if (k == 0) return mask;
  if (x.dtype() == DType::kF32) {
    TopKMaskCompute<float>(x, &mask, k, outer, d, inner);
  } else {
    TopKMaskCompute<Scalar>(x, &mask, k, outer, d, inner);
  }
  return mask;
}

bool HasNonFinite(const Tensor& x) {
  int64_t n = x.NumElements();
  if (x.dtype() == DType::kF32) {
    const float* d = x.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      if (!std::isfinite(d[i])) return true;
    }
    return false;
  }
  const Scalar* d = x.data();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(d[i])) return true;
  }
  return false;
}

}  // namespace emaf::tensor
