#include "tensor/tensor.h"

#include <cstring>
#include <sstream>

#include "common/check.h"
#include "common/metrics.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"

namespace emaf::tensor {

namespace {

std::shared_ptr<TensorImpl> NewImpl(const Shape& shape, DType dtype) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->dtype = dtype;
  const int64_t bytes = shape.NumElements() * DTypeSize(dtype);
  if (InferenceArena* arena = CurrentArena()) {
    // Serving path: recycle a pooled buffer of matching byte count instead
    // of heap-allocating (DESIGN.md, "Serving layer"). Recycled buffers
    // hold stale values — exactly the MakeUninitialized contract.
    impl->storage = arena->Acquire(bytes);
  } else {
    EMAF_METRIC_COUNTER_ADD("tensor.storage_allocs", 1);
    impl->storage =
        std::make_shared<std::vector<std::byte>>(static_cast<size_t>(bytes));
  }
  return impl;
}

// Reads element i of a buffer whose element type is `dtype`, as Scalar.
inline Scalar LoadElement(const void* data, DType dtype, int64_t i) {
  if (dtype == DType::kF64) return static_cast<const double*>(data)[i];
  return static_cast<Scalar>(static_cast<const float*>(data)[i]);
}

// Writes element i of a buffer whose element type is `dtype`.
inline void StoreElement(void* data, DType dtype, int64_t i, Scalar value) {
  if (dtype == DType::kF64) {
    static_cast<double*>(data)[i] = value;
  } else {
    static_cast<float*>(data)[i] = static_cast<float>(value);
  }
}

}  // namespace

Tensor MakeUninitialized(const Shape& shape, DType dtype) {
  return Tensor(NewImpl(shape, dtype));
}

Tensor Tensor::Zeros(const Shape& shape, DType dtype) {
  Tensor t = MakeUninitialized(shape, dtype);
  // A fresh byte vector is value-initialized to all-zero bytes (which is
  // 0.0 in both element types), so the heap path is already zero; an arena
  // buffer is recycled and must be cleared.
  if (CurrentArena() != nullptr) {
    std::memset(t.raw_data(), 0, static_cast<size_t>(t.byte_size()));
  }
  return t;
}

Tensor Tensor::Ones(const Shape& shape, DType dtype) {
  return Full(shape, 1.0, dtype);
}

Tensor Tensor::Full(const Shape& shape, Scalar value, DType dtype) {
  Tensor t = MakeUninitialized(shape, dtype);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<Scalar> values) {
  EMAF_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()));
  // A fresh heap buffer for the caller's values, so this always counts as
  // a storage allocation — even under an ArenaScope, which FromVector
  // bypasses.
  EMAF_METRIC_COUNTER_ADD("tensor.storage_allocs", 1);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  const size_t bytes = values.size() * sizeof(Scalar);
  impl->storage = std::make_shared<std::vector<std::byte>>(bytes);
  std::memcpy(impl->storage->data(), values.data(), bytes);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromScalar(Scalar value) {
  return FromVector(Shape{}, {value});
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros(Shape{n, n});
  Scalar* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i * n + i] = 1.0;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = MakeUninitialized(Shape{n});
  Scalar* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i] = static_cast<Scalar>(i);
  return t;
}

Tensor Tensor::Uniform(const Shape& shape, Scalar low, Scalar high, Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) d[i] = rng->Uniform(low, high);
  return t;
}

Tensor Tensor::Normal(const Shape& shape, Scalar mean, Scalar stddev,
                      Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) d[i] = rng->Normal(mean, stddev);
  return t;
}

Tensor Tensor::Bernoulli(const Shape& shape, Scalar p, Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) {
    d[i] = rng->Bernoulli(p) ? 1.0 : 0.0;
  }
  return t;
}

const Shape& Tensor::shape() const {
  EMAF_CHECK(defined());
  return impl_->shape;
}

DType Tensor::dtype() const {
  EMAF_CHECK(defined());
  return impl_->dtype;
}

int64_t Tensor::byte_size() const {
  EMAF_CHECK(defined());
  return static_cast<int64_t>(impl_->storage->size());
}

void* Tensor::CheckedRawData(DType expected) const {
  EMAF_CHECK(defined());
  EMAF_CHECK(impl_->dtype == expected)
      << "tensor is " << DTypeName(impl_->dtype) << ", accessed as "
      << DTypeName(expected);
  return impl_->storage->data();
}

Scalar* Tensor::data() {
  return static_cast<Scalar*>(CheckedRawData(DType::kF64));
}

const Scalar* Tensor::data() const {
  return static_cast<const Scalar*>(CheckedRawData(DType::kF64));
}

void* Tensor::raw_data() {
  EMAF_CHECK(defined());
  return impl_->storage->data();
}

const void* Tensor::raw_data() const {
  EMAF_CHECK(defined());
  return impl_->storage->data();
}

Scalar Tensor::At(const std::vector<int64_t>& index) const {
  const Shape& s = shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(index.size()), s.rank());
  std::vector<int64_t> strides = s.Strides();
  int64_t offset = 0;
  for (int64_t i = 0; i < s.rank(); ++i) {
    EMAF_CHECK_GE(index[i], 0);
    EMAF_CHECK_LT(index[i], s.dim(i));
    offset += index[i] * strides[i];
  }
  return LoadElement(raw_data(), dtype(), offset);
}

void Tensor::Set(const std::vector<int64_t>& index, Scalar value) {
  const Shape& s = shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(index.size()), s.rank());
  std::vector<int64_t> strides = s.Strides();
  int64_t offset = 0;
  for (int64_t i = 0; i < s.rank(); ++i) {
    EMAF_CHECK_GE(index[i], 0);
    EMAF_CHECK_LT(index[i], s.dim(i));
    offset += index[i] * strides[i];
  }
  StoreElement(raw_data(), dtype(), offset, value);
}

Scalar Tensor::item() const {
  EMAF_CHECK_EQ(NumElements(), 1);
  return LoadElement(raw_data(), dtype(), 0);
}

std::vector<Scalar> Tensor::ToVector() const {
  EMAF_CHECK(defined());
  const int64_t n = NumElements();
  std::vector<Scalar> out(static_cast<size_t>(n));
  const void* d = raw_data();
  for (int64_t i = 0; i < n; ++i) out[i] = LoadElement(d, dtype(), i);
  return out;
}

void Tensor::Fill(Scalar value) {
  const int64_t n = NumElements();
  void* d = raw_data();
  if (dtype() == DType::kF64) {
    double* p = static_cast<double*>(d);
    for (int64_t i = 0; i < n; ++i) p[i] = value;
  } else {
    float* p = static_cast<float*>(d);
    const float v = static_cast<float>(value);
    for (int64_t i = 0; i < n; ++i) p[i] = v;
  }
}

Tensor Tensor::Clone() const {
  EMAF_CHECK(defined());
  // Copies through MakeUninitialized (not FromVector) so clones made under
  // an active ArenaScope reuse pooled storage instead of heap-allocating.
  Tensor out = MakeUninitialized(shape(), dtype());
  std::memcpy(out.raw_data(), raw_data(), static_cast<size_t>(byte_size()));
  return out;
}

Tensor Tensor::Detach() const {
  EMAF_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->dtype = impl_->dtype;
  impl->storage = impl_->storage;  // shares data
  return Tensor(std::move(impl));
}

Tensor Tensor::CastTo(DType dtype) const {
  EMAF_CHECK(defined());
  if (dtype == impl_->dtype) return *this;
  Tensor out = MakeUninitialized(shape(), dtype);
  const int64_t n = NumElements();
  if (dtype == DType::kF32) {
    const double* src = data<double>();
    float* dst = out.data<float>();
    for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
  } else {
    const float* src = data<float>();
    double* dst = out.data<double>();
    for (int64_t i = 0; i < n; ++i) dst[i] = static_cast<double>(src[i]);
  }
  return out;
}

Tensor& Tensor::SetRequiresGrad(bool requires_grad) {
  EMAF_CHECK(defined());
  EMAF_CHECK(impl_->grad_fn == nullptr)
      << "SetRequiresGrad is only valid on leaf tensors";
  impl_->requires_grad = requires_grad;
  return *this;
}

bool Tensor::requires_grad() const {
  EMAF_CHECK(defined());
  return impl_->requires_grad;
}

bool Tensor::TracksGrad() const {
  EMAF_CHECK(defined());
  return impl_->requires_grad || impl_->grad_fn != nullptr;
}

Tensor Tensor::grad() const {
  EMAF_CHECK(defined());
  if (impl_->grad == nullptr) return Tensor();
  return Tensor(impl_->grad);
}

void Tensor::ZeroGrad() {
  EMAF_CHECK(defined());
  impl_->grad = nullptr;
}

void Tensor::Backward() const { RunBackward(*this); }

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << shape().ToString();
  constexpr int64_t kMaxPrinted = 64;
  if (NumElements() <= kMaxPrinted) {
    out << " {";
    const void* d = raw_data();
    for (int64_t i = 0; i < NumElements(); ++i) {
      if (i > 0) out << ", ";
      out << LoadElement(d, dtype(), i);
    }
    out << "}";
  }
  return out.str();
}

}  // namespace emaf::tensor
