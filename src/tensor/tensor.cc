#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/metrics.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"

namespace emaf::tensor {

namespace {

std::shared_ptr<TensorImpl> NewImpl(const Shape& shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  if (InferenceArena* arena = CurrentArena()) {
    // Serving path: recycle a pooled buffer of matching numel instead of
    // heap-allocating (DESIGN.md, "Serving layer"). Recycled buffers hold
    // stale values — exactly the MakeUninitialized contract.
    impl->storage = arena->Acquire(shape.NumElements());
  } else {
    EMAF_METRIC_COUNTER_ADD("tensor.storage_allocs", 1);
    impl->storage = std::make_shared<std::vector<Scalar>>(
        static_cast<size_t>(shape.NumElements()));
  }
  return impl;
}

}  // namespace

Tensor MakeUninitialized(const Shape& shape) {
  return Tensor(NewImpl(shape));
}

Tensor Tensor::Zeros(const Shape& shape) {
  Tensor t = MakeUninitialized(shape);
  // A fresh std::vector is value-initialized to 0.0, so the heap path is
  // already zero; an arena buffer is recycled and must be cleared.
  if (CurrentArena() != nullptr) t.Fill(0.0);
  return t;
}

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0); }

Tensor Tensor::Full(const Shape& shape, Scalar value) {
  Tensor t = MakeUninitialized(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<Scalar> values) {
  EMAF_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()));
  // Adopts the caller's heap buffer, so this always counts as a storage
  // allocation — even under an ArenaScope, which FromVector bypasses.
  EMAF_METRIC_COUNTER_ADD("tensor.storage_allocs", 1);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->storage = std::make_shared<std::vector<Scalar>>(std::move(values));
  return Tensor(std::move(impl));
}

Tensor Tensor::FromScalar(Scalar value) {
  return FromVector(Shape{}, {value});
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros(Shape{n, n});
  Scalar* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i * n + i] = 1.0;
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = MakeUninitialized(Shape{n});
  Scalar* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i] = static_cast<Scalar>(i);
  return t;
}

Tensor Tensor::Uniform(const Shape& shape, Scalar low, Scalar high, Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) d[i] = rng->Uniform(low, high);
  return t;
}

Tensor Tensor::Normal(const Shape& shape, Scalar mean, Scalar stddev,
                      Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) d[i] = rng->Normal(mean, stddev);
  return t;
}

Tensor Tensor::Bernoulli(const Shape& shape, Scalar p, Rng* rng) {
  EMAF_CHECK(rng != nullptr);
  Tensor t = MakeUninitialized(shape);
  Scalar* d = t.data();
  const int64_t emaf_n = t.NumElements();
  for (int64_t i = 0; i < emaf_n; ++i) {
    d[i] = rng->Bernoulli(p) ? 1.0 : 0.0;
  }
  return t;
}

const Shape& Tensor::shape() const {
  EMAF_CHECK(defined());
  return impl_->shape;
}

Scalar* Tensor::data() {
  EMAF_CHECK(defined());
  return impl_->storage->data();
}

const Scalar* Tensor::data() const {
  EMAF_CHECK(defined());
  return impl_->storage->data();
}

Scalar Tensor::At(const std::vector<int64_t>& index) const {
  const Shape& s = shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(index.size()), s.rank());
  std::vector<int64_t> strides = s.Strides();
  int64_t offset = 0;
  for (int64_t i = 0; i < s.rank(); ++i) {
    EMAF_CHECK_GE(index[i], 0);
    EMAF_CHECK_LT(index[i], s.dim(i));
    offset += index[i] * strides[i];
  }
  return data()[offset];
}

void Tensor::Set(const std::vector<int64_t>& index, Scalar value) {
  const Shape& s = shape();
  EMAF_CHECK_EQ(static_cast<int64_t>(index.size()), s.rank());
  std::vector<int64_t> strides = s.Strides();
  int64_t offset = 0;
  for (int64_t i = 0; i < s.rank(); ++i) {
    EMAF_CHECK_GE(index[i], 0);
    EMAF_CHECK_LT(index[i], s.dim(i));
    offset += index[i] * strides[i];
  }
  data()[offset] = value;
}

Scalar Tensor::item() const {
  EMAF_CHECK_EQ(NumElements(), 1);
  return data()[0];
}

std::vector<Scalar> Tensor::ToVector() const {
  EMAF_CHECK(defined());
  return *impl_->storage;
}

void Tensor::Fill(Scalar value) {
  Scalar* d = data();
  const int64_t n = NumElements();
  for (int64_t i = 0; i < n; ++i) d[i] = value;
}

Tensor Tensor::Clone() const {
  EMAF_CHECK(defined());
  // Copies through MakeUninitialized (not FromVector) so clones made under
  // an active ArenaScope reuse pooled storage instead of heap-allocating.
  Tensor out = MakeUninitialized(shape());
  std::copy(impl_->storage->begin(), impl_->storage->end(), out.data());
  return out;
}

Tensor Tensor::Detach() const {
  EMAF_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->storage = impl_->storage;  // shares data
  return Tensor(std::move(impl));
}

Tensor& Tensor::SetRequiresGrad(bool requires_grad) {
  EMAF_CHECK(defined());
  EMAF_CHECK(impl_->grad_fn == nullptr)
      << "SetRequiresGrad is only valid on leaf tensors";
  impl_->requires_grad = requires_grad;
  return *this;
}

bool Tensor::requires_grad() const {
  EMAF_CHECK(defined());
  return impl_->requires_grad;
}

bool Tensor::TracksGrad() const {
  EMAF_CHECK(defined());
  return impl_->requires_grad || impl_->grad_fn != nullptr;
}

Tensor Tensor::grad() const {
  EMAF_CHECK(defined());
  if (impl_->grad == nullptr) return Tensor();
  return Tensor(impl_->grad);
}

void Tensor::ZeroGrad() {
  EMAF_CHECK(defined());
  impl_->grad = nullptr;
}

void Tensor::Backward() const { RunBackward(*this); }

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << shape().ToString();
  constexpr int64_t kMaxPrinted = 64;
  if (NumElements() <= kMaxPrinted) {
    out << " {";
    const Scalar* d = data();
    for (int64_t i = 0; i < NumElements(); ++i) {
      if (i > 0) out << ", ";
      out << d[i];
    }
    out << "}";
  }
  return out.str();
}

}  // namespace emaf::tensor
