// Finite-difference gradient verification, used by the test suite to prove
// every op's backward pass against the numeric derivative.

#ifndef EMAF_TENSOR_GRAD_CHECK_H_
#define EMAF_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::tensor {

struct GradCheckResult {
  // max over all input elements of |analytic - numeric| /
  // max(1, |analytic|, |numeric|).
  Scalar max_error = 0.0;
  bool ok = false;
};

// Compares analytic gradients of `fn` (which must return a single-element
// tensor) against central finite differences at the given inputs. Inputs
// must be leaf tensors; requires_grad is forced on inside. `epsilon` is the
// FD step, `tolerance` the max accepted relative error.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Scalar epsilon = 1e-5,
    Scalar tolerance = 1e-6);

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_GRAD_CHECK_H_
