#include "tensor/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace emaf::tensor {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Scalar epsilon, Scalar tolerance) {
  EMAF_CHECK(!inputs.empty());
  for (Tensor& t : inputs) {
    EMAF_CHECK(t.defined());
    t.SetRequiresGrad(true);
    t.ZeroGrad();
  }

  // Analytic gradients.
  Tensor loss = fn(inputs);
  EMAF_CHECK_EQ(loss.NumElements(), 1) << "grad check needs a scalar output";
  loss.Backward();

  GradCheckResult result;
  result.max_error = 0.0;
  for (Tensor& input : inputs) {
    Tensor analytic = input.grad();
    if (!analytic.defined()) analytic = Tensor::Zeros(input.shape());
    Scalar* x = input.data();
    const Scalar* a = analytic.data();
    for (int64_t i = 0; i < input.NumElements(); ++i) {
      Scalar original = x[i];
      Scalar plus;
      Scalar minus;
      {
        NoGradGuard guard;
        x[i] = original + epsilon;
        plus = fn(inputs).item();
        x[i] = original - epsilon;
        minus = fn(inputs).item();
        x[i] = original;
      }
      Scalar numeric = (plus - minus) / (2.0 * epsilon);
      Scalar denom = std::max({1.0, std::abs(a[i]), std::abs(numeric)});
      Scalar error = std::abs(a[i] - numeric) / denom;
      result.max_error = std::max(result.max_error, error);
    }
  }
  result.ok = result.max_error <= tolerance;
  return result;
}

}  // namespace emaf::tensor
