#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/op_common.h"
#include "tensor/ops.h"
#include "tensor/plan_hook.h"

namespace emaf::tensor {

namespace {

// im2col/col2im element count below which the batch loop stays serial
// (fork/join overhead dominates on small tensors). Each batch element
// touches a disjoint slab, so the parallel result is bitwise identical to
// the serial one at any thread count.
constexpr int64_t kConvParallelMinElems = 1 << 14;

// Runs fn(n) for every batch index, in parallel when worthwhile.
template <typename F>
void ForEachBatch(int64_t batch, int64_t work_per_call, F fn) {
  common::ThreadPool& pool = common::ThreadPool::Global();
  auto run = [&fn](int64_t lo, int64_t hi) {
    for (int64_t n = lo; n < hi; ++n) fn(n);
  };
  if (pool.num_threads() > 1 && batch > 1 &&
      batch * work_per_call >= kConvParallelMinElems) {
    EMAF_METRIC_COUNTER_ADD("conv.dispatch_parallel", 1);
    pool.ParallelFor(0, batch, 1, run);
  } else {
    EMAF_METRIC_COUNTER_ADD("conv.dispatch_serial", 1);
    run(0, batch);
  }
}

int64_t ConvOutExtent(int64_t in, int64_t kernel, int64_t stride, int64_t pad,
                      int64_t dilation) {
  int64_t effective = dilation * (kernel - 1) + 1;
  int64_t out = (in + 2 * pad - effective) / stride + 1;
  EMAF_CHECK_GT(out, 0) << "conv2d produces empty output (in=" << in
                        << " kernel=" << kernel << " stride=" << stride
                        << " pad=" << pad << " dilation=" << dilation << ")";
  return out;
}

struct ConvDims {
  int64_t batch;
  int64_t in_channels;
  int64_t in_h;
  int64_t in_w;
  int64_t out_channels;
  int64_t kernel_h;
  int64_t kernel_w;
  int64_t out_h;
  int64_t out_w;
  int64_t rows() const { return batch * out_h * out_w; }     // im2col M
  int64_t cols() const { return in_channels * kernel_h * kernel_w; }  // K
};

// Builds the im2col matrix [rows, cols]: row (n, oh, ow) holds the receptive
// field values for every (c, kh, kw), zero where padding is sampled.
template <typename T>
Tensor Im2Col(const T* in, const ConvDims& d, const Conv2dOptions& o) {
  Tensor col = Tensor::Zeros(Shape{d.rows(), d.cols()}, DTypeOf<T>::value);
  T* cd = col.data<T>();
  const int64_t K = d.cols();
  ForEachBatch(d.batch, d.out_h * d.out_w * K, [&](int64_t n) {
    const T* in_n = in + n * d.in_channels * d.in_h * d.in_w;
    T* col_n = cd + n * d.out_h * d.out_w * K;
    for (int64_t c = 0; c < d.in_channels; ++c) {
      const T* plane = in_n + c * d.in_h * d.in_w;
      for (int64_t kh = 0; kh < d.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < d.kernel_w; ++kw) {
          int64_t k_idx = (c * d.kernel_h + kh) * d.kernel_w + kw;
          for (int64_t oh = 0; oh < d.out_h; ++oh) {
            int64_t ih = oh * o.stride_h - o.pad_h + kh * o.dilation_h;
            if (ih < 0 || ih >= d.in_h) continue;
            const T* row = plane + ih * d.in_w;
            T* dst = col_n + (oh * d.out_w) * K + k_idx;
            for (int64_t ow = 0; ow < d.out_w; ++ow) {
              int64_t iw = ow * o.stride_w - o.pad_w + kw * o.dilation_w;
              if (iw >= 0 && iw < d.in_w) dst[ow * K] = row[iw];
            }
          }
        }
      }
    }
  });
  return col;
}

// Scatter-adds the gradient of the im2col matrix back onto the input.
void Col2ImAdd(const Scalar* col, const ConvDims& d, const Conv2dOptions& o,
               Scalar* gin) {
  const int64_t K = d.cols();
  ForEachBatch(d.batch, d.out_h * d.out_w * K, [&](int64_t n) {
    Scalar* gin_n = gin + n * d.in_channels * d.in_h * d.in_w;
    const Scalar* col_n = col + n * d.out_h * d.out_w * K;
    for (int64_t c = 0; c < d.in_channels; ++c) {
      Scalar* plane = gin_n + c * d.in_h * d.in_w;
      for (int64_t kh = 0; kh < d.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < d.kernel_w; ++kw) {
          int64_t k_idx = (c * d.kernel_h + kh) * d.kernel_w + kw;
          for (int64_t oh = 0; oh < d.out_h; ++oh) {
            int64_t ih = oh * o.stride_h - o.pad_h + kh * o.dilation_h;
            if (ih < 0 || ih >= d.in_h) continue;
            Scalar* row = plane + ih * d.in_w;
            const Scalar* src = col_n + (oh * d.out_w) * K + k_idx;
            for (int64_t ow = 0; ow < d.out_w; ++ow) {
              int64_t iw = ow * o.stride_w - o.pad_w + kw * o.dilation_w;
              if (iw >= 0 && iw < d.in_w) row[iw] += src[ow * K];
            }
          }
        }
      }
    }
  });
}

// [O, K] -> [K, O] transpose copy (weights are small).
template <typename T>
Tensor TransposeMatrix(const T* src, int64_t rows, int64_t cols) {
  Tensor out = MakeUninitialized(Shape{cols, rows}, DTypeOf<T>::value);
  T* od = out.data<T>();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) od[c * rows + r] = src[r * cols + c];
  }
  return out;
}

// The dtype-generic forward compute: fills *col_out (cached by the f64
// gradient closure) and returns the [N, O, out_h, out_w] output.
template <typename T>
Tensor Conv2dForward(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, const Conv2dOptions& options,
                     const ConvDims& d, Tensor* col_out) {
  // out_mat [M, O] = col [M, K] x W^T [K, O].
  Tensor col = Im2Col(input.data<T>(), d, options);
  Tensor w_t = TransposeMatrix(weight.data<T>(), d.out_channels, d.cols());
  Tensor out_mat =
      Tensor::Zeros(Shape{d.rows(), d.out_channels}, input.dtype());
  internal::ParallelMatMul(col.data<T>(), w_t.data<T>(), out_mat.data<T>(),
                           d.rows(), d.cols(), d.out_channels);

  // Scatter [M, O] -> [N, O, out_h, out_w], adding the bias.
  Tensor out = MakeUninitialized(
      Shape{d.batch, d.out_channels, d.out_h, d.out_w}, input.dtype());
  T* od = out.data<T>();
  const T* md = out_mat.data<T>();
  const T* b_d = bias.defined() ? bias.data<T>() : nullptr;
  int64_t hw = d.out_h * d.out_w;
  ForEachBatch(d.batch, d.out_channels * hw, [&](int64_t n) {
    for (int64_t o = 0; o < d.out_channels; ++o) {
      T b = b_d != nullptr ? b_d[o] : T(0);
      T* plane = od + (n * d.out_channels + o) * hw;
      const T* src = md + n * hw * d.out_channels + o;
      for (int64_t i = 0; i < hw; ++i) {
        plane[i] = src[i * d.out_channels] + b;
      }
    }
  });
  *col_out = col;
  return out;
}

}  // namespace

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dOptions& options) {
  EMAF_CHECK_EQ(input.rank(), 4) << "conv2d input must be [N, C, H, W]";
  EMAF_CHECK_EQ(weight.rank(), 4) << "conv2d weight must be [O, C, KH, KW]";
  ConvDims d;
  d.batch = input.dim(0);
  d.in_channels = input.dim(1);
  d.in_h = input.dim(2);
  d.in_w = input.dim(3);
  d.out_channels = weight.dim(0);
  EMAF_CHECK_EQ(weight.dim(1), d.in_channels) << "conv2d channel mismatch";
  d.kernel_h = weight.dim(2);
  d.kernel_w = weight.dim(3);
  if (bias.defined()) {
    EMAF_CHECK_EQ(bias.rank(), 1);
    EMAF_CHECK_EQ(bias.dim(0), d.out_channels);
  }
  EMAF_CHECK_GE(options.stride_h, 1);
  EMAF_CHECK_GE(options.stride_w, 1);
  EMAF_CHECK_GE(options.dilation_h, 1);
  EMAF_CHECK_GE(options.dilation_w, 1);
  EMAF_CHECK_GE(options.pad_h, 0);
  EMAF_CHECK_GE(options.pad_w, 0);
  d.out_h = ConvOutExtent(d.in_h, d.kernel_h, options.stride_h, options.pad_h,
                          options.dilation_h);
  d.out_w = ConvOutExtent(d.in_w, d.kernel_w, options.stride_w, options.pad_w,
                          options.dilation_w);

  EMAF_CHECK(input.dtype() == weight.dtype())
      << "conv2d input/weight dtype mismatch";
  if (bias.defined()) {
    EMAF_CHECK(bias.dtype() == input.dtype())
        << "conv2d bias dtype mismatch";
  }
  Tensor col;  // cached for the (f64-only) weight gradient
  Tensor out =
      input.dtype() == DType::kF32
          ? Conv2dForward<float>(input, weight, bias, options, d, &col)
          : Conv2dForward<Scalar>(input, weight, bias, options, d, &col);

  if (plan_hook::Active()) {
    plan_hook::Record({plan_hook::OpKind::kConv2d,
                       {input, weight, bias},
                       out,
                       0.0,
                       0.0,
                       {options.stride_h, options.stride_w, options.pad_h,
                        options.pad_w, options.dilation_h,
                        options.dilation_w}});
  }
  std::vector<Tensor> tracked = {input, weight};
  if (bias.defined()) tracked.push_back(bias);
  if (ShouldRecord(tracked)) {
    Tensor w_saved = weight.Detach();
    bool has_bias = bias.defined();
    Conv2dOptions opts = options;
    Shape input_shape = input.shape();
    std::vector<Tensor> node_inputs = {input, weight};
    if (has_bias) node_inputs.push_back(bias);
    // `col` is cached for the weight gradient (memory-for-speed tradeoff).
    SetGradFn(
        &out, "Conv2d", node_inputs,
        [col, w_saved, has_bias, opts, d, input_shape](const Tensor& g) {
          NoGradGuard guard;
          int64_t hw = d.out_h * d.out_w;
          // Gather g [N, O, oh, ow] -> gmat [M, O].
          Tensor gmat = MakeUninitialized(Shape{d.rows(), d.out_channels});
          {
            Scalar* gm = gmat.data();
            const Scalar* gd = g.data();
            ForEachBatch(d.batch, d.out_channels * hw, [&](int64_t n) {
              for (int64_t o = 0; o < d.out_channels; ++o) {
                const Scalar* plane = gd + (n * d.out_channels + o) * hw;
                Scalar* dst = gm + n * hw * d.out_channels + o;
                for (int64_t i = 0; i < hw; ++i) {
                  dst[i * d.out_channels] = plane[i];
                }
              }
            });
          }

          // gw [O, K] = gmat^T [O, M] x col [M, K].
          Tensor gmat_t =
              TransposeMatrix(gmat.data(), d.rows(), d.out_channels);
          Tensor gw = Tensor::Zeros(
              Shape{d.out_channels, d.in_channels, d.kernel_h, d.kernel_w});
          internal::ParallelMatMul(gmat_t.data(), col.data(), gw.data(),
                                   d.out_channels, d.rows(), d.cols());

          // gcol [M, K] = gmat [M, O] x W [O, K]; then col2im scatter-add.
          Tensor gcol = Tensor::Zeros(Shape{d.rows(), d.cols()});
          internal::ParallelMatMul(gmat.data(), w_saved.data(), gcol.data(),
                                   d.rows(), d.out_channels, d.cols());
          Tensor gin = Tensor::Zeros(input_shape);
          Col2ImAdd(gcol.data(), d, opts, gin.data());

          std::vector<Tensor> grads = {gin, gw};
          if (has_bias) {
            Tensor gb = Tensor::Zeros(Shape{d.out_channels});
            Scalar* gbd = gb.data();
            const Scalar* gm = gmat.data();
            for (int64_t r = 0; r < d.rows(); ++r) {
              for (int64_t o = 0; o < d.out_channels; ++o) {
                gbd[o] += gm[r * d.out_channels + o];
              }
            }
            grads.push_back(gb);
          }
          return grads;
        });
  }
  return out;
}

}  // namespace emaf::tensor
