#include "tensor/arena.h"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"

namespace emaf::tensor {

namespace {

thread_local InferenceArena* current_arena = nullptr;

}  // namespace

// Shared pool state. Outstanding buffers keep it alive through the deleter
// they capture, so the pool never dies before its last buffer returns.
struct InferenceArena::State {
  std::mutex mu;
  // byte count -> resting buffers of exactly that size.
  std::unordered_map<int64_t,
                     std::vector<std::unique_ptr<std::vector<std::byte>>>>
      free_lists;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t outstanding = 0;
  uint64_t pooled = 0;
};

InferenceArena::InferenceArena() : state_(std::make_shared<State>()) {}

InferenceArena::Stats InferenceArena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  Stats stats;
  stats.hits = state_->hits;
  stats.misses = state_->misses;
  stats.outstanding = state_->outstanding;
  stats.pooled = state_->pooled;
  return stats;
}

void InferenceArena::ResetStats() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->hits = 0;
  state_->misses = 0;
}

void InferenceArena::Clear() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->free_lists.clear();
  state_->pooled = 0;
}

std::shared_ptr<std::vector<std::byte>> InferenceArena::Acquire(
    int64_t bytes) {
  EMAF_CHECK_GE(bytes, 0);
  std::unique_ptr<std::vector<std::byte>> buffer;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->free_lists.find(bytes);
    if (it != state_->free_lists.end() && !it->second.empty()) {
      buffer = std::move(it->second.back());
      it->second.pop_back();
      ++state_->hits;
      --state_->pooled;
    } else {
      ++state_->misses;
    }
    ++state_->outstanding;
  }
  if (buffer == nullptr) {
    EMAF_METRIC_COUNTER_ADD("tensor.arena_misses", 1);
    EMAF_METRIC_COUNTER_ADD("tensor.storage_allocs", 1);
    buffer =
        std::make_unique<std::vector<std::byte>>(static_cast<size_t>(bytes));
  } else {
    EMAF_METRIC_COUNTER_ADD("tensor.arena_hits", 1);
  }
  // The deleter owns a strong reference to the pool state, so a buffer
  // released after the arena handle is gone still parks safely.
  std::shared_ptr<State> state = state_;
  return std::shared_ptr<std::vector<std::byte>>(
      buffer.release(), [state](std::vector<std::byte>* v) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->free_lists[static_cast<int64_t>(v->size())].emplace_back(v);
        --state->outstanding;
        ++state->pooled;
      });
}

ArenaScope::ArenaScope(InferenceArena* arena) : previous_(current_arena) {
  current_arena = arena;
}

ArenaScope::~ArenaScope() { current_arena = previous_; }

InferenceArena* CurrentArena() { return current_arena; }

}  // namespace emaf::tensor
