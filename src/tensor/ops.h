// Differentiable tensor operations.
//
// All functions are pure: they allocate a fresh output and, when gradient
// mode is on and an input tracks gradients, record a GradFn so that
// Tensor::Backward() reaches the inputs. Binary elementwise ops follow
// NumPy broadcasting; gradients of broadcast inputs are sum-reduced back to
// the input shape.

#ifndef EMAF_TENSOR_OPS_H_
#define EMAF_TENSOR_OPS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::tensor {

// ---- Elementwise binary (broadcasting) -------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// ---- Elementwise unary ------------------------------------------------------
Tensor Neg(const Tensor& x);
Tensor Exp(const Tensor& x);
Tensor Log(const Tensor& x);  // natural log; x must be > 0
Tensor Sqrt(const Tensor& x);
Tensor Abs(const Tensor& x);
Tensor Pow(const Tensor& x, Scalar exponent);
Tensor Clamp(const Tensor& x, Scalar low, Scalar high);
Tensor AddScalar(const Tensor& x, Scalar s);
Tensor MulScalar(const Tensor& x, Scalar s);

// Operator sugar.
inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }
inline Tensor operator+(const Tensor& a, Scalar s) { return AddScalar(a, s); }
inline Tensor operator+(Scalar s, const Tensor& a) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, Scalar s) { return AddScalar(a, -s); }
inline Tensor operator*(const Tensor& a, Scalar s) { return MulScalar(a, s); }
inline Tensor operator*(Scalar s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator/(const Tensor& a, Scalar s) {
  return MulScalar(a, 1.0 / s);
}

// ---- Matrix multiplication --------------------------------------------------
// Both inputs must have rank >= 2; leading (batch) dimensions broadcast.
// [*, m, k] x [*, k, n] -> [broadcast(*), m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---- Reductions ---------------------------------------------------------------
Tensor Sum(const Tensor& x);  // all elements -> rank-0
Tensor Sum(const Tensor& x, const std::vector<int64_t>& dims, bool keepdim);
Tensor Mean(const Tensor& x);
Tensor Mean(const Tensor& x, const std::vector<int64_t>& dims, bool keepdim);
// Maximum/minimum along `dim`.
Tensor Max(const Tensor& x, int64_t dim, bool keepdim);
Tensor Min(const Tensor& x, int64_t dim, bool keepdim);
// Index of the per-slice maximum (not differentiable; result is constant).
Tensor ArgMax(const Tensor& x, int64_t dim, bool keepdim);
// 0/1 mask marking, per slice along `dim`, the k largest entries
// (ties broken toward lower index). Constant — gradients do not flow.
Tensor TopKMask(const Tensor& x, int64_t k, int64_t dim);

// Numeric-health scan: true when any element is NaN or +/-inf. Early-exits
// on the first bad element; not differentiable (reads values only). Used
// by the fault-tolerance guards (DESIGN.md, "Fault tolerance").
bool HasNonFinite(const Tensor& x);

namespace internal {
// Sum-reduces `x` to `target` (which must be broadcast-compatible with
// x.shape()). NOT differentiable: used by op backward passes.
Tensor SumTo(const Tensor& x, const Shape& target);
}  // namespace internal

// ---- Shape manipulation -------------------------------------------------------
Tensor Reshape(const Tensor& x, const Shape& shape);  // shares storage
Tensor Transpose(const Tensor& x, int64_t dim0, int64_t dim1);
// Transposes the last two axes (matrix transpose for batched matrices).
Tensor TransposeLast2(const Tensor& x);
Tensor Permute(const Tensor& x, const std::vector<int64_t>& perm);
Tensor Squeeze(const Tensor& x, int64_t dim);
Tensor Unsqueeze(const Tensor& x, int64_t dim);
// Elements [start, end) along `dim`.
Tensor Slice(const Tensor& x, int64_t dim, int64_t start, int64_t end);
// Slice then drop the (now size-1) dimension.
Tensor Select(const Tensor& x, int64_t dim, int64_t index);
Tensor Cat(const std::vector<Tensor>& tensors, int64_t dim);
Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim);
// Zero-padding: padding[i] = {before, after} for axis i (one entry per axis).
Tensor Pad(const Tensor& x,
           const std::vector<std::pair<int64_t, int64_t>>& padding);
Tensor BroadcastTo(const Tensor& x, const Shape& shape);

// ---- Activations ---------------------------------------------------------------
Tensor Relu(const Tensor& x);
Tensor LeakyRelu(const Tensor& x, Scalar negative_slope);
Tensor Elu(const Tensor& x, Scalar alpha);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Softmax(const Tensor& x, int64_t dim);
Tensor LogSoftmax(const Tensor& x, int64_t dim);
// Inverted dropout; identity when !training or p == 0.
Tensor Dropout(const Tensor& x, Scalar p, bool training, Rng* rng);

// ---- Convolution ------------------------------------------------------------
struct Conv2dOptions {
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 0;
  int64_t pad_w = 0;
  int64_t dilation_h = 1;
  int64_t dilation_w = 1;
};
// input [N, C, H, W], weight [O, C, KH, KW], optional bias [O]
// -> [N, O, H_out, W_out].
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              const Conv2dOptions& options);

// ---- Losses ------------------------------------------------------------------
Tensor MseLoss(const Tensor& prediction, const Tensor& target);
Tensor MaeLoss(const Tensor& prediction, const Tensor& target);
Tensor HuberLoss(const Tensor& prediction, const Tensor& target, Scalar delta);

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_OPS_H_
