#include "tensor/plan_hook.h"

#include <utility>

#include "common/check.h"

namespace emaf::tensor::plan_hook {

namespace internal {
thread_local Sink* tls_sink = nullptr;
}  // namespace internal

void Record(OpRecord record) {
  EMAF_CHECK(internal::tls_sink != nullptr)
      << "plan_hook::Record with no sink installed";
  internal::tls_sink->Record(std::move(record));
}

ScopedSink::ScopedSink(Sink* sink) : previous_(internal::tls_sink) {
  internal::tls_sink = sink;
}

ScopedSink::~ScopedSink() { internal::tls_sink = previous_; }

}  // namespace emaf::tensor::plan_hook
