// InferenceArena: a storage pool that recycles tensor buffers of matching
// byte size, so steady-state inference performs zero heap allocation after
// warm-up (DESIGN.md, "Serving layer").
//
// Mechanics: while an ArenaScope is active on a thread, MakeUninitialized
// asks the scoped arena for storage instead of the heap. The arena keeps a
// free list per byte count; a request that finds a pooled buffer of the
// exact size reuses it (hit), otherwise the buffer is heap-allocated once
// (miss) and joins the pool when its last Tensor reference drops — the
// storage shared_ptr carries a custom deleter that returns the vector to
// the arena instead of freeing it. After the first request through a model
// (the warm-up), every later request with the same shapes is served
// entirely from the pool.
//
// Contracts:
//   - Recycled buffers hold stale values. MakeUninitialized is already
//     specified as uninitialized; Tensor::Zeros explicitly clears its
//     buffer when an arena is active (tensor.cc), so no caller observes
//     the difference.
//   - The arena may be shared by several threads (the serving engine
//     shares one across its worker pool); Acquire and the deleter take a
//     short mutex. Arena use never changes numerics — it only changes
//     where a buffer's bytes live.
//   - Buffers may outlive the InferenceArena handle and even the scope:
//     the pool state is shared_ptr-owned and kept alive by every
//     outstanding buffer's deleter.

#ifndef EMAF_TENSOR_ARENA_H_
#define EMAF_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::tensor {

class InferenceArena {
 public:
  InferenceArena();

  struct Stats {
    uint64_t hits = 0;         // requests served from the pool
    uint64_t misses = 0;       // requests that heap-allocated
    uint64_t outstanding = 0;  // buffers currently lent out
    uint64_t pooled = 0;       // buffers resting in the free lists
  };
  Stats stats() const;
  // Zeroes hits/misses (outstanding/pooled reflect live state).
  void ResetStats();
  // Frees every pooled buffer; outstanding buffers still return and pool.
  void Clear();

  // Storage for `bytes` bytes, recycled when a matching buffer is pooled.
  // Called by MakeUninitialized under an active ArenaScope; keying by byte
  // count means an f32 tensor and an f64 tensor of the same numel use
  // separate pools.
  std::shared_ptr<std::vector<std::byte>> Acquire(int64_t bytes);

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// RAII: routes MakeUninitialized on the current thread through `arena`.
// Scopes nest; the innermost active scope wins and the previous routing is
// restored on destruction. Passing nullptr suspends arena routing inside
// an outer scope.
class ArenaScope {
 public:
  explicit ArenaScope(InferenceArena* arena);
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope();

 private:
  InferenceArena* previous_;
};

// The arena routing MakeUninitialized on this thread; nullptr = plain heap.
InferenceArena* CurrentArena();

}  // namespace emaf::tensor

#endif  // EMAF_TENSOR_ARENA_H_
