#include "core/trainer.h"

#include "common/check.h"
#include "common/logging.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace emaf::core {

TrainResult TrainForecaster(models::Forecaster* model,
                            const ts::WindowDataset& train,
                            const TrainConfig& config) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK_GT(train.num_windows(), 0);
  EMAF_CHECK_GT(config.epochs, 0);

  nn::AdamOptions adam;
  adam.lr = config.learning_rate;
  adam.weight_decay = config.weight_decay;
  nn::Adam optimizer(model->Parameters(), adam);

  model->SetTraining(true);
  TrainResult result;
  result.epoch_losses.reserve(static_cast<size_t>(config.epochs));
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    optimizer.ZeroGrad();
    tensor::Tensor prediction = model->Forward(train.inputs);
    tensor::Tensor loss = tensor::MseLoss(prediction, train.targets);
    loss.Backward();
    if (config.grad_clip_norm > 0.0) {
      nn::ClipGradNorm(optimizer.parameters(), config.grad_clip_norm);
    }
    optimizer.Step();
    double value = loss.item();
    result.epoch_losses.push_back(value);
    if (config.verbose && (epoch % config.log_every == 0 ||
                           epoch == config.epochs - 1)) {
      EMAF_LOG(INFO) << model->name() << " epoch " << epoch
                     << " train mse " << value;
    }
  }
  result.final_loss = result.epoch_losses.back();
  return result;
}

}  // namespace emaf::core
