#include "core/trainer.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace emaf::core {

TrainResult TrainForecaster(models::Forecaster* model,
                            const ts::WindowDataset& train,
                            const TrainConfig& config) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK_GT(train.num_windows(), 0);
  EMAF_CHECK_GT(config.epochs, 0);
  EMAF_TRACE_SPAN_DYN(StrCat("TrainForecaster/", model->name()));

  std::unique_ptr<nn::Optimizer> optimizer;
  if (config.optimizer == TrainOptimizer::kSgd) {
    nn::SgdOptions sgd;
    sgd.lr = config.learning_rate;
    sgd.weight_decay = config.weight_decay;
    optimizer = std::make_unique<nn::Sgd>(model->Parameters(), sgd);
  } else {
    nn::AdamOptions adam;
    adam.lr = config.learning_rate;
    adam.weight_decay = config.weight_decay;
    optimizer = std::make_unique<nn::Adam>(model->Parameters(), adam);
  }

  model->SetTraining(true);
  TrainResult result;
  result.epoch_losses.reserve(static_cast<size_t>(config.epochs));
  result.epoch_grad_norms.reserve(static_cast<size_t>(config.epochs));
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    EMAF_METRIC_SCOPED_TIMER("trainer.epoch_seconds");
    optimizer->ZeroGrad();
    tensor::Tensor prediction = model->Forward(train.inputs);
    tensor::Tensor loss = tensor::MseLoss(prediction, train.targets);
    loss.Backward();
    double value = loss.item();
    double grad_norm = nn::GlobalGradNorm(optimizer->parameters());
    if (EMAF_FAULT_SHOULD_FAIL_T(
            config.fault_scope.empty()
                ? std::string("trainer.step")
                : StrCat("trainer.step/", config.fault_scope),
            static_cast<uint64_t>(epoch))) {
      // Simulated numeric blow-up: poison the observed loss so the
      // divergence guard (and the recovery policy above it) engages.
      value = std::numeric_limits<double>::quiet_NaN();
    }
    result.epoch_losses.push_back(value);
    result.epoch_grad_norms.push_back(grad_norm);
    EMAF_METRIC_COUNTER_ADD("trainer.epochs_total", 1);
    EMAF_METRIC_HISTOGRAM_OBSERVE("trainer.epoch_loss", value,
                                  ::emaf::obs::DefaultValueBounds());
    EMAF_METRIC_HISTOGRAM_OBSERVE("trainer.grad_norm", grad_norm,
                                  ::emaf::obs::DefaultValueBounds());
    if (config.detect_divergence &&
        (!std::isfinite(value) || !std::isfinite(grad_norm) ||
         value > config.divergence_loss_limit)) {
      // Do not step: a non-finite gradient would poison the parameters
      // and Adam's moment buffers beyond recovery.
      result.diverged = true;
      result.divergence_epoch = epoch;
      EMAF_METRIC_COUNTER_ADD("trainer.divergences_total", 1);
      EMAF_LOG(WARNING) << model->name() << " diverged at epoch " << epoch
                        << " (loss " << value << ", grad norm " << grad_norm
                        << ")";
      break;
    }
    if (config.grad_clip_norm > 0.0 && grad_norm > config.grad_clip_norm) {
      nn::ClipGradNorm(optimizer->parameters(), config.grad_clip_norm);
    }
    optimizer->Step();
    if (config.verbose && (epoch % config.log_every == 0 ||
                           epoch == config.epochs - 1)) {
      EMAF_LOG(INFO) << model->name() << " epoch " << epoch
                     << " train mse " << value;
    }
  }
  result.final_loss = result.epoch_losses.back();
  return result;
}

}  // namespace emaf::core
