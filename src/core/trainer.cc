#include "core/trainer.h"

#include <chrono>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace emaf::core {

TrainResult TrainForecaster(models::Forecaster* model,
                            const ts::WindowDataset& train,
                            const TrainConfig& config) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK_GT(train.num_windows(), 0);
  EMAF_CHECK_GT(config.epochs, 0);
  EMAF_TRACE_SPAN_DYN(StrCat("TrainForecaster/", model->name()));

  nn::AdamOptions adam;
  adam.lr = config.learning_rate;
  adam.weight_decay = config.weight_decay;
  nn::Adam optimizer(model->Parameters(), adam);

  model->SetTraining(true);
  TrainResult result;
  result.epoch_losses.reserve(static_cast<size_t>(config.epochs));
  result.epoch_grad_norms.reserve(static_cast<size_t>(config.epochs));
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    EMAF_METRIC_SCOPED_TIMER("trainer.epoch_seconds");
    optimizer.ZeroGrad();
    tensor::Tensor prediction = model->Forward(train.inputs);
    tensor::Tensor loss = tensor::MseLoss(prediction, train.targets);
    loss.Backward();
    double grad_norm = 0.0;
    if (config.grad_clip_norm > 0.0) {
      grad_norm =
          nn::ClipGradNorm(optimizer.parameters(), config.grad_clip_norm);
    }
    optimizer.Step();
    double value = loss.item();
    result.epoch_losses.push_back(value);
    result.epoch_grad_norms.push_back(grad_norm);
    EMAF_METRIC_COUNTER_ADD("trainer.epochs_total", 1);
    EMAF_METRIC_HISTOGRAM_OBSERVE("trainer.epoch_loss", value,
                                  ::emaf::obs::DefaultValueBounds());
    EMAF_METRIC_HISTOGRAM_OBSERVE("trainer.grad_norm", grad_norm,
                                  ::emaf::obs::DefaultValueBounds());
    if (config.verbose && (epoch % config.log_every == 0 ||
                           epoch == config.epochs - 1)) {
      EMAF_LOG(INFO) << model->name() << " epoch " << epoch
                     << " train mse " << value;
    }
  }
  result.final_loss = result.epoch_losses.back();
  return result;
}

}  // namespace emaf::core
