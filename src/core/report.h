// Plain-text table rendering and CSV export for experiment results,
// matching the layout of the paper's tables.

#ifndef EMAF_CORE_REPORT_H_
#define EMAF_CORE_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"

namespace emaf::core {

// Fixed-width, pipe-separated table; first column left-aligned, the rest
// right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Marks the best (lowest numeric value) cell per column with '*', as the
  // paper highlights best scores. Non-numeric cells are skipped.
  void HighlightColumnMinima();
  void Print(std::ostream& out) const;
  std::string ToString() const;

  // Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// "0.845(0.432)" — the paper's mean(std) cell format.
std::string FormatMeanStd(const AggregateStats& stats, int digits = 3);

}  // namespace emaf::core

#endif  // EMAF_CORE_REPORT_H_
