// Plain-text table rendering and CSV export for experiment results,
// matching the layout of the paper's tables.

#ifndef EMAF_CORE_REPORT_H_
#define EMAF_CORE_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/experiment.h"

namespace emaf::core {

// Fixed-width, pipe-separated table; first column left-aligned, the rest
// right-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Marks the best (lowest numeric value) cell per column with '*', as the
  // paper highlights best scores. Non-numeric cells are skipped.
  void HighlightColumnMinima();
  void Print(std::ostream& out) const;
  std::string ToString() const;

  // Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// "0.845(0.432)" — the paper's mean(std) cell format.
std::string FormatMeanStd(const AggregateStats& stats, int digits = 3);

// Grid report with graceful degradation: one row per cell in grid order —
// cell key, status code, retry count, mean(std) MSE, then one exact
// (17-significant-digit) MSE column per individual. Failed cells keep
// their key/status/retries and leave the numeric cells empty, so a
// partially failed grid still exports a complete, diffable CSV. Exact
// per-individual formatting makes a resumed run's CSV byte-identical to
// the uninterrupted one (fault_recovery_test).
TablePrinter GridReportTable(const GridResult& grid_result,
                             int64_t num_individuals);

}  // namespace emaf::core

#endif  // EMAF_CORE_REPORT_H_
