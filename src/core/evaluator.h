// Test-set evaluation and cross-individual aggregation (Section V-E).

#ifndef EMAF_CORE_EVALUATOR_H_
#define EMAF_CORE_EVALUATOR_H_

#include <span>
#include <vector>

#include "models/forecaster.h"
#include "tensor/tensor.h"
#include "ts/window.h"

namespace emaf::core {

// MSE between prediction and target tensors of identical shape.
double MseBetween(const tensor::Tensor& prediction,
                  const tensor::Tensor& target);

// Forward pass in eval mode under NoGradGuard: dropout is identity and no
// autodiff tape is built. A model already in eval mode is never written to
// (no SetTraining call), so concurrent Predict calls on a shared served
// model are race-free; a model in training mode is toggled back afterwards.
tensor::Tensor Predict(models::Forecaster* model,
                       const tensor::Tensor& inputs);

// Test MSE of a trained model (eval mode, no gradients).
double EvaluateMse(models::Forecaster* model, const ts::WindowDataset& test);

// Per-variable MSE decomposition: entry v averages squared error of
// variable v over all test windows (paper Section VII-C future work).
std::vector<double> EvaluatePerVariableMse(models::Forecaster* model,
                                           const ts::WindowDataset& test);

struct AggregateStats {
  double mean = 0.0;
  double stddev = 0.0;  // population std across individuals
  int64_t count = 0;
};

AggregateStats Aggregate(std::span<const double> per_individual);

}  // namespace emaf::core

#endif  // EMAF_CORE_EVALUATOR_H_
