// Crash-tolerant checkpoint journal for experiment grids.
//
// A journal is an append-only text file with one checksummed record per
// completed grid cell. RunGrid appends each cell's outcome right after it
// finishes, so a crash (power loss, OOM kill, injected fault) loses at
// most the cell in flight; `--resume` reloads the journal, skips every
// recorded cell, and — because all training is deterministically seeded —
// reproduces the uninterrupted run byte-for-byte (fault_recovery_test
// proves this against the golden harness).
//
// Record format (one line, '|'-separated):
//
//   <crc32-hex>|v1|<cell-key>|<status-code>|<message>|<retries>|<n>|m0|..|r0|..
//
// where the CRC covers everything after the first '|', `m*` are the
// per-individual MSEs (17 significant digits — round-trip exact), and
// `r*` the per-individual retry counts. The message is percent-escaped so
// it can carry arbitrary bytes. A torn trailing record (crash mid-append)
// is detected by its checksum and skipped with a warning; a corrupt
// record anywhere earlier is kDataLoss, since silently dropping completed
// work would violate the resume contract.

#ifndef EMAF_CORE_CHECKPOINT_H_
#define EMAF_CORE_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace emaf::core {

// One journaled cell outcome, keyed by CellKey(spec) (see experiment.h).
// The spec itself is not stored: resume matches grid cells to records by
// key, and the grid's own spec is canonical.
struct JournalRecord {
  std::string key;
  Status cell_status;  // the *cell's* outcome — failed cells are journaled
                       // too, so a resume does not silently retry them
  int64_t retries = 0;
  std::vector<double> per_individual_mse;
  std::vector<int64_t> per_individual_retries;
};

// CRC-32 (IEEE 802.3, reflected) of `data`. Exposed for tests.
uint32_t Crc32(std::string_view data);

// Serialized line for one record (no trailing newline) and its inverse.
// Exposed for tests; RunGrid uses the journal class below.
std::string EncodeJournalRecord(const JournalRecord& record);
Result<JournalRecord> DecodeJournalRecord(std::string_view line);

class CheckpointJournal {
 public:
  // Opens `path` for appending, creating it if missing.
  static Result<CheckpointJournal> OpenForAppend(const std::string& path);

  // Appends one record and flushes it to the OS, so a subsequent hard
  // crash of this process cannot tear it.
  Status Append(const JournalRecord& record);

  // Reads every valid record in file order. A record whose checksum fails
  // is tolerated only as the final line (torn append during a crash);
  // earlier corruption returns kDataLoss. A missing file is kNotFound.
  static Result<std::vector<JournalRecord>> Load(const std::string& path);

  const std::string& path() const { return path_; }

 private:
  CheckpointJournal(std::string path, std::ofstream out)
      : path_(std::move(path)), out_(std::move(out)) {}

  std::string path_;
  std::ofstream out_;
};

}  // namespace emaf::core

#endif  // EMAF_CORE_CHECKPOINT_H_
