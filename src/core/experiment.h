// Experiment orchestration: one "cell" = (model, graph, GDT, input length)
// trained and evaluated per individual across a cohort — the unit of every
// entry in Tables II/III and every box in Fig. 3.
//
// Fault tolerance (DESIGN.md, "Fault tolerance"): training divergence and
// corrupt inputs are expected events at grid scale, not programming
// errors. Each individual gets a bounded recovery budget (re-seeded
// model, halved learning rate, gradient clipping); a cell whose budget is
// exhausted fails with a structured Status instead of aborting the
// process, and RunGrid records the failure as a row, journals completed
// cells to a checkpoint file, and can resume a crashed run byte-for-byte.

#ifndef EMAF_CORE_EXPERIMENT_H_
#define EMAF_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "graph/adjacency.h"
#include "graph/construction.h"
#include "models/a3tgcn.h"
#include "models/astgcn.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"

namespace emaf::core {

enum class ModelKind { kLstm, kA3tgcn, kAstgcn, kMtgnn };
std::string ModelKindName(ModelKind kind);

struct CellSpec {
  ModelKind model = ModelKind::kLstm;
  // Graph used by the GNNs: the static similarity metric or, for MTGNN,
  // the graph-learning prior. Ignored by LSTM.
  graph::GraphMetric metric = graph::GraphMetric::kCorrelation;
  // Graph density threshold (paper: 0.2, 0.4, 1.0).
  double gdt = 0.2;
  // Input sequence length (paper: Seq1, Seq2, Seq5).
  int64_t input_length = 5;
  // Experiment C: replace the static graph by the MTGNN-learned graph
  // extracted with the same (metric, gdt, input_length). Only meaningful
  // for A3TGCN/ASTGCN.
  bool use_learned_graph = false;

  // Label like "MTGNN_CORR" / "ASTGCN_kNN_learned" / "LSTM".
  std::string Label() const;
};

// Stable identity of a cell covering every spec field (the label alone is
// ambiguous: an LSTM cell's RNG stream still mixes metric and GDT). Keys
// the checkpoint journal and the learned-graph cache.
std::string CellKey(const CellSpec& spec);

struct ExperimentConfig {
  data::GeneratorConfig generator;
  TrainConfig train;
  models::LstmConfig lstm;
  models::A3tgcnConfig a3tgcn;
  models::AstgcnConfig astgcn;
  models::MtgnnConfig mtgnn;
  double train_fraction = 0.7;
  int64_t knn_k = 5;
  // DTW Sakoe-Chiba half-width (keeps graph building fast); < 0 = full.
  int64_t dtw_window = 16;
  // Random-graph cells are averaged over this many draws (paper: 5).
  int64_t random_graph_repeats = 5;
  uint64_t seed = 42;
  // Divergence recovery: how many times one individual's training may be
  // retried (re-seeded from the cell's stream id, learning rate halved
  // per attempt, gradient clipping forced on) before the cell fails.
  int64_t max_train_retries = 2;
  // Clip norm forced on retries when the configured training is unclipped
  // (MTGNN's original training clips at 5).
  double recovery_grad_clip_norm = 5.0;
};

struct CellResult {
  CellSpec spec;
  std::vector<double> per_individual_mse;
  // Recovery retries consumed per individual (0 = first attempt clean).
  std::vector<int64_t> per_individual_retries;
  AggregateStats stats;

  int64_t TotalRetries() const;
};

// One grid cell's outcome: either a valid result or a structured failure.
struct CellOutcome {
  CellSpec spec;
  Status status;      // OK <=> `result` is valid
  CellResult result;  // default-initialized on failure
  // Recovery retries consumed (counted on failure too, so a failed cell's
  // report row shows how hard recovery tried).
  int64_t retries = 0;
  // True when the outcome was reloaded from a checkpoint journal.
  bool resumed = false;
};

struct GridOptions {
  // Non-empty: append every completed (or failed) cell to this journal so
  // a crashed run can resume. Created if missing.
  std::string journal_path;
  // Reuse outcomes recorded in `journal_path` and skip those cells. The
  // remaining cells re-run deterministically, so the resumed grid's
  // report is byte-for-byte the uninterrupted one.
  bool resume = false;
};

struct GridResult {
  std::vector<CellOutcome> cells;  // grid order
  int64_t num_failed = 0;
  int64_t num_resumed = 0;
};

// Learned-graph extraction output for one (metric, gdt, input_length).
struct LearnedGraphSet {
  std::vector<graph::AdjacencyMatrix> graphs;  // one per individual
  std::vector<double> mtgnn_mse;               // MTGNN's own test MSE
  std::vector<int64_t> retries;                // recovery retries used
  // Mean Pearson correlation between the learned graph and the static
  // graph it was initialized from (paper reports ~0.88).
  double mean_static_correlation = 0.0;
};

class ExperimentRunner {
 public:
  ExperimentRunner(data::Cohort cohort, ExperimentConfig config);

  const data::Cohort& cohort() const { return cohort_; }
  const ExperimentConfig& config() const { return config_; }

  // Trains and evaluates one cell across the cohort. Individuals run in
  // parallel on the global ThreadPool (EMAF_NUM_THREADS); every task seeds
  // its own Rng from a per-(cell, individual, repeat) stream id and writes
  // a pre-sized result slot, so the output is bitwise identical to a
  // serial run at any thread count (see DESIGN.md, "Parallel execution
  // model"). Fails (instead of CHECK-aborting) when an individual
  // exhausts its recovery budget or an input is corrupt; the error's code
  // tells why (kAborted: divergence, kDataLoss: corrupt graph/data,
  // kUnavailable: worker task fault). RunCell itself is not re-entrant:
  // call it from one thread.
  Result<CellResult> RunCell(const CellSpec& spec);

  // RunCell that CHECK-fails on error: for benches/examples where a cell
  // failure means the harness itself is broken.
  CellResult RunCellOrDie(const CellSpec& spec);

  // Runs a whole grid with graceful degradation: a failed cell becomes a
  // structured failure entry (see GridReportTable in core/report.h) and
  // the remaining cells still run. With a journal configured, each cell
  // is checkpointed as it completes and `resume` skips recorded cells.
  GridResult RunGrid(const std::vector<CellSpec>& grid,
                     const GridOptions& options = {});

  // Static similarity graph for one individual (built on the training
  // region only, then GDT-sparsified). `repeat` seeds random graphs.
  graph::AdjacencyMatrix BuildStaticGraph(int64_t individual_index,
                                          graph::GraphMetric metric,
                                          double gdt, int64_t repeat = 0);

  // Trains MTGNN (graph learning with the static prior) per individual and
  // extracts its learned adjacency. Cached per (metric, gdt, input_length);
  // a partially failed extraction is NOT cached, so a later call retries
  // from scratch instead of reusing poisoned entries. The pointer stays
  // valid for the runner's lifetime.
  Result<const LearnedGraphSet*> LearnedGraphs(graph::GraphMetric metric,
                                               double gdt,
                                               int64_t input_length);

  // CHECK-failing variant, for callers that treat extraction failure as a
  // harness bug.
  const LearnedGraphSet& LearnedGraphsOrDie(graph::GraphMetric metric,
                                            double gdt, int64_t input_length);

  // Per-individual relative MSE change (%) between two cells, paired by
  // individual: 100 * (b - a) / a, averaged (the red numbers in Fig. 3).
  static double MeanRelativeChangePercent(const CellResult& a,
                                          const CellResult& b);

 private:
  // One individual's training run under `spec`, including the divergence
  // recovery loop. `extract_learned` additionally returns MTGNN's learned
  // adjacency and its correlation to the static prior.
  struct IndividualRun {
    double mse = 0.0;
    int64_t retries = 0;
    graph::AdjacencyMatrix learned{1};  // only when extract_learned
    double static_correlation = 0.0;
  };
  Result<IndividualRun> RunIndividual(const CellSpec& spec,
                                      int64_t individual_index,
                                      int64_t repeat, bool extract_learned);

  // RunCell with the failure detail (retry counts) a grid report needs.
  CellOutcome RunCellOutcome(const CellSpec& spec);

  data::Cohort cohort_;
  ExperimentConfig config_;
  std::map<std::string, LearnedGraphSet> learned_cache_;
};

}  // namespace emaf::core

#endif  // EMAF_CORE_EXPERIMENT_H_
