// Experiment orchestration: one "cell" = (model, graph, GDT, input length)
// trained and evaluated per individual across a cohort — the unit of every
// entry in Tables II/III and every box in Fig. 3.

#ifndef EMAF_CORE_EXPERIMENT_H_
#define EMAF_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "graph/adjacency.h"
#include "graph/construction.h"
#include "models/a3tgcn.h"
#include "models/astgcn.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"

namespace emaf::core {

enum class ModelKind { kLstm, kA3tgcn, kAstgcn, kMtgnn };
std::string ModelKindName(ModelKind kind);

struct CellSpec {
  ModelKind model = ModelKind::kLstm;
  // Graph used by the GNNs: the static similarity metric or, for MTGNN,
  // the graph-learning prior. Ignored by LSTM.
  graph::GraphMetric metric = graph::GraphMetric::kCorrelation;
  // Graph density threshold (paper: 0.2, 0.4, 1.0).
  double gdt = 0.2;
  // Input sequence length (paper: Seq1, Seq2, Seq5).
  int64_t input_length = 5;
  // Experiment C: replace the static graph by the MTGNN-learned graph
  // extracted with the same (metric, gdt, input_length). Only meaningful
  // for A3TGCN/ASTGCN.
  bool use_learned_graph = false;

  // Label like "MTGNN_CORR" / "ASTGCN_kNN_learned" / "LSTM".
  std::string Label() const;
};

struct ExperimentConfig {
  data::GeneratorConfig generator;
  TrainConfig train;
  models::LstmConfig lstm;
  models::A3tgcnConfig a3tgcn;
  models::AstgcnConfig astgcn;
  models::MtgnnConfig mtgnn;
  double train_fraction = 0.7;
  int64_t knn_k = 5;
  // DTW Sakoe-Chiba half-width (keeps graph building fast); < 0 = full.
  int64_t dtw_window = 16;
  // Random-graph cells are averaged over this many draws (paper: 5).
  int64_t random_graph_repeats = 5;
  uint64_t seed = 42;
};

struct CellResult {
  CellSpec spec;
  std::vector<double> per_individual_mse;
  AggregateStats stats;
};

// Learned-graph extraction output for one (metric, gdt, input_length).
struct LearnedGraphSet {
  std::vector<graph::AdjacencyMatrix> graphs;  // one per individual
  std::vector<double> mtgnn_mse;               // MTGNN's own test MSE
  // Mean Pearson correlation between the learned graph and the static
  // graph it was initialized from (paper reports ~0.88).
  double mean_static_correlation = 0.0;
};

class ExperimentRunner {
 public:
  ExperimentRunner(data::Cohort cohort, ExperimentConfig config);

  const data::Cohort& cohort() const { return cohort_; }
  const ExperimentConfig& config() const { return config_; }

  // Trains and evaluates one cell across the cohort. Individuals run in
  // parallel on the global ThreadPool (EMAF_NUM_THREADS); every task seeds
  // its own Rng from a per-(cell, individual, repeat) stream id and writes
  // a pre-sized result slot, so the output is bitwise identical to a
  // serial run at any thread count (see DESIGN.md, "Parallel execution
  // model"). RunCell itself is not re-entrant: call it from one thread.
  CellResult RunCell(const CellSpec& spec);

  // Static similarity graph for one individual (built on the training
  // region only, then GDT-sparsified). `repeat` seeds random graphs.
  graph::AdjacencyMatrix BuildStaticGraph(int64_t individual_index,
                                          graph::GraphMetric metric,
                                          double gdt, int64_t repeat = 0);

  // Trains MTGNN (graph learning with the static prior) per individual and
  // extracts its learned adjacency. Cached per (metric, gdt, input_length).
  const LearnedGraphSet& LearnedGraphs(graph::GraphMetric metric, double gdt,
                                       int64_t input_length);

  // Per-individual relative MSE change (%) between two cells, paired by
  // individual: 100 * (b - a) / a, averaged (the red numbers in Fig. 3).
  static double MeanRelativeChangePercent(const CellResult& a,
                                          const CellResult& b);

 private:
  // Builds the model for one individual under `spec` and returns its test
  // MSE after training. `repeat` varies random graphs.
  double TrainAndEvaluate(const CellSpec& spec, int64_t individual_index,
                          int64_t repeat);

  data::Cohort cohort_;
  ExperimentConfig config_;
  std::map<std::string, LearnedGraphSet> learned_cache_;
};

}  // namespace emaf::core

#endif  // EMAF_CORE_EXPERIMENT_H_
