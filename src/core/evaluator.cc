#include "core/evaluator.h"

#include "common/check.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "ts/stats.h"

namespace emaf::core {

double MseBetween(const tensor::Tensor& prediction,
                  const tensor::Tensor& target) {
  EMAF_CHECK(prediction.shape() == target.shape());
  const double* p = prediction.data();
  const double* t = target.data();
  double total = 0.0;
  int64_t n = prediction.NumElements();
  EMAF_CHECK_GT(n, 0);
  for (int64_t i = 0; i < n; ++i) {
    double d = p[i] - t[i];
    total += d * d;
  }
  return total / static_cast<double>(n);
}

tensor::Tensor Predict(models::Forecaster* model,
                       const tensor::Tensor& inputs) {
  EMAF_CHECK(model != nullptr);
  tensor::NoGradGuard guard;
  if (!model->training()) {
    // Serve path: the model was put in eval mode once at load time; not
    // touching the training flag keeps concurrent requests write-free.
    return model->Forward(inputs);
  }
  model->SetTraining(false);
  tensor::Tensor prediction = model->Forward(inputs);
  model->SetTraining(true);
  return prediction;
}

double EvaluateMse(models::Forecaster* model, const ts::WindowDataset& test) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK_GT(test.num_windows(), 0);
  tensor::Tensor prediction = Predict(model, test.inputs);
  return MseBetween(prediction, test.targets);
}

std::vector<double> EvaluatePerVariableMse(models::Forecaster* model,
                                           const ts::WindowDataset& test) {
  EMAF_CHECK(model != nullptr);
  EMAF_CHECK_GT(test.num_windows(), 0);
  tensor::Tensor prediction = Predict(model, test.inputs);

  int64_t batch = prediction.dim(0);
  int64_t vars = prediction.dim(1);
  std::vector<double> per_variable(static_cast<size_t>(vars), 0.0);
  const double* p = prediction.data();
  const double* t = test.targets.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t v = 0; v < vars; ++v) {
      double d = p[b * vars + v] - t[b * vars + v];
      per_variable[static_cast<size_t>(v)] += d * d;
    }
  }
  for (double& v : per_variable) v /= static_cast<double>(batch);
  return per_variable;
}

AggregateStats Aggregate(std::span<const double> per_individual) {
  AggregateStats stats;
  stats.count = static_cast<int64_t>(per_individual.size());
  if (per_individual.empty()) return stats;
  stats.mean = ts::Mean(per_individual);
  stats.stddev = ts::StdDev(per_individual);
  return stats;
}

}  // namespace emaf::core
