// Per-individual training loop implementing the paper's protocol
// (Section V-D): full-batch Adam, lr 0.01, 300 epochs, MSE loss.

#ifndef EMAF_CORE_TRAINER_H_
#define EMAF_CORE_TRAINER_H_

#include <cstdint>
#include <vector>

#include "models/forecaster.h"
#include "ts/window.h"

namespace emaf::core {

struct TrainConfig {
  int64_t epochs = 300;
  double learning_rate = 0.01;
  double weight_decay = 0.0;
  // Global gradient-norm clip; <= 0 disables. MTGNN's original training
  // clips at 5, which also stabilizes the other models on short series.
  double grad_clip_norm = 5.0;
  bool verbose = false;
  int64_t log_every = 50;
};

struct TrainResult {
  std::vector<double> epoch_losses;
  // Pre-clip global gradient norm per epoch (0 when clipping is disabled).
  std::vector<double> epoch_grad_norms;
  double final_loss = 0.0;
};

// Trains `model` on all windows of `train` as one batch per epoch.
TrainResult TrainForecaster(models::Forecaster* model,
                            const ts::WindowDataset& train,
                            const TrainConfig& config);

}  // namespace emaf::core

#endif  // EMAF_CORE_TRAINER_H_
