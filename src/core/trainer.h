// Per-individual training loop implementing the paper's protocol
// (Section V-D): full-batch Adam, lr 0.01, 300 epochs, MSE loss.
//
// The loop carries a numeric-health guard: every epoch's loss and global
// gradient norm are checked, and training stops early (diverged=true)
// when either goes non-finite or the loss exceeds a configurable limit.
// MTGNN-style models are known to blow up without gradient clipping
// (Wu et al., KDD 2020 clip at norm 5), so divergence is treated as an
// expected, recoverable event — ExperimentRunner retries a diverged
// individual with a re-seeded model, halved learning rate, and clipping
// enabled (DESIGN.md, "Fault tolerance").

#ifndef EMAF_CORE_TRAINER_H_
#define EMAF_CORE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "models/forecaster.h"
#include "ts/window.h"

namespace emaf::core {

// Adam is the paper's protocol; SGD exists for robustness stress tests
// (plain SGD reproduces textbook gradient explosion, which Adam's update
// normalization masks).
enum class TrainOptimizer { kAdam, kSgd };

struct TrainConfig {
  int64_t epochs = 300;
  double learning_rate = 0.01;
  double weight_decay = 0.0;
  // Global gradient-norm clip; <= 0 disables. Off by default
  // (paper-faithful: Section V-D trains unclipped); the divergence
  // recovery policy enables it on retry.
  double grad_clip_norm = 0.0;
  TrainOptimizer optimizer = TrainOptimizer::kAdam;
  // Divergence guard: stop (without stepping) when an epoch loss or
  // gradient norm is non-finite, or the loss exceeds this limit.
  bool detect_divergence = true;
  double divergence_loss_limit = 1e12;
  bool verbose = false;
  int64_t log_every = 50;
  // Scope suffix for the trainer's fault-injection site: checks
  // "trainer.step/<fault_scope>" so EMAF_FAULT_SPEC can target a single
  // cell or individual. Empty = bare "trainer.step". No effect unless
  // fault injection is compiled in AND a spec matches.
  std::string fault_scope;
};

struct TrainResult {
  std::vector<double> epoch_losses;
  // Pre-clip global gradient norm per epoch (always computed — the
  // divergence guard needs it even when clipping is off).
  std::vector<double> epoch_grad_norms;
  double final_loss = 0.0;
  // Set when the divergence guard stopped training early; the offending
  // loss/norm is the last entry of the vectors above.
  bool diverged = false;
  int64_t divergence_epoch = -1;
};

// Trains `model` on all windows of `train` as one batch per epoch.
TrainResult TrainForecaster(models::Forecaster* model,
                            const ts::WindowDataset& train,
                            const TrainConfig& config);

}  // namespace emaf::core

#endif  // EMAF_CORE_TRAINER_H_
