#include "core/experiment.h"

#include <memory>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "graph/metrics.h"
#include "tensor/ops.h"

namespace emaf::core {

namespace {

// Mixes cell coordinates into a distinct RNG stream id.
uint64_t StreamId(const CellSpec& spec, int64_t individual, int64_t repeat) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(spec.model));
  mix(static_cast<uint64_t>(spec.metric));
  mix(static_cast<uint64_t>(spec.gdt * 1000.0));
  mix(static_cast<uint64_t>(spec.input_length));
  mix(spec.use_learned_graph ? 1 : 0);
  mix(static_cast<uint64_t>(individual));
  mix(static_cast<uint64_t>(repeat));
  return h;
}

}  // namespace

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLstm:
      return "LSTM";
    case ModelKind::kA3tgcn:
      return "A3TGCN";
    case ModelKind::kAstgcn:
      return "ASTGCN";
    case ModelKind::kMtgnn:
      return "MTGNN";
  }
  return "UNKNOWN";
}

std::string CellSpec::Label() const {
  if (model == ModelKind::kLstm) return "LSTM";
  std::string label =
      StrCat(ModelKindName(model), "_", graph::GraphMetricName(metric));
  if (use_learned_graph) label += "_learned";
  return label;
}

ExperimentRunner::ExperimentRunner(data::Cohort cohort,
                                   ExperimentConfig config)
    : cohort_(std::move(cohort)), config_(std::move(config)) {
  EMAF_CHECK_GT(cohort_.size(), 0);
}

graph::AdjacencyMatrix ExperimentRunner::BuildStaticGraph(
    int64_t individual_index, graph::GraphMetric metric, double gdt,
    int64_t repeat) {
  const data::Individual& individual =
      cohort_.individuals[static_cast<size_t>(individual_index)];
  // Graphs are built on the training region only (no test leakage).
  int64_t split = ts::SequentialSplitIndex(individual.num_time_points(),
                                           config_.train_fraction);
  tensor::Tensor train_region =
      tensor::Slice(individual.observations, 0, 0, split);

  graph::GraphBuildOptions options;
  options.metric = metric;
  options.knn_k = config_.knn_k;
  options.dtw_window = config_.dtw_window;
  Rng rng = Rng(config_.seed).Fork(
      0x72616e64ULL + static_cast<uint64_t>(individual_index) * 131 +
      static_cast<uint64_t>(repeat));
  graph::AdjacencyMatrix full =
      graph::BuildSimilarityGraph(train_region, options, &rng);
  return graph::KeepTopFraction(full, gdt);
}

double ExperimentRunner::TrainAndEvaluate(const CellSpec& spec,
                                          int64_t individual_index,
                                          int64_t repeat) {
  EMAF_TRACE_SPAN_DYN(
      StrCat("cell/", spec.Label(), "/individual_", individual_index));
  EMAF_METRIC_SCOPED_TIMER("experiment.individual_seconds");
  EMAF_METRIC_COUNTER_ADD("experiment.individuals_total", 1);
  const data::Individual& individual =
      cohort_.individuals[static_cast<size_t>(individual_index)];
  data::IndividualSplit split =
      data::MakeSplit(individual, spec.input_length, config_.train_fraction);
  Rng rng =
      Rng(config_.seed).Fork(StreamId(spec, individual_index, repeat));

  std::unique_ptr<models::Forecaster> model;
  switch (spec.model) {
    case ModelKind::kLstm:
      model = std::make_unique<models::LstmForecaster>(
          individual.num_variables(), spec.input_length, config_.lstm, &rng);
      break;
    case ModelKind::kA3tgcn:
    case ModelKind::kAstgcn: {
      graph::AdjacencyMatrix adjacency(individual.num_variables());
      if (spec.use_learned_graph) {
        const LearnedGraphSet& learned =
            LearnedGraphs(spec.metric, spec.gdt, spec.input_length);
        // Learned graphs are directed: symmetrize, then apply the same GDT
        // so the comparison against the static graph is edge-count matched.
        graph::AdjacencyMatrix g =
            learned.graphs[static_cast<size_t>(individual_index)];
        g.Symmetrize();
        g.ZeroDiagonal();
        adjacency = graph::KeepTopFraction(g, spec.gdt);
      } else {
        adjacency =
            BuildStaticGraph(individual_index, spec.metric, spec.gdt, repeat);
      }
      if (spec.model == ModelKind::kA3tgcn) {
        model = std::make_unique<models::A3tgcn>(
            adjacency, spec.input_length, config_.a3tgcn, &rng);
      } else {
        model = std::make_unique<models::Astgcn>(
            adjacency, spec.input_length, config_.astgcn, &rng);
      }
      break;
    }
    case ModelKind::kMtgnn: {
      graph::AdjacencyMatrix adjacency =
          BuildStaticGraph(individual_index, spec.metric, spec.gdt, repeat);
      model = std::make_unique<models::Mtgnn>(
          &adjacency, individual.num_variables(), spec.input_length,
          config_.mtgnn, &rng);
      break;
    }
  }

  TrainForecaster(model.get(), split.train, config_.train);
  return EvaluateMse(model.get(), split.test);
}

CellResult ExperimentRunner::RunCell(const CellSpec& spec) {
  EMAF_TRACE_SPAN_DYN(StrCat("RunCell/", spec.Label()));
  EMAF_METRIC_SCOPED_TIMER("experiment.cell_seconds");
  EMAF_METRIC_COUNTER_ADD("experiment.cells_total", 1);
  CellResult result;
  result.spec = spec;
  bool is_random = spec.metric == graph::GraphMetric::kRandom &&
                   spec.model != ModelKind::kLstm;
  int64_t repeats = is_random ? config_.random_graph_repeats : 1;

  // Non-random MTGNN cells reuse the learned-graph cache (identical
  // training procedure) so Experiments A/B/C stay consistent and cheap.
  if (spec.model == ModelKind::kMtgnn && !is_random &&
      config_.mtgnn.use_graph_learning) {
    const LearnedGraphSet& learned =
        LearnedGraphs(spec.metric, spec.gdt, spec.input_length);
    result.per_individual_mse = learned.mtgnn_mse;
    result.stats = Aggregate(result.per_individual_mse);
    return result;
  }

  // Learned-graph cells read the shared cache from every task: populate it
  // once up front so the parallel region is read-only on `learned_cache_`.
  if (spec.use_learned_graph) {
    LearnedGraphs(spec.metric, spec.gdt, spec.input_length);
  }

  // Per-individual cells are independent: each task forks its own Rng from
  // StreamId(spec, i, r) and writes into its pre-sized slot, so any
  // schedule produces bitwise the serial result, with no mutex on the hot
  // path and a single aggregation at the end.
  result.per_individual_mse.assign(static_cast<size_t>(cohort_.size()), 0.0);
  common::ThreadPool::Global().ParallelFor(
      0, cohort_.size(), /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          double total = 0.0;
          for (int64_t r = 0; r < repeats; ++r) {
            total += TrainAndEvaluate(spec, i, r);
          }
          result.per_individual_mse[static_cast<size_t>(i)] =
              total / static_cast<double>(repeats);
        }
      });
  result.stats = Aggregate(result.per_individual_mse);
  EMAF_LOG(DEBUG) << spec.Label() << " mse " << result.stats.mean << " ("
                  << result.stats.stddev << ")";
  return result;
}

const LearnedGraphSet& ExperimentRunner::LearnedGraphs(
    graph::GraphMetric metric, double gdt, int64_t input_length) {
  std::string key = StrCat(graph::GraphMetricName(metric), "|", gdt, "|",
                           input_length);
  auto it = learned_cache_.find(key);
  if (it != learned_cache_.end()) {
    EMAF_METRIC_COUNTER_ADD("experiment.learned_cache_hits", 1);
    return it->second;
  }
  EMAF_METRIC_COUNTER_ADD("experiment.learned_cache_misses", 1);
  EMAF_TRACE_SPAN_DYN(StrCat("LearnedGraphs/", key));
  EMAF_METRIC_SCOPED_TIMER("experiment.learned_graphs_seconds");

  LearnedGraphSet set;
  CellSpec spec;
  spec.model = ModelKind::kMtgnn;
  spec.metric = metric;
  spec.gdt = gdt;
  spec.input_length = input_length;
  // Same slot discipline as RunCell: every individual trains independently
  // into pre-sized vectors; the correlation reduction runs serially in
  // index order afterwards so the mean is bitwise schedule-independent.
  size_t n = static_cast<size_t>(cohort_.size());
  // 1-node placeholders: AdjacencyMatrix has no default constructor; every
  // slot is overwritten by its individual's task.
  set.graphs.assign(n, graph::AdjacencyMatrix(1));
  set.mtgnn_mse.assign(n, 0.0);
  std::vector<double> correlations(n, 0.0);
  common::ThreadPool::Global().ParallelFor(
      0, cohort_.size(), /*grain=*/1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const data::Individual& individual =
              cohort_.individuals[static_cast<size_t>(i)];
          data::IndividualSplit split = data::MakeSplit(
              individual, input_length, config_.train_fraction);
          graph::AdjacencyMatrix static_graph =
              BuildStaticGraph(i, metric, gdt);
          Rng rng = Rng(config_.seed).Fork(StreamId(spec, i, /*repeat=*/0));
          models::Mtgnn model(&static_graph, individual.num_variables(),
                              input_length, config_.mtgnn, &rng);
          TrainForecaster(&model, split.train, config_.train);
          set.mtgnn_mse[static_cast<size_t>(i)] =
              EvaluateMse(&model, split.test);

          graph::AdjacencyMatrix learned = model.CurrentAdjacency();
          graph::AdjacencyMatrix learned_sym = learned;
          learned_sym.Symmetrize();
          learned_sym.ZeroDiagonal();
          correlations[static_cast<size_t>(i)] =
              graph::GraphCorrelation(learned_sym, static_graph);
          set.graphs[static_cast<size_t>(i)] = std::move(learned);
        }
      });
  double correlation_total = 0.0;
  for (double c : correlations) correlation_total += c;
  set.mean_static_correlation =
      correlation_total / static_cast<double>(cohort_.size());
  auto [inserted, unused] = learned_cache_.emplace(key, std::move(set));
  return inserted->second;
}

double ExperimentRunner::MeanRelativeChangePercent(const CellResult& a,
                                                   const CellResult& b) {
  EMAF_CHECK_EQ(a.per_individual_mse.size(), b.per_individual_mse.size());
  EMAF_CHECK(!a.per_individual_mse.empty());
  double total = 0.0;
  for (size_t i = 0; i < a.per_individual_mse.size(); ++i) {
    double base = a.per_individual_mse[i];
    EMAF_CHECK_GT(base, 0.0);
    total += 100.0 * (b.per_individual_mse[i] - base) / base;
  }
  return total / static_cast<double>(a.per_individual_mse.size());
}

}  // namespace emaf::core
