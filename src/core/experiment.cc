#include "core/experiment.h"

#include <cmath>
#include <exception>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/checkpoint.h"
#include "graph/metrics.h"
#include "models/registry.h"
#include "tensor/ops.h"

namespace emaf::core {

namespace {

// Mixes cell coordinates into a distinct RNG stream id.
uint64_t StreamId(const CellSpec& spec, int64_t individual, int64_t repeat) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(spec.model));
  mix(static_cast<uint64_t>(spec.metric));
  mix(static_cast<uint64_t>(spec.gdt * 1000.0));
  mix(static_cast<uint64_t>(spec.input_length));
  mix(spec.use_learned_graph ? 1 : 0);
  mix(static_cast<uint64_t>(individual));
  mix(static_cast<uint64_t>(repeat));
  return h;
}

// Cache key of a learned-graph extraction (internal to this file).
std::string LearnedKey(graph::GraphMetric metric, double gdt,
                       int64_t input_length) {
  return StrCat(graph::GraphMetricName(metric), "|", gdt, "|", input_length);
}

bool AdjacencyHasNonFinite(const graph::AdjacencyMatrix& adjacency) {
  for (double v : adjacency.values()) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLstm:
      return "LSTM";
    case ModelKind::kA3tgcn:
      return "A3TGCN";
    case ModelKind::kAstgcn:
      return "ASTGCN";
    case ModelKind::kMtgnn:
      return "MTGNN";
  }
  return "UNKNOWN";
}

std::string CellSpec::Label() const {
  if (model == ModelKind::kLstm) return "LSTM";
  std::string label =
      StrCat(ModelKindName(model), "_", graph::GraphMetricName(metric));
  if (use_learned_graph) label += "_learned";
  return label;
}

std::string CellKey(const CellSpec& spec) {
  // Every spec field, not just the label: an LSTM cell's RNG stream still
  // mixes metric and gdt, so two LSTM cells with different metrics are
  // different cells. ':' keeps the key free of the journal's '|' separator.
  return StrCat(ModelKindName(spec.model), ":",
                graph::GraphMetricName(spec.metric), ":",
                FormatExact(spec.gdt), ":", spec.input_length, ":",
                spec.use_learned_graph ? "learned" : "static");
}

int64_t CellResult::TotalRetries() const {
  int64_t total = 0;
  for (int64_t r : per_individual_retries) total += r;
  return total;
}

ExperimentRunner::ExperimentRunner(data::Cohort cohort,
                                   ExperimentConfig config)
    : cohort_(std::move(cohort)), config_(std::move(config)) {
  EMAF_CHECK_GT(cohort_.size(), 0);
}

graph::AdjacencyMatrix ExperimentRunner::BuildStaticGraph(
    int64_t individual_index, graph::GraphMetric metric, double gdt,
    int64_t repeat) {
  const data::Individual& individual =
      cohort_.individuals[static_cast<size_t>(individual_index)];
  // Graphs are built on the training region only (no test leakage).
  int64_t split = ts::SequentialSplitIndex(individual.num_time_points(),
                                           config_.train_fraction);
  tensor::Tensor train_region =
      tensor::Slice(individual.observations, 0, 0, split);

  graph::GraphBuildOptions options;
  options.metric = metric;
  options.knn_k = config_.knn_k;
  options.dtw_window = config_.dtw_window;
  Rng rng = Rng(config_.seed).Fork(
      0x72616e64ULL + static_cast<uint64_t>(individual_index) * 131 +
      static_cast<uint64_t>(repeat));
  graph::AdjacencyMatrix full =
      graph::BuildSimilarityGraph(train_region, options, &rng);
  return graph::KeepTopFraction(full, gdt);
}

Result<ExperimentRunner::IndividualRun> ExperimentRunner::RunIndividual(
    const CellSpec& spec, int64_t individual_index, int64_t repeat,
    bool extract_learned) {
  EMAF_TRACE_SPAN_DYN(
      StrCat("cell/", spec.Label(), "/individual_", individual_index));
  EMAF_METRIC_SCOPED_TIMER("experiment.individual_seconds");
  EMAF_METRIC_COUNTER_ADD("experiment.individuals_total", 1);
  const data::Individual& individual =
      cohort_.individuals[static_cast<size_t>(individual_index)];
  data::IndividualSplit split =
      data::MakeSplit(individual, spec.input_length, config_.train_fraction);
  const uint64_t base_stream = StreamId(spec, individual_index, repeat);

  std::string last_failure = "never attempted";
  for (int64_t attempt = 0; attempt <= config_.max_train_retries; ++attempt) {
    // Attempt 0 is byte-identical to fault-free training; recovery
    // attempts re-seed the model from a perturbed stream, halve the
    // learning rate per attempt, and force gradient clipping on.
    uint64_t stream = base_stream;
    TrainConfig train = config_.train;
    // Scoped by CellKey, not Label: two cells may share a label (same
    // model and metric, different input length) and a fault spec must be
    // able to target exactly one of them.
    train.fault_scope = StrCat(CellKey(spec), "/i", individual_index);
    if (attempt > 0) {
      stream ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt);
      train.learning_rate =
          config_.train.learning_rate / static_cast<double>(1LL << attempt);
      if (train.grad_clip_norm <= 0.0) {
        train.grad_clip_norm = config_.recovery_grad_clip_norm;
      }
      EMAF_METRIC_COUNTER_ADD("experiment.recovery_retries_total", 1);
      EMAF_LOG(WARNING) << spec.Label() << " individual " << individual_index
                        << ": retry " << attempt << "/"
                        << config_.max_train_retries << " after "
                        << last_failure << " (lr " << train.learning_rate
                        << ", clip " << train.grad_clip_norm << ")";
    }
    Rng rng = Rng(config_.seed).Fork(stream);

    // Every model family goes through the registry; the cell's job here is
    // only to assemble the ModelConfig (including the adjacency, which the
    // graph models bake into constants at construction). CreateForecaster
    // invokes the same constructors with the same `rng` as the former
    // inline construction, so RNG streams — and the golden experiment
    // bytes — are unchanged.
    models::ModelConfig model_config;
    model_config.num_variables = individual.num_variables();
    model_config.input_length = spec.input_length;
    model_config.lstm = config_.lstm;
    model_config.a3tgcn = config_.a3tgcn;
    model_config.astgcn = config_.astgcn;
    model_config.mtgnn = config_.mtgnn;
    // Kept alive through training for the learned-vs-static correlation.
    graph::AdjacencyMatrix static_graph(1);
    switch (spec.model) {
      case ModelKind::kLstm:
        model_config.family = "LSTM";
        break;
      case ModelKind::kA3tgcn:
      case ModelKind::kAstgcn: {
        model_config.family =
            spec.model == ModelKind::kA3tgcn ? "A3TGCN" : "ASTGCN";
        graph::AdjacencyMatrix adjacency(individual.num_variables());
        if (spec.use_learned_graph) {
          // RunCell populates the cache before its parallel region, so
          // this lookup is read-only here; a miss is a programming error.
          auto it = learned_cache_.find(
              LearnedKey(spec.metric, spec.gdt, spec.input_length));
          EMAF_CHECK(it != learned_cache_.end())
              << "learned-graph cache not pre-populated for "
              << spec.Label();
          // Learned graphs are directed: symmetrize, then apply the same
          // GDT so the comparison against the static graph is edge-count
          // matched.
          graph::AdjacencyMatrix g =
              it->second.graphs[static_cast<size_t>(individual_index)];
          g.Symmetrize();
          g.ZeroDiagonal();
          adjacency = graph::KeepTopFraction(g, spec.gdt);
        } else {
          adjacency = BuildStaticGraph(individual_index, spec.metric,
                                       spec.gdt, repeat);
        }
        if (AdjacencyHasNonFinite(adjacency)) {
          // Corrupt input, not a training accident: re-seeding cannot fix
          // a deterministically rebuilt graph, so fail without retrying.
          return Status::DataLoss(
              StrCat(spec.Label(), " individual ", individual_index,
                     ": adjacency matrix has non-finite entries"));
        }
        model_config.adjacency = std::move(adjacency);
        break;
      }
      case ModelKind::kMtgnn: {
        model_config.family = "MTGNN";
        static_graph = BuildStaticGraph(individual_index, spec.metric,
                                        spec.gdt, repeat);
        if (AdjacencyHasNonFinite(static_graph)) {
          return Status::DataLoss(
              StrCat(spec.Label(), " individual ", individual_index,
                     ": adjacency matrix has non-finite entries"));
        }
        model_config.adjacency = static_graph;
        break;
      }
    }
    Result<std::unique_ptr<models::Forecaster>> created =
        models::CreateForecaster(model_config, &rng);
    if (!created.ok()) return created.status();
    std::unique_ptr<models::Forecaster> model = std::move(created).value();
    auto* mtgnn = dynamic_cast<models::Mtgnn*>(model.get());

    TrainResult trained = TrainForecaster(model.get(), split.train, train);
    if (trained.diverged) {
      last_failure = StrCat("divergence at epoch ", trained.divergence_epoch,
                            " (loss ", trained.final_loss, ")");
      continue;
    }
    double mse = EvaluateMse(model.get(), split.test);
    if (!std::isfinite(mse)) {
      last_failure = "non-finite test MSE";
      continue;
    }

    IndividualRun run;
    run.mse = mse;
    run.retries = attempt;
    if (extract_learned) {
      EMAF_CHECK(mtgnn != nullptr)
          << "learned-graph extraction requires an MTGNN cell";
      run.learned = mtgnn->CurrentAdjacency();
      graph::AdjacencyMatrix learned_sym = run.learned;
      learned_sym.Symmetrize();
      learned_sym.ZeroDiagonal();
      run.static_correlation =
          graph::GraphCorrelation(learned_sym, static_graph);
    }
    return run;
  }
  return Status::Aborted(
      StrCat(spec.Label(), " individual ", individual_index,
             ": recovery budget exhausted after ", config_.max_train_retries,
             " retries; last failure: ", last_failure));
}

CellOutcome ExperimentRunner::RunCellOutcome(const CellSpec& spec) {
  EMAF_TRACE_SPAN_DYN(StrCat("RunCell/", spec.Label()));
  EMAF_METRIC_SCOPED_TIMER("experiment.cell_seconds");
  EMAF_METRIC_COUNTER_ADD("experiment.cells_total", 1);
  CellOutcome outcome;
  outcome.spec = spec;
  outcome.result.spec = spec;

  if (EMAF_FAULT_SHOULD_FAIL(StrCat("experiment.cell/", CellKey(spec)))) {
    outcome.status = Status::Unavailable(
        StrCat("injected fault: experiment.cell/", CellKey(spec)));
    return outcome;
  }

  bool is_random = spec.metric == graph::GraphMetric::kRandom &&
                   spec.model != ModelKind::kLstm;
  int64_t repeats = is_random ? config_.random_graph_repeats : 1;

  // Non-random MTGNN cells reuse the learned-graph cache (identical
  // training procedure) so Experiments A/B/C stay consistent and cheap.
  if (spec.model == ModelKind::kMtgnn && !is_random &&
      config_.mtgnn.use_graph_learning) {
    Result<const LearnedGraphSet*> learned =
        LearnedGraphs(spec.metric, spec.gdt, spec.input_length);
    if (!learned.ok()) {
      outcome.status = learned.status();
      return outcome;
    }
    const LearnedGraphSet& set = *learned.value();
    outcome.result.per_individual_mse = set.mtgnn_mse;
    outcome.result.per_individual_retries = set.retries;
    outcome.result.stats = Aggregate(outcome.result.per_individual_mse);
    outcome.retries = outcome.result.TotalRetries();
    return outcome;
  }

  // Learned-graph cells read the shared cache from every task: populate it
  // once up front so the parallel region is read-only on `learned_cache_`.
  if (spec.use_learned_graph) {
    Result<const LearnedGraphSet*> learned =
        LearnedGraphs(spec.metric, spec.gdt, spec.input_length);
    if (!learned.ok()) {
      outcome.status = learned.status();
      return outcome;
    }
  }

  // Per-individual cells are independent: each task forks its own Rng from
  // StreamId(spec, i, r) and writes into its pre-sized slot, so any
  // schedule produces bitwise the serial result, with no mutex on the hot
  // path and a single aggregation at the end. Failures land in per-index
  // Status slots; the lowest failing index wins, so the reported error is
  // schedule-independent too.
  size_t n = static_cast<size_t>(cohort_.size());
  outcome.result.per_individual_mse.assign(n, 0.0);
  outcome.result.per_individual_retries.assign(n, 0);
  std::vector<Status> statuses(n);
  try {
    common::ThreadPool::Global().ParallelFor(
        0, cohort_.size(), /*grain=*/1, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            double total = 0.0;
            int64_t retries = 0;
            for (int64_t r = 0; r < repeats; ++r) {
              Result<IndividualRun> run =
                  RunIndividual(spec, i, r, /*extract_learned=*/false);
              if (!run.ok()) {
                statuses[static_cast<size_t>(i)] = run.status();
                retries += config_.max_train_retries;
                break;
              }
              total += run.value().mse;
              retries += run.value().retries;
            }
            outcome.result.per_individual_mse[static_cast<size_t>(i)] =
                total / static_cast<double>(repeats);
            outcome.result.per_individual_retries[static_cast<size_t>(i)] =
                retries;
          }
        });
  } catch (const std::exception& e) {
    // A worker task died (e.g. injected threadpool fault). The pool stays
    // usable; the cell reports a transient failure.
    outcome.status = Status::Unavailable(
        StrCat(spec.Label(), ": worker task failed: ", e.what()));
    outcome.result = CellResult{};
    outcome.result.spec = spec;
    return outcome;
  }
  outcome.retries = outcome.result.TotalRetries();
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      outcome.status = statuses[i];
      // Partially filled slots must not leak into reports or journals:
      // a failed cell's result is default-initialized by contract.
      outcome.result = CellResult{};
      outcome.result.spec = spec;
      return outcome;
    }
  }
  outcome.result.stats = Aggregate(outcome.result.per_individual_mse);
  EMAF_LOG(DEBUG) << spec.Label() << " mse " << outcome.result.stats.mean
                  << " (" << outcome.result.stats.stddev << ")";
  return outcome;
}

Result<CellResult> ExperimentRunner::RunCell(const CellSpec& spec) {
  CellOutcome outcome = RunCellOutcome(spec);
  if (!outcome.status.ok()) return outcome.status;
  return std::move(outcome.result);
}

CellResult ExperimentRunner::RunCellOrDie(const CellSpec& spec) {
  Result<CellResult> result = RunCell(spec);
  EMAF_CHECK(result.ok()) << "cell " << spec.Label()
                          << " failed: " << result.status().ToString();
  return std::move(result).value();
}

GridResult ExperimentRunner::RunGrid(const std::vector<CellSpec>& grid,
                                     const GridOptions& options) {
  EMAF_TRACE_SPAN_DYN(StrCat("RunGrid/", grid.size(), "_cells"));
  GridResult result;

  // Resume: reload completed outcomes (success AND failure — a failed cell
  // was a *completed* decision; silently re-running it would make the
  // resumed report diverge from the uninterrupted one).
  std::unordered_map<std::string, JournalRecord> resumed;
  if (options.resume && !options.journal_path.empty()) {
    Result<std::vector<JournalRecord>> loaded =
        CheckpointJournal::Load(options.journal_path);
    if (loaded.ok()) {
      for (JournalRecord& record : loaded.value()) {
        std::string key = record.key;
        resumed.emplace(std::move(key), std::move(record));
      }
    } else if (loaded.status().code() == StatusCode::kNotFound) {
      EMAF_LOG(INFO) << "resume requested but no journal at "
                     << options.journal_path << "; running from scratch";
    } else {
      // A corrupt journal cannot honor the byte-for-byte resume contract;
      // that is a harness error, not a degradable cell failure.
      EMAF_CHECK(false) << "cannot resume from " << options.journal_path
                        << ": " << loaded.status().ToString();
    }
  }

  std::optional<CheckpointJournal> journal;
  if (!options.journal_path.empty()) {
    Result<CheckpointJournal> opened =
        CheckpointJournal::OpenForAppend(options.journal_path);
    EMAF_CHECK(opened.ok()) << opened.status().ToString();
    journal.emplace(std::move(opened).value());
  }

  for (const CellSpec& spec : grid) {
    const std::string key = CellKey(spec);
    auto it = resumed.find(key);
    if (it != resumed.end()) {
      const JournalRecord& record = it->second;
      CellOutcome outcome;
      outcome.spec = spec;
      outcome.result.spec = spec;
      outcome.status = record.cell_status;
      outcome.retries = record.retries;
      outcome.resumed = true;
      if (outcome.status.ok()) {
        outcome.result.per_individual_mse = record.per_individual_mse;
        outcome.result.per_individual_retries =
            record.per_individual_retries;
        // Exact round-tripping (FormatExact) makes this recomputed
        // aggregate bitwise the original.
        outcome.result.stats = Aggregate(outcome.result.per_individual_mse);
      } else {
        ++result.num_failed;
      }
      ++result.num_resumed;
      EMAF_LOG(INFO) << "resume: skipping completed cell " << key;
      result.cells.push_back(std::move(outcome));
      continue;
    }

    CellOutcome outcome = RunCellOutcome(spec);
    if (!outcome.status.ok()) {
      ++result.num_failed;
      EMAF_METRIC_COUNTER_ADD("experiment.cells_failed", 1);
      EMAF_LOG(ERROR) << "cell " << key
                      << " failed: " << outcome.status.ToString();
    }
    if (journal.has_value()) {
      JournalRecord record;
      record.key = key;
      record.cell_status = outcome.status;
      record.retries = outcome.retries;
      if (outcome.status.ok()) {
        record.per_individual_mse = outcome.result.per_individual_mse;
        record.per_individual_retries =
            outcome.result.per_individual_retries;
      }
      Status appended = journal->Append(record);
      EMAF_CHECK(appended.ok()) << appended.ToString();
      // Crash site for fault_recovery_test: dying here proves the record
      // just written survives and the next run resumes past this cell.
      EMAF_FAULT_CRASH_POINT("checkpoint.post_append");
    }
    result.cells.push_back(std::move(outcome));
  }
  return result;
}

Result<const LearnedGraphSet*> ExperimentRunner::LearnedGraphs(
    graph::GraphMetric metric, double gdt, int64_t input_length) {
  std::string key = LearnedKey(metric, gdt, input_length);
  auto it = learned_cache_.find(key);
  if (it != learned_cache_.end()) {
    EMAF_METRIC_COUNTER_ADD("experiment.learned_cache_hits", 1);
    return &it->second;
  }
  EMAF_METRIC_COUNTER_ADD("experiment.learned_cache_misses", 1);
  EMAF_TRACE_SPAN_DYN(StrCat("LearnedGraphs/", key));
  EMAF_METRIC_SCOPED_TIMER("experiment.learned_graphs_seconds");

  LearnedGraphSet set;
  CellSpec spec;
  spec.model = ModelKind::kMtgnn;
  spec.metric = metric;
  spec.gdt = gdt;
  spec.input_length = input_length;
  // Same slot discipline as RunCell: every individual trains independently
  // into pre-sized vectors; the correlation reduction runs serially in
  // index order afterwards so the mean is bitwise schedule-independent.
  size_t n = static_cast<size_t>(cohort_.size());
  // 1-node placeholders: AdjacencyMatrix has no default constructor; every
  // slot is overwritten by its individual's task.
  set.graphs.assign(n, graph::AdjacencyMatrix(1));
  set.mtgnn_mse.assign(n, 0.0);
  set.retries.assign(n, 0);
  std::vector<double> correlations(n, 0.0);
  std::vector<Status> statuses(n);
  try {
    common::ThreadPool::Global().ParallelFor(
        0, cohort_.size(), /*grain=*/1, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            Result<IndividualRun> run =
                RunIndividual(spec, i, /*repeat=*/0,
                              /*extract_learned=*/true);
            if (!run.ok()) {
              statuses[static_cast<size_t>(i)] = run.status();
              continue;
            }
            set.mtgnn_mse[static_cast<size_t>(i)] = run.value().mse;
            set.retries[static_cast<size_t>(i)] = run.value().retries;
            correlations[static_cast<size_t>(i)] =
                run.value().static_correlation;
            set.graphs[static_cast<size_t>(i)] =
                std::move(run.value().learned);
          }
        });
  } catch (const std::exception& e) {
    return Status::Unavailable(
        StrCat("LearnedGraphs/", key, ": worker task failed: ", e.what()));
  }
  for (size_t i = 0; i < n; ++i) {
    // A partial extraction is NOT cached: a later call retries from
    // scratch instead of serving poisoned entries.
    if (!statuses[i].ok()) return statuses[i];
  }
  double correlation_total = 0.0;
  for (double c : correlations) correlation_total += c;
  set.mean_static_correlation =
      correlation_total / static_cast<double>(cohort_.size());
  auto [inserted, unused] = learned_cache_.emplace(key, std::move(set));
  return &inserted->second;
}

const LearnedGraphSet& ExperimentRunner::LearnedGraphsOrDie(
    graph::GraphMetric metric, double gdt, int64_t input_length) {
  Result<const LearnedGraphSet*> learned =
      LearnedGraphs(metric, gdt, input_length);
  EMAF_CHECK(learned.ok()) << "learned-graph extraction failed: "
                           << learned.status().ToString();
  return *learned.value();
}

double ExperimentRunner::MeanRelativeChangePercent(const CellResult& a,
                                                   const CellResult& b) {
  EMAF_CHECK_EQ(a.per_individual_mse.size(), b.per_individual_mse.size());
  EMAF_CHECK(!a.per_individual_mse.empty());
  double total = 0.0;
  for (size_t i = 0; i < a.per_individual_mse.size(); ++i) {
    double base = a.per_individual_mse[i];
    EMAF_CHECK_GT(base, 0.0);
    total += 100.0 * (b.per_individual_mse[i] - base) / base;
  }
  return total / static_cast<double>(a.per_individual_mse.size());
}

}  // namespace emaf::core
