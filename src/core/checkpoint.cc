#include "core/checkpoint.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace emaf::core {

namespace {

constexpr std::string_view kVersionTag = "v1";

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Percent-escapes '%', '|', newline and carriage return so a field can
// carry arbitrary status-message bytes on one '|'-separated line.
std::string EscapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    if (c == '%' || c == '|' || c == '\n' || c == '\r') {
      static constexpr char kHex[] = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '%') {
      out.push_back(field[i]);
      continue;
    }
    if (i + 2 >= field.size() ||
        !std::isxdigit(static_cast<unsigned char>(field[i + 1])) ||
        !std::isxdigit(static_cast<unsigned char>(field[i + 2]))) {
      return Status::DataLoss("bad percent escape in journal field");
    }
    auto nibble = [](char c) -> unsigned {
      if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
      if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
      return static_cast<unsigned>(c - 'A' + 10);
    };
    out.push_back(static_cast<char>((nibble(field[i + 1]) << 4) |
                                    nibble(field[i + 2])));
    i += 2;
  }
  return out;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string EncodeJournalRecord(const JournalRecord& record) {
  std::vector<std::string> fields;
  fields.emplace_back(kVersionTag);
  fields.push_back(EscapeField(record.key));
  fields.emplace_back(StatusCodeName(record.cell_status.code()));
  fields.push_back(EscapeField(record.cell_status.message()));
  fields.push_back(StrCat(record.retries));
  fields.push_back(StrCat(record.per_individual_mse.size()));
  for (double v : record.per_individual_mse) {
    fields.push_back(FormatExact(v));
  }
  for (int64_t r : record.per_individual_retries) {
    fields.push_back(StrCat(r));
  }
  std::string payload = StrJoin(fields, "|");
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  return StrCat(crc_hex, "|", payload);
}

Result<JournalRecord> DecodeJournalRecord(std::string_view line) {
  size_t bar = line.find('|');
  if (bar == std::string_view::npos) {
    return Status::DataLoss("journal line has no checksum field");
  }
  std::string_view crc_text = line.substr(0, bar);
  std::string_view payload = line.substr(bar + 1);
  long long crc_value = 0;
  {
    // Hex parse (ParseInt64 is decimal-only).
    std::string crc_string(crc_text);
    char* end = nullptr;
    crc_value = std::strtoll(crc_string.c_str(), &end, 16);
    if (crc_text.empty() || end == nullptr || *end != '\0') {
      return Status::DataLoss("journal line has a malformed checksum");
    }
  }
  if (static_cast<uint32_t>(crc_value) != Crc32(payload)) {
    return Status::DataLoss("journal record checksum mismatch");
  }
  std::vector<std::string> fields = StrSplit(payload, '|');
  if (fields.size() < 6 || fields[0] != kVersionTag) {
    return Status::DataLoss("journal record has a bad header");
  }
  JournalRecord record;
  Result<std::string> key = UnescapeField(fields[1]);
  if (!key.ok()) return key.status();
  record.key = std::move(key.value());
  std::optional<StatusCode> code = StatusCodeFromName(fields[2]);
  if (!code.has_value()) {
    return Status::DataLoss(
        StrCat("journal record has unknown status code '", fields[2], "'"));
  }
  Result<std::string> message = UnescapeField(fields[3]);
  if (!message.ok()) return message.status();
  record.cell_status = *code == StatusCode::kOk
                           ? Status::Ok()
                           : Status(*code, std::move(message.value()));
  long long retries = 0;
  long long n = 0;
  if (!ParseInt64(fields[4], &retries) || !ParseInt64(fields[5], &n) ||
      retries < 0 || n < 0) {
    return Status::DataLoss("journal record has bad counters");
  }
  record.retries = retries;
  if (fields.size() != 6 + 2 * static_cast<size_t>(n)) {
    return Status::DataLoss(
        StrCat("journal record field count mismatch (", fields.size(),
               " fields for n=", n, ")"));
  }
  for (long long i = 0; i < n; ++i) {
    double v = 0.0;
    if (!ParseDouble(fields[6 + static_cast<size_t>(i)], &v)) {
      return Status::DataLoss("journal record has a malformed MSE value");
    }
    record.per_individual_mse.push_back(v);
  }
  for (long long i = 0; i < n; ++i) {
    long long r = 0;
    if (!ParseInt64(fields[6 + static_cast<size_t>(n + i)], &r) || r < 0) {
      return Status::DataLoss("journal record has a malformed retry count");
    }
    record.per_individual_retries.push_back(r);
  }
  return record;
}

Result<CheckpointJournal> CheckpointJournal::OpenForAppend(
    const std::string& path) {
  std::ofstream out(path, std::ios::app);
  if (!out.is_open()) {
    return Status::NotFound(
        StrCat("cannot open journal for appending: ", path));
  }
  return CheckpointJournal(path, std::move(out));
}

Status CheckpointJournal::Append(const JournalRecord& record) {
  out_ << EncodeJournalRecord(record) << "\n";
  out_.flush();
  if (!out_.good()) {
    return Status::Internal(StrCat("journal append failed: ", path_));
  }
  return Status::Ok();
}

Result<std::vector<JournalRecord>> CheckpointJournal::Load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open journal: ", path));
  }
  std::vector<JournalRecord> records;
  std::string line;
  int64_t line_number = 0;
  bool pending_error = false;
  std::string pending_message;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StrTrim(line).empty()) continue;
    if (pending_error) {
      // The bad line was NOT the trailing record: real corruption.
      return Status::DataLoss(pending_message);
    }
    Result<JournalRecord> record = DecodeJournalRecord(line);
    if (!record.ok()) {
      pending_error = true;
      pending_message = StrCat(path, ":", line_number, ": ",
                               record.status().message());
      continue;
    }
    records.push_back(std::move(record.value()));
  }
  if (pending_error) {
    EMAF_LOG(WARNING) << "checkpoint journal: dropping torn trailing "
                         "record (" << pending_message << ")";
  }
  return records;
}

}  // namespace emaf::core
