#include "core/report.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace emaf::core {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  EMAF_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  EMAF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::HighlightColumnMinima() {
  for (size_t col = 1; col < header_.size(); ++col) {
    double best = 0.0;
    size_t best_row = rows_.size();
    for (size_t r = 0; r < rows_.size(); ++r) {
      // Parse the numeric prefix (works for "0.845(0.432)" cells too).
      double v = 0.0;
      std::istringstream stream(rows_[r][col]);
      if (!(stream >> v)) continue;
      if (best_row == rows_.size() || v < best) {
        best = v;
        best_row = r;
      }
    }
    if (best_row < rows_.size()) rows_[best_row][col] += " *";
  }
}

void TablePrinter::Print(std::ostream& out) const { out << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      if (c == 0) {
        out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      } else {
        out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      }
      out << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + 4;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  out << StrJoin(header_, ",") << "\n";
  for (const auto& row : rows_) out << StrJoin(row, ",") << "\n";
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

std::string FormatMeanStd(const AggregateStats& stats, int digits) {
  return StrCat(FormatFixed(stats.mean, digits), "(",
                FormatFixed(stats.stddev, digits), ")");
}

TablePrinter GridReportTable(const GridResult& grid_result,
                             int64_t num_individuals) {
  std::vector<std::string> header = {"cell", "status", "retries",
                                     "mean_mse"};
  for (int64_t i = 0; i < num_individuals; ++i) {
    header.push_back(StrCat("mse_individual_", i));
  }
  TablePrinter table(std::move(header));
  for (const CellOutcome& cell : grid_result.cells) {
    std::vector<std::string> row;
    row.push_back(CellKey(cell.spec));
    row.push_back(StatusCodeName(cell.status.code()));
    row.push_back(StrCat(cell.retries));
    if (cell.status.ok()) {
      EMAF_CHECK_EQ(
          static_cast<int64_t>(cell.result.per_individual_mse.size()),
          num_individuals);
      row.push_back(FormatMeanStd(cell.result.stats));
      for (double mse : cell.result.per_individual_mse) {
        row.push_back(FormatExact(mse));
      }
    } else {
      // Failure row: structured, but numerically empty.
      row.push_back("");
      for (int64_t i = 0; i < num_individuals; ++i) row.push_back("");
    }
    table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace emaf::core
