#include "ts/window.h"

#include <cmath>

#include "common/check.h"

namespace emaf::ts {

using tensor::Shape;
using tensor::Tensor;

WindowDataset BuildWindows(const Tensor& data, int64_t input_length,
                           int64_t start, int64_t end, bool allow_context) {
  EMAF_CHECK_EQ(data.rank(), 2) << "expected [T, V]";
  EMAF_CHECK_GE(input_length, 1);
  int64_t rows = data.dim(0);
  int64_t cols = data.dim(1);
  EMAF_CHECK_GE(start, 0);
  EMAF_CHECK_LE(end, rows);

  // First target index: targets live in [start, end); each needs
  // `input_length` rows of history before it.
  int64_t first_target = allow_context ? std::max<int64_t>(start, input_length)
                                       : start + input_length;
  WindowDataset out;
  int64_t count = end - first_target;
  if (count <= 0) return out;

  out.inputs = Tensor::Zeros(Shape{count, input_length, cols});
  out.targets = Tensor::Zeros(Shape{count, cols});
  const double* d = data.data();
  double* in = out.inputs.data();
  double* tg = out.targets.data();
  for (int64_t b = 0; b < count; ++b) {
    int64_t target_row = first_target + b;
    for (int64_t l = 0; l < input_length; ++l) {
      int64_t row = target_row - input_length + l;
      for (int64_t v = 0; v < cols; ++v) {
        in[(b * input_length + l) * cols + v] = d[row * cols + v];
      }
    }
    for (int64_t v = 0; v < cols; ++v) {
      tg[b * cols + v] = d[target_row * cols + v];
    }
  }
  return out;
}

SlidingBuffer::SlidingBuffer(int64_t capacity, int64_t num_variables)
    : capacity_(capacity), num_variables_(num_variables) {
  EMAF_CHECK_GE(capacity, 1);
  EMAF_CHECK_GE(num_variables, 1);
  rows_.resize(static_cast<size_t>(capacity * num_variables));
}

void SlidingBuffer::Push(std::span<const double> row) {
  EMAF_CHECK_EQ(static_cast<int64_t>(row.size()), num_variables_)
      << "SlidingBuffer::Push row width mismatch";
  double* slot = rows_.data() + head_ * num_variables_;
  for (int64_t v = 0; v < num_variables_; ++v) {
    slot[v] = row[static_cast<size_t>(v)];
  }
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++total_pushed_;
}

Tensor SlidingBuffer::ToTensor() const {
  EMAF_CHECK_GT(size_, 0) << "SlidingBuffer::ToTensor on an empty buffer";
  Tensor out = Tensor::Zeros(Shape{size_, num_variables_});
  double* dst = out.data();
  // Oldest retained row: once the ring wrapped, it sits at head_ (the slot
  // the next push will reclaim); before that, at slot 0.
  int64_t oldest = size_ == capacity_ ? head_ : 0;
  for (int64_t r = 0; r < size_; ++r) {
    const double* src =
        rows_.data() + ((oldest + r) % capacity_) * num_variables_;
    for (int64_t v = 0; v < num_variables_; ++v) {
      dst[r * num_variables_ + v] = src[v];
    }
  }
  return out;
}

int64_t SequentialSplitIndex(int64_t num_rows, double train_fraction) {
  EMAF_CHECK_GT(num_rows, 0);
  EMAF_CHECK_GT(train_fraction, 0.0);
  EMAF_CHECK_LT(train_fraction, 1.0);
  int64_t split = static_cast<int64_t>(
      std::floor(static_cast<double>(num_rows) * train_fraction));
  if (split < 1) split = 1;
  if (split >= num_rows) split = num_rows - 1;
  return split;
}

}  // namespace emaf::ts
