#include "ts/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace emaf::ts {

double Mean(std::span<const double> values) {
  EMAF_CHECK(!values.empty());
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  EMAF_CHECK(!values.empty());
  double mu = Mean(values);
  double total = 0.0;
  for (double v : values) total += (v - mu) * (v - mu);
  return total / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::span<const double> values, double q) {
  EMAF_CHECK(!values.empty());
  EMAF_CHECK_GE(q, 0.0);
  EMAF_CHECK_LE(q, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(std::span<const double> values) { return Quantile(values, 0.5); }

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  EMAF_CHECK_EQ(a.size(), b.size());
  EMAF_CHECK(!a.empty());
  double mean_a = Mean(a);
  double mean_b = Mean(b);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double da = a[i] - mean_a;
    double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

BoxStats ComputeBoxStats(std::span<const double> values) {
  BoxStats stats;
  stats.min = Quantile(values, 0.0);
  stats.q1 = Quantile(values, 0.25);
  stats.median = Quantile(values, 0.5);
  stats.q3 = Quantile(values, 0.75);
  stats.max = Quantile(values, 1.0);
  stats.mean = Mean(values);
  return stats;
}

}  // namespace emaf::ts
