// Pointwise distance measures between equal-length series.

#ifndef EMAF_TS_DISTANCE_H_
#define EMAF_TS_DISTANCE_H_

#include <span>

namespace emaf::ts {

// L2 distance between two equal-length series.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

// Correlation distance: 1 - |pearson(a, b)|, in [0, 1].
double CorrelationDistance(std::span<const double> a,
                           std::span<const double> b);

}  // namespace emaf::ts

#endif  // EMAF_TS_DISTANCE_H_
