// Dynamic Time Warping distance.
//
// The paper uses DTW to build similarity graphs between EMA variables whose
// responses to events are not temporally synchronized (Section III-D).

#ifndef EMAF_TS_DTW_H_
#define EMAF_TS_DTW_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace emaf::ts {

struct DtwOptions {
  // Sakoe-Chiba band half-width; < 0 means unconstrained.
  int64_t window = -1;
};

// Classic DTW with squared pointwise cost; returns sqrt of the optimal
// cumulative cost so the result is comparable to Euclidean distance
// (DTW(a, a) == 0 and, for equal-length series, DTW <= Euclidean).
double DtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options = {});

// Optimal alignment path as (index_a, index_b) pairs, for inspection and
// tests.
std::vector<std::pair<int64_t, int64_t>> DtwPath(
    std::span<const double> a, std::span<const double> b,
    const DtwOptions& options = {});

}  // namespace emaf::ts

#endif  // EMAF_TS_DTW_H_
