#include "ts/distance.h"

#include <cmath>

#include "common/check.h"
#include "ts/stats.h"

namespace emaf::ts {

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  EMAF_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

double CorrelationDistance(std::span<const double> a,
                           std::span<const double> b) {
  return 1.0 - std::abs(PearsonCorrelation(a, b));
}

}  // namespace emaf::ts
