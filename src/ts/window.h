// Sliding-window dataset construction for 1-lag forecasting.
//
// Given an individual's [T, V] matrix and an input length L, windows pair
// inputs X_{t-L..t-1} (all V variables) with the 1-lag target X_t — the
// forecasting problem of Section III-B.

#ifndef EMAF_TS_WINDOW_H_
#define EMAF_TS_WINDOW_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace emaf::ts {

struct WindowDataset {
  // [B, L, V]: B windows of L consecutive time points.
  tensor::Tensor inputs;
  // [B, V]: the value at the step immediately after each window.
  tensor::Tensor targets;
  int64_t num_windows() const { return inputs.defined() ? inputs.dim(0) : 0; }
};

// Builds all windows from rows [start, end) of `data` ([T, V]). A window's
// input may begin before `start` only if `allow_context` (used for the test
// split so its first targets still get L steps of history).
WindowDataset BuildWindows(const tensor::Tensor& data, int64_t input_length,
                           int64_t start, int64_t end, bool allow_context);

// Sequential split: the first `train_fraction` of rows train, the rest test
// (paper: 70/30). Returns the first test row index.
int64_t SequentialSplitIndex(int64_t num_rows, double train_fraction);

}  // namespace emaf::ts

#endif  // EMAF_TS_WINDOW_H_
