// Sliding-window dataset construction for 1-lag forecasting.
//
// Given an individual's [T, V] matrix and an input length L, windows pair
// inputs X_{t-L..t-1} (all V variables) with the 1-lag target X_t — the
// forecasting problem of Section III-B.
//
// SlidingBuffer is the streaming counterpart: a fixed-capacity ring over
// the most recent rows of an unbounded observation stream, materializable
// as a [min(pushed, capacity), V] tensor in arrival order. The online
// subsystem (DESIGN.md, "Online ingestion & hot-swap") windows the
// observation log through it, so graph rebuilds and warm-start fine-tunes
// see exactly the last R observations — deterministically, since the
// materialized tensor is a pure function of the pushed row sequence.

#ifndef EMAF_TS_WINDOW_H_
#define EMAF_TS_WINDOW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::ts {

struct WindowDataset {
  // [B, L, V]: B windows of L consecutive time points.
  tensor::Tensor inputs;
  // [B, V]: the value at the step immediately after each window.
  tensor::Tensor targets;
  int64_t num_windows() const { return inputs.defined() ? inputs.dim(0) : 0; }
};

// Builds all windows from rows [start, end) of `data` ([T, V]). A window's
// input may begin before `start` only if `allow_context` (used for the test
// split so its first targets still get L steps of history).
WindowDataset BuildWindows(const tensor::Tensor& data, int64_t input_length,
                           int64_t start, int64_t end, bool allow_context);

// Sequential split: the first `train_fraction` of rows train, the rest test
// (paper: 70/30). Returns the first test row index.
int64_t SequentialSplitIndex(int64_t num_rows, double train_fraction);

// Fixed-capacity ring buffer over the most recent rows of a [*, V]
// observation stream. Push overwrites the oldest row once `capacity` rows
// are held; ToTensor materializes the retained rows oldest-first, so the
// result is exactly what BuildWindows would see over the stream's last
// min(total_pushed, capacity) rows. Value semantics, no locking: the
// online pipeline owns one buffer per individual.
class SlidingBuffer {
 public:
  SlidingBuffer(int64_t capacity, int64_t num_variables);

  int64_t capacity() const { return capacity_; }
  int64_t num_variables() const { return num_variables_; }
  // Rows currently retained (<= capacity).
  int64_t size() const { return size_; }
  // Rows pushed over the buffer's lifetime (>= size()).
  int64_t total_pushed() const { return total_pushed_; }

  // Appends one row; `row.size()` must equal num_variables().
  void Push(std::span<const double> row);

  // The retained rows as a [size(), V] tensor, oldest first. Checked
  // failure when empty (a zero-row tensor has no meaningful shape here).
  tensor::Tensor ToTensor() const;

 private:
  int64_t capacity_;
  int64_t num_variables_;
  int64_t size_ = 0;
  int64_t head_ = 0;  // slot the next Push writes
  int64_t total_pushed_ = 0;
  std::vector<double> rows_;  // row-major [capacity, V] ring storage
};

}  // namespace emaf::ts

#endif  // EMAF_TS_WINDOW_H_
