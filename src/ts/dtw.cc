#include "ts/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace emaf::ts {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fills the (n+1) x (m+1) cumulative cost matrix. Row/col 0 are boundary.
std::vector<double> CostMatrix(std::span<const double> a,
                               std::span<const double> b, int64_t window) {
  int64_t n = static_cast<int64_t>(a.size());
  int64_t m = static_cast<int64_t>(b.size());
  EMAF_CHECK_GT(n, 0);
  EMAF_CHECK_GT(m, 0);
  if (window >= 0) {
    // The band must be at least as wide as the length difference, or no
    // path exists.
    window = std::max<int64_t>(window, n > m ? n - m : m - n);
  }
  std::vector<double> cost(static_cast<size_t>((n + 1) * (m + 1)), kInf);
  auto at = [m](int64_t i, int64_t j) -> int64_t { return i * (m + 1) + j; };
  cost[at(0, 0)] = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    int64_t j_lo = 1;
    int64_t j_hi = m;
    if (window >= 0) {
      j_lo = std::max<int64_t>(1, i - window);
      j_hi = std::min<int64_t>(m, i + window);
    }
    for (int64_t j = j_lo; j <= j_hi; ++j) {
      double d = a[i - 1] - b[j - 1];
      double best = std::min({cost[at(i - 1, j)], cost[at(i, j - 1)],
                              cost[at(i - 1, j - 1)]});
      cost[at(i, j)] = d * d + best;
    }
  }
  return cost;
}

}  // namespace

double DtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options) {
  std::vector<double> cost = CostMatrix(a, b, options.window);
  int64_t n = static_cast<int64_t>(a.size());
  int64_t m = static_cast<int64_t>(b.size());
  double final_cost = cost[static_cast<size_t>(n * (m + 1) + m)];
  EMAF_CHECK(final_cost != kInf) << "DTW band too narrow for series lengths";
  return std::sqrt(final_cost);
}

std::vector<std::pair<int64_t, int64_t>> DtwPath(std::span<const double> a,
                                                 std::span<const double> b,
                                                 const DtwOptions& options) {
  std::vector<double> cost = CostMatrix(a, b, options.window);
  int64_t n = static_cast<int64_t>(a.size());
  int64_t m = static_cast<int64_t>(b.size());
  auto at = [m](int64_t i, int64_t j) -> int64_t { return i * (m + 1) + j; };

  std::vector<std::pair<int64_t, int64_t>> path;
  int64_t i = n;
  int64_t j = m;
  EMAF_CHECK(cost[at(i, j)] != kInf) << "DTW band too narrow";
  while (i > 0 && j > 0) {
    path.emplace_back(i - 1, j - 1);
    double diag = cost[at(i - 1, j - 1)];
    double up = cost[at(i - 1, j)];
    double left = cost[at(i, j - 1)];
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace emaf::ts
