// Per-variable z-score normalization of [T, V] data matrices — the
// preprocessing the paper applies to each individual's Likert ratings.

#ifndef EMAF_TS_NORMALIZE_H_
#define EMAF_TS_NORMALIZE_H_

#include <vector>

#include "tensor/tensor.h"

namespace emaf::ts {

struct NormalizationStats {
  std::vector<double> mean;    // per variable
  std::vector<double> stddev;  // per variable; constant columns get 1.0
};

// Z-scores each column of `data` ([T, V], time-major). Returns the stats
// needed to invert the transform.
NormalizationStats ZScoreColumns(tensor::Tensor* data);

// Applies the inverse transform: x * stddev + mean, per column.
void InverseZScoreColumns(tensor::Tensor* data,
                          const NormalizationStats& stats);

}  // namespace emaf::ts

#endif  // EMAF_TS_NORMALIZE_H_
