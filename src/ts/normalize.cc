#include "ts/normalize.h"

#include <cmath>

#include "common/check.h"

namespace emaf::ts {

NormalizationStats ZScoreColumns(tensor::Tensor* data) {
  EMAF_CHECK(data != nullptr);
  EMAF_CHECK_EQ(data->rank(), 2) << "expected [T, V]";
  int64_t rows = data->dim(0);
  int64_t cols = data->dim(1);
  EMAF_CHECK_GT(rows, 0);
  NormalizationStats stats;
  stats.mean.resize(static_cast<size_t>(cols));
  stats.stddev.resize(static_cast<size_t>(cols));
  double* d = data->data();
  for (int64_t v = 0; v < cols; ++v) {
    double mu = 0.0;
    for (int64_t t = 0; t < rows; ++t) mu += d[t * cols + v];
    mu /= static_cast<double>(rows);
    double var = 0.0;
    for (int64_t t = 0; t < rows; ++t) {
      double c = d[t * cols + v] - mu;
      var += c * c;
    }
    var /= static_cast<double>(rows);
    double sd = std::sqrt(var);
    if (sd == 0.0) sd = 1.0;  // constant column: centre only
    stats.mean[static_cast<size_t>(v)] = mu;
    stats.stddev[static_cast<size_t>(v)] = sd;
    for (int64_t t = 0; t < rows; ++t) {
      d[t * cols + v] = (d[t * cols + v] - mu) / sd;
    }
  }
  return stats;
}

void InverseZScoreColumns(tensor::Tensor* data,
                          const NormalizationStats& stats) {
  EMAF_CHECK(data != nullptr);
  EMAF_CHECK_EQ(data->rank(), 2);
  int64_t rows = data->dim(0);
  int64_t cols = data->dim(1);
  EMAF_CHECK_EQ(static_cast<size_t>(cols), stats.mean.size());
  double* d = data->data();
  for (int64_t v = 0; v < cols; ++v) {
    double mu = stats.mean[static_cast<size_t>(v)];
    double sd = stats.stddev[static_cast<size_t>(v)];
    for (int64_t t = 0; t < rows; ++t) {
      d[t * cols + v] = d[t * cols + v] * sd + mu;
    }
  }
}

}  // namespace emaf::ts
