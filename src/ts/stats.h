// Summary statistics over scalar series.

#ifndef EMAF_TS_STATS_H_
#define EMAF_TS_STATS_H_

#include <span>
#include <vector>

namespace emaf::ts {

double Mean(std::span<const double> values);
// Population variance (divides by n); Variance of < 1 sample CHECK-fails.
double Variance(std::span<const double> values);
double StdDev(std::span<const double> values);

// Linear-interpolation quantile, q in [0, 1].
double Quantile(std::span<const double> values, double q);
double Median(std::span<const double> values);

// Pearson correlation coefficient; returns 0 when either side is constant.
double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b);

// Five-number summary plus the mean (used for the Fig. 3 boxplots).
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};
BoxStats ComputeBoxStats(std::span<const double> values);

}  // namespace emaf::ts

#endif  // EMAF_TS_STATS_H_
