#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace emaf::nn {

tensor::Tensor XavierUniform(const tensor::Shape& shape, int64_t fan_in,
                             int64_t fan_out, Rng* rng) {
  EMAF_CHECK_GT(fan_in + fan_out, 0);
  double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return tensor::Tensor::Uniform(shape, -a, a, rng);
}

tensor::Tensor KaimingUniform(const tensor::Shape& shape, int64_t fan_in,
                              Rng* rng) {
  EMAF_CHECK_GT(fan_in, 0);
  double a = std::sqrt(6.0 / static_cast<double>(fan_in));
  return tensor::Tensor::Uniform(shape, -a, a, rng);
}

tensor::Tensor FanInUniform(const tensor::Shape& shape, int64_t fan_in,
                            Rng* rng) {
  EMAF_CHECK_GT(fan_in, 0);
  double k = 1.0 / std::sqrt(static_cast<double>(fan_in));
  return tensor::Tensor::Uniform(shape, -k, k, rng);
}

}  // namespace emaf::nn
