#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace emaf::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias, Rng* rng)
    : in_features_(in_features), out_features_(out_features) {
  EMAF_CHECK_GT(in_features, 0);
  EMAF_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight",
      FanInUniform(tensor::Shape{in_features, out_features}, in_features, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", FanInUniform(tensor::Shape{out_features}, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& x) {
  EMAF_CHECK_GE(x.rank(), 2);
  EMAF_CHECK_EQ(x.dim(-1), in_features_);
  Tensor out = tensor::MatMul(x, *weight_);
  if (bias_ != nullptr) out = tensor::Add(out, *bias_);
  return out;
}

}  // namespace emaf::nn
