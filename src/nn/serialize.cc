#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "common/string_util.h"

namespace emaf::nn {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'A', 'F'};
constexpr uint32_t kVersionNoConfig = kSnapshotVersionParamsOnly;
constexpr uint32_t kVersionWithConfig = kSnapshotVersionWithConfig;
constexpr uint32_t kVersionWithDtype = kSnapshotVersionWithDtype;
// Config blobs are small text (a ModelConfig is well under a kilobyte even
// with an embedded adjacency for V ~ 100); anything larger is corruption.
constexpr uint64_t kMaxConfigBytes = 64ULL << 20;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ofstream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadI64(std::ifstream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

// Reads magic + version and, for v2+, the config blob (into `config` when
// non-null, skipped otherwise). Leaves `in` positioned at the parameter
// count and reports the version via `version_out` when non-null.
Status ReadHeader(std::ifstream& in, const std::string& path,
                  std::string* config, uint32_t* version_out = nullptr) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument(StrCat("bad checkpoint magic in ", path));
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version < kVersionNoConfig ||
      version > kVersionWithDtype) {
    return Status::InvalidArgument(
        StrCat("unsupported checkpoint version in ", path));
  }
  if (version_out != nullptr) *version_out = version;
  if (version >= kVersionWithConfig) {
    uint64_t config_len = 0;
    if (!ReadU64(in, &config_len) || config_len > kMaxConfigBytes) {
      return Status::InvalidArgument(StrCat("corrupt checkpoint: ", path));
    }
    if (config != nullptr) {
      config->assign(config_len, '\0');
      in.read(config->data(), static_cast<std::streamsize>(config_len));
    } else {
      in.ignore(static_cast<std::streamsize>(config_len));
    }
    if (!in.good()) {
      return Status::InvalidArgument(StrCat("truncated checkpoint: ", path));
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(Module* module, const std::string& path) {
  return SaveParameters(module, path, std::string_view());
}

Status SaveParameters(Module* module, const std::string& path,
                      std::string_view config) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  std::vector<NamedParameter> params = module->NamedParameters();
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersionWithDtype);
  WriteU64(out, config.size());
  out.write(config.data(), static_cast<std::streamsize>(config.size()));
  WriteU64(out, params.size());
  for (const NamedParameter& p : params) {
    WriteU64(out, p.name.size());
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    const uint8_t dtype_byte = static_cast<uint8_t>(p.value->dtype());
    out.write(reinterpret_cast<const char*>(&dtype_byte), 1);
    const tensor::Shape& shape = p.value->shape();
    WriteU64(out, static_cast<uint64_t>(shape.rank()));
    for (int64_t d : shape.dims()) WriteI64(out, d);
    out.write(reinterpret_cast<const char*>(p.value->raw_data()),
              static_cast<std::streamsize>(p.value->byte_size()));
  }
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open for reading: ", path));
  }
  uint32_t version = 0;
  EMAF_RETURN_IF_ERROR(ReadHeader(in, path, /*config=*/nullptr, &version));
  uint64_t count = 0;
  if (!ReadU64(in, &count)) {
    return Status::InvalidArgument(StrCat("truncated checkpoint: ", path));
  }

  std::map<std::string, tensor::Tensor*> by_name;
  for (const NamedParameter& p : module->NamedParameters()) {
    by_name[p.name] = p.value;
  }
  if (count != by_name.size()) {
    return Status::InvalidArgument(
        StrCat("checkpoint has ", count, " parameters, module has ",
               by_name.size()));
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    if (!ReadU64(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument(StrCat("corrupt checkpoint: ", path));
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in.good()) {
      return Status::InvalidArgument(StrCat("corrupt checkpoint: ", path));
    }
    // v1/v2 predate per-parameter dtypes: every payload is f64.
    tensor::DType file_dtype = tensor::DType::kF64;
    if (version >= kVersionWithDtype) {
      uint8_t dtype_byte = 0;
      in.read(reinterpret_cast<char*>(&dtype_byte), 1);
      if (!in.good() || !tensor::IsValidDType(dtype_byte)) {
        return Status::InvalidArgument(
            StrCat("corrupt checkpoint: invalid dtype byte ",
                   static_cast<int>(dtype_byte), " for parameter ", name,
                   " in ", path));
      }
      file_dtype = static_cast<tensor::DType>(dtype_byte);
    }
    uint64_t rank = 0;
    if (!ReadU64(in, &rank) || rank > 16) {
      return Status::InvalidArgument(StrCat("corrupt checkpoint: ", path));
    }
    std::vector<int64_t> dims(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      if (!ReadI64(in, &dims[d])) {
        return Status::InvalidArgument(StrCat("corrupt checkpoint: ", path));
      }
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument(
          StrCat("checkpoint parameter not in module: ", name));
    }
    tensor::Shape file_shape{std::vector<int64_t>(dims)};
    if (file_shape != it->second->shape()) {
      return Status::InvalidArgument(
          StrCat("shape mismatch for ", name, ": checkpoint ",
                 file_shape.ToString(), " vs module ",
                 it->second->shape().ToString()));
    }
    tensor::Tensor* param = it->second;
    if (file_dtype == param->dtype()) {
      in.read(reinterpret_cast<char*>(param->raw_data()),
              static_cast<std::streamsize>(param->byte_size()));
    } else {
      // Payload dtype differs from the receiving parameter's: stage the
      // payload and convert element-wise into the existing storage (the
      // registered Tensor* must stay stable).
      tensor::Tensor staged = tensor::MakeUninitialized(file_shape, file_dtype);
      in.read(reinterpret_cast<char*>(staged.raw_data()),
              static_cast<std::streamsize>(staged.byte_size()));
      if (in.good()) {
        tensor::Tensor cast = staged.CastTo(param->dtype());
        std::memcpy(param->raw_data(), cast.raw_data(),
                    static_cast<size_t>(param->byte_size()));
      }
    }
    if (!in.good()) {
      return Status::InvalidArgument(StrCat("truncated checkpoint: ", path));
    }
  }
  return Status::Ok();
}

Result<std::string> ReadSnapshotConfig(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open for reading: ", path));
  }
  std::string config;
  EMAF_RETURN_IF_ERROR(ReadHeader(in, path, &config));
  return config;
}

Result<uint32_t> ReadSnapshotVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open for reading: ", path));
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::string(magic, 4) != std::string(kMagic, 4)) {
    return Status::InvalidArgument(StrCat("bad checkpoint magic in ", path));
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version < kVersionNoConfig ||
      version > kVersionWithDtype) {
    return Status::InvalidArgument(
        StrCat("unsupported checkpoint version in ", path));
  }
  return version;
}

}  // namespace emaf::nn
