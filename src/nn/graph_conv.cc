#include "nn/graph_conv.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace emaf::nn {

using tensor::Shape;
using tensor::Tensor;

GcnConv::GcnConv(Tensor normalized_adjacency, int64_t in_features,
                 int64_t out_features, Rng* rng)
    : a_hat_(std::move(normalized_adjacency)),
      in_features_(in_features),
      out_features_(out_features) {
  EMAF_CHECK_EQ(a_hat_.rank(), 2);
  EMAF_CHECK_EQ(a_hat_.dim(0), a_hat_.dim(1));
  weight_ = RegisterParameter(
      "weight", XavierUniform(Shape{in_features, out_features}, in_features,
                              out_features, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
}

Tensor GcnConv::Forward(const Tensor& x) {
  EMAF_CHECK_GE(x.rank(), 2);
  EMAF_CHECK_EQ(x.dim(-2), num_nodes());
  EMAF_CHECK_EQ(x.dim(-1), in_features_);
  Tensor propagated = tensor::MatMul(a_hat_, x);  // [..., V, in]
  return tensor::Add(tensor::MatMul(propagated, *weight_), *bias_);
}

ChebConv::ChebConv(std::vector<Tensor> polynomials, int64_t in_features,
                   int64_t out_features, Rng* rng)
    : polynomials_(std::move(polynomials)),
      in_features_(in_features),
      out_features_(out_features) {
  EMAF_CHECK(!polynomials_.empty());
  for (const Tensor& t : polynomials_) {
    EMAF_CHECK_EQ(t.rank(), 2);
    EMAF_CHECK_EQ(t.dim(0), polynomials_[0].dim(0));
    EMAF_CHECK_EQ(t.dim(1), polynomials_[0].dim(0));
  }
  int64_t k = static_cast<int64_t>(polynomials_.size());
  weight_ = RegisterParameter(
      "weight", XavierUniform(Shape{k, in_features, out_features},
                              k * in_features, out_features, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
}

Tensor ChebConv::Forward(const Tensor& x, const Tensor& attention) {
  EMAF_CHECK_EQ(x.rank(), 3) << "ChebConv expects [B, V, in]";
  EMAF_CHECK_EQ(x.dim(2), in_features_);
  Tensor out;
  for (int64_t k = 0; k < order(); ++k) {
    Tensor operator_k = polynomials_[static_cast<size_t>(k)];
    Tensor propagated;
    if (attention.defined()) {
      // Elementwise modulation by the spatial attention scores (ASTGCN).
      Tensor modulated = tensor::Mul(operator_k, attention);  // [B, V, V]
      propagated = tensor::MatMul(modulated, x);
    } else {
      propagated = tensor::MatMul(operator_k, x);
    }
    Tensor w_k = tensor::Select(*weight_, 0, k);  // [in, out]
    Tensor term = tensor::MatMul(propagated, w_k);
    out = out.defined() ? tensor::Add(out, term) : term;
  }
  return tensor::Add(out, *bias_);
}

MixProp::MixProp(int64_t in_channels, int64_t out_channels, int64_t depth,
                 double beta, Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      depth_(depth),
      beta_(beta) {
  EMAF_CHECK_GE(depth, 1);
  EMAF_CHECK_GE(beta, 0.0);
  EMAF_CHECK_LE(beta, 1.0);
  int64_t concat = (depth + 1) * in_channels;
  weight_ = RegisterParameter(
      "weight",
      XavierUniform(Shape{concat, out_channels}, concat, out_channels, rng));
}

Tensor MixProp::Forward(const Tensor& x, const Tensor& adjacency_norm) {
  EMAF_CHECK_EQ(x.rank(), 4) << "MixProp expects [B, C, V, T]";
  EMAF_CHECK_EQ(x.dim(1), in_channels_);
  EMAF_CHECK_EQ(adjacency_norm.rank(), 2);
  EMAF_CHECK_EQ(adjacency_norm.dim(0), x.dim(2));

  // Hop over nodes: out[b,c,v,t] = sum_w A[v,w] x[b,c,w,t].
  Tensor a_t = tensor::TransposeLast2(adjacency_norm);
  auto hop = [&](const Tensor& h) {
    Tensor perm = tensor::Permute(h, {0, 1, 3, 2});       // [B, C, T, V]
    Tensor mixed = tensor::MatMul(perm, a_t);             // [B, C, T, V]
    return tensor::Permute(mixed, {0, 1, 3, 2});          // [B, C, V, T]
  };

  std::vector<Tensor> hops;
  hops.reserve(static_cast<size_t>(depth_) + 1);
  hops.push_back(x);
  Tensor h = x;
  for (int64_t k = 0; k < depth_; ++k) {
    h = tensor::Add(tensor::MulScalar(x, beta_),
                    tensor::MulScalar(hop(h), 1.0 - beta_));
    hops.push_back(h);
  }
  Tensor concat = tensor::Cat(hops, 1);  // [B, (K+1)C, V, T]
  // 1x1 channel mixing via channels-last matmul.
  Tensor last = tensor::Permute(concat, {0, 2, 3, 1});  // [B, V, T, (K+1)C]
  Tensor mixed = tensor::MatMul(last, *weight_);        // [B, V, T, out]
  return tensor::Permute(mixed, {0, 3, 1, 2});          // [B, out, V, T]
}

}  // namespace emaf::nn
