// Graph convolution layers.
//
// The graph operator (symmetric-normalized adjacency, Chebyshev polynomial
// stack) is supplied as constant tensors at construction — produced by
// emaf::graph::Spectral* helpers — so these layers stay independent of the
// graph-construction subsystem.

#ifndef EMAF_NN_GRAPH_CONV_H_
#define EMAF_NN_GRAPH_CONV_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"

namespace emaf::nn {

// First-order GCN layer (Kipf & Welling): y = A_hat x W + b, with
// A_hat = D^-1/2 (A + I) D^-1/2 precomputed by the caller.
class GcnConv : public Module {
 public:
  GcnConv(Tensor normalized_adjacency, int64_t in_features,
          int64_t out_features, Rng* rng);

  // x: [..., V, in] -> [..., V, out].
  Tensor Forward(const Tensor& x);

  int64_t num_nodes() const { return a_hat_.dim(0); }

 protected:
  void CastBuffersTo(tensor::DType dtype) override {
    a_hat_ = a_hat_.CastTo(dtype);
  }

 private:
  Tensor a_hat_;  // [V, V], constant
  int64_t in_features_;
  int64_t out_features_;
  Tensor* weight_;
  Tensor* bias_;
};

// K-order Chebyshev graph convolution (Defferrard et al.):
//   y = sum_k T_k(L_scaled) x W_k + b,
// where the polynomial stack {T_k} is precomputed. Optionally each T_k is
// modulated elementwise by a (batched) spatial attention matrix, as in
// ASTGCN.
class ChebConv : public Module {
 public:
  // `polynomials`: K tensors of shape [V, V].
  ChebConv(std::vector<Tensor> polynomials, int64_t in_features,
           int64_t out_features, Rng* rng);

  // x: [B, V, in]; attention (optional): [B, V, V] -> [B, V, out].
  Tensor Forward(const Tensor& x, const Tensor& attention = Tensor());

  int64_t order() const { return static_cast<int64_t>(polynomials_.size()); }

 protected:
  void CastBuffersTo(tensor::DType dtype) override {
    for (Tensor& t : polynomials_) t = t.CastTo(dtype);
  }

 private:
  std::vector<Tensor> polynomials_;  // constants
  int64_t in_features_;
  int64_t out_features_;
  Tensor* weight_;  // [K, in, out]
  Tensor* bias_;    // [out]
};

// MTGNN mix-hop propagation (Wu et al. 2020):
//   H_0 = x;  H_k = beta * x + (1 - beta) * A_norm H_{k-1};
//   y = concat(H_0..H_K) W.
// The adjacency is supplied per call so the layer works with both static
// and freshly-learned graphs.
class MixProp : public Module {
 public:
  MixProp(int64_t in_channels, int64_t out_channels, int64_t depth,
          double beta, Rng* rng);

  // x: [B, C, V, T]; adjacency_norm: [V, V] (row-normalized, may track
  // gradients when produced by a graph-learning module).
  Tensor Forward(const Tensor& x, const Tensor& adjacency_norm);

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t depth_;
  double beta_;
  Tensor* weight_;  // [(depth+1) * in, out] applied on channel axis
};

}  // namespace emaf::nn

#endif  // EMAF_NN_GRAPH_CONV_H_
