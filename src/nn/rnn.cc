#include "nn/rnn.h"

#include <memory>
#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace emaf::nn {

using tensor::Shape;
using tensor::Tensor;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  input_gates_ = RegisterModule(
      "input_gates",
      std::make_unique<Linear>(input_size, 3 * hidden_size, /*bias=*/true, rng));
  hidden_gates_ = RegisterModule(
      "hidden_gates",
      std::make_unique<Linear>(hidden_size, 3 * hidden_size, /*bias=*/true, rng));
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) {
  EMAF_CHECK_EQ(h.dim(-1), hidden_size_);
  Tensor gx = input_gates_->Forward(x);   // [B, 3H]
  Tensor gh = hidden_gates_->Forward(h);  // [B, 3H]
  int64_t H = hidden_size_;
  Tensor r = tensor::Sigmoid(
      tensor::Add(tensor::Slice(gx, -1, 0, H), tensor::Slice(gh, -1, 0, H)));
  Tensor z = tensor::Sigmoid(tensor::Add(tensor::Slice(gx, -1, H, 2 * H),
                                         tensor::Slice(gh, -1, H, 2 * H)));
  Tensor n = tensor::Tanh(
      tensor::Add(tensor::Slice(gx, -1, 2 * H, 3 * H),
                  tensor::Mul(r, tensor::Slice(gh, -1, 2 * H, 3 * H))));
  // h' = (1 - z) * n + z * h
  return tensor::Add(tensor::Mul(tensor::AddScalar(tensor::Neg(z), 1.0), n),
                     tensor::Mul(z, h));
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng)
    : hidden_size_(hidden_size) {
  input_gates_ = RegisterModule(
      "input_gates",
      std::make_unique<Linear>(input_size, 4 * hidden_size, /*bias=*/true, rng));
  hidden_gates_ = RegisterModule(
      "hidden_gates",
      std::make_unique<Linear>(hidden_size, 4 * hidden_size, /*bias=*/true, rng));
  // Forget-gate bias starts at 1 so early training does not wash out state.
  tensor::Scalar* bias = input_gates_->bias()->data();
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) bias[i] = 1.0;
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& state) {
  Tensor gates =
      tensor::Add(input_gates_->Forward(x), hidden_gates_->Forward(state.h));
  int64_t H = hidden_size_;
  Tensor i = tensor::Sigmoid(tensor::Slice(gates, -1, 0, H));
  Tensor f = tensor::Sigmoid(tensor::Slice(gates, -1, H, 2 * H));
  Tensor g = tensor::Tanh(tensor::Slice(gates, -1, 2 * H, 3 * H));
  Tensor o = tensor::Sigmoid(tensor::Slice(gates, -1, 3 * H, 4 * H));
  Tensor c = tensor::Add(tensor::Mul(f, state.c), tensor::Mul(i, g));
  Tensor h = tensor::Mul(o, tensor::Tanh(c));
  return {h, c};
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, Rng* rng)
    : input_size_(input_size) {
  cell_ = RegisterModule("cell",
                         std::make_unique<LstmCell>(input_size, hidden_size, rng));
}

Tensor Lstm::Forward(const Tensor& sequence) {
  EMAF_CHECK_EQ(sequence.rank(), 3) << "Lstm expects [B, L, input]";
  EMAF_CHECK_EQ(sequence.dim(2), input_size_);
  int64_t batch = sequence.dim(0);
  int64_t steps = sequence.dim(1);
  // Initial state follows the sequence's element type so an f32 model
  // never mixes dtypes mid-forward.
  LstmCell::State state{
      Tensor::Zeros(Shape{batch, cell_->hidden_size()}, sequence.dtype()),
      Tensor::Zeros(Shape{batch, cell_->hidden_size()}, sequence.dtype()),
  };
  std::vector<Tensor> outputs;
  outputs.reserve(steps);
  for (int64_t t = 0; t < steps; ++t) {
    Tensor xt = tensor::Select(sequence, 1, t);  // [B, input]
    state = cell_->Forward(xt, state);
    outputs.push_back(state.h);
  }
  return tensor::Stack(outputs, 1);  // [B, L, H]
}

Tensor Lstm::ForwardLast(const Tensor& sequence) {
  Tensor all = Forward(sequence);
  return tensor::Select(all, 1, all.dim(1) - 1);
}

}  // namespace emaf::nn
