// Layer normalization over the trailing axes.

#ifndef EMAF_NN_LAYER_NORM_H_
#define EMAF_NN_LAYER_NORM_H_

#include <vector>

#include "nn/module.h"

namespace emaf::nn {

class LayerNorm : public Module {
 public:
  // Normalizes over the last `normalized_shape.size()` axes, which must
  // match `normalized_shape` exactly; gain and bias have that shape.
  explicit LayerNorm(std::vector<int64_t> normalized_shape,
                     double epsilon = 1e-5);

  Tensor Forward(const Tensor& x);

 private:
  std::vector<int64_t> normalized_shape_;
  double epsilon_;
  Tensor* gain_;
  Tensor* bias_;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_LAYER_NORM_H_
