// Spatial and temporal attention blocks from ASTGCN (Guo et al. 2019).
//
// Both operate on block inputs of shape [B, V, F, T] (batch, nodes,
// features, time) and return normalized attention score matrices.

#ifndef EMAF_NN_ATTENTION_H_
#define EMAF_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/module.h"

namespace emaf::nn {

// S = softmax( Vs * sigmoid( ((X W1) W2) (W3 X)^T + bs ) ): [B, V, V].
class SpatialAttention : public Module {
 public:
  SpatialAttention(int64_t num_nodes, int64_t in_features, int64_t num_steps,
                   Rng* rng);

  Tensor Forward(const Tensor& x);

 private:
  int64_t num_nodes_;
  int64_t in_features_;
  int64_t num_steps_;
  Tensor* w1_;  // [T]
  Tensor* w2_;  // [F, T]
  Tensor* w3_;  // [F]
  Tensor* bs_;  // [V, V]
  Tensor* vs_;  // [V, V]
};

// E = softmax( Ve * sigmoid( ((X^T U1) U2) (U3 X) + be ) ): [B, T, T].
class TemporalAttention : public Module {
 public:
  TemporalAttention(int64_t num_nodes, int64_t in_features, int64_t num_steps,
                    Rng* rng);

  Tensor Forward(const Tensor& x);

 private:
  int64_t num_nodes_;
  int64_t in_features_;
  int64_t num_steps_;
  Tensor* u1_;  // [V]
  Tensor* u2_;  // [F, V]
  Tensor* u3_;  // [F]
  Tensor* be_;  // [T, T]
  Tensor* ve_;  // [T, T]
};

}  // namespace emaf::nn

#endif  // EMAF_NN_ATTENTION_H_
