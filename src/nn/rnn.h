// Recurrent cells and a multi-step LSTM.

#ifndef EMAF_NN_RNN_H_
#define EMAF_NN_RNN_H_

#include <utility>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace emaf::nn {

// Gated recurrent unit cell (Cho et al. 2014).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  // x: [B, input_size], h: [B, hidden_size] -> new h.
  Tensor Forward(const Tensor& x, const Tensor& h);

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear* input_gates_;   // x -> [r | z | n], 3H
  Linear* hidden_gates_;  // h -> [r | z | n], 3H
};

// LSTM cell (no peepholes; forget-gate bias initialized to 1).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng* rng);

  struct State {
    Tensor h;
    Tensor c;
  };

  // x: [B, input_size] -> updated state.
  State Forward(const Tensor& x, const State& state);

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t hidden_size_;
  Linear* input_gates_;   // x -> [i | f | g | o], 4H
  Linear* hidden_gates_;  // h -> [i | f | g | o], 4H
};

// Unrolled single-layer LSTM over a [B, L, input] sequence.
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, Rng* rng);

  // Returns all hidden states stacked: [B, L, hidden].
  Tensor Forward(const Tensor& sequence);
  // Returns only the last hidden state: [B, hidden].
  Tensor ForwardLast(const Tensor& sequence);

  int64_t hidden_size() const { return cell_->hidden_size(); }

 private:
  int64_t input_size_;
  LstmCell* cell_;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_RNN_H_
