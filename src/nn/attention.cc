#include "nn/attention.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace emaf::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

// Contracts the trailing axis of `x` with vector `v`: [..., D] x [D] -> [...].
Tensor ContractLast(const Tensor& x, const Tensor& v) {
  Tensor col = tensor::Reshape(v, Shape{v.dim(0), 1});
  Tensor out = tensor::MatMul(x, col);  // [..., 1]
  return tensor::Squeeze(out, out.rank() - 1);
}

}  // namespace

SpatialAttention::SpatialAttention(int64_t num_nodes, int64_t in_features,
                                   int64_t num_steps, Rng* rng)
    : num_nodes_(num_nodes),
      in_features_(in_features),
      num_steps_(num_steps) {
  w1_ = RegisterParameter("w1",
                          XavierUniform(Shape{num_steps}, num_steps, 1, rng));
  w2_ = RegisterParameter(
      "w2",
      XavierUniform(Shape{in_features, num_steps}, in_features, num_steps, rng));
  w3_ = RegisterParameter(
      "w3", XavierUniform(Shape{in_features}, in_features, 1, rng));
  bs_ = RegisterParameter("bs", Tensor::Zeros(Shape{num_nodes, num_nodes}));
  vs_ = RegisterParameter(
      "vs",
      XavierUniform(Shape{num_nodes, num_nodes}, num_nodes, num_nodes, rng));
}

Tensor SpatialAttention::Forward(const Tensor& x) {
  EMAF_CHECK_EQ(x.rank(), 4) << "SpatialAttention expects [B, V, F, T]";
  EMAF_CHECK_EQ(x.dim(1), num_nodes_);
  EMAF_CHECK_EQ(x.dim(2), in_features_);
  EMAF_CHECK_EQ(x.dim(3), num_steps_);

  // lhs = (X w1) W2: [B, V, F] x [F, T] -> [B, V, T].
  Tensor xw1 = ContractLast(x, *w1_);            // [B, V, F]
  Tensor lhs = tensor::MatMul(xw1, *w2_);        // [B, V, T]
  // rhs = (w3 X)^T: contract F -> [B, V, T] -> transpose -> [B, T, V].
  Tensor xt = tensor::Permute(x, {0, 1, 3, 2});  // [B, V, T, F]
  Tensor rhs = ContractLast(xt, *w3_);           // [B, V, T]
  rhs = tensor::TransposeLast2(rhs);             // [B, T, V]

  Tensor product = tensor::MatMul(lhs, rhs);     // [B, V, V]
  Tensor scores =
      tensor::MatMul(*vs_, tensor::Sigmoid(tensor::Add(product, *bs_)));
  // Normalize over the first node axis, as in the reference implementation.
  return tensor::Softmax(scores, 1);
}

TemporalAttention::TemporalAttention(int64_t num_nodes, int64_t in_features,
                                     int64_t num_steps, Rng* rng)
    : num_nodes_(num_nodes),
      in_features_(in_features),
      num_steps_(num_steps) {
  u1_ = RegisterParameter("u1",
                          XavierUniform(Shape{num_nodes}, num_nodes, 1, rng));
  u2_ = RegisterParameter(
      "u2",
      XavierUniform(Shape{in_features, num_nodes}, in_features, num_nodes, rng));
  u3_ = RegisterParameter(
      "u3", XavierUniform(Shape{in_features}, in_features, 1, rng));
  be_ = RegisterParameter("be", Tensor::Zeros(Shape{num_steps, num_steps}));
  ve_ = RegisterParameter(
      "ve",
      XavierUniform(Shape{num_steps, num_steps}, num_steps, num_steps, rng));
}

Tensor TemporalAttention::Forward(const Tensor& x) {
  EMAF_CHECK_EQ(x.rank(), 4) << "TemporalAttention expects [B, V, F, T]";
  EMAF_CHECK_EQ(x.dim(1), num_nodes_);
  EMAF_CHECK_EQ(x.dim(2), in_features_);
  EMAF_CHECK_EQ(x.dim(3), num_steps_);

  // lhs = ((X^T u1) U2): X^T = [B, T, F, V]; contract V -> [B, T, F];
  // then x U2 [F, V] -> [B, T, V].
  Tensor xperm = tensor::Permute(x, {0, 3, 2, 1});  // [B, T, F, V]
  Tensor xu1 = ContractLast(xperm, *u1_);           // [B, T, F]
  Tensor lhs = tensor::MatMul(xu1, *u2_);           // [B, T, V]
  // rhs = u3 X: contract F -> [B, V, T].
  Tensor xt = tensor::Permute(x, {0, 1, 3, 2});     // [B, V, T, F]
  Tensor rhs = ContractLast(xt, *u3_);              // [B, V, T]

  Tensor product = tensor::MatMul(lhs, rhs);        // [B, T, T]
  Tensor scores =
      tensor::MatMul(*ve_, tensor::Sigmoid(tensor::Add(product, *be_)));
  return tensor::Softmax(scores, 1);
}

}  // namespace emaf::nn
