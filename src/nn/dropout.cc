#include "nn/dropout.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace emaf::nn {

Dropout::Dropout(double p, Rng* rng) : p_(p), rng_(rng->Fork(0x64726f70)) {
  EMAF_CHECK_GE(p, 0.0);
  EMAF_CHECK_LT(p, 1.0);
}

Tensor Dropout::Forward(const Tensor& x) {
  return tensor::Dropout(x, p_, training(), &rng_);
}

}  // namespace emaf::nn
