// First-order optimizers operating on leaf parameter tensors.
//
// Step() reads each parameter's accumulated .grad and updates the parameter
// storage in place (outside the autodiff tape). Parameters without a
// gradient are skipped.

#ifndef EMAF_NN_OPTIMIZER_H_
#define EMAF_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace emaf::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor*> parameters);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void Step() = 0;
  void ZeroGrad();

  const std::vector<tensor::Tensor*>& parameters() const { return parameters_; }

 protected:
  std::vector<tensor::Tensor*> parameters_;
};

struct SgdOptions {
  double lr = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor*> parameters, const SgdOptions& options);
  void Step() override;

 private:
  SgdOptions options_;
  std::vector<std::vector<double>> velocity_;
};

struct AdamOptions {
  double lr = 0.01;  // paper setting for all EMA experiments
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor*> parameters, const AdamOptions& options);
  void Step() override;

 private:
  AdamOptions options_;
  int64_t step_count_ = 0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

// Global L2 norm over all accumulated gradients (parameters without a
// gradient contribute nothing). Read-only; used by the trainer's
// divergence guard even when clipping is off.
double GlobalGradNorm(const std::vector<tensor::Tensor*>& parameters);

// Scales all gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clipping norm.
double ClipGradNorm(const std::vector<tensor::Tensor*>& parameters,
                    double max_norm);

}  // namespace emaf::nn

#endif  // EMAF_NN_OPTIMIZER_H_
