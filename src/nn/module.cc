#include "nn/module.h"

#include "common/check.h"

namespace emaf::nn {

Tensor* Module::RegisterParameter(std::string name, Tensor value) {
  EMAF_CHECK(value.defined());
  for (const auto& [existing, unused] : parameters_) {
    EMAF_CHECK_NE(existing, name) << "duplicate parameter name";
  }
  value.SetRequiresGrad(true);
  parameters_.emplace_back(std::move(name),
                           std::make_unique<Tensor>(std::move(value)));
  return parameters_.back().second.get();
}

void Module::AddChild(std::string name, std::unique_ptr<Module> module) {
  EMAF_CHECK(module != nullptr);
  for (const auto& [existing, unused] : children_) {
    EMAF_CHECK_NE(existing, name) << "duplicate child module name";
  }
  children_.emplace_back(std::move(name), std::move(module));
}

void Module::CollectParameters(const std::string& prefix,
                               std::vector<NamedParameter>* out) {
  for (auto& [name, tensor] : parameters_) {
    out->push_back({prefix.empty() ? name : prefix + "." + name, tensor.get()});
  }
  for (auto& [name, child] : children_) {
    child->CollectParameters(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<NamedParameter> Module::NamedParameters() {
  std::vector<NamedParameter> out;
  CollectParameters("", &out);
  return out;
}

std::vector<Tensor*> Module::Parameters() {
  std::vector<Tensor*> out;
  for (const NamedParameter& p : NamedParameters()) out.push_back(p.value);
  return out;
}

int64_t Module::ParameterCount() {
  int64_t total = 0;
  for (Tensor* t : Parameters()) total += t->NumElements();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [unused, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (Tensor* t : Parameters()) t->ZeroGrad();
}

void Module::CastTo(tensor::DType dtype) {
  for (auto& [unused, tensor] : parameters_) {
    Tensor cast = tensor->CastTo(dtype);
    cast.SetRequiresGrad(true);
    *tensor = std::move(cast);
  }
  CastBuffersTo(dtype);
  for (auto& [unused, child] : children_) child->CastTo(dtype);
  dtype_ = dtype;
}

}  // namespace emaf::nn
