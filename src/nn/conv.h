// 2-D convolution layer owning its kernel and bias.

#ifndef EMAF_NN_CONV_H_
#define EMAF_NN_CONV_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace emaf::nn {

class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel_h,
              int64_t kernel_w, const tensor::Conv2dOptions& options, bool bias,
              Rng* rng);

  // x: [N, in_channels, H, W] -> [N, out_channels, H', W'].
  Tensor Forward(const Tensor& x);

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  tensor::Conv2dOptions options_;
  Tensor* weight_;
  Tensor* bias_ = nullptr;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_CONV_H_
