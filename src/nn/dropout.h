// Inverted-dropout module. Active only while training.

#ifndef EMAF_NN_DROPOUT_H_
#define EMAF_NN_DROPOUT_H_

#include "common/rng.h"
#include "nn/module.h"

namespace emaf::nn {

class Dropout : public Module {
 public:
  // `rng` seeds this layer's private stream (forked, so the caller's
  // generator is not advanced by forward passes).
  Dropout(double p, Rng* rng);

  Tensor Forward(const Tensor& x);

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_DROPOUT_H_
