// Fully-connected layer: y = x W + b.

#ifndef EMAF_NN_LINEAR_H_
#define EMAF_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace emaf::nn {

class Linear : public Module {
 public:
  // Weight is stored as [in_features, out_features] (inputs multiply on the
  // left). Initialized U(-k, k), k = 1/sqrt(in_features), like PyTorch.
  Linear(int64_t in_features, int64_t out_features, bool bias, Rng* rng);

  // x: [..., in_features] -> [..., out_features]. Rank must be >= 2.
  Tensor Forward(const Tensor& x);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Tensor* weight() { return weight_; }
  Tensor* bias() { return bias_; }  // nullptr when constructed without bias

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor* weight_;
  Tensor* bias_ = nullptr;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_LINEAR_H_
