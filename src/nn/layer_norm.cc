#include "nn/layer_norm.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace emaf::nn {

using tensor::Shape;
using tensor::Tensor;

LayerNorm::LayerNorm(std::vector<int64_t> normalized_shape, double epsilon)
    : normalized_shape_(std::move(normalized_shape)), epsilon_(epsilon) {
  EMAF_CHECK(!normalized_shape_.empty());
  Shape shape(normalized_shape_);
  gain_ = RegisterParameter("gain", Tensor::Ones(shape));
  bias_ = RegisterParameter("bias", Tensor::Zeros(shape));
}

Tensor LayerNorm::Forward(const Tensor& x) {
  int64_t norm_rank = static_cast<int64_t>(normalized_shape_.size());
  EMAF_CHECK_GE(x.rank(), norm_rank);
  std::vector<int64_t> axes;
  for (int64_t i = 0; i < norm_rank; ++i) {
    int64_t axis = x.rank() - norm_rank + i;
    EMAF_CHECK_EQ(x.dim(axis), normalized_shape_[i])
        << "LayerNorm shape mismatch on axis " << axis;
    axes.push_back(axis);
  }
  Tensor mu = tensor::Mean(x, axes, /*keepdim=*/true);
  Tensor centered = tensor::Sub(x, mu);
  Tensor var = tensor::Mean(tensor::Mul(centered, centered), axes,
                            /*keepdim=*/true);
  Tensor inv_std =
      tensor::Pow(tensor::AddScalar(var, epsilon_), -0.5);
  Tensor normalized = tensor::Mul(centered, inv_std);
  return tensor::Add(tensor::Mul(normalized, *gain_), *bias_);
}

}  // namespace emaf::nn
