// Module: base class for neural network components.
//
// A Module owns named parameters (leaf tensors with requires_grad) and named
// child modules. NamedParameters() flattens the tree with dotted names
// ("gru.update_gate.weight"), which is what optimizers and the checkpoint
// format consume. Forward signatures are model-specific and therefore not
// part of this interface.

#ifndef EMAF_NN_MODULE_H_
#define EMAF_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace emaf::nn {

using tensor::Tensor;

struct NamedParameter {
  std::string name;
  Tensor* value;
};

class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters in this module and its children, depth-first, with
  // dotted path names. Pointers remain owned by the module tree.
  std::vector<NamedParameter> NamedParameters();
  std::vector<Tensor*> Parameters();

  // Total number of scalar parameters.
  int64_t ParameterCount();

  // Recursively switches train/eval behaviour (dropout etc.).
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Clears accumulated gradients on every parameter.
  void ZeroGrad();

  // Casts every parameter (and, via CastBuffersTo, every non-parameter
  // buffer a subclass baked at construction) to `dtype`, recursively.
  // Intended for inference residents: training assumes f64, so a model
  // cast to f32 must not be trained or recorded into a checkpoint.
  void CastTo(tensor::DType dtype);

  // The element type CastTo last applied (kF64 for a freshly built tree).
  tensor::DType dtype() const { return dtype_; }

 protected:
  Module() = default;

  // Subclasses that bake derived tensors at construction time (normalized
  // adjacency operators, Chebyshev polynomial stacks, constant masks)
  // override this to cast them alongside the parameters.
  virtual void CastBuffersTo(tensor::DType dtype) { (void)dtype; }

  // Registers `value` as a trainable parameter; returns a stable pointer.
  Tensor* RegisterParameter(std::string name, Tensor value);

  // Registers a child; returns the concrete pointer for member storage.
  template <typename M>
  M* RegisterModule(std::string name, std::unique_ptr<M> module) {
    M* raw = module.get();
    AddChild(std::move(name), std::move(module));
    return raw;
  }

 private:
  void AddChild(std::string name, std::unique_ptr<Module> module);
  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParameter>* out);

  std::vector<std::pair<std::string, std::unique_ptr<Tensor>>> parameters_;
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> children_;
  bool training_ = true;
  tensor::DType dtype_ = tensor::DType::kF64;
};

}  // namespace emaf::nn

#endif  // EMAF_NN_MODULE_H_
