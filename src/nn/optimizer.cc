#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace emaf::nn {

using tensor::Scalar;
using tensor::Tensor;

Optimizer::Optimizer(std::vector<Tensor*> parameters)
    : parameters_(std::move(parameters)) {
  for (Tensor* p : parameters_) {
    EMAF_CHECK(p != nullptr);
    EMAF_CHECK(p->defined());
    EMAF_CHECK(p->requires_grad()) << "optimizer parameter without grad flag";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor* p : parameters_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor*> parameters, const SgdOptions& options)
    : Optimizer(std::move(parameters)), options_(options) {
  velocity_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    velocity_[i].assign(static_cast<size_t>(parameters_[i]->NumElements()),
                        0.0);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor* p = parameters_[i];
    Tensor grad = p->grad();
    if (!grad.defined()) continue;
    Scalar* x = p->data();
    const Scalar* g = grad.data();
    std::vector<double>& vel = velocity_[i];
    for (int64_t j = 0; j < p->NumElements(); ++j) {
      double effective = g[j] + options_.weight_decay * x[j];
      if (options_.momentum != 0.0) {
        vel[j] = options_.momentum * vel[j] + effective;
        effective = vel[j];
      }
      x[j] -= options_.lr * effective;
    }
  }
}

Adam::Adam(std::vector<Tensor*> parameters, const AdamOptions& options)
    : Optimizer(std::move(parameters)), options_(options) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    size_t n = static_cast<size_t>(parameters_[i]->NumElements());
    m_[i].assign(n, 0.0);
    v_[i].assign(n, 0.0);
  }
}

void Adam::Step() {
  ++step_count_;
  double bias1 = 1.0 - std::pow(options_.beta1, step_count_);
  double bias2 = 1.0 - std::pow(options_.beta2, step_count_);
  for (size_t i = 0; i < parameters_.size(); ++i) {
    Tensor* p = parameters_[i];
    Tensor grad = p->grad();
    if (!grad.defined()) continue;
    Scalar* x = p->data();
    const Scalar* g = grad.data();
    std::vector<double>& m = m_[i];
    std::vector<double>& v = v_[i];
    for (int64_t j = 0; j < p->NumElements(); ++j) {
      double effective = g[j] + options_.weight_decay * x[j];
      m[j] = options_.beta1 * m[j] + (1.0 - options_.beta1) * effective;
      v[j] = options_.beta2 * v[j] + (1.0 - options_.beta2) * effective * effective;
      double m_hat = m[j] / bias1;
      double v_hat = v[j] / bias2;
      x[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

double GlobalGradNorm(const std::vector<Tensor*>& parameters) {
  double total = 0.0;
  for (Tensor* p : parameters) {
    Tensor grad = p->grad();
    if (!grad.defined()) continue;
    const Scalar* g = grad.data();
    for (int64_t j = 0; j < grad.NumElements(); ++j) total += g[j] * g[j];
  }
  return std::sqrt(total);
}

double ClipGradNorm(const std::vector<Tensor*>& parameters, double max_norm) {
  EMAF_CHECK_GT(max_norm, 0.0);
  // Self-contained norm loop (not a GlobalGradNorm call): FMA contraction
  // of the reduction depends on the inlining context, and an ulp of norm
  // drift changes the clip scale — the golden CSV pins these bytes.
  double total = 0.0;
  for (Tensor* p : parameters) {
    Tensor grad = p->grad();
    if (!grad.defined()) continue;
    const Scalar* g = grad.data();
    for (int64_t j = 0; j < grad.NumElements(); ++j) total += g[j] * g[j];
  }
  double norm = std::sqrt(total);
  if (norm > max_norm) {
    double scale = max_norm / (norm + 1e-12);
    for (Tensor* p : parameters) {
      Tensor grad = p->grad();
      if (!grad.defined()) continue;
      Scalar* g = grad.data();
      for (int64_t j = 0; j < grad.NumElements(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace emaf::nn
