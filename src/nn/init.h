// Weight initialization schemes.

#ifndef EMAF_NN_INIT_H_
#define EMAF_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace emaf::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor XavierUniform(const tensor::Shape& shape, int64_t fan_in,
                             int64_t fan_out, Rng* rng);

// Kaiming/He uniform for ReLU fan-in mode: U(-a, a), a = sqrt(6 / fan_in).
tensor::Tensor KaimingUniform(const tensor::Shape& shape, int64_t fan_in,
                              Rng* rng);

// PyTorch's default Linear/Conv init: U(-k, k), k = 1/sqrt(fan_in).
tensor::Tensor FanInUniform(const tensor::Shape& shape, int64_t fan_in,
                            Rng* rng);

}  // namespace emaf::nn

#endif  // EMAF_NN_INIT_H_
