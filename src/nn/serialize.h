// Binary checkpointing of module parameters.
//
// Format v3 (little-endian):
//   magic "EMAF"  | uint32 version | uint64 config length | config bytes |
//   uint64 parameter count
//   per parameter: uint64 name length | name bytes | uint8 dtype |
//                  uint64 rank | int64 dims[rank] | data[numel]
//
// The dtype byte is the tensor::DType enum value (0 = f64, 1 = f32) and
// governs the element width of the data payload that follows. The config
// blob is an opaque string (the model registry stores a serialized
// ModelConfig there) so a serving process can rebuild the module before
// loading its weights. Older files are still readable: v2 lacks the
// per-parameter dtype byte (every payload is f64), v1 additionally lacks
// the config length/bytes. New files are always written as v3; on load a
// payload whose dtype differs from the receiving parameter's is converted
// element-wise, so an f64 training snapshot can fill an f32 resident and
// vice versa.

#ifndef EMAF_NN_SERIALIZE_H_
#define EMAF_NN_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "nn/module.h"

namespace emaf::nn {

// Snapshot format versions (see the format comment above): v1 = params
// only, v2 = embedded config, v3 = per-parameter dtype byte. New files
// are always written as v3.
inline constexpr uint32_t kSnapshotVersionParamsOnly = 1;
inline constexpr uint32_t kSnapshotVersionWithConfig = 2;
inline constexpr uint32_t kSnapshotVersionWithDtype = 3;

// Writes every named parameter of `module` to `path` (v3, empty config).
Status SaveParameters(Module* module, const std::string& path);

// As above, embedding `config` verbatim in the snapshot header.
Status SaveParameters(Module* module, const std::string& path,
                      std::string_view config);

// Loads a checkpoint (v1, v2 or v3) into `module`. Every parameter in the
// file must exist in the module with an identical shape, and vice versa;
// payloads are converted element-wise when their dtype differs from the
// receiving parameter's. The embedded config, if any, is ignored here —
// use ReadSnapshotConfig.
Status LoadParameters(Module* module, const std::string& path);

// Returns the config blob embedded in a snapshot; empty string for a v1
// file or a newer file saved without a config.
Result<std::string> ReadSnapshotConfig(const std::string& path);

// Returns the format version of a snapshot (1, 2 or 3) without reading
// its parameters — lets callers report a config-less v1 file precisely.
Result<uint32_t> ReadSnapshotVersion(const std::string& path);

}  // namespace emaf::nn

#endif  // EMAF_NN_SERIALIZE_H_
