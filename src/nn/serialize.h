// Binary checkpointing of module parameters.
//
// Format v2 (little-endian):
//   magic "EMAF"  | uint32 version | uint64 config length | config bytes |
//   uint64 parameter count
//   per parameter: uint64 name length | name bytes |
//                  uint64 rank | int64 dims[rank] | double data[numel]
//
// The config blob is an opaque string (the model registry stores a
// serialized ModelConfig there) so a serving process can rebuild the
// module before loading its weights. v1 files — identical except for the
// missing config length/bytes — are still readable; new files are always
// written as v2.

#ifndef EMAF_NN_SERIALIZE_H_
#define EMAF_NN_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "nn/module.h"

namespace emaf::nn {

// Snapshot format versions (see the format comment above): v1 = params
// only, v2 = embedded config. New files are always written as v2.
inline constexpr uint32_t kSnapshotVersionParamsOnly = 1;
inline constexpr uint32_t kSnapshotVersionWithConfig = 2;

// Writes every named parameter of `module` to `path` (v2, empty config).
Status SaveParameters(Module* module, const std::string& path);

// As above, embedding `config` verbatim in the snapshot header.
Status SaveParameters(Module* module, const std::string& path,
                      std::string_view config);

// Loads a checkpoint (v1 or v2) into `module`. Every parameter in the file
// must exist in the module with an identical shape, and vice versa. The
// embedded config, if any, is ignored here — use ReadSnapshotConfig.
Status LoadParameters(Module* module, const std::string& path);

// Returns the config blob embedded in a snapshot; empty string for a v1
// file or a v2 file saved without a config.
Result<std::string> ReadSnapshotConfig(const std::string& path);

// Returns the format version of a snapshot (1 or 2) without reading its
// parameters — lets callers report a config-less v1 file precisely.
Result<uint32_t> ReadSnapshotVersion(const std::string& path);

}  // namespace emaf::nn

#endif  // EMAF_NN_SERIALIZE_H_
