// Binary checkpointing of module parameters.
//
// Format (little-endian):
//   magic "EMAF"  | uint32 version | uint64 parameter count
//   per parameter: uint64 name length | name bytes |
//                  uint64 rank | int64 dims[rank] | double data[numel]

#ifndef EMAF_NN_SERIALIZE_H_
#define EMAF_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace emaf::nn {

// Writes every named parameter of `module` to `path`.
Status SaveParameters(Module* module, const std::string& path);

// Loads a checkpoint into `module`. Every parameter in the file must exist
// in the module with an identical shape, and vice versa.
Status LoadParameters(Module* module, const std::string& path);

}  // namespace emaf::nn

#endif  // EMAF_NN_SERIALIZE_H_
