#include "nn/conv.h"

#include "common/check.h"
#include "nn/init.h"

namespace emaf::nn {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel_h, int64_t kernel_w,
                         const tensor::Conv2dOptions& options, bool bias,
                         Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      options_(options) {
  EMAF_CHECK_GT(in_channels, 0);
  EMAF_CHECK_GT(out_channels, 0);
  EMAF_CHECK_GT(kernel_h, 0);
  EMAF_CHECK_GT(kernel_w, 0);
  int64_t fan_in = in_channels * kernel_h * kernel_w;
  weight_ = RegisterParameter(
      "weight",
      FanInUniform(tensor::Shape{out_channels, in_channels, kernel_h, kernel_w},
                   fan_in, rng));
  if (bias) {
    bias_ = RegisterParameter(
        "bias", FanInUniform(tensor::Shape{out_channels}, fan_in, rng));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& x) {
  EMAF_CHECK_EQ(x.rank(), 4);
  EMAF_CHECK_EQ(x.dim(1), in_channels_);
  return tensor::Conv2d(x, *weight_, bias_ == nullptr ? Tensor() : *bias_,
                        options_);
}

}  // namespace emaf::nn
