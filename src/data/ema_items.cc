#include "data/ema_items.h"

#include "common/check.h"

namespace emaf::data {

const std::vector<EmaItem>& EmaItemCatalog() {
  static const std::vector<EmaItem>& items = *new std::vector<EmaItem>{
      // Positive affect (8 items)
      {"cheerful", EmaBlock::kPositiveAffect},
      {"relaxed", EmaBlock::kPositiveAffect},
      {"energetic", EmaBlock::kPositiveAffect},
      {"content", EmaBlock::kPositiveAffect},
      {"enthusiastic", EmaBlock::kPositiveAffect},
      {"satisfied", EmaBlock::kPositiveAffect},
      {"connected", EmaBlock::kPositiveAffect},
      {"confident", EmaBlock::kPositiveAffect},
      // Negative affect / stress (9 items)
      {"sad", EmaBlock::kNegativeAffect},
      {"anxious", EmaBlock::kNegativeAffect},
      {"irritated", EmaBlock::kNegativeAffect},
      {"stressed", EmaBlock::kNegativeAffect},
      {"lonely", EmaBlock::kNegativeAffect},
      {"guilty", EmaBlock::kNegativeAffect},
      {"worried", EmaBlock::kNegativeAffect},
      {"restless", EmaBlock::kNegativeAffect},
      {"down", EmaBlock::kNegativeAffect},
      // Behaviour / context (9 items)
      {"impulsivity", EmaBlock::kBehaviorContext},
      {"concentration", EmaBlock::kBehaviorContext},
      {"self_control", EmaBlock::kBehaviorContext},
      {"craving_food", EmaBlock::kBehaviorContext},
      {"ate_healthy", EmaBlock::kBehaviorContext},
      {"physically_active", EmaBlock::kBehaviorContext},
      {"social_interaction", EmaBlock::kBehaviorContext},
      {"sleep_quality", EmaBlock::kBehaviorContext},
      {"fatigue", EmaBlock::kBehaviorContext},
  };
  EMAF_CHECK_EQ(static_cast<int64_t>(items.size()), kNumEmaItems);
  return items;
}

std::vector<std::string> EmaItemNames() {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(kNumEmaItems));
  for (const EmaItem& item : EmaItemCatalog()) names.push_back(item.name);
  return names;
}

int64_t EmaItemIndex(const std::string& name) {
  const std::vector<EmaItem>& items = EmaItemCatalog();
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].name == name) return static_cast<int64_t>(i);
  }
  return -1;
}

}  // namespace emaf::data
