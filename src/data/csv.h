// CSV import/export for data matrices, adjacency matrices, and individuals,
// so cohorts and learned graphs can be inspected with external tools or
// replaced by real EMA exports.

#ifndef EMAF_DATA_CSV_H_
#define EMAF_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "graph/adjacency.h"
#include "tensor/tensor.h"

namespace emaf::data {

// Splits one CSV record into fields, honouring RFC-4180 quoting: a field
// wrapped in double quotes may contain commas, and "" inside a quoted
// field is a literal quote. A trailing '\r' (CRLF input read with
// std::getline) is stripped before splitting.
std::vector<std::string> SplitCsvLine(std::string_view line);

// Writes a [R, C] matrix with an optional header row of column names.
Status SaveMatrixCsv(const tensor::Tensor& matrix,
                     const std::vector<std::string>& column_names,
                     const std::string& path);

// Reads a numeric CSV (optionally with one non-numeric header row, which is
// returned through `column_names` when non-null). Accepts CRLF line
// endings, quoted fields (including delimiters inside quotes), and blank
// lines anywhere (skipped, so a trailing newline is harmless). Empty
// cells and the spellings nan/NaN load as quiet NaN — missing EMA beeps
// are the norm, not an error; callers that need completeness check for
// NaN themselves.
Result<tensor::Tensor> LoadMatrixCsv(const std::string& path,
                                     std::vector<std::string>* column_names);

// Adjacency round-trip (no header).
Status SaveAdjacencyCsv(const graph::AdjacencyMatrix& adjacency,
                        const std::string& path);
Result<graph::AdjacencyMatrix> LoadAdjacencyCsv(const std::string& path);

// Individual observations ([T, V] z-scored matrix with variable names).
Status SaveIndividualCsv(const Individual& individual,
                         const std::vector<std::string>& variable_names,
                         const std::string& path);
Result<Individual> LoadIndividualCsv(const std::string& id,
                                     const std::string& path);

}  // namespace emaf::data

#endif  // EMAF_DATA_CSV_H_
