// Synthetic EMA cohort generator.
//
// Substitutes the proprietary student EMA study (269 -> 100 participants,
// 26 items, 8 beeps/day for 28 days) described in Section IV. Each
// individual gets their own sparse signed interaction network over the 26
// items; a nonlinear VAR process with a diurnal rhythm produces latent
// trajectories that are quantized to the 7-point Likert grid, thinned by a
// per-individual compliance rate, and finally z-scored per variable —
// matching the paper's preprocessing. The ground-truth network is retained
// so graph builders can be validated against it (something the original
// study could not do).
//
// The defaults are calibrated (see EXPERIMENTS.md) so that on z-scored
// data the baseline LSTM lands near MSE 1.0 while graph-aware models can
// reach ~0.85, mirroring the paper's operating point: predictable variance
// is carried mostly by cross-variable interactions rather than by strong
// per-variable autocorrelation.

#ifndef EMAF_DATA_GENERATOR_H_
#define EMAF_DATA_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace emaf::data {

struct GeneratorConfig {
  int64_t num_individuals = 100;
  int64_t num_variables = 26;  // 26 uses the named EMA catalogue blocks
  int64_t days = 28;
  int64_t beeps_per_day = 8;

  // Probability a beep is answered; drawn per individual from
  // [compliance_mean - spread, compliance_mean + spread]. The paper keeps
  // high-compliance participants averaging ~140 of 224 beeps; we default a
  // little higher because every dropped beep also breaks the temporal
  // adjacency the forecasters rely on (see EXPERIMENTS.md calibration).
  double compliance_mean = 0.75;
  double compliance_spread = 0.10;

  // Ground-truth network structure.
  double within_block_density = 0.30;
  double cross_block_density = 0.05;
  // Spectral radius the coupling matrix is rescaled to (stability margin;
  // the tanh nonlinearity bounds trajectories regardless).
  double coupling_spectral_radius = 1.0;

  // Dynamics: z_t = c + diag(a) z_{t-1} + G tanh(z_{t-1}) + s sin(...) + eps.
  // Defaults are the calibrated operating point from EXPERIMENTS.md.
  double autoreg_low = 0.30;
  double autoreg_high = 0.50;
  double noise_std = 0.65;
  double diurnal_amplitude = 0.30;

  // Map latents to the 1..7 Likert grid before normalizing (the paper's
  // measurement process). Disable for continuous-latent ablations.
  bool quantize_likert = true;

  // Steps discarded before recording starts.
  int64_t burn_in = 64;

  uint64_t seed = 7;
};

// Generates individual `index` of the cohort (deterministic in
// (config.seed, index)).
Individual GenerateIndividual(const GeneratorConfig& config, int64_t index);

// Generates the whole cohort with variable names attached.
Cohort GenerateCohort(const GeneratorConfig& config);

}  // namespace emaf::data

#endif  // EMAF_DATA_GENERATOR_H_
