#include "data/dataset.h"

#include "common/check.h"

namespace emaf::data {

IndividualSplit MakeSplit(const Individual& individual, int64_t input_length,
                          double train_fraction) {
  EMAF_CHECK(individual.observations.defined());
  int64_t rows = individual.num_time_points();
  IndividualSplit split;
  split.split_row = ts::SequentialSplitIndex(rows, train_fraction);
  split.train = ts::BuildWindows(individual.observations, input_length,
                                 /*start=*/0, /*end=*/split.split_row,
                                 /*allow_context=*/false);
  split.test = ts::BuildWindows(individual.observations, input_length,
                                /*start=*/split.split_row, /*end=*/rows,
                                /*allow_context=*/true);
  EMAF_CHECK_GT(split.train.num_windows(), 0)
      << "individual " << individual.id << " has too few rows ("
      << rows << ") for input length " << input_length;
  EMAF_CHECK_GT(split.test.num_windows(), 0);
  return split;
}

}  // namespace emaf::data
