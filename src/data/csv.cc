#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace emaf::data {

namespace {

constexpr int kPrecision = 17;  // round-trip exact for double

// Parses one numeric cell: empty cells load as quiet NaN (missing EMA
// beeps), everything else must parse as a double (ParseDouble already
// accepts the nan/inf spellings strtod knows).
bool ParseCell(std::string_view field, double* value) {
  std::string trimmed = StrTrim(field);
  if (trimmed.empty()) {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  return ParseDouble(trimmed, value);
}

// Quotes a header name when it contains a delimiter, quote, or newline so
// SplitCsvLine round-trips it.
std::string EncodeCsvField(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::vector<std::string> SplitCsvLine(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');  // escaped quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Status SaveMatrixCsv(const tensor::Tensor& matrix,
                     const std::vector<std::string>& column_names,
                     const std::string& path) {
  if (matrix.rank() != 2) {
    return Status::InvalidArgument("SaveMatrixCsv expects a rank-2 tensor");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound(StrCat("cannot open for writing: ", path));
  }
  int64_t rows = matrix.dim(0);
  int64_t cols = matrix.dim(1);
  if (!column_names.empty()) {
    if (static_cast<int64_t>(column_names.size()) != cols) {
      return Status::InvalidArgument("column_names size mismatch");
    }
    std::vector<std::string> encoded;
    encoded.reserve(column_names.size());
    for (const std::string& name : column_names) {
      encoded.push_back(EncodeCsvField(name));
    }
    out << StrJoin(encoded, ",") << "\n";
  }
  out.precision(kPrecision);
  const double* d = matrix.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (c > 0) out << ",";
      out << d[r * cols + c];
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal(StrCat("write failed: ", path));
  return Status::Ok();
}

Result<tensor::Tensor> LoadMatrixCsv(const std::string& path,
                                     std::vector<std::string>* column_names) {
  if (EMAF_FAULT_SHOULD_FAIL("data.csv.load")) {
    return Status::DataLoss(
        StrCat("injected fault: data.csv.load for ", path));
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open for reading: ", path));
  }
  std::vector<double> values;
  int64_t cols = -1;
  int64_t rows = 0;
  int64_t line_number = 0;  // 1-based physical line, for error context
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    if (StrTrim(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (first_line) {
      first_line = false;
      // Detect a header: any field that does not parse as a number (empty
      // cells count as numeric — they are missing values, not names).
      bool numeric = true;
      for (const std::string& f : fields) {
        double unused;
        if (!ParseCell(f, &unused)) {
          numeric = false;
          break;
        }
      }
      if (!numeric) {
        if (column_names != nullptr) {
          column_names->clear();
          for (const std::string& f : fields) {
            column_names->push_back(StrTrim(f));
          }
        }
        cols = static_cast<int64_t>(fields.size());
        continue;
      }
    }
    if (cols < 0) cols = static_cast<int64_t>(fields.size());
    if (static_cast<int64_t>(fields.size()) != cols) {
      // A row with the wrong arity is a truncated/corrupt record, not a
      // caller mistake: report it as data loss with full position context.
      return Status::DataLoss(StrCat(path, ":", line_number, ": ragged row (",
                                     fields.size(), " fields, expected ",
                                     cols, ")"));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      double v = 0.0;
      if (!ParseCell(fields[c], &v)) {
        return Status::InvalidArgument(
            StrCat(path, ":", line_number, ":", c + 1,
                   ": non-numeric value '", fields[c], "'"));
      }
      values.push_back(v);
    }
    ++rows;
  }
  if (rows == 0 || cols <= 0) {
    return Status::InvalidArgument(StrCat("empty CSV: ", path));
  }
  return tensor::Tensor::FromVector(tensor::Shape{rows, cols},
                                    std::move(values));
}

Status SaveAdjacencyCsv(const graph::AdjacencyMatrix& adjacency,
                        const std::string& path) {
  return SaveMatrixCsv(adjacency.ToTensor(), {}, path);
}

Result<graph::AdjacencyMatrix> LoadAdjacencyCsv(const std::string& path) {
  Result<tensor::Tensor> matrix = LoadMatrixCsv(path, nullptr);
  if (!matrix.ok()) return matrix.status();
  if (matrix.value().dim(0) != matrix.value().dim(1)) {
    return Status::InvalidArgument(
        StrCat("adjacency CSV is not square: ", path));
  }
  return graph::AdjacencyMatrix::FromTensor(matrix.value());
}

Status SaveIndividualCsv(const Individual& individual,
                         const std::vector<std::string>& variable_names,
                         const std::string& path) {
  return SaveMatrixCsv(individual.observations, variable_names, path);
}

Result<Individual> LoadIndividualCsv(const std::string& id,
                                     const std::string& path) {
  std::vector<std::string> names;
  Result<tensor::Tensor> matrix = LoadMatrixCsv(path, &names);
  if (!matrix.ok()) return matrix.status();
  Individual individual;
  individual.id = id;
  individual.observations = matrix.value();
  // Loaded data is taken as already normalized; identity stats.
  int64_t cols = individual.observations.dim(1);
  individual.normalization.mean.assign(static_cast<size_t>(cols), 0.0);
  individual.normalization.stddev.assign(static_cast<size_t>(cols), 1.0);
  return individual;
}

}  // namespace emaf::data
