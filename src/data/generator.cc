#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "data/ema_items.h"
#include "graph/spectral.h"
#include "ts/normalize.h"

namespace emaf::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Block index for variable v. With 26 variables the named catalogue is
// used; otherwise variables are split into three equal-ish blocks.
int BlockOf(int64_t v, int64_t num_variables) {
  if (num_variables == kNumEmaItems) {
    return static_cast<int>(
        EmaItemCatalog()[static_cast<size_t>(v)].block);
  }
  int64_t per_block = (num_variables + kNumEmaBlocks - 1) / kNumEmaBlocks;
  return static_cast<int>(v / per_block);
}

// Draws the signed sparse interaction matrix G (zero diagonal) and rescales
// it to the requested spectral radius.
std::vector<double> DrawInteractionNetwork(const GeneratorConfig& config,
                                           Rng* rng) {
  int64_t v_count = config.num_variables;
  std::vector<double> g(static_cast<size_t>(v_count * v_count), 0.0);
  for (int64_t i = 0; i < v_count; ++i) {
    for (int64_t j = 0; j < v_count; ++j) {
      if (i == j) continue;
      bool same_block = BlockOf(i, v_count) == BlockOf(j, v_count);
      double p = same_block ? config.within_block_density
                            : config.cross_block_density;
      if (!rng->Bernoulli(p)) continue;
      double magnitude = rng->Uniform(0.4, 1.0);
      // Within-block edges lean excitatory; cross-block edges lean
      // inhibitory (e.g. positive affect dampens negative affect).
      double sign_positive_prob = same_block ? 0.8 : 0.3;
      double sign = rng->Bernoulli(sign_positive_prob) ? 1.0 : -1.0;
      g[static_cast<size_t>(i * v_count + j)] = sign * magnitude;
    }
  }
  // Rescale to the requested spectral radius (of |G|, a stability proxy).
  std::vector<double> abs_g(g.size());
  for (size_t k = 0; k < g.size(); ++k) abs_g[k] = std::abs(g[k]);
  tensor::Tensor abs_tensor = tensor::Tensor::FromVector(
      tensor::Shape{v_count, v_count}, std::move(abs_g));
  double radius = graph::PowerIterationEigenvalue(abs_tensor);
  if (radius > 1e-9) {
    double scale = config.coupling_spectral_radius / radius;
    for (double& w : g) w *= scale;
  }
  return g;
}

}  // namespace

Individual GenerateIndividual(const GeneratorConfig& config, int64_t index) {
  EMAF_CHECK_GE(config.num_variables, 2);
  EMAF_CHECK_GE(config.days * config.beeps_per_day, 16);
  EMAF_CHECK_GE(index, 0);
  int64_t v_count = config.num_variables;

  Rng rng = Rng(config.seed).Fork(0x10000 + static_cast<uint64_t>(index));
  std::vector<double> g = DrawInteractionNetwork(config, &rng);

  // Per-variable parameters.
  std::vector<double> autoreg(static_cast<size_t>(v_count));
  std::vector<double> intercept(static_cast<size_t>(v_count));
  std::vector<double> diurnal_phase(static_cast<size_t>(v_count));
  std::vector<double> diurnal_amp(static_cast<size_t>(v_count));
  for (int64_t v = 0; v < v_count; ++v) {
    autoreg[static_cast<size_t>(v)] =
        rng.Uniform(config.autoreg_low, config.autoreg_high);
    intercept[static_cast<size_t>(v)] = rng.Uniform(-0.2, 0.2);
    diurnal_phase[static_cast<size_t>(v)] = rng.Uniform(0.0, 2.0 * kPi);
    diurnal_amp[static_cast<size_t>(v)] =
        config.diurnal_amplitude * rng.Uniform(0.5, 1.5);
  }

  // Simulate the latent nonlinear VAR.
  int64_t total_beeps = config.days * config.beeps_per_day;
  int64_t steps = config.burn_in + total_beeps;
  std::vector<double> state(static_cast<size_t>(v_count), 0.0);
  std::vector<double> next(static_cast<size_t>(v_count), 0.0);
  for (int64_t v = 0; v < v_count; ++v) {
    state[static_cast<size_t>(v)] = rng.Normal(0.0, 0.5);
  }
  std::vector<double> latent(static_cast<size_t>(total_beeps * v_count));
  for (int64_t t = 0; t < steps; ++t) {
    int64_t beep_of_day = t % config.beeps_per_day;
    double day_angle = 2.0 * kPi * static_cast<double>(beep_of_day) /
                       static_cast<double>(config.beeps_per_day);
    for (int64_t v = 0; v < v_count; ++v) {
      double coupled = 0.0;
      for (int64_t w = 0; w < v_count; ++w) {
        double gw = g[static_cast<size_t>(v * v_count + w)];
        if (gw != 0.0) coupled += gw * std::tanh(state[static_cast<size_t>(w)]);
      }
      next[static_cast<size_t>(v)] =
          intercept[static_cast<size_t>(v)] +
          autoreg[static_cast<size_t>(v)] * state[static_cast<size_t>(v)] +
          coupled +
          diurnal_amp[static_cast<size_t>(v)] *
              std::sin(day_angle + diurnal_phase[static_cast<size_t>(v)]) +
          rng.Normal(0.0, config.noise_std);
    }
    state.swap(next);
    if (t >= config.burn_in) {
      int64_t row = t - config.burn_in;
      for (int64_t v = 0; v < v_count; ++v) {
        latent[static_cast<size_t>(row * v_count + v)] =
            state[static_cast<size_t>(v)];
      }
    }
  }

  // Measurement: affine map to the Likert range, rounding, clipping.
  std::vector<double> measured = latent;
  if (config.quantize_likert) {
    for (int64_t v = 0; v < v_count; ++v) {
      // Per-variable scale so most mass covers the 7 Likert bins.
      double mu = 0.0;
      for (int64_t t = 0; t < total_beeps; ++t) {
        mu += latent[static_cast<size_t>(t * v_count + v)];
      }
      mu /= static_cast<double>(total_beeps);
      double var = 0.0;
      for (int64_t t = 0; t < total_beeps; ++t) {
        double c = latent[static_cast<size_t>(t * v_count + v)] - mu;
        var += c * c;
      }
      var /= static_cast<double>(total_beeps);
      double sd = std::sqrt(std::max(var, 1e-12));
      for (int64_t t = 0; t < total_beeps; ++t) {
        double z = (latent[static_cast<size_t>(t * v_count + v)] - mu) / sd;
        double likert = std::round(4.0 + 1.5 * z);
        likert = std::clamp(likert, static_cast<double>(kLikertMin),
                            static_cast<double>(kLikertMax));
        measured[static_cast<size_t>(t * v_count + v)] = likert;
      }
    }
  }

  // Compliance thinning: drop unanswered beeps (rows).
  double compliance = std::clamp(
      rng.Uniform(config.compliance_mean - config.compliance_spread,
                  config.compliance_mean + config.compliance_spread),
      0.05, 1.0);
  std::vector<int64_t> kept_rows;
  kept_rows.reserve(static_cast<size_t>(total_beeps));
  for (int64_t t = 0; t < total_beeps; ++t) {
    if (rng.Bernoulli(compliance)) kept_rows.push_back(t);
  }
  // Guarantee enough data to train on (low-compliance participants are
  // excluded in the paper's preprocessing anyway).
  int64_t min_rows = std::min<int64_t>(total_beeps, 40);
  int64_t t_fill = 0;
  while (static_cast<int64_t>(kept_rows.size()) < min_rows) {
    if (std::find(kept_rows.begin(), kept_rows.end(), t_fill) ==
        kept_rows.end()) {
      kept_rows.push_back(t_fill);
    }
    ++t_fill;
  }
  std::sort(kept_rows.begin(), kept_rows.end());

  int64_t rows = static_cast<int64_t>(kept_rows.size());
  std::vector<double> observed(static_cast<size_t>(rows * v_count));
  for (int64_t r = 0; r < rows; ++r) {
    int64_t src = kept_rows[static_cast<size_t>(r)];
    for (int64_t v = 0; v < v_count; ++v) {
      observed[static_cast<size_t>(r * v_count + v)] =
          measured[static_cast<size_t>(src * v_count + v)];
    }
  }

  Individual individual;
  individual.id = StrCat("synthetic_", index);
  individual.observations = tensor::Tensor::FromVector(
      tensor::Shape{rows, v_count}, std::move(observed));
  individual.normalization = ts::ZScoreColumns(&individual.observations);

  graph::AdjacencyMatrix truth(v_count);
  for (int64_t i = 0; i < v_count; ++i) {
    for (int64_t j = 0; j < v_count; ++j) {
      truth.set(i, j, std::abs(g[static_cast<size_t>(i * v_count + j)]));
    }
  }
  individual.ground_truth_network = std::move(truth);
  return individual;
}

Cohort GenerateCohort(const GeneratorConfig& config) {
  Cohort cohort;
  cohort.individuals.reserve(static_cast<size_t>(config.num_individuals));
  for (int64_t i = 0; i < config.num_individuals; ++i) {
    cohort.individuals.push_back(GenerateIndividual(config, i));
  }
  if (config.num_variables == kNumEmaItems) {
    cohort.variable_names = EmaItemNames();
  } else {
    for (int64_t v = 0; v < config.num_variables; ++v) {
      cohort.variable_names.push_back(StrCat("var_", v));
    }
  }
  return cohort;
}

}  // namespace emaf::data
