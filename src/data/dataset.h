// Dataset containers: one Individual per participant, a Cohort per study.

#ifndef EMAF_DATA_DATASET_H_
#define EMAF_DATA_DATASET_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency.h"
#include "tensor/tensor.h"
#include "ts/normalize.h"
#include "ts/window.h"

namespace emaf::data {

struct Individual {
  std::string id;
  // [T, V] matrix, z-scored per variable (paper preprocessing).
  tensor::Tensor observations;
  // Stats that undo the z-scoring (back to the Likert scale).
  ts::NormalizationStats normalization;
  // Generator ground truth (|interaction weight|, directed). Absent for
  // data loaded from files.
  std::optional<graph::AdjacencyMatrix> ground_truth_network;

  int64_t num_time_points() const { return observations.dim(0); }
  int64_t num_variables() const { return observations.dim(1); }
};

struct Cohort {
  std::vector<Individual> individuals;
  std::vector<std::string> variable_names;

  int64_t size() const { return static_cast<int64_t>(individuals.size()); }
};

// Train/test windows for one individual under the paper's protocol:
// sequential 70/30 split; test windows may reach back into the train region
// for input context so every test row is predicted.
struct IndividualSplit {
  ts::WindowDataset train;
  ts::WindowDataset test;
  int64_t split_row = 0;
};

IndividualSplit MakeSplit(const Individual& individual, int64_t input_length,
                          double train_fraction = 0.7);

}  // namespace emaf::data

#endif  // EMAF_DATA_DATASET_H_
