// Catalogue of the 26 EMA items used throughout the library.
//
// The study behind the paper (Roefs et al. 2022; Martinez et al. 2023)
// measures momentary affect, symptoms, and behaviour/context on a 7-point
// Likert scale. The item names here are representative of that protocol;
// the synthetic generator assigns each item to one of three blocks whose
// within-block dynamics are more strongly coupled than across blocks.

#ifndef EMAF_DATA_EMA_ITEMS_H_
#define EMAF_DATA_EMA_ITEMS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace emaf::data {

inline constexpr int64_t kNumEmaItems = 26;
inline constexpr int64_t kLikertMin = 1;
inline constexpr int64_t kLikertMax = 7;

enum class EmaBlock : int {
  kPositiveAffect = 0,
  kNegativeAffect = 1,
  kBehaviorContext = 2,
};

inline constexpr int kNumEmaBlocks = 3;

struct EmaItem {
  std::string name;
  EmaBlock block;
};

// The full 26-item catalogue, in variable order.
const std::vector<EmaItem>& EmaItemCatalog();

// Names only, in variable order.
std::vector<std::string> EmaItemNames();

// Index lookup by name; -1 when not found.
int64_t EmaItemIndex(const std::string& name);

}  // namespace emaf::data

#endif  // EMAF_DATA_EMA_ITEMS_H_
