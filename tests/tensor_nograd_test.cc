// Tape-absence tests (DESIGN.md, "Serving layer"): under NoGradGuard no op
// attaches a grad_fn, and the tensor.gradfn_allocs counter proves the tape
// is never even allocated — the property the serving path's cost model
// rests on.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace emaf::tensor {
namespace {

uint64_t GradFnAllocs() {
  return obs::Registry::Global().GetCounter("tensor.gradfn_allocs")->value();
}

// Every tensor an op family produces under NoGradGuard must be tape-free:
// null grad_fn and TracksGrad() false, even though the inputs require grad.
void ExpectTapeFree(const Tensor& t) {
  ASSERT_TRUE(t.defined());
  EXPECT_EQ(t.impl()->grad_fn, nullptr);
  EXPECT_FALSE(t.TracksGrad());
}

class NoGradOpFamilyTest : public ::testing::Test {
 protected:
  NoGradOpFamilyTest() : rng_(91) {
    x_ = Tensor::Uniform(Shape{2, 3}, 0.1, 1.0, &rng_).SetRequiresGrad(true);
    y_ = Tensor::Uniform(Shape{2, 3}, 0.1, 1.0, &rng_).SetRequiresGrad(true);
  }
  Rng rng_;
  Tensor x_;
  Tensor y_;
};

TEST_F(NoGradOpFamilyTest, ElementwiseBinary) {
  NoGradGuard guard;
  ExpectTapeFree(Add(x_, y_));
  ExpectTapeFree(Sub(x_, y_));
  ExpectTapeFree(Mul(x_, y_));
  ExpectTapeFree(Div(x_, y_));
  ExpectTapeFree(Maximum(x_, y_));
}

TEST_F(NoGradOpFamilyTest, ElementwiseUnary) {
  NoGradGuard guard;
  ExpectTapeFree(Neg(x_));
  ExpectTapeFree(Exp(x_));
  ExpectTapeFree(Log(x_));
  ExpectTapeFree(Sqrt(x_));
  ExpectTapeFree(Pow(x_, 2.0));
  ExpectTapeFree(Clamp(x_, 0.2, 0.8));
  ExpectTapeFree(AddScalar(x_, 1.0));
  ExpectTapeFree(MulScalar(x_, 2.0));
}

TEST_F(NoGradOpFamilyTest, MatMul) {
  NoGradGuard guard;
  ExpectTapeFree(MatMul(x_, TransposeLast2(y_)));
}

TEST_F(NoGradOpFamilyTest, Reductions) {
  NoGradGuard guard;
  ExpectTapeFree(Sum(x_));
  ExpectTapeFree(Sum(x_, {1}, /*keepdim=*/false));
  ExpectTapeFree(Mean(x_));
  ExpectTapeFree(Mean(x_, {0}, /*keepdim=*/true));
  ExpectTapeFree(Max(x_, 1, /*keepdim=*/false));
}

TEST_F(NoGradOpFamilyTest, ShapeOps) {
  NoGradGuard guard;
  ExpectTapeFree(Reshape(x_, Shape{3, 2}));
  ExpectTapeFree(Transpose(x_, 0, 1));
  ExpectTapeFree(Unsqueeze(x_, 0));
  ExpectTapeFree(Slice(x_, 1, 0, 2));
  ExpectTapeFree(Cat({x_, y_}, 0));
  ExpectTapeFree(Stack({x_, y_}, 0));
  ExpectTapeFree(BroadcastTo(Unsqueeze(x_, 0), Shape{4, 2, 3}));
}

TEST_F(NoGradOpFamilyTest, Activations) {
  NoGradGuard guard;
  ExpectTapeFree(Relu(x_));
  ExpectTapeFree(LeakyRelu(x_, 0.1));
  ExpectTapeFree(Sigmoid(x_));
  ExpectTapeFree(Tanh(x_));
  ExpectTapeFree(Softmax(x_, 1));
  Rng dropout_rng(92);
  ExpectTapeFree(Dropout(x_, 0.5, /*training=*/true, &dropout_rng));
}

TEST_F(NoGradOpFamilyTest, Losses) {
  NoGradGuard guard;
  ExpectTapeFree(MseLoss(x_, y_));
  ExpectTapeFree(MaeLoss(x_, y_));
  ExpectTapeFree(HuberLoss(x_, y_, 1.0));
}

TEST_F(NoGradOpFamilyTest, GradFnAllocCounterStaysFlatUnderNoGrad) {
  uint64_t before = GradFnAllocs();
  {
    NoGradGuard guard;
    Tensor h = Tanh(MatMul(x_, TransposeLast2(y_)));
    Tensor loss = MseLoss(Sum(h, {1}, false), Tensor::Zeros(Shape{2}));
    (void)loss;
  }
  // Not one GradFn node was built for the whole expression tree.
  EXPECT_EQ(GradFnAllocs(), before);
}

TEST_F(NoGradOpFamilyTest, GradFnAllocCounterMovesWhenRecording) {
  if (!obs::kMetricsEnabled) GTEST_SKIP();
  uint64_t before = GradFnAllocs();
  Tensor loss = MseLoss(Tanh(MatMul(x_, TransposeLast2(y_))),
                        Tensor::Zeros(Shape{2, 2}));
  // Sanity check on the instrument itself: with grad mode on, the same
  // expression allocates tape nodes (MatMul, Tanh, MseLoss at minimum).
  EXPECT_GE(GradFnAllocs(), before + 3);
  EXPECT_TRUE(loss.TracksGrad());
}

}  // namespace
}  // namespace emaf::tensor
