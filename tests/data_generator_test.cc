#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/ema_items.h"
#include "data/generator.h"
#include "ts/stats.h"

namespace emaf::data {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_individuals = 3;
  config.days = 10;
  config.beeps_per_day = 8;
  config.seed = 5;
  return config;
}

TEST(EmaItemsTest, CatalogHas26NamedItems) {
  const std::vector<EmaItem>& items = EmaItemCatalog();
  EXPECT_EQ(static_cast<int64_t>(items.size()), kNumEmaItems);
  std::set<std::string> names;
  for (const EmaItem& item : items) names.insert(item.name);
  EXPECT_EQ(static_cast<int64_t>(names.size()), kNumEmaItems);  // unique
}

TEST(EmaItemsTest, AllThreeBlocksPresent) {
  int counts[3] = {0, 0, 0};
  for (const EmaItem& item : EmaItemCatalog()) {
    ++counts[static_cast<int>(item.block)];
  }
  EXPECT_GT(counts[0], 4);
  EXPECT_GT(counts[1], 4);
  EXPECT_GT(counts[2], 4);
}

TEST(EmaItemsTest, IndexLookup) {
  EXPECT_EQ(EmaItemIndex("cheerful"), 0);
  EXPECT_EQ(EmaItemIndex("nonexistent_item"), -1);
  EXPECT_EQ(EmaItemNames().size(), static_cast<size_t>(kNumEmaItems));
}

TEST(GeneratorTest, ShapesMatchConfig) {
  GeneratorConfig config = SmallConfig();
  Individual person = GenerateIndividual(config, 0);
  EXPECT_EQ(person.num_variables(), 26);
  EXPECT_GT(person.num_time_points(), 30);
  EXPECT_LE(person.num_time_points(), 80);  // compliance-thinned
  EXPECT_TRUE(person.ground_truth_network.has_value());
  EXPECT_EQ(person.ground_truth_network->num_nodes(), 26);
}

TEST(GeneratorTest, DeterministicForSameSeedAndIndex) {
  GeneratorConfig config = SmallConfig();
  Individual a = GenerateIndividual(config, 1);
  Individual b = GenerateIndividual(config, 1);
  EXPECT_EQ(a.observations.ToVector(), b.observations.ToVector());
  EXPECT_EQ(*a.ground_truth_network, *b.ground_truth_network);
}

TEST(GeneratorTest, DifferentIndividualsDiffer) {
  GeneratorConfig config = SmallConfig();
  Individual a = GenerateIndividual(config, 0);
  Individual b = GenerateIndividual(config, 1);
  EXPECT_NE(a.observations.ToVector(), b.observations.ToVector());
  EXPECT_FALSE(*a.ground_truth_network == *b.ground_truth_network);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config_a = SmallConfig();
  GeneratorConfig config_b = SmallConfig();
  config_b.seed = config_a.seed + 1;
  Individual a = GenerateIndividual(config_a, 0);
  Individual b = GenerateIndividual(config_b, 0);
  EXPECT_NE(a.observations.ToVector(), b.observations.ToVector());
}

TEST(GeneratorTest, ObservationsAreZScored) {
  Individual person = GenerateIndividual(SmallConfig(), 0);
  int64_t rows = person.num_time_points();
  int64_t cols = person.num_variables();
  const double* d = person.observations.data();
  for (int64_t v = 0; v < cols; ++v) {
    double mean = 0.0;
    for (int64_t t = 0; t < rows; ++t) mean += d[t * cols + v];
    mean /= static_cast<double>(rows);
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(GeneratorTest, InverseNormalizationRecoversLikertGrid) {
  GeneratorConfig config = SmallConfig();
  Individual person = GenerateIndividual(config, 0);
  tensor::Tensor raw = person.observations.Clone();
  ts::InverseZScoreColumns(&raw, person.normalization);
  for (double v : raw.ToVector()) {
    EXPECT_GE(v, kLikertMin - 1e-6);
    EXPECT_LE(v, kLikertMax + 1e-6);
    EXPECT_NEAR(v, std::round(v), 1e-6);  // integer Likert steps
  }
}

TEST(GeneratorTest, ContinuousModeSkipsQuantization) {
  GeneratorConfig config = SmallConfig();
  config.quantize_likert = false;
  Individual person = GenerateIndividual(config, 0);
  tensor::Tensor raw = person.observations.Clone();
  ts::InverseZScoreColumns(&raw, person.normalization);
  int64_t non_integer = 0;
  for (double v : raw.ToVector()) {
    if (std::abs(v - std::round(v)) > 1e-9) ++non_integer;
  }
  EXPECT_GT(non_integer, raw.NumElements() / 2);
}

TEST(GeneratorTest, GroundTruthIsSparseNonNegative) {
  Individual person = GenerateIndividual(SmallConfig(), 0);
  const graph::AdjacencyMatrix& truth = *person.ground_truth_network;
  EXPECT_TRUE(truth.IsNonNegative());
  EXPECT_TRUE(truth.HasZeroDiagonal());
  EXPECT_GT(truth.Density(), 0.02);
  EXPECT_LT(truth.Density(), 0.5);
}

TEST(GeneratorTest, ComplianceControlsSeriesLength) {
  GeneratorConfig low = SmallConfig();
  low.compliance_mean = 0.5;
  low.compliance_spread = 0.0;
  GeneratorConfig high = SmallConfig();
  high.compliance_mean = 0.95;
  high.compliance_spread = 0.0;
  int64_t low_rows = GenerateIndividual(low, 0).num_time_points();
  int64_t high_rows = GenerateIndividual(high, 0).num_time_points();
  EXPECT_GT(high_rows, low_rows);
}

TEST(GeneratorTest, WithinBlockCouplingDominates) {
  // Average |weight| between same-block items should exceed cross-block.
  GeneratorConfig config = SmallConfig();
  double within = 0.0;
  int64_t within_n = 0;
  double cross = 0.0;
  int64_t cross_n = 0;
  for (int64_t idx = 0; idx < 5; ++idx) {
    Individual person = GenerateIndividual(config, idx);
    const graph::AdjacencyMatrix& g = *person.ground_truth_network;
    const std::vector<EmaItem>& items = EmaItemCatalog();
    for (int64_t i = 0; i < 26; ++i) {
      for (int64_t j = 0; j < 26; ++j) {
        if (i == j) continue;
        if (items[i].block == items[j].block) {
          within += g.at(i, j) != 0.0 ? 1.0 : 0.0;
          ++within_n;
        } else {
          cross += g.at(i, j) != 0.0 ? 1.0 : 0.0;
          ++cross_n;
        }
      }
    }
  }
  EXPECT_GT(within / within_n, 2.0 * cross / cross_n);
}

TEST(GeneratorTest, CustomVariableCountWorks) {
  GeneratorConfig config = SmallConfig();
  config.num_variables = 8;
  Individual person = GenerateIndividual(config, 0);
  EXPECT_EQ(person.num_variables(), 8);
}

TEST(GenerateCohortTest, SizesAndNames) {
  GeneratorConfig config = SmallConfig();
  Cohort cohort = GenerateCohort(config);
  EXPECT_EQ(cohort.size(), 3);
  EXPECT_EQ(cohort.variable_names.size(), 26u);
  EXPECT_EQ(cohort.variable_names[0], "cheerful");
  EXPECT_EQ(cohort.individuals[2].id, "synthetic_2");
}

TEST(GenerateCohortTest, GenericNamesForCustomWidth) {
  GeneratorConfig config = SmallConfig();
  config.num_variables = 5;
  Cohort cohort = GenerateCohort(config);
  EXPECT_EQ(cohort.variable_names[3], "var_3");
}

TEST(MakeSplitTest, TrainTestProportions) {
  Individual person = GenerateIndividual(SmallConfig(), 0);
  IndividualSplit split = MakeSplit(person, 5);
  EXPECT_GT(split.train.num_windows(), 0);
  EXPECT_GT(split.test.num_windows(), 0);
  // Test region holds ~30% of rows; with context every test row is a
  // target.
  int64_t rows = person.num_time_points();
  EXPECT_EQ(split.test.num_windows(), rows - split.split_row);
  EXPECT_NEAR(static_cast<double>(split.split_row) / rows, 0.7, 0.02);
}

TEST(MakeSplitTest, LagOneAutocorrelationIsPositive) {
  // The generator must produce temporally dependent (not iid) data.
  Individual person = GenerateIndividual(GeneratorConfig{}, 0);
  int64_t rows = person.num_time_points();
  int64_t cols = person.num_variables();
  const double* d = person.observations.data();
  double total = 0.0;
  for (int64_t v = 0; v < cols; ++v) {
    std::vector<double> now;
    std::vector<double> next;
    for (int64_t t = 0; t + 1 < rows; ++t) {
      now.push_back(d[t * cols + v]);
      next.push_back(d[(t + 1) * cols + v]);
    }
    total += ts::PearsonCorrelation(now, next);
  }
  EXPECT_GT(total / static_cast<double>(cols), 0.15);
}

}  // namespace
}  // namespace emaf::data
