// End-to-end fault-tolerance tests for the experiment grid (ISSUE
// acceptance criteria):
//
//  * Crash/resume determinism: a child process runs a seeded 2x2 grid
//    with EMAF_FAULT_SPEC=checkpoint.post_append=1:1, which hard-kills it
//    (exit 86) right after the first cell is journaled. A --resume run
//    then skips the journaled cell, re-runs the rest, and its report CSV
//    must match the uninterrupted run BYTE FOR BYTE — at 1 and 2 threads.
//  * Graceful degradation: forcing one cell's trainer to diverge on every
//    attempt (trainer.step/<label>=1) must not abort the grid; the failed
//    cell becomes a structured row (status code + retry count) and the
//    other cells' numerics are identical to a fault-free run.
//
// The child grid re-enters this same binary via --child-grid (see main()
// below), so the crash path exercises the real lazy EMAF_FAULT_SPEC /
// EMAF_FAULT_SEED environment configuration, not a test-only hook.

#include <sys/wait.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/report.h"
#include "data/generator.h"

namespace emaf {

// Path of this test binary (argv[0]), for re-spawning in child mode.
std::string g_self_path;

namespace {

core::ExperimentConfig GridConfig() {
  core::ExperimentConfig config;
  config.generator.num_individuals = 2;
  config.generator.num_variables = 8;
  config.generator.days = 7;
  config.generator.seed = 20240612;
  config.train.epochs = 3;
  config.knn_k = 3;
  config.seed = 20240612;
  return config;
}

// 2x2 grid: {LSTM, A3TGCN} x {input_length 2, 3}. One graph-free and one
// graph model so both training paths cross the checkpoint boundary.
std::vector<core::CellSpec> Grid2x2() {
  std::vector<core::CellSpec> grid;
  for (int64_t input_length : {2, 3}) {
    core::CellSpec lstm;
    lstm.model = core::ModelKind::kLstm;
    lstm.input_length = input_length;
    grid.push_back(lstm);
    core::CellSpec a3tgcn;
    a3tgcn.model = core::ModelKind::kA3tgcn;
    a3tgcn.metric = graph::GraphMetric::kCorrelation;
    a3tgcn.gdt = 0.4;
    a3tgcn.input_length = input_length;
    grid.push_back(a3tgcn);
  }
  return grid;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Runs this binary in --child-grid mode via /bin/sh and returns the
// child's exit code (-1 if it did not exit normally). `env_prefix` is a
// shell fragment like "EMAF_FAULT_SPEC='...' EMAF_NUM_THREADS=2".
int RunChildGrid(const std::string& env_prefix, const std::string& journal,
                 const std::string& csv, bool resume) {
  std::string cmd = StrCat(env_prefix, " '", g_self_path, "' --child-grid '",
                           journal, "' '", csv, "'", resume ? " --resume" : "");
  int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFaultInjectionEnabled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
    ASSERT_TRUE(fault::Configure("", 0).ok());
  }
  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      ASSERT_TRUE(fault::Configure("", 0).ok());
    }
  }
};

TEST_F(FaultRecoveryTest, CrashAfterFirstCellThenResumeIsByteIdentical) {
  ASSERT_FALSE(g_self_path.empty());
  for (int threads : {1, 2}) {
    SCOPED_TRACE(StrCat("threads=", threads));
    std::string tag = StrCat("t", threads);
    std::string env = StrCat("EMAF_NUM_THREADS=", threads);
    std::string clean_journal = TempPath(StrCat("clean_", tag, ".journal"));
    std::string clean_csv = TempPath(StrCat("clean_", tag, ".csv"));
    std::string crash_journal = TempPath(StrCat("crash_", tag, ".journal"));
    std::string crash_csv = TempPath(StrCat("crash_", tag, ".csv"));
    std::string resume_csv = TempPath(StrCat("resume_", tag, ".csv"));
    std::remove(clean_journal.c_str());
    std::remove(crash_journal.c_str());

    // Uninterrupted reference run.
    ASSERT_EQ(RunChildGrid(env, clean_journal, clean_csv, false), 0);

    // Crash right after the first cell's journal append.
    ASSERT_EQ(RunChildGrid(
                  StrCat(env, " EMAF_FAULT_SPEC='checkpoint.post_append=1:1'"),
                  crash_journal, crash_csv, false),
              fault::kCrashExitCode);
    // The crash left a journal with exactly the completed prefix.
    Result<std::vector<core::JournalRecord>> journaled =
        core::CheckpointJournal::Load(crash_journal);
    ASSERT_TRUE(journaled.ok()) << journaled.status().ToString();
    ASSERT_EQ(journaled.value().size(), 1u);

    // Resume skips the journaled cell and reproduces the reference bytes.
    ASSERT_EQ(RunChildGrid(env, crash_journal, resume_csv, true), 0);
    EXPECT_EQ(ReadFile(resume_csv), ReadFile(clean_csv))
        << "resumed grid CSV diverged from uninterrupted run";
  }
}

TEST_F(FaultRecoveryTest, ResumeWithCompleteJournalRunsNothingNew) {
  ASSERT_FALSE(g_self_path.empty());
  std::string journal = TempPath("complete.journal");
  std::string csv_a = TempPath("complete_a.csv");
  std::string csv_b = TempPath("complete_b.csv");
  std::remove(journal.c_str());
  ASSERT_EQ(RunChildGrid("EMAF_NUM_THREADS=1", journal, csv_a, false), 0);
  // All four cells are journaled; a resume reloads them all and must
  // still emit the same report.
  ASSERT_EQ(RunChildGrid("EMAF_NUM_THREADS=1", journal, csv_b, true), 0);
  EXPECT_EQ(ReadFile(csv_b), ReadFile(csv_a));
  Result<std::vector<core::JournalRecord>> journaled =
      core::CheckpointJournal::Load(journal);
  ASSERT_TRUE(journaled.ok());
  // Resume appends nothing new for already-recorded cells.
  EXPECT_EQ(journaled.value().size(), Grid2x2().size());
}

TEST_F(FaultRecoveryTest, GracefulDegradationIsolatesFailedCell) {
  core::ExperimentConfig config = GridConfig();
  std::vector<core::CellSpec> grid = Grid2x2();

  // Fault-free reference.
  core::ExperimentRunner clean_runner(data::GenerateCohort(config.generator),
                                      config);
  core::GridResult clean = clean_runner.RunGrid(grid);
  ASSERT_EQ(clean.num_failed, 0);

  // Force every training attempt of one cell (both individuals, all
  // retries) to hit a non-finite loss. Scoped by CellKey so the other
  // A3TGCN cell (same label, different input length) is untouched.
  const core::CellSpec& victim = grid[1];
  ASSERT_TRUE(
      fault::Configure(StrCat("trainer.step/", core::CellKey(victim), "=1"), 0)
          .ok());
  core::ExperimentRunner faulty_runner(data::GenerateCohort(config.generator),
                                       config);
  core::GridResult faulty = faulty_runner.RunGrid(grid);
  ASSERT_TRUE(fault::Configure("", 0).ok());

  ASSERT_EQ(faulty.cells.size(), clean.cells.size());
  EXPECT_EQ(faulty.num_failed, 1);
  for (size_t i = 0; i < faulty.cells.size(); ++i) {
    SCOPED_TRACE(faulty.cells[i].spec.Label());
    if (i == 1) {
      // The victim fails with a structured outcome: divergence recovery
      // exhausted its budget after max_train_retries extra attempts.
      EXPECT_FALSE(faulty.cells[i].status.ok());
      EXPECT_EQ(faulty.cells[i].status.code(), StatusCode::kAborted);
      EXPECT_GE(faulty.cells[i].retries, config.max_train_retries);
      EXPECT_TRUE(faulty.cells[i].result.per_individual_mse.empty());
    } else {
      // Every other cell is numerically untouched by the injected fault.
      ASSERT_TRUE(faulty.cells[i].status.ok())
          << faulty.cells[i].status.ToString();
      EXPECT_EQ(faulty.cells[i].result.per_individual_mse,
                clean.cells[i].result.per_individual_mse);
      EXPECT_EQ(faulty.cells[i].retries, 0);
    }
  }

  // The failed cell renders as a structured report row, not an abort:
  // status code name and retry count in the row, empty numeric columns.
  core::TablePrinter table =
      core::GridReportTable(faulty, config.generator.num_individuals);
  std::string csv = TempPath("degraded.csv");
  ASSERT_TRUE(table.WriteCsv(csv).ok());
  std::string contents = ReadFile(csv);
  EXPECT_NE(contents.find("ABORTED"), std::string::npos) << contents;
}

}  // namespace

// Child mode: run the 2x2 grid against a journal and write the report
// CSV. Invoked by the tests above via RunChildGrid().
int ChildGridMain(int argc, char** argv, int first_arg) {
  if (argc - first_arg < 2) {
    std::fprintf(stderr,
                 "usage: %s --child-grid <journal> <csv> [--resume]\n",
                 argv[0]);
    return 2;
  }
  core::GridOptions options;
  options.journal_path = argv[first_arg];
  std::string csv_path = argv[first_arg + 1];
  for (int i = first_arg + 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--resume") == 0) options.resume = true;
  }
  core::ExperimentConfig config = GridConfig();
  core::ExperimentRunner runner(data::GenerateCohort(config.generator),
                                config);
  core::GridResult result = runner.RunGrid(Grid2x2(), options);
  Status written =
      core::GridReportTable(result, config.generator.num_individuals)
          .WriteCsv(csv_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 3;
  }
  return result.num_failed == 0 ? 0 : 4;
}

}  // namespace emaf

int main(int argc, char** argv) {
  emaf::g_self_path = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--child-grid") == 0) {
      return emaf::ChildGridMain(argc, argv, i + 1);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
