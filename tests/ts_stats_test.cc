#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ts/distance.h"
#include "ts/stats.h"

namespace emaf::ts {
namespace {

TEST(MeanTest, Basic) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{7}), 7.0);
}

TEST(VarianceTest, PopulationVariance) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{3, 3, 3}), 0.0);
}

TEST(StdDevTest, SqrtOfVariance) {
  std::vector<double> v = {0, 2};
  EXPECT_DOUBLE_EQ(StdDev(v), 1.0);
}

TEST(QuantileTest, EndpointsAndMedian) {
  std::vector<double> v = {4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(QuantileTest, LinearInterpolation) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, SingleElement) {
  std::vector<double> v = {5};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.3), 5.0);
}

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariant) {
  std::vector<double> a = {1, 5, 2, 8, 3};
  std::vector<double> b = a;
  for (double& x : b) x = 100.0 - 3.0 * x;
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(std::sin(0.1 * i));
    b.push_back(std::sin(10000.0 + 7.3 * i));
  }
  EXPECT_LT(std::abs(PearsonCorrelation(a, b)), 0.15);
}

TEST(BoxStatsTest, FiveNumberSummary) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  BoxStats stats = ComputeBoxStats(v);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.q1, 2.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.q3, 4.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
}

TEST(EuclideanDistanceTest, KnownValues) {
  std::vector<double> a = {0, 0};
  std::vector<double> b = {3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(CorrelationDistanceTest, Range) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(CorrelationDistance(a, b), 0.0, 1e-12);
  std::vector<double> c = {4, 3, 2, 1};
  EXPECT_NEAR(CorrelationDistance(a, c), 0.0, 1e-12);  // |r| = 1
}

TEST(StatsDeathTest, EmptyInputs) {
  std::vector<double> empty;
  EXPECT_DEATH(Mean(empty), "");
  EXPECT_DEATH(Quantile(empty, 0.5), "");
}

TEST(StatsDeathTest, MismatchedLengths) {
  std::vector<double> a = {1, 2};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DEATH(PearsonCorrelation(a, b), "");
  EXPECT_DEATH(EuclideanDistance(a, b), "");
}

}  // namespace
}  // namespace emaf::ts
