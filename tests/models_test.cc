#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "graph/construction.h"
#include "models/a3tgcn.h"
#include "models/astgcn.h"
#include "models/forecaster.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"
#include "tensor/ops.h"

namespace emaf::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 6;
constexpr int64_t kSteps = 3;

graph::AdjacencyMatrix TestGraph() {
  graph::AdjacencyMatrix adj(kVars);
  for (int64_t i = 0; i + 1 < kVars; ++i) {
    adj.set(i, i + 1, 0.8);
    adj.set(i + 1, i, 0.8);
  }
  return adj;
}

// Small configs so every test runs in milliseconds.
LstmConfig SmallLstm() {
  LstmConfig c;
  c.hidden_units = 8;
  return c;
}
A3tgcnConfig SmallA3() {
  A3tgcnConfig c;
  c.hidden_units = 8;
  return c;
}
AstgcnConfig SmallAst() {
  AstgcnConfig c;
  c.hidden_units = 8;
  c.num_blocks = 2;
  return c;
}
MtgnnConfig SmallMtgnn() {
  MtgnnConfig c;
  c.residual_channels = 8;
  c.conv_channels = 8;
  c.skip_channels = 8;
  c.end_channels = 16;
  c.embedding_dim = 4;
  return c;
}

// Factory helpers used by the parameterized suite.
using ModelFactory =
    std::function<std::unique_ptr<Forecaster>(const graph::AdjacencyMatrix&,
                                              int64_t, Rng*)>;

struct ModelCase {
  std::string name;
  ModelFactory make;
};

std::vector<ModelCase> AllModels() {
  return {
      {"LSTM",
       [](const graph::AdjacencyMatrix& adj, int64_t steps, Rng* rng) {
         return std::make_unique<LstmForecaster>(adj.num_nodes(), steps,
                                                 SmallLstm(), rng);
       }},
      {"A3TGCN",
       [](const graph::AdjacencyMatrix& adj, int64_t steps, Rng* rng) {
         return std::make_unique<A3tgcn>(adj, steps, SmallA3(), rng);
       }},
      {"ASTGCN",
       [](const graph::AdjacencyMatrix& adj, int64_t steps, Rng* rng) {
         return std::make_unique<Astgcn>(adj, steps, SmallAst(), rng);
       }},
      {"MTGNN",
       [](const graph::AdjacencyMatrix& adj, int64_t steps, Rng* rng) {
         return std::make_unique<Mtgnn>(&adj, adj.num_nodes(), steps,
                                        SmallMtgnn(), rng);
       }},
  };
}

class ForecasterTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ForecasterTest, OutputShapeIsBatchByVars) {
  Rng rng(1);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, kSteps, &rng);
  Tensor window = Tensor::Zeros(Shape{7, kSteps, kVars});
  EXPECT_EQ(model->Forward(window).shape(), (Shape{7, kVars}));
  EXPECT_EQ(model->num_variables(), kVars);
  EXPECT_EQ(model->input_length(), kSteps);
}

TEST_P(ForecasterTest, SingleStepInputWorks) {
  Rng rng(2);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, 1, &rng);
  Tensor window = Tensor::Zeros(Shape{4, 1, kVars});
  EXPECT_EQ(model->Forward(window).shape(), (Shape{4, kVars}));
}

TEST_P(ForecasterTest, DeterministicInitAndEval) {
  Rng rng_a(3);
  Rng rng_b(3);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> a = GetParam().make(adj, kSteps, &rng_a);
  std::unique_ptr<Forecaster> b = GetParam().make(adj, kSteps, &rng_b);
  a->SetTraining(false);
  b->SetTraining(false);
  Rng data_rng(4);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_EQ(a->Forward(window).ToVector(), b->Forward(window).ToVector());
  // Eval mode is deterministic run to run (dropout off).
  EXPECT_EQ(a->Forward(window).ToVector(), a->Forward(window).ToVector());
}

TEST_P(ForecasterTest, HasTrainableParameters) {
  Rng rng(5);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, kSteps, &rng);
  EXPECT_GT(model->ParameterCount(), 50);
  for (Tensor* p : model->Parameters()) {
    EXPECT_TRUE(p->requires_grad());
  }
}

TEST_P(ForecasterTest, GradientsReachEveryParameter) {
  Rng rng(6);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, kSteps, &rng);
  model->SetTraining(false);  // dropout off so no parameter is masked out
  Rng data_rng(7);
  Tensor window = Tensor::Uniform(Shape{5, kSteps, kVars}, -1, 1, &data_rng);
  Tensor target = Tensor::Uniform(Shape{5, kVars}, -1, 1, &data_rng);
  tensor::MseLoss(model->Forward(window), target).Backward();
  int64_t with_grad = 0;
  int64_t total = 0;
  for (const nn::NamedParameter& p : model->NamedParameters()) {
    ++total;
    if (p.value->grad().defined()) ++with_grad;
  }
  // All parameters must receive gradients (graph-learner embeddings
  // included).
  EXPECT_EQ(with_grad, total);
}

TEST_P(ForecasterTest, LearnsConstantTarget) {
  // Train on a trivially predictable dataset: loss must drop sharply.
  Rng rng(8);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, kSteps, &rng);
  Rng data_rng(9);
  Tensor inputs = Tensor::Uniform(Shape{12, kSteps, kVars}, -1, 1, &data_rng);
  Tensor targets = Tensor::Full(Shape{12, kVars}, 0.75);
  ts::WindowDataset ds;
  ds.inputs = inputs;
  ds.targets = targets;
  core::TrainConfig config;
  config.epochs = 60;
  core::TrainResult result = core::TrainForecaster(model.get(), ds, config);
  EXPECT_LT(result.final_loss, 0.25 * result.epoch_losses.front());
}

TEST_P(ForecasterTest, WindowShapeIsValidated) {
  Rng rng(10);
  graph::AdjacencyMatrix adj = TestGraph();
  std::unique_ptr<Forecaster> model = GetParam().make(adj, kSteps, &rng);
  EXPECT_DEATH(model->Forward(Tensor::Zeros(Shape{2, kSteps + 1, kVars})), "");
  EXPECT_DEATH(model->Forward(Tensor::Zeros(Shape{2, kSteps, kVars + 2})), "");
  EXPECT_DEATH(model->Forward(Tensor::Zeros(Shape{kSteps, kVars})), "");
}

INSTANTIATE_TEST_SUITE_P(AllModels, ForecasterTest,
                         ::testing::ValuesIn(AllModels()),
                         [](const ::testing::TestParamInfo<ModelCase>& info) {
                           return info.param.name;
                         });

TEST(LstmForecasterTest, Name) {
  Rng rng(11);
  LstmForecaster model(kVars, kSteps, SmallLstm(), &rng);
  EXPECT_EQ(model.name(), "LSTM");
}

TEST(A3tgcnTest, UsesGraphStructure) {
  // Changing the graph must change the (deterministic) output.
  Rng rng_a(12);
  Rng rng_b(12);
  graph::AdjacencyMatrix connected = TestGraph();
  graph::AdjacencyMatrix empty(kVars);
  A3tgcn a(connected, kSteps, SmallA3(), &rng_a);
  A3tgcn b(empty, kSteps, SmallA3(), &rng_b);
  a.SetTraining(false);
  b.SetTraining(false);
  Rng data_rng(13);
  Tensor window = Tensor::Uniform(Shape{2, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_NE(a.Forward(window).ToVector(), b.Forward(window).ToVector());
}

TEST(AstgcnTest, UsesGraphStructure) {
  Rng rng_a(14);
  Rng rng_b(14);
  graph::AdjacencyMatrix connected = TestGraph();
  graph::AdjacencyMatrix empty(kVars);
  Astgcn a(connected, kSteps, SmallAst(), &rng_a);
  Astgcn b(empty, kSteps, SmallAst(), &rng_b);
  a.SetTraining(false);
  b.SetTraining(false);
  Rng data_rng(15);
  Tensor window = Tensor::Uniform(Shape{2, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_NE(a.Forward(window).ToVector(), b.Forward(window).ToVector());
}

TEST(MtgnnTest, LearnedAdjacencyHasTopKSparsity) {
  Rng rng(16);
  MtgnnConfig config = SmallMtgnn();
  config.top_k = 2;
  config.static_prior_weight = 0.0;  // learned part only
  Mtgnn model(nullptr, kVars, kSteps, config, &rng);
  graph::AdjacencyMatrix learned = model.CurrentAdjacency();
  EXPECT_TRUE(learned.IsNonNegative());
  for (int64_t i = 0; i < kVars; ++i) {
    int64_t row_edges = 0;
    for (int64_t j = 0; j < kVars; ++j) {
      if (learned.at(i, j) != 0.0) ++row_edges;
    }
    EXPECT_LE(row_edges, 2);
  }
}

TEST(MtgnnTest, StaticPriorContributesToAdjacency) {
  Rng rng(17);
  graph::AdjacencyMatrix prior = TestGraph();
  MtgnnConfig config = SmallMtgnn();
  config.static_prior_weight = 1.0;
  Mtgnn model(&prior, kVars, kSteps, config, &rng);
  graph::AdjacencyMatrix combined = model.CurrentAdjacency();
  // Every prior edge appears in the combined graph.
  for (int64_t i = 0; i < kVars; ++i) {
    for (int64_t j = 0; j < kVars; ++j) {
      if (prior.at(i, j) > 0.0) EXPECT_GT(combined.at(i, j), 0.0);
    }
  }
}

TEST(MtgnnTest, GraphLearningOffUsesStaticGraph) {
  Rng rng(18);
  graph::AdjacencyMatrix prior = TestGraph();
  MtgnnConfig config = SmallMtgnn();
  config.use_graph_learning = false;
  Mtgnn model(&prior, kVars, kSteps, config, &rng);
  graph::AdjacencyMatrix used = model.CurrentAdjacency();
  // Static graph, rescaled to max weight 1.
  graph::AdjacencyMatrix expected = prior;
  expected.NormalizeMaxToOne();
  EXPECT_EQ(used, expected);
}

TEST(MtgnnDeathTest, NoGraphAtAllIsRejected) {
  Rng rng(19);
  MtgnnConfig config = SmallMtgnn();
  config.use_graph_learning = false;
  EXPECT_DEATH(Mtgnn(nullptr, kVars, kSteps, config, &rng), "static graph");
}

TEST(MtgnnTest, TrainingUpdatesLearnedGraph) {
  Rng rng(20);
  MtgnnConfig config = SmallMtgnn();
  config.static_prior_weight = 0.0;
  Mtgnn model(nullptr, kVars, kSteps, config, &rng);
  graph::AdjacencyMatrix before = model.CurrentAdjacency();
  Rng data_rng(21);
  ts::WindowDataset ds;
  ds.inputs = Tensor::Uniform(Shape{10, kSteps, kVars}, -1, 1, &data_rng);
  ds.targets = Tensor::Uniform(Shape{10, kVars}, -1, 1, &data_rng);
  core::TrainConfig tc;
  tc.epochs = 10;
  core::TrainForecaster(&model, ds, tc);
  graph::AdjacencyMatrix after = model.CurrentAdjacency();
  EXPECT_FALSE(before == after);
}

}  // namespace
}  // namespace emaf::models
