// Fault / robustness contract for the compiled-plan execution path
// (DESIGN.md, "Compiled plans"): fault site plan.execute/<id> fails only
// the affected request, with a structured per-request error; the model's
// plan cache is disabled so later requests for that id fall back to the
// module path and serve the exact expected bytes; other tenants are
// untouched. Through the scheduler, the failed request lands in the
// `failed` stat and serve.scheduler.failed_total like any other
// per-request failure.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "serve/inference_engine.h"
#include "serve/scheduler.h"
#include "serve_test_util.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using tensor::Tensor;

class PlanFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
    dir_ = ::testing::TempDir() + "/plan_fault_snapshots";
    expected_ = testutil::MakeTinySnapshotDir(dir_, {"alpha", "beta"});
    window_ = testutil::TinyWindow();
  }

  void TearDown() override {
    if (fault::kFaultInjectionEnabled) {
      ASSERT_TRUE(fault::Configure("", 0).ok());
    }
  }

  std::string dir_;
  std::map<std::string, std::vector<double>> expected_;
  Tensor window_;
};

TEST_F(PlanFaultTest, ExecuteFaultFailsOneRequestThenFallsBackToModule) {
  Result<InferenceEngine> engine = InferenceEngine::Load(dir_);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(fault::Configure("plan.execute/alpha=1", 1).ok());

  // The faulted request fails with a structured error naming the site...
  Result<Tensor> faulted = engine.value().Forecast("alpha", window_);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kInternal);
  EXPECT_NE(faulted.status().message().find("plan.execute/alpha"),
            std::string::npos)
      << faulted.status().ToString();

  // ...while an unrelated tenant is untouched...
  Result<Tensor> other = engine.value().Forecast("beta", window_);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  EXPECT_EQ(other.value().ToVector(), expected_["beta"]);

  // ...and the affected tenant recovers immediately on the module
  // fallback, serving the exact expected bytes.
  ASSERT_TRUE(fault::Configure("", 0).ok());
  Result<Tensor> recovered = engine.value().Forecast("alpha", window_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().ToVector(), expected_["alpha"]);

  // The fallback is sticky for this residency: with the fault cleared,
  // repeated requests keep serving correct bytes (module path, no plan
  // recompile churn).
  Result<Tensor> again = engine.value().Forecast("alpha", window_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToVector(), expected_["alpha"]);
}

TEST_F(PlanFaultTest, SchedulerAccountsPlanFaultAsFailedRequest) {
  Result<ModelStore> store = ModelStore::Open(dir_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ManualClock clock;
  SchedulerOptions options;
  options.max_delay_ticks = 0;
  RequestScheduler scheduler(&store.value(), nullptr, options, &clock);

  uint64_t failed_before = 0;
  if constexpr (obs::kMetricsEnabled) {
    failed_before = obs::Registry::Global()
                        .GetCounter("serve.scheduler.failed_total")
                        ->value();
  }

  ASSERT_TRUE(fault::Configure("plan.execute/alpha=1", 1).ok());
  Result<RequestTicket> alpha = scheduler.Submit({"alpha", window_});
  Result<RequestTicket> beta = scheduler.Submit({"beta", window_});
  ASSERT_TRUE(alpha.ok());
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(scheduler.Flush(), 2);

  ASSERT_TRUE(alpha.value().done());
  ASSERT_TRUE(beta.value().done());
  EXPECT_FALSE(alpha.value().result().ok());
  EXPECT_EQ(alpha.value().result().status().code(), StatusCode::kInternal);
  ASSERT_TRUE(beta.value().result().ok());
  EXPECT_EQ(beta.value().result().value().ToVector(), expected_["beta"]);

  EXPECT_EQ(scheduler.stats().failed, 1u);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(obs::Registry::Global()
                  .GetCounter("serve.scheduler.failed_total")
                  ->value(),
              failed_before + 1);
  }

  // The same id served again through the scheduler succeeds on the
  // module fallback.
  ASSERT_TRUE(fault::Configure("", 0).ok());
  Result<RequestTicket> retry = scheduler.Submit({"alpha", window_});
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(scheduler.Flush(), 1);
  ASSERT_TRUE(retry.value().result().ok());
  EXPECT_EQ(retry.value().result().value().ToVector(), expected_["alpha"]);
  EXPECT_EQ(scheduler.stats().failed, 1u);
}

}  // namespace
}  // namespace emaf::serve
