// Shared fixture helpers for the serving-layer suites (store, scheduler):
// build a directory of tiny *untrained* LSTM snapshots — construction is
// deterministic per id, and byte-identity assertions don't care about fit
// quality — plus the ground-truth predictions a correctly served model
// must reproduce byte for byte.

#ifndef EMAF_TESTS_SERVE_TEST_UTIL_H_
#define EMAF_TESTS_SERVE_TEST_UTIL_H_

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "models/registry.h"
#include "tensor/tensor.h"

namespace emaf::serve::testutil {

inline constexpr int64_t kTinyVars = 3;
inline constexpr int64_t kTinySteps = 2;

inline models::ModelConfig TinyLstmConfig() {
  models::ModelConfig config;
  config.family = "LSTM";
  config.num_variables = kTinyVars;
  config.input_length = kTinySteps;
  config.lstm.hidden_units = 4;
  return config;
}

// A fixed request window [1, kTinySteps, kTinyVars].
inline tensor::Tensor TinyWindow() {
  Rng rng(20240806);
  return tensor::Tensor::Uniform(
      tensor::Shape{1, kTinySteps, kTinyVars}, -1, 1, &rng);
}

// Writes one tiny snapshot per id into `dir` (created fresh) and returns
// the prediction bytes each id must serve for TinyWindow().
inline std::map<std::string, std::vector<double>> MakeTinySnapshotDir(
    const std::string& dir, const std::vector<std::string>& ids) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  EXPECT_TRUE(fs::create_directories(dir));
  tensor::Tensor window = TinyWindow();
  std::map<std::string, std::vector<double>> expected;
  uint64_t seed = 1000;
  for (const std::string& id : ids) {
    models::ModelConfig config = TinyLstmConfig();
    Rng rng(seed++);
    std::unique_ptr<models::Forecaster> model =
        models::CreateForecasterOrDie(config, &rng);
    expected[id] = core::Predict(model.get(), window).ToVector();
    Status saved = models::SaveForecasterSnapshot(
        model.get(), config, dir + "/" + id + ".snapshot");
    EXPECT_TRUE(saved.ok()) << saved.ToString();
  }
  return expected;
}

}  // namespace emaf::serve::testutil

#endif  // EMAF_TESTS_SERVE_TEST_UTIL_H_
