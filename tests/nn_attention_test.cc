#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/attention.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(SpatialAttentionTest, OutputShape) {
  Rng rng(1);
  SpatialAttention attention(5, 3, 4, &rng);
  Tensor x = Tensor::Zeros(Shape{2, 5, 3, 4});
  EXPECT_EQ(attention.Forward(x).shape(), (Shape{2, 5, 5}));
}

TEST(SpatialAttentionTest, ScoresAreColumnNormalized) {
  Rng rng(2);
  SpatialAttention attention(4, 2, 3, &rng);
  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{2, 4, 2, 3}, -1, 1, &data_rng);
  Tensor s = attention.Forward(x);
  // Softmax over axis 1: summing over rows gives 1 for each (batch, col).
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t j = 0; j < 4; ++j) {
      double total = 0.0;
      for (int64_t i = 0; i < 4; ++i) total += s.At({b, i, j});
      EXPECT_NEAR(total, 1.0, 1e-10);
    }
  }
}

TEST(SpatialAttentionTest, ScoresDependOnInput) {
  Rng rng(4);
  SpatialAttention attention(3, 1, 2, &rng);
  Rng data_rng(5);
  Tensor x1 = Tensor::Uniform(Shape{1, 3, 1, 2}, -1, 1, &data_rng);
  Tensor x2 = Tensor::Uniform(Shape{1, 3, 1, 2}, -1, 1, &data_rng);
  Tensor s1 = attention.Forward(x1);
  Tensor s2 = attention.Forward(x2);
  bool any_diff = false;
  for (int64_t i = 0; i < s1.NumElements(); ++i) {
    if (s1.data()[i] != s2.data()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TemporalAttentionTest, OutputShape) {
  Rng rng(6);
  TemporalAttention attention(5, 3, 4, &rng);
  Tensor x = Tensor::Zeros(Shape{2, 5, 3, 4});
  EXPECT_EQ(attention.Forward(x).shape(), (Shape{2, 4, 4}));
}

TEST(TemporalAttentionTest, ScoresAreColumnNormalized) {
  Rng rng(7);
  TemporalAttention attention(3, 2, 5, &rng);
  Rng data_rng(8);
  Tensor x = Tensor::Uniform(Shape{1, 3, 2, 5}, -1, 1, &data_rng);
  Tensor e = attention.Forward(x);
  for (int64_t j = 0; j < 5; ++j) {
    double total = 0.0;
    for (int64_t i = 0; i < 5; ++i) total += e.At({0, i, j});
    EXPECT_NEAR(total, 1.0, 1e-10);
  }
}

TEST(TemporalAttentionTest, SingleStepDegeneratesToOnes) {
  Rng rng(9);
  TemporalAttention attention(3, 1, 1, &rng);
  Rng data_rng(10);
  Tensor x = Tensor::Uniform(Shape{2, 3, 1, 1}, -1, 1, &data_rng);
  Tensor e = attention.Forward(x);
  EXPECT_EQ(e.shape(), (Shape{2, 1, 1}));
  for (double v : e.ToVector()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(AttentionGradTest, SpatialGradCheck) {
  Rng rng(11);
  SpatialAttention attention(3, 2, 2, &rng);
  Rng data_rng(12);
  Tensor x = Tensor::Uniform(Shape{1, 3, 2, 2}, -1, 1, &data_rng);
  Tensor w = Tensor::Uniform(Shape{1, 3, 3}, -1, 1, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return tensor::Sum(tensor::Mul(attention.Forward(in[0]), w));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(AttentionGradTest, TemporalGradCheck) {
  Rng rng(13);
  TemporalAttention attention(3, 2, 2, &rng);
  Rng data_rng(14);
  Tensor x = Tensor::Uniform(Shape{1, 3, 2, 2}, -1, 1, &data_rng);
  Tensor w = Tensor::Uniform(Shape{1, 2, 2}, -1, 1, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return tensor::Sum(tensor::Mul(attention.Forward(in[0]), w));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(AttentionTest, ParameterCounts) {
  Rng rng(15);
  int64_t v = 4;
  int64_t f = 3;
  int64_t t = 5;
  SpatialAttention spatial(v, f, t, &rng);
  // w1 [T] + w2 [F,T] + w3 [F] + bs [V,V] + vs [V,V].
  EXPECT_EQ(spatial.ParameterCount(), t + f * t + f + v * v + v * v);
  TemporalAttention temporal(v, f, t, &rng);
  EXPECT_EQ(temporal.ParameterCount(), v + f * v + f + t * t + t * t);
}

}  // namespace
}  // namespace emaf::nn
