#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/construction.h"
#include "graph/spectral.h"
#include "tensor/ops.h"

namespace emaf::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

AdjacencyMatrix RingGraph(int64_t n) {
  AdjacencyMatrix adj(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t j = (i + 1) % n;
    adj.set(i, j, 1.0);
    adj.set(j, i, 1.0);
  }
  return adj;
}

TEST(SymNormalizedTest, RegularGraphHasUniformWeights) {
  // On a 2-regular ring with self loops every degree is 3:
  // entries are 1/3 on the diagonal and both neighbours.
  Tensor a = SymNormalizedAdjacency(RingGraph(5));
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(a.At({i, i}), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(a.At({i, (i + 1) % 5}), 1.0 / 3.0, 1e-12);
  }
}

TEST(SymNormalizedTest, OutputIsSymmetric) {
  Rng rng(1);
  AdjacencyMatrix adj(6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = i + 1; j < 6; ++j) {
      double w = rng.Uniform();
      adj.set(i, j, w);
      adj.set(j, i, w);
    }
  }
  Tensor a = SymNormalizedAdjacency(adj);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(a.At({i, j}), a.At({j, i}), 1e-12);
    }
  }
}

TEST(SymNormalizedTest, EmptyGraphWithSelfLoopsIsIdentity) {
  AdjacencyMatrix empty(4);
  Tensor a = SymNormalizedAdjacency(empty);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(a.At({i, j}), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(SymNormalizedTest, WithoutSelfLoopsIsolatedRowIsZero) {
  AdjacencyMatrix adj(3);
  adj.set(0, 1, 1.0);
  adj.set(1, 0, 1.0);
  Tensor a = SymNormalizedAdjacency(adj, /*add_self_loops=*/false);
  for (int64_t j = 0; j < 3; ++j) EXPECT_EQ(a.At({2, j}), 0.0);
}

TEST(RowNormalizedTest, RowsSumToOne) {
  Rng rng(2);
  AdjacencyMatrix adj(5);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      if (i != j && rng.Bernoulli(0.5)) adj.set(i, j, rng.Uniform(0.1, 1.0));
    }
  }
  Tensor a = RowNormalizedAdjacency(adj);
  for (int64_t i = 0; i < 5; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 5; ++j) total += a.At({i, j});
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(PowerIterationTest, FindsDominantEigenvalue) {
  // diag(3, 1): lambda_max = 3.
  Tensor m = Tensor::FromVector(Shape{2, 2}, {3, 0, 0, 1});
  EXPECT_NEAR(PowerIterationEigenvalue(m), 3.0, 1e-8);
}

TEST(PowerIterationTest, SymmetricKnownSpectrum) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Tensor m = Tensor::FromVector(Shape{2, 2}, {2, 1, 1, 2});
  EXPECT_NEAR(PowerIterationEigenvalue(m), 3.0, 1e-8);
}

TEST(PowerIterationTest, ZeroMatrix) {
  Tensor m = Tensor::Zeros(Shape{3, 3});
  EXPECT_EQ(PowerIterationEigenvalue(m), 0.0);
}

TEST(ScaledLaplacianTest, SpectrumWithinMinusOneOne) {
  // The scaled Laplacian must have |lambda| <= 1 (plus numeric slack).
  AdjacencyMatrix ring = RingGraph(8);
  Tensor scaled = ScaledLaplacian(ring);
  double lambda = std::abs(PowerIterationEigenvalue(scaled));
  EXPECT_LE(lambda, 1.0 + 1e-6);
}

TEST(ScaledLaplacianTest, SymmetricOutput) {
  AdjacencyMatrix ring = RingGraph(6);
  Tensor scaled = ScaledLaplacian(ring);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(scaled.At({i, j}), scaled.At({j, i}), 1e-9);
    }
  }
}

TEST(ChebyshevTest, FirstTwoTermsAreIdentityAndLaplacian) {
  AdjacencyMatrix ring = RingGraph(5);
  std::vector<Tensor> polys = ChebyshevPolynomials(ring, 3);
  ASSERT_EQ(polys.size(), 3u);
  Tensor eye = Tensor::Eye(5);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(polys[0].data()[i], eye.data()[i]);
  }
  Tensor scaled = ScaledLaplacian(ring);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(polys[1].data()[i], scaled.data()[i], 1e-12);
  }
}

TEST(ChebyshevTest, RecurrenceHolds) {
  AdjacencyMatrix ring = RingGraph(5);
  std::vector<Tensor> polys = ChebyshevPolynomials(ring, 4);
  // T_3 == 2 L T_2 - T_1.
  Tensor expected = tensor::Sub(
      tensor::MulScalar(tensor::MatMul(polys[1], polys[2]), 2.0), polys[1]);
  for (int64_t i = 0; i < 25; ++i) {
    EXPECT_NEAR(polys[3].data()[i], expected.data()[i], 1e-9);
  }
}

TEST(ChebyshevTest, OrderOneIsJustIdentity) {
  AdjacencyMatrix ring = RingGraph(4);
  std::vector<Tensor> polys = ChebyshevPolynomials(ring, 1);
  ASSERT_EQ(polys.size(), 1u);
}

}  // namespace
}  // namespace emaf::graph
