// Seeded mutation fuzzer for the wire codec (ISSUE PR-6): 10k frames —
// valid encodings put through random byte flips, truncations, extensions,
// splices and pure-noise buffers — are pushed through both DecodeFrame and
// a randomly-chunked FrameDecoder. The contract under fuzz is total: no
// crash, no hang, no exception; every outcome is a Frame or a Status. The
// RNG is seeded, so a failure reproduces exactly.

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serve/protocol.h"
#include "tensor/tensor.h"

namespace emaf::serve {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int kFuzzFrames = 10000;
constexpr uint64_t kFuzzSeed = 0xEAFEAF2024ull;

std::string RandomValidFrame(Rng* rng) {
  Frame frame;
  frame.type = static_cast<FrameType>(rng->UniformInt(1, 7));
  frame.request_id = static_cast<uint64_t>(rng->UniformInt(0, 1 << 30));
  if (rng->UniformInt(0, 3) == 0) {
    frame.SetDeadline(static_cast<uint64_t>(rng->UniformInt(0, 1 << 20)));
  }
  const int64_t tenant_len = rng->UniformInt(0, 24);
  for (int64_t i = 0; i < tenant_len; ++i) {
    frame.tenant_id.push_back(
        static_cast<char>('a' + rng->UniformInt(0, 25)));
  }
  switch (rng->UniformInt(0, 2)) {
    case 0:
      break;  // empty payload
    case 1: {  // tensor payload
      const int64_t n = rng->UniformInt(1, 32);
      std::vector<double> values(static_cast<size_t>(n));
      rng->FillUniform(&values, -10, 10);
      frame.payload =
          EncodeTensorPayload(Tensor::FromVector(Shape{n}, values));
      break;
    }
    default: {  // arbitrary bytes
      const int64_t n = rng->UniformInt(0, 64);
      for (int64_t i = 0; i < n; ++i) {
        frame.payload.push_back(
            static_cast<char>(rng->UniformInt(0, 255)));
      }
      break;
    }
  }
  return EncodeFrame(frame);
}

// One mutation pass over a valid encoding: flips, truncation, extension,
// duplication, splicing with noise — the corruptions a hostile or broken
// peer can actually produce.
std::string Mutate(std::string bytes, Rng* rng) {
  switch (rng->UniformInt(0, 5)) {
    case 0: {  // flip 1..8 random bits
      const int64_t flips = rng->UniformInt(1, 8);
      for (int64_t i = 0; i < flips && !bytes.empty(); ++i) {
        const size_t at = static_cast<size_t>(
            rng->UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[at] ^= static_cast<char>(1 << rng->UniformInt(0, 7));
      }
      return bytes;
    }
    case 1:  // truncate
      return bytes.substr(
          0, static_cast<size_t>(
                 rng->UniformInt(0, static_cast<int64_t>(bytes.size()))));
    case 2: {  // append noise
      const int64_t extra = rng->UniformInt(1, 64);
      for (int64_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<char>(rng->UniformInt(0, 255)));
      }
      return bytes;
    }
    case 3: {  // overwrite a random header field region
      const size_t at = static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(
                 std::min(bytes.size(), kFrameHeaderBytes) - 1)));
      bytes[at] = static_cast<char>(rng->UniformInt(0, 255));
      return bytes;
    }
    case 4: {  // pure noise of a random size
      std::string noise(
          static_cast<size_t>(rng->UniformInt(0, 256)), '\0');
      for (char& c : noise) {
        c = static_cast<char>(rng->UniformInt(0, 255));
      }
      return noise;
    }
    default:  // splice two halves of different frames
      return bytes.substr(0, bytes.size() / 2) +
             Mutate(bytes, rng).substr(
                 0, static_cast<size_t>(rng->UniformInt(0, 64)));
  }
}

TEST(ProtocolFuzzTest, TenThousandMutatedFramesNeverCrashTheOneShotDecoder) {
  Rng rng(kFuzzSeed);
  std::map<std::string, int> outcomes;
  for (int i = 0; i < kFuzzFrames; ++i) {
    std::string bytes = Mutate(RandomValidFrame(&rng), &rng);
    Result<Frame> decoded = DecodeFrame(bytes);
    if (decoded.ok()) {
      // A surviving frame must re-encode to a decodable encoding (the
      // codec is self-consistent even for fuzz survivors).
      Result<Frame> again = DecodeFrame(EncodeFrame(decoded.value()));
      ASSERT_TRUE(again.ok()) << "iteration " << i;
      ASSERT_EQ(again.value(), decoded.value()) << "iteration " << i;
      ++outcomes["ok"];
    } else {
      // Every rejection is a structured Status with a non-empty message.
      ASSERT_FALSE(decoded.status().message().empty()) << "iteration " << i;
      ++outcomes[StatusCodeName(decoded.status().code())];
    }
  }
  // The mutator must actually exercise both accept and reject paths.
  int rejected = 0;
  for (const auto& [name, count] : outcomes) {
    SCOPED_TRACE(name);
    if (name != "ok") rejected += count;
  }
  EXPECT_GT(rejected, kFuzzFrames / 2);
  std::string summary;
  for (const auto& [name, count] : outcomes) {
    summary += name + "=" + std::to_string(count) + " ";
  }
  std::cout << "[fuzz] one-shot outcomes: " << summary << "\n";
}

TEST(ProtocolFuzzTest, TenThousandMutatedFramesNeverCrashTheStreamDecoder) {
  Rng rng(kFuzzSeed ^ 0x5A5A5A5Aull);
  uint64_t frames_out = 0, errors_out = 0, decoders = 0;
  FrameDecoder decoder;
  for (int i = 0; i < kFuzzFrames; ++i) {
    std::string bytes = Mutate(RandomValidFrame(&rng), &rng);
    // Feed in random chunks, draining between feeds like a real loop.
    size_t offset = 0;
    while (offset < bytes.size()) {
      const size_t chunk = static_cast<size_t>(rng.UniformInt(
          1, static_cast<int64_t>(bytes.size() - offset)));
      decoder.Feed(std::string_view(bytes).substr(offset, chunk));
      offset += chunk;
      while (std::optional<Result<Frame>> next = decoder.Next()) {
        if (next->ok()) {
          ++frames_out;
        } else {
          ASSERT_FALSE(next->status().message().empty()) << "iteration " << i;
          ++errors_out;
          break;  // terminal for this decoder
        }
      }
      if (decoder.failed()) break;
    }
    // A dead stream means a dead connection: start a fresh decoder, as the
    // server does for the next accepted socket.
    if (decoder.failed()) {
      decoder = FrameDecoder();
      ++decoders;
    }
    // Bounded buffering even under garbage: never more than one max frame.
    ASSERT_LE(decoder.buffered_bytes(), kDefaultMaxFrameBytes)
        << "iteration " << i;
  }
  EXPECT_GT(errors_out, 0u);
  std::cout << "[fuzz] stream outcomes: frames=" << frames_out
            << " errors=" << errors_out << " decoders_recycled=" << decoders
            << "\n";
}

}  // namespace
}  // namespace emaf::serve
