// models::registry tests: ModelConfig blob round-trips bit-exactly for all
// five families, CreateForecaster is byte-equivalent to the former inline
// construction sites (same Rng stream), and malformed configs are
// rejected with useful errors.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/a3tgcn.h"
#include "models/astgcn.h"
#include "models/lstm_forecaster.h"
#include "models/mtgnn.h"
#include "models/registry.h"
#include "models/var_baseline.h"
#include "models/var_forecaster.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace emaf::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 5;
constexpr int64_t kSteps = 3;

graph::AdjacencyMatrix TestGraph() {
  graph::AdjacencyMatrix adj(kVars);
  for (int64_t i = 0; i + 1 < kVars; ++i) {
    // Deliberately irrational-looking weights so adjacency round-tripping
    // is exercised on doubles without short decimal forms.
    adj.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
    adj.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
  }
  return adj;
}

ModelConfig BaseConfig(const std::string& family) {
  ModelConfig config;
  config.family = family;
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 2;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family != "LSTM" && family != "VAR") config.adjacency = TestGraph();
  return config;
}

std::vector<std::string> AllFamilies() {
  return {"LSTM", "VAR", "A3TGCN", "ASTGCN", "MTGNN"};
}

class RegistryFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryFamilyTest, ConfigBlobRoundTripsBitExactly) {
  ModelConfig config = BaseConfig(GetParam());
  config.lstm.dropout = 1.0 / 3.0;  // not exactly representable in decimal
  config.var.ridge = 0.123456789012345678;
  config.mtgnn.prop_beta = 1.0 / 7.0;
  std::string blob = SerializeModelConfig(config);
  Result<ModelConfig> parsed = ParseModelConfig(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  // Blob equality is the config-equality contract: a second serialization
  // of the parsed config must be byte-identical.
  EXPECT_EQ(SerializeModelConfig(parsed.value()), blob);
}

TEST_P(RegistryFamilyTest, CreateProducesWorkingForecaster) {
  Rng rng(31);
  ModelConfig config = BaseConfig(GetParam());
  Result<std::unique_ptr<Forecaster>> model = CreateForecaster(config, &rng);
  ASSERT_TRUE(model.ok()) << model.status().message();
  EXPECT_EQ(model.value()->name(), GetParam());
  EXPECT_EQ(model.value()->num_variables(), kVars);
  EXPECT_EQ(model.value()->input_length(), kSteps);
  model.value()->SetTraining(false);
  Tensor window = Tensor::Zeros(Shape{4, kSteps, kVars});
  EXPECT_EQ(model.value()->Forward(window).shape(), (Shape{4, kVars}));
}

TEST_P(RegistryFamilyTest, ParsedConfigBuildsByteIdenticalModel) {
  ModelConfig config = BaseConfig(GetParam());
  std::string blob = SerializeModelConfig(config);
  Result<ModelConfig> parsed = ParseModelConfig(blob);
  ASSERT_TRUE(parsed.ok());
  Rng rng_a(32);
  Rng rng_b(32);
  std::unique_ptr<Forecaster> a = CreateForecasterOrDie(config, &rng_a);
  std::unique_ptr<Forecaster> b =
      CreateForecasterOrDie(parsed.value(), &rng_b);
  a->SetTraining(false);
  b->SetTraining(false);
  Rng data_rng(33);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  // The graph models bake the normalized adjacency operator into constants
  // at construction, so this only holds when the adjacency round-tripped
  // bit-exactly through the blob.
  EXPECT_EQ(a->Forward(window).ToVector(), b->Forward(window).ToVector());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RegistryFamilyTest,
                         ::testing::ValuesIn(AllFamilies()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- Registry vs former inline construction ------------------------------

TEST(RegistryEquivalenceTest, LstmMatchesInlineConstruction) {
  ModelConfig config = BaseConfig("LSTM");
  Rng registry_rng(41);
  Rng inline_rng(41);
  std::unique_ptr<Forecaster> from_registry =
      CreateForecasterOrDie(config, &registry_rng);
  LstmForecaster inline_model(kVars, kSteps, config.lstm, &inline_rng);
  from_registry->SetTraining(false);
  inline_model.SetTraining(false);
  Rng data_rng(42);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_EQ(from_registry->Forward(window).ToVector(),
            inline_model.Forward(window).ToVector());
}

TEST(RegistryEquivalenceTest, MtgnnMatchesInlineConstruction) {
  ModelConfig config = BaseConfig("MTGNN");
  Rng registry_rng(43);
  Rng inline_rng(43);
  std::unique_ptr<Forecaster> from_registry =
      CreateForecasterOrDie(config, &registry_rng);
  graph::AdjacencyMatrix adj = TestGraph();
  Mtgnn inline_model(&adj, kVars, kSteps, config.mtgnn, &inline_rng);
  from_registry->SetTraining(false);
  inline_model.SetTraining(false);
  Rng data_rng(44);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_EQ(from_registry->Forward(window).ToVector(),
            inline_model.Forward(window).ToVector());
}

// --- VAR adapter ----------------------------------------------------------

TEST(VarForecasterTest, FitMatchesVarBaselinePredictions) {
  Rng data_rng(51);
  Tensor inputs = Tensor::Uniform(Shape{20, kSteps, kVars}, -1, 1, &data_rng);
  Tensor targets = Tensor::Uniform(Shape{20, kVars}, -1, 1, &data_rng);

  VarConfig config;
  config.ridge = 0.5;
  VarForecaster adapter(kVars, kSteps, config);
  adapter.Fit(inputs, targets);

  VarBaseline baseline(config.ridge);
  baseline.Fit(inputs, targets);

  Tensor window = Tensor::Uniform(Shape{6, kSteps, kVars}, -1, 1, &data_rng);
  tensor::NoGradGuard guard;
  EXPECT_EQ(adapter.Forward(window).ToVector(),
            baseline.Predict(window).ToVector());
}

TEST(VarForecasterTest, FitPreservesParameterPointers) {
  VarForecaster model(kVars, kSteps, VarConfig{});
  Tensor* before = model.NamedParameters().front().value;
  Rng data_rng(52);
  Tensor inputs = Tensor::Uniform(Shape{10, kSteps, kVars}, -1, 1, &data_rng);
  Tensor targets = Tensor::Uniform(Shape{10, kVars}, -1, 1, &data_rng);
  model.Fit(inputs, targets);
  // Fit must write coefficients in place: serialization and optimizers
  // hold NamedParameters pointers across calls.
  EXPECT_EQ(model.NamedParameters().front().value, before);
}

TEST(VarForecasterTest, UnfitModelForecastsZeros) {
  VarForecaster model(kVars, kSteps, VarConfig{});
  tensor::NoGradGuard guard;
  Tensor out = model.Forward(Tensor::Ones(Shape{2, kSteps, kVars}));
  for (double v : out.ToVector()) EXPECT_EQ(v, 0.0);
}

// --- Error paths ----------------------------------------------------------

TEST(RegistryErrorTest, UnknownFamilyIsRejected) {
  ModelConfig config = BaseConfig("LSTM");
  config.family = "TRANSFORMER";
  Rng rng(61);
  EXPECT_EQ(CreateForecaster(config, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryErrorTest, GraphModelsRequireAdjacency) {
  for (const std::string family : {"A3TGCN", "ASTGCN"}) {
    ModelConfig config = BaseConfig(family);
    config.adjacency.reset();
    Rng rng(62);
    EXPECT_EQ(CreateForecaster(config, &rng).status().code(),
              StatusCode::kInvalidArgument)
        << family;
  }
}

TEST(RegistryErrorTest, MtgnnWithoutGraphLearningRequiresAdjacency) {
  ModelConfig config = BaseConfig("MTGNN");
  config.mtgnn.use_graph_learning = false;
  config.adjacency.reset();
  Rng rng(63);
  EXPECT_EQ(CreateForecaster(config, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryErrorTest, AdjacencySizeMustMatchNumVariables) {
  ModelConfig config = BaseConfig("A3TGCN");
  config.adjacency = graph::AdjacencyMatrix(kVars + 1);
  Rng rng(64);
  EXPECT_EQ(CreateForecaster(config, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryErrorTest, NonPositiveDimensionsAreRejected) {
  ModelConfig config = BaseConfig("LSTM");
  config.input_length = 0;
  Rng rng(65);
  EXPECT_EQ(CreateForecaster(config, &rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryErrorTest, ParseRejectsUnknownKey) {
  std::string blob = SerializeModelConfig(BaseConfig("LSTM"));
  blob += "mystery_knob=1\n";
  EXPECT_EQ(ParseModelConfig(blob).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryErrorTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseModelConfig("not a config").ok());
}

}  // namespace
}  // namespace emaf::models
