#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

// Naive reference used to validate the optimized kernels.
Tensor ReferenceMatMul2d(const Tensor& a, const Tensor& b) {
  int64_t m = a.dim(0);
  int64_t k = a.dim(1);
  int64_t n = b.dim(1);
  Tensor out = Tensor::Zeros(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a.At({i, kk}) * b.At({kk, j});
      }
      out.Set({i, j}, acc);
    }
  }
  return out;
}

TEST(MatMulTest, SmallKnownValues) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<double>{58, 64, 139, 154}));
}

TEST(MatMulTest, IdentityIsNoOp) {
  Rng rng(1);
  Tensor a = Tensor::Uniform(Shape{4, 4}, -1, 1, &rng);
  Tensor c = MatMul(a, Tensor::Eye(4));
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(c.data()[i], a.data()[i], 1e-12);
  }
}

TEST(MatMulTest, MatchesReferenceOnVariousSizes) {
  Rng rng(2);
  for (auto [m, k, n] : std::vector<std::tuple<int64_t, int64_t, int64_t>>{
           {1, 1, 1}, {2, 5, 3}, {5, 2, 7}, {7, 7, 7}, {9, 3, 1}, {6, 8, 4}}) {
    Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
    Tensor b = Tensor::Uniform(Shape{k, n}, -2, 2, &rng);
    Tensor fast = MatMul(a, b);
    Tensor ref = ReferenceMatMul2d(a, b);
    for (int64_t i = 0; i < fast.NumElements(); ++i) {
      EXPECT_NEAR(fast.data()[i], ref.data()[i], 1e-10)
          << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
    }
  }
}

TEST(MatMulTest, BatchedSharedRight) {
  Rng rng(3);
  Tensor a = Tensor::Uniform(Shape{4, 3, 5}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{5, 2}, -1, 1, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{4, 3, 2}));
  for (int64_t batch = 0; batch < 4; ++batch) {
    Tensor a_slice = Select(a, 0, batch);
    Tensor ref = ReferenceMatMul2d(a_slice, b);
    Tensor got = Select(c, 0, batch);
    for (int64_t i = 0; i < ref.NumElements(); ++i) {
      EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-10);
    }
  }
}

TEST(MatMulTest, BatchedSharedLeft) {
  Rng rng(4);
  Tensor a = Tensor::Uniform(Shape{3, 4}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{5, 4, 2}, -1, 1, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{5, 3, 2}));
  for (int64_t batch = 0; batch < 5; ++batch) {
    Tensor ref = ReferenceMatMul2d(a, Select(b, 0, batch));
    Tensor got = Select(c, 0, batch);
    for (int64_t i = 0; i < ref.NumElements(); ++i) {
      EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-10);
    }
  }
}

TEST(MatMulTest, FullyBatchedBothSides) {
  Rng rng(5);
  Tensor a = Tensor::Uniform(Shape{2, 3, 3, 4}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{2, 3, 4, 2}, -1, 1, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 3, 2}));
  Tensor a00 = Select(Select(a, 0, 1), 0, 2);
  Tensor b00 = Select(Select(b, 0, 1), 0, 2);
  Tensor ref = ReferenceMatMul2d(a00, b00);
  Tensor got = Select(Select(c, 0, 1), 0, 2);
  for (int64_t i = 0; i < ref.NumElements(); ++i) {
    EXPECT_NEAR(got.data()[i], ref.data()[i], 1e-10);
  }
}

TEST(MatMulTest, BroadcastBatchDims) {
  Rng rng(6);
  Tensor a = Tensor::Uniform(Shape{1, 3, 4}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{5, 4, 2}, -1, 1, &rng);
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{5, 3, 2}));
}

TEST(MatMulDeathTest, InnerDimMismatch) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  Tensor b = Tensor::Zeros(Shape{4, 2});
  EXPECT_DEATH(MatMul(a, b), "inner dimension");
}

TEST(MatMulDeathTest, Rank1Rejected) {
  Tensor a = Tensor::Zeros(Shape{3});
  Tensor b = Tensor::Zeros(Shape{3, 2});
  EXPECT_DEATH(MatMul(a, b), "rank");
}

TEST(MatMulGradTest, TwoDee) {
  Rng rng(7);
  Tensor a = Tensor::Uniform(Shape{3, 4}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{4, 2}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(Mul(MatMul(in[0], in[1]), MatMul(in[0], in[1])));
      },
      {a, b});
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(MatMulGradTest, BatchedSharedRight) {
  Rng rng(8);
  Tensor a = Tensor::Uniform(Shape{3, 2, 4}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{4, 2}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(in[0], in[1]));
      },
      {a, b});
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(MatMulGradTest, BroadcastBatch) {
  Rng rng(9);
  Tensor a = Tensor::Uniform(Shape{1, 2, 3}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{4, 3, 2}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(Mul(MatMul(in[0], in[1]), MatMul(in[0], in[1])));
      },
      {a, b});
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(MatMulGradTest, ChainedProducts) {
  Rng rng(10);
  Tensor a = Tensor::Uniform(Shape{2, 3}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{3, 3}, -1, 1, &rng);
  Tensor c = Tensor::Uniform(Shape{3, 2}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        return Sum(MatMul(MatMul(in[0], in[1]), in[2]));
      },
      {a, b, c});
  EXPECT_TRUE(r.ok) << r.max_error;
}

}  // namespace
}  // namespace emaf::tensor
