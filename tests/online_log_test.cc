// ObservationLog suite (ctest labels: online, fast, fault). Covers the
// checksummed line codec, append/replay bit-exactness, crash recovery
// (torn tail truncated, mid-file corruption = kDataLoss, contiguous
// sequence numbers), width enforcement, tail windowing equivalence with
// ts::SlidingBuffer, and the online.append fault site.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "online/observation_log.h"
#include "ts/window.h"

namespace emaf::online {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<double> Row(int64_t seq, int64_t width) {
  std::vector<double> row(width);
  for (int64_t v = 0; v < width; ++v) {
    row[static_cast<size_t>(v)] = 0.1 * static_cast<double>(seq) +
                                  1e-3 * static_cast<double>(v) + 1.0 / 3.0;
  }
  return row;
}

TEST(ObservationLineTest, RoundTripsBitExactly) {
  const std::vector<double> values = {1.0 / 3.0, -2.718281828459045, 0.0,
                                      1e-300};
  const std::string line = EncodeObservationLine(41, values);
  Result<DecodedObservation> decoded = DecodeObservationLine(line);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().sequence, 41u);
  ASSERT_EQ(decoded.value().values.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded.value().values[i], values[i]) << "value " << i;
  }
}

TEST(ObservationLineTest, RejectsCorruptionByField) {
  const std::string line = EncodeObservationLine(7, std::vector<double>{1.0});
  // Flip one payload byte: CRC mismatch.
  std::string corrupt = line;
  corrupt[line.size() - 1] ^= 1;
  EXPECT_EQ(DecodeObservationLine(corrupt).status().code(),
            StatusCode::kDataLoss);
  // Break the CRC field itself.
  EXPECT_EQ(DecodeObservationLine("zzzz|v1|1|1.0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeObservationLine("no-delimiter").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ObservationLogTest, AppendsAndRepliesBitExactly) {
  const std::string dir = FreshDir("obslog_roundtrip");
  Result<ObservationLog> opened = ObservationLog::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ObservationLog& log = opened.value();
  for (int64_t seq = 1; seq <= 5; ++seq) {
    Result<uint64_t> assigned = log.Append("p01", Row(seq, 3));
    ASSERT_TRUE(assigned.ok()) << assigned.status().ToString();
    EXPECT_EQ(assigned.value(), static_cast<uint64_t>(seq));
  }
  EXPECT_EQ(log.rows("p01"), 5);
  EXPECT_EQ(log.last_sequence("p01"), 5u);
  Result<tensor::Tensor> replayed = log.Replay("p01");
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed.value().dim(0), 5);
  ASSERT_EQ(replayed.value().dim(1), 3);
  for (int64_t seq = 1; seq <= 5; ++seq) {
    const std::vector<double> expected = Row(seq, 3);
    for (int64_t v = 0; v < 3; ++v) {
      EXPECT_EQ(replayed.value().data()[(seq - 1) * 3 + v],
                expected[static_cast<size_t>(v)])
          << "row " << seq << " var " << v;
    }
  }
  EXPECT_EQ(log.Replay("nobody").status().code(), StatusCode::kNotFound);
}

TEST(ObservationLogTest, RecoveryReplaysIdentically) {
  const std::string dir = FreshDir("obslog_recovery");
  {
    Result<ObservationLog> opened = ObservationLog::Open(dir);
    ASSERT_TRUE(opened.ok());
    for (int64_t seq = 1; seq <= 8; ++seq) {
      ASSERT_TRUE(opened.value().Append("p02", Row(seq, 4)).ok());
    }
  }
  Result<ObservationLog> reopened = ObservationLog::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value().rows("p02"), 8);
  EXPECT_EQ(reopened.value().last_sequence("p02"), 8u);
  // Appends continue the recovered sequence, not restart it.
  Result<uint64_t> next = reopened.value().Append("p02", Row(9, 4));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 9u);
  Result<tensor::Tensor> replayed = reopened.value().Replay("p02");
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().dim(0), 9);
}

TEST(ObservationLogTest, TornTailIsTruncatedAndCounted) {
  const std::string dir = FreshDir("obslog_torn");
  {
    Result<ObservationLog> opened = ObservationLog::Open(dir);
    ASSERT_TRUE(opened.ok());
    for (int64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(opened.value().Append("p03", Row(seq, 2)).ok());
    }
  }
  // Simulate a crash mid-append: half a line at the end of the file.
  {
    std::ofstream out(dir + "/p03.obslog", std::ios::app);
    out << "deadbeef|v1|4|0.5";  // no newline, wrong CRC
  }
  Result<ObservationLog> recovered = ObservationLog::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().rows("p03"), 3);
  EXPECT_EQ(recovered.value().torn_tails_recovered(), 1);
  // The torn bytes are gone from disk: a new append lands cleanly and a
  // third recovery sees 4 intact rows.
  Result<uint64_t> next = recovered.value().Append("p03", Row(4, 2));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 4u);
  Result<ObservationLog> again = ObservationLog::Open(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().rows("p03"), 4);
  EXPECT_EQ(again.value().torn_tails_recovered(), 0);
}

TEST(ObservationLogTest, MidFileCorruptionIsDataLoss) {
  const std::string dir = FreshDir("obslog_corrupt");
  {
    Result<ObservationLog> opened = ObservationLog::Open(dir);
    ASSERT_TRUE(opened.ok());
    for (int64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(opened.value().Append("p04", Row(seq, 2)).ok());
    }
  }
  // Flip a byte in the middle line.
  const std::string path = dir + "/p04.obslog";
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();
  all[all.size() / 2] ^= 1;
  std::ofstream(path, std::ios::trunc) << all;
  Result<ObservationLog> recovered = ObservationLog::Open(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(recovered.status().message().find("p04"), std::string::npos);
}

TEST(ObservationLogTest, EnforcesRowWidthAndIds) {
  const std::string dir = FreshDir("obslog_width");
  Result<ObservationLog> opened =
      ObservationLog::Open(dir, ObservationLogOptions{.num_variables = 3});
  ASSERT_TRUE(opened.ok());
  ObservationLog& log = opened.value();
  EXPECT_EQ(log.Append("p05", Row(1, 2)).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(log.Append("p05", Row(1, 3)).ok());
  EXPECT_EQ(log.Append("p05", Row(2, 4)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append("", Row(1, 3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append("../escape", Row(1, 3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(log.Append("p05", std::vector<double>{}).status().code(),
            StatusCode::kInvalidArgument);
  // The failed appends left no trace.
  EXPECT_EQ(log.rows("p05"), 1);
  EXPECT_EQ(log.individual_ids(), std::vector<std::string>{"p05"});
}

TEST(ObservationLogTest, TailMatchesSlidingBuffer) {
  const std::string dir = FreshDir("obslog_tail");
  Result<ObservationLog> opened = ObservationLog::Open(dir);
  ASSERT_TRUE(opened.ok());
  ObservationLog& log = opened.value();
  ts::SlidingBuffer buffer(4, 3);
  for (int64_t seq = 1; seq <= 10; ++seq) {
    const std::vector<double> row = Row(seq, 3);
    ASSERT_TRUE(log.Append("p06", row).ok());
    buffer.Push(row);
  }
  Result<tensor::Tensor> tail = log.Tail("p06", 4);
  ASSERT_TRUE(tail.ok());
  const tensor::Tensor windowed = buffer.ToTensor();
  ASSERT_EQ(tail.value().dim(0), windowed.dim(0));
  ASSERT_EQ(tail.value().dim(1), windowed.dim(1));
  EXPECT_EQ(tail.value().ToVector(), windowed.ToVector());
  EXPECT_EQ(log.Tail("p06", 0).status().code(), StatusCode::kInvalidArgument);
}

TEST(ObservationLogTest, AppendFaultSiteFailsCleanly) {
  if (!fault::kFaultInjectionEnabled) GTEST_SKIP();
  const std::string dir = FreshDir("obslog_fault");
  Result<ObservationLog> opened = ObservationLog::Open(dir);
  ASSERT_TRUE(opened.ok());
  ObservationLog& log = opened.value();
  ASSERT_TRUE(log.Append("p07", Row(1, 2)).ok());
  ASSERT_TRUE(fault::Configure("online.append/p07=1", 1).ok());
  Result<uint64_t> faulted = log.Append("p07", Row(2, 2));
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(fault::Configure("", 0).ok());
  // Nothing was written; the next append takes the faulted row's slot.
  EXPECT_EQ(log.rows("p07"), 1);
  Result<uint64_t> retried = log.Append("p07", Row(2, 2));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value(), 2u);
}

}  // namespace
}  // namespace emaf::online
