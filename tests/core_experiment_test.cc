#include <gtest/gtest.h>

#include "core/experiment.h"

namespace emaf::core {
namespace {

// Tiny setup: 2 individuals, 6 variables, short series, few epochs, small
// models — exercises the full orchestration in seconds.
ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.generator.num_individuals = 2;
  config.generator.num_variables = 6;
  config.generator.days = 10;
  config.generator.seed = 17;
  config.train.epochs = 8;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 1;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 8;
  config.mtgnn.embedding_dim = 4;
  config.random_graph_repeats = 2;
  config.seed = 99;
  return config;
}

class ExperimentRunnerTest : public ::testing::Test {
 protected:
  ExperimentRunnerTest()
      : runner_(data::GenerateCohort(TinyConfig().generator), TinyConfig()) {}
  ExperimentRunner runner_;
};

TEST(ModelKindTest, Names) {
  EXPECT_EQ(ModelKindName(ModelKind::kLstm), "LSTM");
  EXPECT_EQ(ModelKindName(ModelKind::kA3tgcn), "A3TGCN");
  EXPECT_EQ(ModelKindName(ModelKind::kAstgcn), "ASTGCN");
  EXPECT_EQ(ModelKindName(ModelKind::kMtgnn), "MTGNN");
}

TEST(CellSpecTest, Labels) {
  CellSpec lstm;
  lstm.model = ModelKind::kLstm;
  EXPECT_EQ(lstm.Label(), "LSTM");

  CellSpec mtgnn;
  mtgnn.model = ModelKind::kMtgnn;
  mtgnn.metric = graph::GraphMetric::kCorrelation;
  EXPECT_EQ(mtgnn.Label(), "MTGNN_CORR");

  CellSpec learned;
  learned.model = ModelKind::kAstgcn;
  learned.metric = graph::GraphMetric::kKnn;
  learned.use_learned_graph = true;
  EXPECT_EQ(learned.Label(), "ASTGCN_kNN_learned");
}

TEST_F(ExperimentRunnerTest, StaticGraphRespectsGdt) {
  graph::AdjacencyMatrix sparse =
      runner_.BuildStaticGraph(0, graph::GraphMetric::kCorrelation, 0.2);
  graph::AdjacencyMatrix dense =
      runner_.BuildStaticGraph(0, graph::GraphMetric::kCorrelation, 1.0);
  // 6 nodes -> 15 pairs; GDT 0.2 keeps 3.
  EXPECT_EQ(sparse.NumUndirectedEdges(), 3);
  EXPECT_EQ(dense.NumUndirectedEdges(), 15);
}

TEST_F(ExperimentRunnerTest, StaticGraphIsDeterministic) {
  graph::AdjacencyMatrix a =
      runner_.BuildStaticGraph(1, graph::GraphMetric::kEuclidean, 0.4);
  graph::AdjacencyMatrix b =
      runner_.BuildStaticGraph(1, graph::GraphMetric::kEuclidean, 0.4);
  EXPECT_EQ(a, b);
}

TEST_F(ExperimentRunnerTest, RandomGraphVariesByRepeat) {
  graph::AdjacencyMatrix a =
      runner_.BuildStaticGraph(0, graph::GraphMetric::kRandom, 0.4, 0);
  graph::AdjacencyMatrix b =
      runner_.BuildStaticGraph(0, graph::GraphMetric::kRandom, 0.4, 1);
  EXPECT_FALSE(a == b);
  // Matched edge count: same GDT -> same number of edges as any metric.
  EXPECT_EQ(a.NumUndirectedEdges(), b.NumUndirectedEdges());
}

TEST_F(ExperimentRunnerTest, RunCellProducesPerIndividualScores) {
  CellSpec spec;
  spec.model = ModelKind::kLstm;
  spec.input_length = 2;
  CellResult result = runner_.RunCellOrDie(spec);
  ASSERT_EQ(result.per_individual_mse.size(), 2u);
  for (double mse : result.per_individual_mse) {
    EXPECT_GT(mse, 0.0);
    EXPECT_TRUE(std::isfinite(mse));
  }
  EXPECT_EQ(result.stats.count, 2);
  EXPECT_NEAR(result.stats.mean,
              (result.per_individual_mse[0] + result.per_individual_mse[1]) / 2,
              1e-12);
}

TEST_F(ExperimentRunnerTest, RunCellIsReproducible) {
  CellSpec spec;
  spec.model = ModelKind::kAstgcn;
  spec.metric = graph::GraphMetric::kEuclidean;
  spec.input_length = 2;
  CellResult a = runner_.RunCellOrDie(spec);
  CellResult b = runner_.RunCellOrDie(spec);
  EXPECT_EQ(a.per_individual_mse, b.per_individual_mse);
}

TEST_F(ExperimentRunnerTest, LearnedGraphsAreCachedAndReused) {
  const LearnedGraphSet& first =
      runner_.LearnedGraphsOrDie(graph::GraphMetric::kCorrelation, 0.2, 2);
  ASSERT_EQ(first.graphs.size(), 2u);
  ASSERT_EQ(first.mtgnn_mse.size(), 2u);
  const LearnedGraphSet& second =
      runner_.LearnedGraphsOrDie(graph::GraphMetric::kCorrelation, 0.2, 2);
  EXPECT_EQ(&first, &second);  // same cached object
  // Correlation with the static prior is a valid correlation value.
  EXPECT_GE(first.mean_static_correlation, -1.0);
  EXPECT_LE(first.mean_static_correlation, 1.0);
}

TEST_F(ExperimentRunnerTest, MtgnnCellReusesLearnedCache) {
  CellSpec spec;
  spec.model = ModelKind::kMtgnn;
  spec.metric = graph::GraphMetric::kDtw;
  spec.input_length = 2;
  CellResult result = runner_.RunCellOrDie(spec);
  const LearnedGraphSet& cache =
      runner_.LearnedGraphsOrDie(graph::GraphMetric::kDtw, 0.2, 2);
  EXPECT_EQ(result.per_individual_mse, cache.mtgnn_mse);
}

TEST_F(ExperimentRunnerTest, LearnedGraphCellRuns) {
  CellSpec spec;
  spec.model = ModelKind::kA3tgcn;
  spec.metric = graph::GraphMetric::kCorrelation;
  spec.input_length = 2;
  spec.use_learned_graph = true;
  CellResult result = runner_.RunCellOrDie(spec);
  EXPECT_EQ(result.per_individual_mse.size(), 2u);
}

TEST_F(ExperimentRunnerTest, RelativeChangeComputation) {
  CellResult a;
  a.per_individual_mse = {1.0, 2.0};
  CellResult b;
  b.per_individual_mse = {0.9, 2.2};
  // (-10% + 10%) / 2 = 0.
  EXPECT_NEAR(ExperimentRunner::MeanRelativeChangePercent(a, b), 0.0, 1e-12);
  CellResult c;
  c.per_individual_mse = {0.8, 1.6};
  EXPECT_NEAR(ExperimentRunner::MeanRelativeChangePercent(a, c), -20.0, 1e-12);
}

TEST(RelativeChangeDeathTest, MismatchedCohorts) {
  CellResult a;
  a.per_individual_mse = {1.0};
  CellResult b;
  b.per_individual_mse = {1.0, 2.0};
  EXPECT_DEATH(ExperimentRunner::MeanRelativeChangePercent(a, b), "");
}

}  // namespace
}  // namespace emaf::core
