#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

TEST(ReshapeTest, PreservesValuesSharesStorage) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Reshape(a, Shape{3, 2});
  EXPECT_EQ(b.ToVector(), a.ToVector());
  b.data()[0] = 100;
  EXPECT_EQ(a.At({0, 0}), 100);  // view semantics
}

TEST(ReshapeDeathTest, ElementCountMustMatch) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(Reshape(a, Shape{7}), "reshape");
}

TEST(ReshapeTest, GradFlowsThrough) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4}).SetRequiresGrad(true);
  Sum(Mul(Reshape(x, Shape{4}), Tensor::FromVector(Shape{4}, {1, 2, 3, 4})))
      .Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{1, 2, 3, 4}));
  EXPECT_EQ(x.grad().shape(), (Shape{2, 2}));
}

TEST(PermuteTest, TransposesMatrix) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Permute(a, {1, 0});
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.ToVector(), (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

TEST(PermuteTest, ThreeAxisRotation) {
  Tensor a = Tensor::Arange(24);
  a = Reshape(a, Shape{2, 3, 4});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.At({1, 0, 2}), a.At({0, 2, 1}));
  EXPECT_EQ(p.At({3, 1, 0}), a.At({1, 0, 3}));
}

TEST(PermuteTest, NegativeAxes) {
  Tensor a = Tensor::Zeros(Shape{2, 3, 4});
  Tensor p = Permute(a, {-1, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
}

TEST(PermuteDeathTest, DuplicateAxis) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(Permute(a, {0, 0}), "duplicate");
}

TEST(PermuteTest, RoundTripGrad) {
  Rng rng(7);
  Tensor x = Tensor::Uniform(Shape{2, 3, 4}, -1, 1, &rng);
  Tensor w = Tensor::Uniform(Shape{4, 2, 3}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Mul(Permute(in[0], {2, 0, 1}), w));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(TransposeTest, SwapsTwoAxes) {
  Tensor a = Tensor::Zeros(Shape{2, 3, 4});
  EXPECT_EQ(Transpose(a, 0, 2).shape(), (Shape{4, 3, 2}));
  EXPECT_EQ(TransposeLast2(a).shape(), (Shape{2, 4, 3}));
}

TEST(SqueezeUnsqueezeTest, Shapes) {
  Tensor a = Tensor::Zeros(Shape{2, 1, 3});
  EXPECT_EQ(Squeeze(a, 1).shape(), (Shape{2, 3}));
  EXPECT_EQ(Unsqueeze(a, 0).shape(), (Shape{1, 2, 1, 3}));
  EXPECT_EQ(Unsqueeze(a, 3).shape(), (Shape{2, 1, 3, 1}));
  EXPECT_EQ(Unsqueeze(a, -1).shape(), (Shape{2, 1, 3, 1}));
}

TEST(SqueezeDeathTest, NonUnitAxis) {
  Tensor a = Tensor::Zeros(Shape{2, 3});
  EXPECT_DEATH(Squeeze(a, 1), "non-unit");
}

TEST(SliceTest, MiddleOfAxis) {
  Tensor a = Tensor::FromVector(Shape{4}, {0, 1, 2, 3});
  EXPECT_EQ(Slice(a, 0, 1, 3).ToVector(), (std::vector<double>{1, 2}));
}

TEST(SliceTest, InnerAxis) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = Slice(a, 1, 0, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.ToVector(), (std::vector<double>{1, 2, 4, 5}));
}

TEST(SliceTest, NegativeIndices) {
  Tensor a = Tensor::FromVector(Shape{4}, {0, 1, 2, 3});
  EXPECT_EQ(Slice(a, 0, -2, 4).ToVector(), (std::vector<double>{2, 3}));
}

TEST(SliceTest, GradScattersIntoRegion) {
  Tensor x = Tensor::Zeros(Shape{4}).SetRequiresGrad(true);
  Sum(Slice(x, 0, 1, 3)).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{0, 1, 1, 0}));
}

TEST(SelectTest, DropsAxis) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Select(a, 0, 1);
  EXPECT_EQ(row.shape(), (Shape{3}));
  EXPECT_EQ(row.ToVector(), (std::vector<double>{4, 5, 6}));
  Tensor col = Select(a, 1, -1);
  EXPECT_EQ(col.ToVector(), (std::vector<double>{3, 6}));
}

TEST(CatTest, FirstAxis) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {3, 4, 5, 6});
  Tensor c = Cat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.ToVector(), (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(CatTest, InnerAxis) {
  Tensor a = Tensor::FromVector(Shape{2, 1}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {3, 4, 5, 6});
  Tensor c = Cat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.ToVector(), (std::vector<double>{1, 3, 4, 2, 5, 6}));
}

TEST(CatDeathTest, MismatchedShapes) {
  Tensor a = Tensor::Zeros(Shape{2, 2});
  Tensor b = Tensor::Zeros(Shape{3, 3});
  EXPECT_DEATH(Cat({a, b}, 0), "");
}

TEST(CatTest, GradSplitsBack) {
  Tensor a = Tensor::Zeros(Shape{2}).SetRequiresGrad(true);
  Tensor b = Tensor::Zeros(Shape{3}).SetRequiresGrad(true);
  Tensor weights = Tensor::FromVector(Shape{5}, {1, 2, 3, 4, 5});
  Sum(Mul(Cat({a, b}, 0), weights)).Backward();
  EXPECT_EQ(a.grad().ToVector(), (std::vector<double>{1, 2}));
  EXPECT_EQ(b.grad().ToVector(), (std::vector<double>{3, 4, 5}));
}

TEST(StackTest, NewAxis) {
  Tensor a = Tensor::FromVector(Shape{2}, {1, 2});
  Tensor b = Tensor::FromVector(Shape{2}, {3, 4});
  Tensor s0 = Stack({a, b}, 0);
  EXPECT_EQ(s0.shape(), (Shape{2, 2}));
  EXPECT_EQ(s0.ToVector(), (std::vector<double>{1, 2, 3, 4}));
  Tensor s1 = Stack({a, b}, 1);
  EXPECT_EQ(s1.shape(), (Shape{2, 2}));
  EXPECT_EQ(s1.ToVector(), (std::vector<double>{1, 3, 2, 4}));
}

TEST(PadTest, ZeroPads) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor p = Pad(a, {{0, 1}, {2, 0}});
  EXPECT_EQ(p.shape(), (Shape{2, 4}));
  EXPECT_EQ(p.ToVector(), (std::vector<double>{0, 0, 1, 2, 0, 0, 0, 0}));
}

TEST(PadTest, NoPaddingIsIdentity) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(Pad(a, {{0, 0}, {0, 0}}).ToVector(), a.ToVector());
}

TEST(PadTest, GradSlicesInterior) {
  Tensor x = Tensor::Zeros(Shape{2}).SetRequiresGrad(true);
  Tensor padded = Pad(x, {{1, 1}});
  Sum(Mul(padded, Tensor::FromVector(Shape{4}, {10, 1, 2, 10}))).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{1, 2}));
}

TEST(BroadcastToTest, ExpandsValues) {
  Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor b = BroadcastTo(a, Shape{3, 2});
  EXPECT_EQ(b.ToVector(), (std::vector<double>{1, 2, 1, 2, 1, 2}));
}

TEST(BroadcastToTest, GradSumsBack) {
  Tensor x = Tensor::FromVector(Shape{2}, {0, 0}).SetRequiresGrad(true);
  Sum(BroadcastTo(x, Shape{3, 2})).Backward();
  EXPECT_EQ(x.grad().ToVector(), (std::vector<double>{3, 3}));
}

TEST(ShapeOpsGradTest, ComposedPipeline) {
  Rng rng(11);
  Tensor x = Tensor::Uniform(Shape{2, 3, 4}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [](const std::vector<Tensor>& in) {
        Tensor t = Permute(in[0], {1, 0, 2});   // [3, 2, 4]
        t = Slice(t, 2, 1, 3);                  // [3, 2, 2]
        t = Reshape(t, Shape{3, 4});
        t = Cat({t, t}, 1);                     // [3, 8]
        return Sum(Mul(t, t));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.max_error;
}

}  // namespace
}  // namespace emaf::tensor
