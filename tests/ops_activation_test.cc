#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

TEST(ReluTest, Values) {
  Tensor x = Tensor::FromVector(Shape{4}, {-2, -0.5, 0, 3});
  EXPECT_EQ(Relu(x).ToVector(), (std::vector<double>{0, 0, 0, 3}));
}

TEST(LeakyReluTest, Values) {
  Tensor x = Tensor::FromVector(Shape{3}, {-2, 0, 4});
  EXPECT_EQ(LeakyRelu(x, 0.1).ToVector(), (std::vector<double>{-0.2, 0, 4}));
}

TEST(EluTest, Values) {
  Tensor x = Tensor::FromVector(Shape{2}, {1.0, -1.0});
  std::vector<double> y = Elu(x, 1.0).ToVector();
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_NEAR(y[1], std::exp(-1.0) - 1.0, 1e-12);
}

TEST(SigmoidTest, KnownValues) {
  Tensor x = Tensor::FromVector(Shape{3}, {0.0, 100.0, -100.0});
  std::vector<double> y = Sigmoid(x).ToVector();
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
  EXPECT_NEAR(y[2], 0.0, 1e-12);
}

TEST(SigmoidTest, SymmetricAroundZero) {
  Tensor x = Tensor::FromVector(Shape{1}, {1.7});
  Tensor nx = Tensor::FromVector(Shape{1}, {-1.7});
  EXPECT_NEAR(Sigmoid(x).item() + Sigmoid(nx).item(), 1.0, 1e-12);
}

TEST(TanhTest, KnownValues) {
  Tensor x = Tensor::FromVector(Shape{2}, {0.0, 1.0});
  std::vector<double> y = Tanh(x).ToVector();
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_NEAR(y[1], std::tanh(1.0), 1e-12);
}

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(1);
  Tensor x = Tensor::Uniform(Shape{3, 5}, -3, 3, &rng);
  Tensor y = Softmax(x, 1);
  for (int64_t i = 0; i < 3; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 5; ++j) total += y.At({i, j});
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(SoftmaxTest, InvariantToShift) {
  Tensor x = Tensor::FromVector(Shape{1, 3}, {1, 2, 3});
  Tensor shifted = Tensor::FromVector(Shape{1, 3}, {101, 102, 103});
  std::vector<double> a = Softmax(x, 1).ToVector();
  std::vector<double> b = Softmax(shifted, 1).ToVector();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(SoftmaxTest, HandlesExtremeValuesStably) {
  Tensor x = Tensor::FromVector(Shape{1, 2}, {1000.0, -1000.0});
  std::vector<double> y = Softmax(x, 1).ToVector();
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 0.0, 1e-12);
}

TEST(SoftmaxTest, AlongFirstAxis) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {0, 0, 0, 0});
  Tensor y = Softmax(x, 0);
  for (double v : y.ToVector()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(2);
  Tensor x = Tensor::Uniform(Shape{2, 4}, -2, 2, &rng);
  Tensor ls = LogSoftmax(x, 1);
  Tensor s = Softmax(x, 1);
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-10);
  }
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::Uniform(Shape{10}, -1, 1, &rng);
  Tensor y = Dropout(x, 0.5, /*training=*/false, &rng);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(DropoutTest, ZeroProbabilityIsIdentity) {
  Rng rng(3);
  Tensor x = Tensor::Uniform(Shape{10}, -1, 1, &rng);
  Tensor y = Dropout(x, 0.0, /*training=*/true, &rng);
  EXPECT_EQ(y.ToVector(), x.ToVector());
}

TEST(DropoutTest, TrainingZerosAndRescales) {
  Rng rng(4);
  Tensor x = Tensor::Ones(Shape{10000});
  Tensor y = Dropout(x, 0.3, /*training=*/true, &rng);
  int64_t zeros = 0;
  double total = 0.0;
  for (double v : y.ToVector()) {
    if (v == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0 / 0.7, 1e-12);
    }
    total += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Inverted dropout keeps the expectation.
  EXPECT_NEAR(total / 10000.0, 1.0, 0.05);
}

TEST(DropoutTest, GradZeroWhereDropped) {
  Rng rng(5);
  Tensor x = Tensor::Ones(Shape{1000}).SetRequiresGrad(true);
  Tensor y = Dropout(x, 0.5, /*training=*/true, &rng);
  Sum(y).Backward();
  const double* yv = y.data();
  const double* g = x.grad().data();
  for (int64_t i = 0; i < 1000; ++i) {
    if (yv[i] == 0.0) {
      EXPECT_EQ(g[i], 0.0);
    } else {
      EXPECT_NEAR(g[i], 2.0, 1e-12);
    }
  }
}

struct ActGradCase {
  std::string name;
  std::function<Tensor(const Tensor&)> fn;
};

class ActivationGradTest : public ::testing::TestWithParam<ActGradCase> {};

TEST_P(ActivationGradTest, MatchesFiniteDifferences) {
  Rng rng(6);
  // Keep samples away from zero for the kinked activations.
  Tensor x = Tensor::Uniform(Shape{3, 4}, 0.1, 2.0, &rng);
  Tensor x_neg = Tensor::Uniform(Shape{3, 4}, -2.0, -0.1, &rng);
  for (const Tensor& input : {x, x_neg}) {
    GradCheckResult r = CheckGradients(
        [&](const std::vector<Tensor>& in) {
          return Sum(GetParam().fn(in[0]));
        },
        {input.Clone()}, 1e-6, 1e-6);
    EXPECT_TRUE(r.ok) << GetParam().name << " err " << r.max_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllActivations, ActivationGradTest,
    ::testing::Values(
        ActGradCase{"Relu", [](const Tensor& x) { return Relu(x); }},
        ActGradCase{"LeakyRelu",
                    [](const Tensor& x) { return LeakyRelu(x, 0.05); }},
        ActGradCase{"Elu", [](const Tensor& x) { return Elu(x, 1.0); }},
        ActGradCase{"Sigmoid", [](const Tensor& x) { return Sigmoid(x); }},
        ActGradCase{"Tanh", [](const Tensor& x) { return Tanh(x); }},
        ActGradCase{"Softmax0",
                    [](const Tensor& x) {
                      return Mul(Softmax(x, 0), Tensor::FromScalar(1.0));
                    }},
        ActGradCase{"Softmax1",
                    [](const Tensor& x) { return Softmax(x, 1); }},
        ActGradCase{"LogSoftmax1",
                    [](const Tensor& x) { return LogSoftmax(x, 1); }}),
    [](const ::testing::TestParamInfo<ActGradCase>& info) {
      return info.param.name;
    });

TEST(SoftmaxGradTest, WeightedOutputAgainstFiniteDifferences) {
  // Weighted sum (not plain Sum) so the softmax Jacobian actually matters:
  // sum of softmax outputs is constant 1 and its gradient vanishes.
  Rng rng(7);
  Tensor x = Tensor::Uniform(Shape{2, 5}, -1, 1, &rng);
  Tensor w = Tensor::Uniform(Shape{2, 5}, -1, 1, &rng);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Mul(Softmax(in[0], 1), w));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(LossTest, MseKnownValue) {
  Tensor pred = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor target = Tensor::FromVector(Shape{2, 2}, {1, 0, 3, 8});
  // Squared errors: 0, 4, 0, 16 -> mean 5.
  EXPECT_DOUBLE_EQ(MseLoss(pred, target).item(), 5.0);
}

TEST(LossTest, MaeKnownValue) {
  Tensor pred = Tensor::FromVector(Shape{2}, {1, -1});
  Tensor target = Tensor::FromVector(Shape{2}, {4, 1});
  EXPECT_DOUBLE_EQ(MaeLoss(pred, target).item(), 2.5);
}

TEST(LossTest, HuberMatchesQuadraticInside) {
  Tensor pred = Tensor::FromVector(Shape{1}, {0.5});
  Tensor target = Tensor::FromVector(Shape{1}, {0.0});
  EXPECT_NEAR(HuberLoss(pred, target, 1.0).item(), 0.5 * 0.25, 1e-12);
}

TEST(LossTest, HuberMatchesLinearOutside) {
  Tensor pred = Tensor::FromVector(Shape{1}, {3.0});
  Tensor target = Tensor::FromVector(Shape{1}, {0.0});
  // delta * |d| - delta^2 / 2 = 1 * 3 - 0.5.
  EXPECT_NEAR(HuberLoss(pred, target, 1.0).item(), 2.5, 1e-12);
}

TEST(LossGradTest, AllLossesAgainstFiniteDifferences) {
  Rng rng(8);
  Tensor pred = Tensor::Uniform(Shape{3, 2}, -2, 2, &rng);
  Tensor target = Tensor::Uniform(Shape{3, 2}, -2, 2, &rng);
  for (auto fn : std::vector<std::function<Tensor(const Tensor&, const Tensor&)>>{
           [](const Tensor& p, const Tensor& t) { return MseLoss(p, t); },
           [](const Tensor& p, const Tensor& t) { return MaeLoss(p, t); },
           [](const Tensor& p, const Tensor& t) {
             return HuberLoss(p, t, 1.0);
           }}) {
    GradCheckResult r = CheckGradients(
        [&](const std::vector<Tensor>& in) { return fn(in[0], target); },
        {pred.Clone()}, 1e-6, 1e-5);
    EXPECT_TRUE(r.ok) << r.max_error;
  }
}

TEST(LossDeathTest, ShapeMismatch) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = Tensor::Zeros(Shape{3});
  EXPECT_DEATH(MseLoss(a, b), "mismatch");
}

}  // namespace
}  // namespace emaf::tensor
