#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(GruCellTest, OutputShape) {
  Rng rng(1);
  GruCell cell(4, 8, &rng);
  Tensor x = Tensor::Zeros(Shape{3, 4});
  Tensor h = Tensor::Zeros(Shape{3, 8});
  EXPECT_EQ(cell.Forward(x, h).shape(), (Shape{3, 8}));
}

TEST(GruCellTest, ZeroInputZeroStateIsBounded) {
  Rng rng(2);
  GruCell cell(2, 4, &rng);
  Tensor h = cell.Forward(Tensor::Zeros(Shape{1, 2}), Tensor::Zeros(Shape{1, 4}));
  for (double v : h.ToVector()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GruCellTest, DeterministicForSameSeed) {
  Rng rng_a(3);
  Rng rng_b(3);
  GruCell a(2, 4, &rng_a);
  GruCell b(2, 4, &rng_b);
  Rng data_rng(4);
  Tensor x = Tensor::Uniform(Shape{2, 2}, -1, 1, &data_rng);
  Tensor h = Tensor::Zeros(Shape{2, 4});
  EXPECT_EQ(a.Forward(x, h).ToVector(), b.Forward(x, h).ToVector());
}

TEST(GruCellTest, GradientsReachAllParameters) {
  Rng rng(5);
  GruCell cell(3, 4, &rng);
  Tensor x = Tensor::Ones(Shape{2, 3});
  Tensor h = Tensor::Ones(Shape{2, 4});
  tensor::Sum(cell.Forward(x, h)).Backward();
  for (Tensor* p : cell.Parameters()) {
    EXPECT_TRUE(p->grad().defined());
  }
}

TEST(LstmCellTest, StateShapes) {
  Rng rng(6);
  LstmCell cell(5, 7, &rng);
  LstmCell::State state{Tensor::Zeros(Shape{2, 7}), Tensor::Zeros(Shape{2, 7})};
  LstmCell::State next = cell.Forward(Tensor::Zeros(Shape{2, 5}), state);
  EXPECT_EQ(next.h.shape(), (Shape{2, 7}));
  EXPECT_EQ(next.c.shape(), (Shape{2, 7}));
}

TEST(LstmCellTest, HiddenIsBoundedByTanh) {
  Rng rng(7);
  LstmCell cell(2, 4, &rng);
  LstmCell::State state{Tensor::Zeros(Shape{1, 4}), Tensor::Zeros(Shape{1, 4})};
  Rng data_rng(8);
  for (int step = 0; step < 20; ++step) {
    Tensor x = Tensor::Uniform(Shape{1, 2}, -5, 5, &data_rng);
    state = cell.Forward(x, state);
    for (double v : state.h.ToVector()) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(LstmTest, SequenceOutputShapes) {
  Rng rng(9);
  Lstm lstm(4, 6, &rng);
  Tensor sequence = Tensor::Zeros(Shape{3, 5, 4});
  EXPECT_EQ(lstm.Forward(sequence).shape(), (Shape{3, 5, 6}));
  EXPECT_EQ(lstm.ForwardLast(sequence).shape(), (Shape{3, 6}));
}

TEST(LstmTest, ForwardLastMatchesLastOfForward) {
  Rng rng(10);
  Lstm lstm(3, 4, &rng);
  Rng data_rng(11);
  Tensor sequence = Tensor::Uniform(Shape{2, 4, 3}, -1, 1, &data_rng);
  Tensor all = lstm.Forward(sequence);
  Tensor last = lstm.ForwardLast(sequence);
  Tensor expected = tensor::Select(all, 1, 3);
  EXPECT_EQ(last.ToVector(), expected.ToVector());
}

TEST(LstmTest, SingleStepSequenceWorks) {
  Rng rng(12);
  Lstm lstm(3, 4, &rng);
  Tensor sequence = Tensor::Zeros(Shape{2, 1, 3});
  EXPECT_EQ(lstm.Forward(sequence).shape(), (Shape{2, 1, 4}));
}

TEST(LstmTest, CanFitTinyRegression) {
  // Learn y = mean of last input vector: loss should drop markedly.
  Rng rng(13);
  Lstm lstm(2, 8, &rng);
  Linear head(8, 1, true, &rng);
  std::vector<tensor::Tensor*> params = lstm.Parameters();
  for (tensor::Tensor* p : head.Parameters()) params.push_back(p);
  AdamOptions opts;
  opts.lr = 0.02;
  Adam adam(params, opts);

  Rng data_rng(14);
  Tensor x = Tensor::Uniform(Shape{16, 3, 2}, -1, 1, &data_rng);
  Tensor target = tensor::Mean(tensor::Select(x, 1, 2), {1}, true);  // [16,1]

  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 150; ++epoch) {
    adam.ZeroGrad();
    Tensor pred = head.Forward(lstm.ForwardLast(x));
    Tensor loss = tensor::MseLoss(pred, target);
    loss.Backward();
    adam.Step();
    if (epoch == 0) first_loss = loss.item();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 0.2 * first_loss);
}

TEST(LstmTest, GradCheckThroughTime) {
  Rng rng(15);
  Lstm lstm(2, 3, &rng);
  Rng data_rng(16);
  Tensor x = Tensor::Uniform(Shape{2, 3, 2}, -1, 1, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor h = lstm.ForwardLast(in[0]);
        return tensor::Sum(tensor::Mul(h, h));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(LstmDeathTest, WrongInputRank) {
  Rng rng(17);
  Lstm lstm(3, 4, &rng);
  EXPECT_DEATH(lstm.Forward(Tensor::Zeros(Shape{3, 4})), "");
}

}  // namespace
}  // namespace emaf::nn
