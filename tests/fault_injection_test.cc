// Unit tests for emaf::fault (src/common/fault_injection.h): spec
// parsing, site matching, deterministic decisions, trigger bounds.
//
// Configure() replaces process-global state; every test ends by clearing
// it so suites can run in any order. In an -DEMAF_FAULT_INJECTION=OFF
// build the stubs make everything inert, so the behavioral tests skip.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace emaf::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionEnabled) {
      GTEST_SKIP() << "fault injection compiled out";
    }
    ASSERT_TRUE(Configure("", 0).ok());
  }
  void TearDown() override {
    if (kFaultInjectionEnabled) {
      ASSERT_TRUE(Configure("", 0).ok());
    }
  }
};

TEST_F(FaultInjectionTest, ParseEmptySpecYieldsNoSites) {
  Result<std::vector<SiteSpec>> parsed = ParseFaultSpec("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST_F(FaultInjectionTest, ParseFullSpec) {
  Result<std::vector<SiteSpec>> parsed =
      ParseFaultSpec("trainer.step=1,graph.construction=0.25:3");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].site, "trainer.step");
  EXPECT_DOUBLE_EQ(parsed.value()[0].probability, 1.0);
  EXPECT_EQ(parsed.value()[0].max_triggers, -1);
  EXPECT_EQ(parsed.value()[1].site, "graph.construction");
  EXPECT_DOUBLE_EQ(parsed.value()[1].probability, 0.25);
  EXPECT_EQ(parsed.value()[1].max_triggers, 3);
}

TEST_F(FaultInjectionTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpec("no_equals").ok());
  EXPECT_FALSE(ParseFaultSpec("site=").ok());
  EXPECT_FALSE(ParseFaultSpec("site=abc").ok());
  EXPECT_FALSE(ParseFaultSpec("site=2.0").ok());      // prob > 1
  EXPECT_FALSE(ParseFaultSpec("site=-0.5").ok());     // prob < 0
  EXPECT_FALSE(ParseFaultSpec("site=1:zero").ok());   // bad trigger count
  EXPECT_FALSE(ParseFaultSpec("=1").ok());            // empty site
}

TEST_F(FaultInjectionTest, InactiveByDefault) {
  EXPECT_FALSE(Active());
  EXPECT_FALSE(ShouldFail("anything"));
}

TEST_F(FaultInjectionTest, ProbabilityOneAlwaysFires) {
  ASSERT_TRUE(Configure("always=1", 0).ok());
  EXPECT_TRUE(Active());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ShouldFail("always"));
  EXPECT_FALSE(ShouldFail("other.site"));
}

TEST_F(FaultInjectionTest, ProbabilityZeroNeverFires) {
  ASSERT_TRUE(Configure("never=0", 0).ok());
  EXPECT_TRUE(Active());  // configured, even if it cannot fire
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ShouldFail("never"));
}

TEST_F(FaultInjectionTest, PrefixMatchesAtSlashBoundaryOnly) {
  ASSERT_TRUE(Configure("trainer.step/A3TGCN_CORR=1", 0).ok());
  EXPECT_TRUE(ShouldFail("trainer.step/A3TGCN_CORR"));
  EXPECT_TRUE(ShouldFail("trainer.step/A3TGCN_CORR/i0"));
  EXPECT_FALSE(ShouldFail("trainer.step/A3TGCN_CORR_learned"));
  EXPECT_FALSE(ShouldFail("trainer.step"));
  EXPECT_FALSE(ShouldFail("trainer.step/LSTM"));
}

TEST_F(FaultInjectionTest, LongestMatchingEntryWins) {
  // Broad entry fires everything EXCEPT the narrowed individual.
  ASSERT_TRUE(Configure("trainer.step=1,trainer.step/LSTM/i1=0", 0).ok());
  EXPECT_TRUE(ShouldFail("trainer.step/LSTM/i0"));
  EXPECT_FALSE(ShouldFail("trainer.step/LSTM/i1"));
  EXPECT_TRUE(ShouldFail("trainer.step/MTGNN_CORR/i7"));
}

TEST_F(FaultInjectionTest, TokenDecisionsAreDeterministic) {
  ASSERT_TRUE(Configure("p=0.5", 42).ok());
  std::vector<bool> first;
  for (uint64_t t = 0; t < 64; ++t) first.push_back(ShouldFail("p", t));
  // Same seed, same tokens -> same decisions (schedule-independent).
  ASSERT_TRUE(Configure("p=0.5", 42).ok());
  for (uint64_t t = 0; t < 64; ++t) {
    EXPECT_EQ(ShouldFail("p", t), first[static_cast<size_t>(t)]) << t;
  }
  // A fair coin over 64 tokens should land well away from both extremes.
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
}

TEST_F(FaultInjectionTest, SeedChangesTokenDecisions) {
  ASSERT_TRUE(Configure("p=0.5", 1).ok());
  std::vector<bool> a;
  for (uint64_t t = 0; t < 64; ++t) a.push_back(ShouldFail("p", t));
  ASSERT_TRUE(Configure("p=0.5", 2).ok());
  int differing = 0;
  for (uint64_t t = 0; t < 64; ++t) {
    if (ShouldFail("p", t) != a[static_cast<size_t>(t)]) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST_F(FaultInjectionTest, MaxTriggersBoundsFirings) {
  ASSERT_TRUE(Configure("bounded=1:3", 0).ok());
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += ShouldFail("bounded") ? 1 : 0;
  EXPECT_EQ(fired, 3);
  // Exhausted entries stay exhausted.
  EXPECT_FALSE(ShouldFail("bounded"));
}

TEST_F(FaultInjectionTest, CounterDecisionsAdvancePerEntry) {
  // With p=0.5 and a counter token, consecutive calls must not be
  // perfectly correlated: over 64 calls we expect a mix.
  ASSERT_TRUE(Configure("c=0.5", 7).ok());
  int fired = 0;
  for (int i = 0; i < 64; ++i) fired += ShouldFail("c") ? 1 : 0;
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
}

TEST_F(FaultInjectionTest, ConfigureRejectsBadSpec) {
  EXPECT_FALSE(Configure("bad spec", 0).ok());
  // A failed Configure leaves injection inactive.
  EXPECT_FALSE(Active());
}

}  // namespace
}  // namespace emaf::fault
