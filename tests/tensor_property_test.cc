// Randomized property tests over the tensor layer: algebraic identities
// and round-trips checked across fuzzed shapes (deterministic seeds).

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/grad_check.h"
#include "tensor/op_common.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

Shape RandomShape(Rng* rng, int64_t max_rank = 4, int64_t max_dim = 5) {
  int64_t rank = rng->UniformInt(1, max_rank);
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < rank; ++i) dims.push_back(rng->UniformInt(1, max_dim));
  return Shape(dims);
}

// Shape broadcast-compatible with `to`: some axes shrunk to 1, possibly
// with leading axes dropped.
Shape RandomBroadcastableTo(const Shape& to, Rng* rng) {
  int64_t drop = rng->UniformInt(0, to.rank() - 1);
  std::vector<int64_t> dims;
  for (int64_t i = drop; i < to.rank(); ++i) {
    dims.push_back(rng->Bernoulli(0.4) ? 1 : to.dim(i));
  }
  return Shape(dims);
}

class SeededPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededPropertyTest, AddCommutesAndSubInverts) {
  Rng rng(1000 + GetParam());
  Shape shape = RandomShape(&rng);
  Tensor a = Tensor::Uniform(shape, -3, 3, &rng);
  Tensor b = Tensor::Uniform(RandomBroadcastableTo(shape, &rng), -3, 3, &rng);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  ASSERT_EQ(ab.shape(), ba.shape());
  for (int64_t i = 0; i < ab.NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(ab.data()[i], ba.data()[i]);
  }
  // (a + b) - b == broadcast(a).
  Tensor back = Sub(ab, b);
  Tensor expected = BroadcastTo(a, ab.shape());
  for (int64_t i = 0; i < back.NumElements(); ++i) {
    EXPECT_NEAR(back.data()[i], expected.data()[i], 1e-12);
  }
}

TEST_P(SeededPropertyTest, MulDistributesOverAdd) {
  Rng rng(2000 + GetParam());
  Shape shape = RandomShape(&rng);
  Tensor a = Tensor::Uniform(shape, -2, 2, &rng);
  Tensor b = Tensor::Uniform(shape, -2, 2, &rng);
  Tensor c = Tensor::Uniform(RandomBroadcastableTo(shape, &rng), -2, 2, &rng);
  Tensor lhs = Mul(c, Add(a, b));
  Tensor rhs = Add(Mul(c, a), Mul(c, b));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

TEST_P(SeededPropertyTest, SumMatchesAxisByAxisReduction) {
  Rng rng(3000 + GetParam());
  Shape shape = RandomShape(&rng, 4, 4);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  // Sum over all axes one at a time equals Sum(x).
  Tensor step = x;
  for (int64_t i = 0; i < shape.rank(); ++i) {
    step = Sum(step, {0}, /*keepdim=*/false);
  }
  EXPECT_NEAR(step.item(), Sum(x).item(), 1e-9);
}

TEST_P(SeededPropertyTest, PermuteRoundTripIsIdentity) {
  Rng rng(4000 + GetParam());
  Shape shape = RandomShape(&rng, 4, 4);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  std::vector<int64_t> perm(shape.rank());
  for (int64_t i = 0; i < shape.rank(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  Tensor round_trip = Permute(Permute(x, perm), inverse);
  EXPECT_EQ(round_trip.ToVector(), x.ToVector());
}

TEST_P(SeededPropertyTest, CatOfSlicesReassembles) {
  Rng rng(5000 + GetParam());
  Shape shape = RandomShape(&rng, 3, 6);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  int64_t axis = rng.UniformInt(0, shape.rank() - 1);
  int64_t d = shape.dim(axis);
  if (d < 2) return;
  int64_t cut = rng.UniformInt(1, d - 1);
  Tensor reassembled =
      Cat({Slice(x, axis, 0, cut), Slice(x, axis, cut, d)}, axis);
  EXPECT_EQ(reassembled.ToVector(), x.ToVector());
}

TEST_P(SeededPropertyTest, MatMulAssociativity) {
  Rng rng(6000 + GetParam());
  int64_t m = rng.UniformInt(1, 5);
  int64_t k = rng.UniformInt(1, 5);
  int64_t l = rng.UniformInt(1, 5);
  int64_t n = rng.UniformInt(1, 5);
  Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{k, l}, -2, 2, &rng);
  Tensor c = Tensor::Uniform(Shape{l, n}, -2, 2, &rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  for (int64_t i = 0; i < left.NumElements(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-9);
  }
}

TEST_P(SeededPropertyTest, MatMulTransposeIdentity) {
  // (A B)^T == B^T A^T.
  Rng rng(7000 + GetParam());
  int64_t m = rng.UniformInt(1, 6);
  int64_t k = rng.UniformInt(1, 6);
  int64_t n = rng.UniformInt(1, 6);
  Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{k, n}, -2, 2, &rng);
  Tensor lhs = TransposeLast2(MatMul(a, b));
  Tensor rhs = MatMul(TransposeLast2(b), TransposeLast2(a));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

TEST_P(SeededPropertyTest, SoftmaxPreservesOrderAndNormalizes) {
  Rng rng(8000 + GetParam());
  int64_t n = rng.UniformInt(2, 8);
  Tensor x = Tensor::Uniform(Shape{1, n}, -4, 4, &rng);
  Tensor y = Softmax(x, 1);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += y.At({0, i});
    EXPECT_GT(y.At({0, i}), 0.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (x.At({0, i}) < x.At({0, j})) {
        EXPECT_LT(y.At({0, i}), y.At({0, j}));
      }
    }
  }
}

TEST_P(SeededPropertyTest, GradientOfRandomCompositePipeline) {
  // Fuzzed composite of elementwise + reduce + shape ops must pass the
  // finite-difference check.
  Rng rng(9000 + GetParam());
  Shape shape = RandomShape(&rng, 3, 4);
  Tensor x = Tensor::Uniform(shape, 0.2, 1.8, &rng);
  int64_t variant = GetParam() % 4;
  GradCheckResult r = CheckGradients(
      [variant](const std::vector<Tensor>& in) {
        Tensor t = in[0];
        switch (variant) {
          case 0:
            t = Mul(Sigmoid(t), Tanh(t));
            break;
          case 1:
            t = Exp(MulScalar(Log(t), 0.5));
            break;
          case 2:
            t = Div(t, AddScalar(Sqrt(t), 1.0));
            break;
          default:
            t = Relu(AddScalar(t, -1.0));
            break;
        }
        return Mean(Mul(t, t));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << "variant " << variant << " err " << r.max_error;
}

TEST_P(SeededPropertyTest, TopKMaskKeepsExactlyKPerSlice) {
  Rng rng(10000 + GetParam());
  int64_t rows = rng.UniformInt(1, 6);
  int64_t cols = rng.UniformInt(2, 8);
  int64_t k = rng.UniformInt(1, cols);
  Tensor x = Tensor::Uniform(Shape{rows, cols}, -5, 5, &rng);
  Tensor mask = TopKMask(x, k, 1);
  for (int64_t r = 0; r < rows; ++r) {
    int64_t kept = 0;
    double min_kept = 1e300;
    double max_dropped = -1e300;
    for (int64_t c = 0; c < cols; ++c) {
      if (mask.At({r, c}) == 1.0) {
        ++kept;
        min_kept = std::min(min_kept, x.At({r, c}));
      } else {
        max_dropped = std::max(max_dropped, x.At({r, c}));
      }
    }
    EXPECT_EQ(kept, k);
    if (k < cols) EXPECT_GE(min_kept, max_dropped);
  }
}

// Pins the global ThreadPool to `n` threads for one test body.
struct ScopedThreads {
  explicit ScopedThreads(int64_t n) {
    common::ThreadPool::SetGlobalNumThreads(n);
  }
  ~ScopedThreads() { common::ThreadPool::SetGlobalNumThreads(1); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.NumElements()) * sizeof(Scalar)),
            0);
}

TEST_P(SeededPropertyTest, ParallelMatMulMatchesSerialKernelAcrossShapes) {
  // Fuzzed sizes straddle kMatMulParallelMinFlops, so both the serial
  // fallback and the 4-row-block partition are exercised; either way the
  // 8-thread result must be bitwise the serial kernel's.
  Rng rng(11000 + GetParam());
  int64_t m = rng.UniformInt(1, 128);
  int64_t k = rng.UniformInt(1, 64);
  int64_t n = rng.UniformInt(1, 64);
  Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{k, n}, -2, 2, &rng);
  Tensor reference = Tensor::Zeros(Shape{m, n});
  internal::MatMulKernel(a.data(), b.data(), reference.data(), m, k, n);
  ScopedThreads threads(8);
  ExpectBitwiseEqual(MatMul(a, b), reference);
}

TEST_P(SeededPropertyTest, ParallelBatchedMatMulMatchesSerialKernel) {
  Rng rng(12000 + GetParam());
  int64_t batch = rng.UniformInt(1, 8);
  int64_t m = rng.UniformInt(1, 48);
  int64_t k = rng.UniformInt(1, 32);
  int64_t n = rng.UniformInt(1, 32);
  Tensor a = Tensor::Uniform(Shape{batch, m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{batch, k, n}, -2, 2, &rng);
  Tensor reference = Tensor::Zeros(Shape{batch, m, n});
  for (int64_t i = 0; i < batch; ++i) {
    internal::MatMulKernel(a.data() + i * m * k, b.data() + i * k * n,
                           reference.data() + i * m * n, m, k, n);
  }
  ScopedThreads threads(8);
  ExpectBitwiseEqual(MatMul(a, b), reference);
}

TEST_P(SeededPropertyTest, ParallelConvMatchesSerialRunAcrossShapes) {
  Rng rng(13000 + GetParam());
  int64_t batch = rng.UniformInt(1, 8);
  int64_t cin = rng.UniformInt(1, 4);
  int64_t hw = rng.UniformInt(4, 14);
  int64_t cout = rng.UniformInt(1, 8);
  int64_t kernel = rng.UniformInt(1, 3);
  Conv2dOptions options;
  options.pad_h = rng.UniformInt(0, 1);
  options.pad_w = rng.UniformInt(0, 1);
  Tensor input = Tensor::Uniform(Shape{batch, cin, hw, hw}, -2, 2, &rng);
  Tensor weight =
      Tensor::Uniform(Shape{cout, cin, kernel, kernel}, -2, 2, &rng);
  Tensor bias = Tensor::Uniform(Shape{cout}, -2, 2, &rng);
  Tensor serial = Conv2d(input, weight, bias, options);
  ScopedThreads threads(8);
  ExpectBitwiseEqual(Conv2d(input, weight, bias, options), serial);
}

TEST_P(SeededPropertyTest, ParallelMatMulPassesGradCheck) {
  // 64*16*128 madds sits above the parallel threshold: the finite
  // differences run against the multi-threaded forward/backward.
  Rng rng(14000 + GetParam());
  Tensor a = Tensor::Uniform(Shape{64, 16}, -1, 1, &rng);
  Tensor b = Tensor::Uniform(Shape{16, 128}, -1, 1, &rng);
  ScopedThreads threads(8);
  GradCheckResult r = CheckGradients(
      [b](const std::vector<Tensor>& in) { return Mean(MatMul(in[0], b)); },
      {a}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << "err " << r.max_error;
}

TEST_P(SeededPropertyTest, ParallelConvPassesWeightGradCheck) {
  // Batch x im2col size large enough that the batch loop and the conv
  // matmul both take their parallel paths under the finite differences.
  Rng rng(15000 + GetParam());
  Tensor input = Tensor::Uniform(Shape{8, 2, 12, 12}, -1, 1, &rng);
  Tensor weight = Tensor::Uniform(Shape{8, 2, 3, 3}, -1, 1, &rng);
  Tensor bias = Tensor::Uniform(Shape{8}, -1, 1, &rng);
  Conv2dOptions options;
  options.pad_h = 1;
  options.pad_w = 1;
  ScopedThreads threads(8);
  GradCheckResult r = CheckGradients(
      [input, bias, options](const std::vector<Tensor>& in) {
        return Mean(Conv2d(input, in[0], bias, options));
      },
      {weight}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << "err " << r.max_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace emaf::tensor
