// Randomized property tests over the tensor layer: algebraic identities
// and round-trips checked across fuzzed shapes (deterministic seeds).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::tensor {
namespace {

Shape RandomShape(Rng* rng, int64_t max_rank = 4, int64_t max_dim = 5) {
  int64_t rank = rng->UniformInt(1, max_rank);
  std::vector<int64_t> dims;
  for (int64_t i = 0; i < rank; ++i) dims.push_back(rng->UniformInt(1, max_dim));
  return Shape(dims);
}

// Shape broadcast-compatible with `to`: some axes shrunk to 1, possibly
// with leading axes dropped.
Shape RandomBroadcastableTo(const Shape& to, Rng* rng) {
  int64_t drop = rng->UniformInt(0, to.rank() - 1);
  std::vector<int64_t> dims;
  for (int64_t i = drop; i < to.rank(); ++i) {
    dims.push_back(rng->Bernoulli(0.4) ? 1 : to.dim(i));
  }
  return Shape(dims);
}

class SeededPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededPropertyTest, AddCommutesAndSubInverts) {
  Rng rng(1000 + GetParam());
  Shape shape = RandomShape(&rng);
  Tensor a = Tensor::Uniform(shape, -3, 3, &rng);
  Tensor b = Tensor::Uniform(RandomBroadcastableTo(shape, &rng), -3, 3, &rng);
  Tensor ab = Add(a, b);
  Tensor ba = Add(b, a);
  ASSERT_EQ(ab.shape(), ba.shape());
  for (int64_t i = 0; i < ab.NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(ab.data()[i], ba.data()[i]);
  }
  // (a + b) - b == broadcast(a).
  Tensor back = Sub(ab, b);
  Tensor expected = BroadcastTo(a, ab.shape());
  for (int64_t i = 0; i < back.NumElements(); ++i) {
    EXPECT_NEAR(back.data()[i], expected.data()[i], 1e-12);
  }
}

TEST_P(SeededPropertyTest, MulDistributesOverAdd) {
  Rng rng(2000 + GetParam());
  Shape shape = RandomShape(&rng);
  Tensor a = Tensor::Uniform(shape, -2, 2, &rng);
  Tensor b = Tensor::Uniform(shape, -2, 2, &rng);
  Tensor c = Tensor::Uniform(RandomBroadcastableTo(shape, &rng), -2, 2, &rng);
  Tensor lhs = Mul(c, Add(a, b));
  Tensor rhs = Add(Mul(c, a), Mul(c, b));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

TEST_P(SeededPropertyTest, SumMatchesAxisByAxisReduction) {
  Rng rng(3000 + GetParam());
  Shape shape = RandomShape(&rng, 4, 4);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  // Sum over all axes one at a time equals Sum(x).
  Tensor step = x;
  for (int64_t i = 0; i < shape.rank(); ++i) {
    step = Sum(step, {0}, /*keepdim=*/false);
  }
  EXPECT_NEAR(step.item(), Sum(x).item(), 1e-9);
}

TEST_P(SeededPropertyTest, PermuteRoundTripIsIdentity) {
  Rng rng(4000 + GetParam());
  Shape shape = RandomShape(&rng, 4, 4);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  std::vector<int64_t> perm(shape.rank());
  for (int64_t i = 0; i < shape.rank(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
  }
  Tensor round_trip = Permute(Permute(x, perm), inverse);
  EXPECT_EQ(round_trip.ToVector(), x.ToVector());
}

TEST_P(SeededPropertyTest, CatOfSlicesReassembles) {
  Rng rng(5000 + GetParam());
  Shape shape = RandomShape(&rng, 3, 6);
  Tensor x = Tensor::Uniform(shape, -2, 2, &rng);
  int64_t axis = rng.UniformInt(0, shape.rank() - 1);
  int64_t d = shape.dim(axis);
  if (d < 2) return;
  int64_t cut = rng.UniformInt(1, d - 1);
  Tensor reassembled =
      Cat({Slice(x, axis, 0, cut), Slice(x, axis, cut, d)}, axis);
  EXPECT_EQ(reassembled.ToVector(), x.ToVector());
}

TEST_P(SeededPropertyTest, MatMulAssociativity) {
  Rng rng(6000 + GetParam());
  int64_t m = rng.UniformInt(1, 5);
  int64_t k = rng.UniformInt(1, 5);
  int64_t l = rng.UniformInt(1, 5);
  int64_t n = rng.UniformInt(1, 5);
  Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{k, l}, -2, 2, &rng);
  Tensor c = Tensor::Uniform(Shape{l, n}, -2, 2, &rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  for (int64_t i = 0; i < left.NumElements(); ++i) {
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-9);
  }
}

TEST_P(SeededPropertyTest, MatMulTransposeIdentity) {
  // (A B)^T == B^T A^T.
  Rng rng(7000 + GetParam());
  int64_t m = rng.UniformInt(1, 6);
  int64_t k = rng.UniformInt(1, 6);
  int64_t n = rng.UniformInt(1, 6);
  Tensor a = Tensor::Uniform(Shape{m, k}, -2, 2, &rng);
  Tensor b = Tensor::Uniform(Shape{k, n}, -2, 2, &rng);
  Tensor lhs = TransposeLast2(MatMul(a, b));
  Tensor rhs = MatMul(TransposeLast2(b), TransposeLast2(a));
  for (int64_t i = 0; i < lhs.NumElements(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-10);
  }
}

TEST_P(SeededPropertyTest, SoftmaxPreservesOrderAndNormalizes) {
  Rng rng(8000 + GetParam());
  int64_t n = rng.UniformInt(2, 8);
  Tensor x = Tensor::Uniform(Shape{1, n}, -4, 4, &rng);
  Tensor y = Softmax(x, 1);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += y.At({0, i});
    EXPECT_GT(y.At({0, i}), 0.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (x.At({0, i}) < x.At({0, j})) {
        EXPECT_LT(y.At({0, i}), y.At({0, j}));
      }
    }
  }
}

TEST_P(SeededPropertyTest, GradientOfRandomCompositePipeline) {
  // Fuzzed composite of elementwise + reduce + shape ops must pass the
  // finite-difference check.
  Rng rng(9000 + GetParam());
  Shape shape = RandomShape(&rng, 3, 4);
  Tensor x = Tensor::Uniform(shape, 0.2, 1.8, &rng);
  int64_t variant = GetParam() % 4;
  GradCheckResult r = CheckGradients(
      [variant](const std::vector<Tensor>& in) {
        Tensor t = in[0];
        switch (variant) {
          case 0:
            t = Mul(Sigmoid(t), Tanh(t));
            break;
          case 1:
            t = Exp(MulScalar(Log(t), 0.5));
            break;
          case 2:
            t = Div(t, AddScalar(Sqrt(t), 1.0));
            break;
          default:
            t = Relu(AddScalar(t, -1.0));
            break;
        }
        return Mean(Mul(t, t));
      },
      {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << "variant " << variant << " err " << r.max_error;
}

TEST_P(SeededPropertyTest, TopKMaskKeepsExactlyKPerSlice) {
  Rng rng(10000 + GetParam());
  int64_t rows = rng.UniformInt(1, 6);
  int64_t cols = rng.UniformInt(2, 8);
  int64_t k = rng.UniformInt(1, cols);
  Tensor x = Tensor::Uniform(Shape{rows, cols}, -5, 5, &rng);
  Tensor mask = TopKMask(x, k, 1);
  for (int64_t r = 0; r < rows; ++r) {
    int64_t kept = 0;
    double min_kept = 1e300;
    double max_dropped = -1e300;
    for (int64_t c = 0; c < cols; ++c) {
      if (mask.At({r, c}) == 1.0) {
        ++kept;
        min_kept = std::min(min_kept, x.At({r, c}));
      } else {
        max_dropped = std::max(max_dropped, x.At({r, c}));
      }
    }
    EXPECT_EQ(kept, k);
    if (k < cols) EXPECT_GE(min_kept, max_dropped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace emaf::tensor
