// Registry semantics for the observability subsystem (common/metrics.h):
// counter monotonicity under concurrency, histogram bucket boundaries,
// snapshot-while-writing from 8 threads (runs under the `tsan` ctest
// label in a -DEMAF_SANITIZE=thread build), and the -DEMAF_METRICS=OFF
// no-op contract.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace emaf::obs {
namespace {

#if EMAF_METRICS_ENABLED

TEST(MetricsTest, CounterStartsAtZeroAndAdds) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, CounterExactUnderEightThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  EXPECT_EQ(gauge.value(), 3.5);
  gauge.Add(-1.25);
  EXPECT_EQ(gauge.value(), 2.25);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, GaugeAddExactUnderEightThreads) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      // +1/-1 in pairs plus one net +1 per iteration; every add is a CAS,
      // so nothing is lost regardless of interleaving.
      for (int i = 0; i < kAddsPerThread; ++i) {
        gauge.Add(2.0);
        gauge.Add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads * kAddsPerThread));
}

TEST(MetricsTest, HistogramBucketBoundariesAreUpperInclusive) {
  Histogram histogram({1.0, 2.0, 4.0});
  // Bucket layout: (-inf,1], (1,2], (2,4], (4,inf).
  histogram.Observe(0.5);
  histogram.Observe(1.0);  // inclusive upper bound -> first bucket
  histogram.Observe(1.5);
  histogram.Observe(2.0);  // -> second bucket
  histogram.Observe(3.0);
  histogram.Observe(4.0);  // -> third bucket
  histogram.Observe(5.0);  // overflow
  std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 7u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);
}

TEST(MetricsTest, HistogramNegativeAndExtremeValues) {
  Histogram histogram({0.0, 10.0});
  histogram.Observe(-5.0);    // below every bound -> first bucket
  histogram.Observe(1e300);   // overflow bucket
  std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Registry& registry = Registry::Global();
  Counter* a = registry.GetCounter("metrics_test.stable");
  Counter* b = registry.GetCounter("metrics_test.stable");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("metrics_test.stable_h", {1.0, 2.0});
  // Second registration ignores the (different) bounds and returns the
  // same instrument.
  Histogram* h2 = registry.GetHistogram("metrics_test.stable_h", {9.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, ResetZeroesButKeepsRegistrations) {
  Registry& registry = Registry::Global();
  Counter* counter = registry.GetCounter("metrics_test.reset");
  counter->Add(7);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  // Cached pointer still the registered instrument.
  EXPECT_EQ(registry.GetCounter("metrics_test.reset"), counter);
}

// The core thread-safety claim: snapshots taken while 8 threads write see
// monotone counter values and never tear, and the final snapshot is exact.
TEST(MetricsTest, SnapshotWhileWritingUnderEightThreads) {
  Registry& registry = Registry::Global();
  registry.Reset();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  Counter* counter = registry.GetCounter("metrics_test.snapshot_counter");
  Histogram* histogram =
      registry.GetHistogram("metrics_test.snapshot_hist", {0.25, 0.5, 0.75});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>(i % 100) / 100.0);
      }
    });
  }

  uint64_t last_counter = 0;
  uint64_t last_hist_count = 0;
  for (int probe = 0; probe < 200; ++probe) {
    MetricsSnapshot snapshot = registry.Snapshot();
    uint64_t c = snapshot.counters.at("metrics_test.snapshot_counter");
    EXPECT_GE(c, last_counter) << "counter went backwards";
    last_counter = c;
    const HistogramSnapshot& h =
        snapshot.histograms.at("metrics_test.snapshot_hist");
    EXPECT_GE(h.count, last_hist_count) << "histogram count went backwards";
    last_hist_count = h.count;
    ASSERT_EQ(h.counts.size(), 4u);
  }
  for (std::thread& t : threads) t.join();

  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.counters.at("metrics_test.snapshot_counter"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  const HistogramSnapshot& h =
      final_snapshot.histograms.at("metrics_test.snapshot_hist");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.counts) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(MetricsTest, MacrosRecordThroughTheGlobalRegistry) {
  Registry& registry = Registry::Global();
  registry.Reset();
  for (int i = 0; i < 3; ++i) EMAF_METRIC_COUNTER_ADD("metrics_test.macro", 2);
  EMAF_METRIC_COUNTER_ADD_DYN(std::string("metrics_test.macro_dyn"), 5);
  EMAF_METRIC_GAUGE_SET("metrics_test.macro_gauge", 1.5);
  EMAF_METRIC_HISTOGRAM_OBSERVE("metrics_test.macro_hist", 0.2,
                                DefaultSecondsBounds());
  {
    EMAF_METRIC_SCOPED_TIMER("metrics_test.macro_timer");
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("metrics_test.macro"), 6u);
  EXPECT_EQ(snapshot.counters.at("metrics_test.macro_dyn"), 5u);
  EXPECT_EQ(snapshot.gauges.at("metrics_test.macro_gauge"), 1.5);
  EXPECT_EQ(snapshot.histograms.at("metrics_test.macro_hist").count, 1u);
  EXPECT_EQ(snapshot.histograms.at("metrics_test.macro_timer").count, 1u);
}

TEST(MetricsTest, SnapshotJsonIsDeterministicAndStructured) {
  Registry& registry = Registry::Global();
  registry.Reset();
  EMAF_METRIC_COUNTER_ADD("metrics_test.json_counter", 3);
  EMAF_METRIC_GAUGE_SET("metrics_test.json_gauge", 2.5);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"metrics_test.json_counter\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"metrics_test.json_gauge\": 2.5"), std::string::npos)
      << json;
  // Same snapshot -> same bytes (names come from an ordered map).
  EXPECT_EQ(json, registry.Snapshot().ToJson());
}

#else  // !EMAF_METRICS_ENABLED

// -DEMAF_METRICS=OFF compile check: the same API compiles, and every
// instrument is a no-op (this binary is part of the OFF-build acceptance
// criterion — see ISSUE/DESIGN).
TEST(MetricsTest, CompiledOutInstrumentsAreNoOps) {
  static_assert(!kMetricsEnabled);
  Counter counter;
  counter.Add(10);
  counter.Increment();
  EXPECT_EQ(counter.value(), 0u);

  Gauge gauge;
  gauge.Set(5.0);
  gauge.Add(1.0);
  EXPECT_EQ(gauge.value(), 0.0);

  Histogram histogram({1.0});
  histogram.Observe(0.5);
  EXPECT_EQ(histogram.count(), 0u);

  EMAF_METRIC_COUNTER_ADD("metrics_test.off", 1);
  EMAF_METRIC_GAUGE_SET("metrics_test.off_gauge", 1.0);
  EMAF_METRIC_HISTOGRAM_OBSERVE("metrics_test.off_hist", 1.0,
                                DefaultSecondsBounds());
  EMAF_METRIC_SCOPED_TIMER("metrics_test.off_timer");
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_TRUE(snapshot.empty());
}

#endif  // EMAF_METRICS_ENABLED

TEST(MetricsTest, EnabledFlagMatchesBuildDefinition) {
  EXPECT_EQ(kMetricsEnabled, EMAF_METRICS_ENABLED != 0);
}

}  // namespace
}  // namespace emaf::obs
