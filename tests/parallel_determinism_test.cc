// Serial-run == parallel-run, bit for bit.
//
// The parallel execution model (DESIGN.md) promises that thread count is
// invisible in results: kernels partition output at serial-schedule
// boundaries and the experiment grid seeds every (cell, individual,
// repeat) task from its own RNG stream into a pre-sized slot. This suite
// holds that contract to exact double equality at 1, 2, and 8 threads,
// above and below the serial-fallback size thresholds.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/experiment.h"
#include "core/report.h"
#include "tensor/op_common.h"
#include "tensor/ops.h"

namespace emaf {
namespace {

using tensor::Shape;
using tensor::Tensor;

// Exact bit-pattern equality (stricter than ==: distinguishes -0.0, NaN).
void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_TRUE(a.defined());
  ASSERT_TRUE(b.defined());
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.NumElements()) *
                            sizeof(tensor::Scalar)),
            0)
      << what << " differs between serial and parallel run";
}

// Runs `fn` with the global pool at `threads` and returns its tensors.
template <typename Fn>
std::vector<Tensor> AtThreads(int64_t threads, Fn fn) {
  common::ThreadPool::SetGlobalNumThreads(threads);
  std::vector<Tensor> out = fn();
  common::ThreadPool::SetGlobalNumThreads(1);
  return out;
}

template <typename Fn>
void ExpectThreadCountInvisible(Fn fn, const std::string& what) {
  std::vector<Tensor> serial = AtThreads(1, fn);
  for (int64_t threads : {2, 8}) {
    std::vector<Tensor> parallel = AtThreads(threads, fn);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectBitwiseEqual(serial[i], parallel[i],
                         what + " output " + std::to_string(i) +
                             " at threads=" + std::to_string(threads));
    }
  }
}

// --- Kernels ---------------------------------------------------------------

// Forward + both gradients of a matmul of the given size.
std::vector<Tensor> MatMulForwardBackward(int64_t m, int64_t k, int64_t n) {
  Rng rng(123);
  Tensor a = Tensor::Uniform(Shape{m, k}, -1, 1, &rng).SetRequiresGrad(true);
  Tensor b = Tensor::Uniform(Shape{k, n}, -1, 1, &rng).SetRequiresGrad(true);
  Tensor out = MatMul(a, b);
  Sum(out).Backward();
  return {out, a.grad(), b.grad()};
}

TEST(ParallelDeterminismTest, MatMulAboveThresholdBitwiseEqual) {
  // 96*64*64 madds is above kMatMulParallelMinFlops: the parallel row
  // partition actually engages.
  ASSERT_GE(96 * 64 * 64, tensor::internal::kMatMulParallelMinFlops);
  ExpectThreadCountInvisible([] { return MatMulForwardBackward(96, 64, 64); },
                             "matmul(96x64x64)");
  // Row count not a multiple of the 4-row block: the sub-4 remainder must
  // land in the final chunk exactly as in the serial sweep.
  ExpectThreadCountInvisible([] { return MatMulForwardBackward(99, 64, 64); },
                             "matmul(99x64x64)");
}

TEST(ParallelDeterminismTest, MatMulBelowThresholdBitwiseEqual) {
  ASSERT_LT(5 * 6 * 7, tensor::internal::kMatMulParallelMinFlops);
  ExpectThreadCountInvisible([] { return MatMulForwardBackward(5, 6, 7); },
                             "matmul(5x6x7)");
}

TEST(ParallelDeterminismTest, BatchedMatMulBitwiseEqual) {
  auto fn = [] {
    Rng rng(321);
    Tensor a = Tensor::Uniform(Shape{8, 32, 32}, -1, 1, &rng)
                   .SetRequiresGrad(true);
    Tensor b = Tensor::Uniform(Shape{8, 32, 32}, -1, 1, &rng)
                   .SetRequiresGrad(true);
    Tensor out = MatMul(a, b);
    Sum(out).Backward();
    return std::vector<Tensor>{out, a.grad(), b.grad()};
  };
  ExpectThreadCountInvisible(fn, "batched matmul(8x32x32x32)");
}

std::vector<Tensor> ConvForwardBackward(int64_t batch, int64_t cin,
                                        int64_t hw, int64_t cout,
                                        int64_t kernel) {
  Rng rng(777);
  Tensor input = Tensor::Uniform(Shape{batch, cin, hw, hw}, -1, 1, &rng)
                     .SetRequiresGrad(true);
  Tensor weight =
      Tensor::Uniform(Shape{cout, cin, kernel, kernel}, -1, 1, &rng)
          .SetRequiresGrad(true);
  Tensor bias =
      Tensor::Uniform(Shape{cout}, -1, 1, &rng).SetRequiresGrad(true);
  tensor::Conv2dOptions options;
  options.pad_h = 1;
  options.pad_w = 1;
  Tensor out = Conv2d(input, weight, bias, options);
  Sum(out).Backward();
  return {out, input.grad(), weight.grad(), bias.grad()};
}

TEST(ParallelDeterminismTest, ConvAboveThresholdBitwiseEqual) {
  // im2col is 8*16*16 rows x 36 cols, well above the serial-fallback
  // threshold, and the implied matmul exceeds the flop threshold too.
  ExpectThreadCountInvisible([] { return ConvForwardBackward(8, 4, 16, 8, 3); },
                             "conv(8x4x16x16, 8 filters)");
}

TEST(ParallelDeterminismTest, ConvBelowThresholdBitwiseEqual) {
  ExpectThreadCountInvisible([] { return ConvForwardBackward(2, 2, 5, 3, 3); },
                             "conv(2x2x5x5, 3 filters)");
}

// --- Experiment grid -------------------------------------------------------

core::ExperimentConfig SmallConfig() {
  core::ExperimentConfig config;
  config.generator.num_individuals = 4;
  config.generator.num_variables = 8;
  config.generator.days = 7;
  config.generator.seed = 99;
  config.train.epochs = 3;
  config.knn_k = 3;
  config.seed = 99;
  return config;
}

// 4 individuals x {LSTM, A3TGCN} x {Seq1, Seq5}.
std::vector<core::CellSpec> SmallGrid() {
  std::vector<core::CellSpec> grid;
  for (core::ModelKind model :
       {core::ModelKind::kLstm, core::ModelKind::kA3tgcn}) {
    for (int64_t seq : {int64_t{1}, int64_t{5}}) {
      core::CellSpec spec;
      spec.model = model;
      spec.metric = graph::GraphMetric::kCorrelation;
      spec.gdt = 0.4;
      spec.input_length = seq;
      grid.push_back(spec);
    }
  }
  return grid;
}

std::vector<core::CellResult> RunGrid(int64_t threads) {
  common::ThreadPool::SetGlobalNumThreads(threads);
  core::ExperimentConfig config = SmallConfig();
  data::Cohort cohort = data::GenerateCohort(config.generator);
  core::ExperimentRunner runner(std::move(cohort), config);
  std::vector<core::CellResult> results;
  for (const core::CellSpec& spec : SmallGrid()) {
    results.push_back(runner.RunCellOrDie(spec));
  }
  common::ThreadPool::SetGlobalNumThreads(1);
  return results;
}

TEST(ParallelDeterminismTest, ExperimentGridBitwiseEqualAcrossThreadCounts) {
  std::vector<core::CellResult> serial = RunGrid(1);
  for (int64_t threads : {2, 8}) {
    std::vector<core::CellResult> parallel = RunGrid(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t c = 0; c < serial.size(); ++c) {
      SCOPED_TRACE(serial[c].spec.Label() + " seq" +
                   std::to_string(serial[c].spec.input_length) +
                   " at threads=" + std::to_string(threads));
      ASSERT_EQ(serial[c].per_individual_mse.size(),
                parallel[c].per_individual_mse.size());
      for (size_t i = 0; i < serial[c].per_individual_mse.size(); ++i) {
        // Bitwise: the doubles must be identical, not merely close.
        EXPECT_EQ(std::memcmp(&serial[c].per_individual_mse[i],
                              &parallel[c].per_individual_mse[i],
                              sizeof(double)),
                  0)
            << "individual " << i << ": " << serial[c].per_individual_mse[i]
            << " vs " << parallel[c].per_individual_mse[i];
      }
      // Report rows (the paper-table cell strings) must match too.
      EXPECT_EQ(core::FormatMeanStd(serial[c].stats),
                core::FormatMeanStd(parallel[c].stats));
      EXPECT_EQ(serial[c].stats.count, parallel[c].stats.count);
    }
  }
}

// Observability must be numerics-neutral: the experiment CSV is byte-for-
// byte the same whether metrics/tracing actively record or not, at 1 and
// 2 threads. Within one binary this compares recording-on vs recording-
// off; across builds, golden_regression_test pins the -DEMAF_METRICS=ON
// and =OFF binaries to the same checked-in CSV bytes, closing the loop.
TEST(ParallelDeterminismTest, ObservabilityIsNumericsNeutral) {
  auto grid_csv = [](int64_t threads, bool observed) {
    if (observed) {
      obs::Registry::Global().Reset();
      obs::Trace::Enable(std::string(::testing::TempDir()) +
                         "/determinism_trace.json");
    }
    std::vector<core::CellResult> results = RunGrid(threads);
    if (observed) {
      EXPECT_TRUE(obs::Trace::Flush().ok());
      obs::Trace::Disable();
    }
    std::string csv;
    for (const core::CellResult& cell : results) {
      csv += cell.spec.Label() + "," + core::FormatMeanStd(cell.stats);
      for (double mse : cell.per_individual_mse) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ",%.17g", mse);
        csv += buf;
      }
      csv += "\n";
    }
    return csv;
  };
  for (int64_t threads : {int64_t{1}, int64_t{2}}) {
    std::string plain = grid_csv(threads, false);
    std::string observed = grid_csv(threads, true);
    EXPECT_EQ(plain, observed)
        << "metrics/trace recording changed numerics at threads=" << threads;
  }
  // And when compiled in, recording did actually happen side-band.
  if (obs::kMetricsEnabled) {
    EXPECT_GT(obs::Registry::Global()
                  .Snapshot()
                  .counters.at("experiment.cells_total"),
              0u);
  }
}

TEST(ParallelDeterminismTest, LearnedGraphCellBitwiseEqual) {
  auto run = [](int64_t threads) {
    common::ThreadPool::SetGlobalNumThreads(threads);
    core::ExperimentConfig config = SmallConfig();
    config.generator.num_individuals = 2;
    data::Cohort cohort = data::GenerateCohort(config.generator);
    core::ExperimentRunner runner(std::move(cohort), config);
    core::CellSpec spec;
    spec.model = core::ModelKind::kA3tgcn;
    spec.metric = graph::GraphMetric::kCorrelation;
    spec.gdt = 0.4;
    spec.input_length = 2;
    spec.use_learned_graph = true;  // exercises parallel LearnedGraphs()
    core::CellResult result = runner.RunCellOrDie(spec);
    common::ThreadPool::SetGlobalNumThreads(1);
    return result;
  };
  core::CellResult serial = run(1);
  for (int64_t threads : {2, 8}) {
    core::CellResult parallel = run(threads);
    ASSERT_EQ(serial.per_individual_mse.size(),
              parallel.per_individual_mse.size());
    for (size_t i = 0; i < serial.per_individual_mse.size(); ++i) {
      EXPECT_EQ(serial.per_individual_mse[i], parallel.per_individual_mse[i])
          << "individual " << i << " at threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace emaf
