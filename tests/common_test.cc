#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace emaf {
namespace {

TEST(StrSplitTest, BasicSplit) {
  std::vector<std::string> parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  std::vector<std::string> parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrSplitTest, SingleField) {
  std::vector<std::string> parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, EmptyString) {
  std::vector<std::string> parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  hello \t\n"), "hello");
  EXPECT_EQ(StrTrim("hello"), "hello");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, ","), "one");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ToLowerTest, LowersAscii) { EXPECT_EQ(ToLower("AbC-9"), "abc-9"); }

TEST(FormatFixedTest, FormatsDigits) {
  EXPECT_EQ(FormatFixed(0.84512, 3), "0.845");
  EXPECT_EQ(FormatFixed(1.0, 2), "1.00");
  EXPECT_EQ(FormatFixed(-0.5, 1), "-0.5");
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StatusTest, OkStatus) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorStatusCarriesMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "ABORTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, CodeNamesRoundTripThroughFromName) {
  // The checkpoint journal persists codes by name, so every code must
  // survive StatusCodeName -> StatusCodeFromName.
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kDataLoss, StatusCode::kResourceExhausted,
        StatusCode::kAborted, StatusCode::kUnavailable}) {
    std::optional<StatusCode> back = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(back.has_value()) << StatusCodeName(code);
    EXPECT_EQ(back.value(), code);
  }
}

TEST(StatusTest, FromNameRejectsUnknownNames) {
  EXPECT_FALSE(StatusCodeFromName("").has_value());
  EXPECT_FALSE(StatusCodeFromName("NO_SUCH_CODE").has_value());
  EXPECT_FALSE(StatusCodeFromName("ok").has_value());  // case-sensitive
}

TEST(StatusTest, NewFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Aborted("budget exhausted").ToString(),
            "ABORTED: budget exhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, WorksWithoutDefaultConstructor) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  Result<NoDefault> result(NoDefault(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().value, 3);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsIndependentOfDrawOrder) {
  Rng base(9);
  Rng fork_before = base.Fork(3);
  base.Uniform();
  base.Uniform();
  Rng fork_after = base.Fork(3);
  // Fork depends only on (seed, stream), not generator state.
  EXPECT_DOUBLE_EQ(fork_before.Uniform(), fork_after.Uniform());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng base(9);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  EXPECT_NE(a.Uniform(), b.Uniform());
}

TEST(RngTest, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_low |= v == 0;
    saw_high |= v == 3;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double total = 0.0;
  double total_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(1.0, 2.0);
    total += v;
    total_sq += v * v;
  }
  double mean = total / n;
  double var = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(23);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_NE(sample[i - 1], sample[i]);
  }
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleFullPopulation) {
  Rng rng(29);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> values = {1, 2, 3, 4, 5, 6};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(EnvTest, ReadsIntOrDefault) {
  ::setenv("EMAF_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt64("EMAF_TEST_INT", 0), 123);
  EXPECT_EQ(GetEnvInt64("EMAF_TEST_MISSING", 7), 7);
  ::setenv("EMAF_TEST_INT", "junk", 1);
  EXPECT_EQ(GetEnvInt64("EMAF_TEST_INT", 7), 7);
  ::unsetenv("EMAF_TEST_INT");
}

TEST(EnvTest, ReadsDoubleOrDefault) {
  ::setenv("EMAF_TEST_DBL", "0.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EMAF_TEST_DBL", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(GetEnvDouble("EMAF_TEST_MISSING", 1.5), 1.5);
  ::unsetenv("EMAF_TEST_DBL");
}

TEST(EnvTest, ReadsBool) {
  ::setenv("EMAF_TEST_BOOL", "true", 1);
  EXPECT_TRUE(GetEnvBool("EMAF_TEST_BOOL", false));
  ::setenv("EMAF_TEST_BOOL", "0", 1);
  EXPECT_FALSE(GetEnvBool("EMAF_TEST_BOOL", true));
  ::setenv("EMAF_TEST_BOOL", "banana", 1);
  EXPECT_TRUE(GetEnvBool("EMAF_TEST_BOOL", true));
  ::unsetenv("EMAF_TEST_BOOL");
}

TEST(EnvTest, ReadsString) {
  ::setenv("EMAF_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("EMAF_TEST_STR", "d"), "hello");
  EXPECT_EQ(GetEnvString("EMAF_TEST_MISSING", "d"), "d");
  ::unsetenv("EMAF_TEST_STR");
}

}  // namespace
}  // namespace emaf
