#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "tensor/tensor.h"

namespace emaf::graph {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(AdjacencyTest, StartsAllZero) {
  AdjacencyMatrix adj(4);
  EXPECT_EQ(adj.num_nodes(), 4);
  EXPECT_EQ(adj.NumDirectedEdges(), 0);
  EXPECT_EQ(adj.Density(), 0.0);
  EXPECT_TRUE(adj.IsSymmetric());
  EXPECT_TRUE(adj.HasZeroDiagonal());
}

TEST(AdjacencyTest, SetAndGet) {
  AdjacencyMatrix adj(3);
  adj.set(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(adj.at(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(adj.at(2, 0), 0.0);
}

TEST(AdjacencyDeathTest, IndexOutOfRange) {
  AdjacencyMatrix adj(2);
  EXPECT_DEATH(adj.at(2, 0), "");
  EXPECT_DEATH(adj.set(0, -1, 1.0), "");
}

TEST(AdjacencyTest, EdgeCounts) {
  AdjacencyMatrix adj(3);
  adj.set(0, 1, 1.0);
  adj.set(1, 0, 1.0);
  adj.set(0, 2, 0.5);  // one direction only
  EXPECT_EQ(adj.NumDirectedEdges(), 3);
  EXPECT_EQ(adj.NumUndirectedEdges(), 2);
  EXPECT_DOUBLE_EQ(adj.Density(), 3.0 / 6.0);
}

TEST(AdjacencyTest, DiagonalNotCountedAsEdge) {
  AdjacencyMatrix adj(2);
  adj.set(0, 0, 5.0);
  EXPECT_EQ(adj.NumDirectedEdges(), 0);
  EXPECT_FALSE(adj.HasZeroDiagonal());
}

TEST(AdjacencyTest, SymmetryCheck) {
  AdjacencyMatrix adj(3);
  adj.set(0, 1, 1.0);
  EXPECT_FALSE(adj.IsSymmetric());
  adj.set(1, 0, 1.0);
  EXPECT_TRUE(adj.IsSymmetric());
  adj.set(1, 0, 1.0 + 1e-15);
  EXPECT_TRUE(adj.IsSymmetric(1e-12));
}

TEST(AdjacencyTest, SymmetrizeAverages) {
  AdjacencyMatrix adj(2);
  adj.set(0, 1, 1.0);
  adj.set(1, 0, 3.0);
  adj.Symmetrize();
  EXPECT_DOUBLE_EQ(adj.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(adj.at(1, 0), 2.0);
}

TEST(AdjacencyTest, ZeroDiagonal) {
  AdjacencyMatrix adj(2);
  adj.set(0, 0, 4.0);
  adj.set(1, 1, 5.0);
  adj.ZeroDiagonal();
  EXPECT_TRUE(adj.HasZeroDiagonal());
}

TEST(AdjacencyTest, NormalizeMaxToOne) {
  AdjacencyMatrix adj(2);
  adj.set(0, 1, 4.0);
  adj.set(1, 0, 2.0);
  adj.NormalizeMaxToOne();
  EXPECT_DOUBLE_EQ(adj.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(adj.at(1, 0), 0.5);
  AdjacencyMatrix zero(2);
  zero.NormalizeMaxToOne();  // must not divide by zero
  EXPECT_DOUBLE_EQ(zero.at(0, 1), 0.0);
}

TEST(AdjacencyTest, IsNonNegative) {
  AdjacencyMatrix adj(2);
  EXPECT_TRUE(adj.IsNonNegative());
  adj.set(0, 1, -0.5);
  EXPECT_FALSE(adj.IsNonNegative());
}

TEST(AdjacencyTest, TensorRoundTrip) {
  AdjacencyMatrix adj(2);
  adj.set(0, 1, 0.25);
  adj.set(1, 0, 0.75);
  Tensor t = adj.ToTensor();
  EXPECT_EQ(t.shape(), (Shape{2, 2}));
  AdjacencyMatrix back = AdjacencyMatrix::FromTensor(t);
  EXPECT_EQ(adj, back);
}

TEST(AdjacencyDeathTest, FromTensorRequiresSquare) {
  EXPECT_DEATH(AdjacencyMatrix::FromTensor(Tensor::Zeros(Shape{2, 3})), "");
  EXPECT_DEATH(AdjacencyMatrix::FromTensor(Tensor::Zeros(Shape{4})), "");
}

}  // namespace
}  // namespace emaf::graph
