#include <gtest/gtest.h>

#include "graph/metrics.h"

namespace emaf::graph {
namespace {

AdjacencyMatrix Triangle() {
  AdjacencyMatrix adj(4);
  adj.set(0, 1, 1.0);
  adj.set(1, 0, 1.0);
  adj.set(1, 2, 0.5);
  adj.set(2, 1, 0.5);
  adj.set(0, 2, 0.25);
  adj.set(2, 0, 0.25);
  return adj;  // node 3 isolated
}

TEST(DegreeStatsTest, CountsDegreesAndIsolation) {
  DegreeStats stats = ComputeDegreeStats(Triangle());
  EXPECT_DOUBLE_EQ(stats.max_degree, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 6.0 / 4.0);
  EXPECT_EQ(stats.isolated_nodes, 1);
  EXPECT_NEAR(stats.mean_strength, (1.25 + 1.5 + 0.75 + 0.0) / 4.0, 1e-12);
}

TEST(GraphCorrelationTest, IdenticalGraphsCorrelateFully) {
  AdjacencyMatrix a = Triangle();
  EXPECT_NEAR(GraphCorrelation(a, a), 1.0, 1e-12);
}

TEST(GraphCorrelationTest, ScaledGraphStillCorrelatesFully) {
  AdjacencyMatrix a = Triangle();
  AdjacencyMatrix b = Triangle();
  for (double& v : b.mutable_values()) v *= 3.0;
  EXPECT_NEAR(GraphCorrelation(a, b), 1.0, 1e-12);
}

TEST(GraphCorrelationTest, AntiCorrelatedGraphs) {
  AdjacencyMatrix a(3);
  a.set(0, 1, 1.0);
  a.set(1, 0, 1.0);
  AdjacencyMatrix b(3);
  b.set(0, 2, 1.0);
  b.set(2, 0, 1.0);
  b.set(1, 2, 1.0);
  b.set(2, 1, 1.0);
  EXPECT_LT(GraphCorrelation(a, b), 0.0);
}

TEST(EdgeJaccardTest, OverlapCases) {
  AdjacencyMatrix a(3);
  a.set(0, 1, 1.0);
  a.set(1, 0, 1.0);
  a.set(1, 2, 1.0);
  a.set(2, 1, 1.0);
  AdjacencyMatrix b(3);
  b.set(0, 1, 0.2);
  b.set(1, 0, 0.2);
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, a), 1.0);
  AdjacencyMatrix empty(3);
  EXPECT_DOUBLE_EQ(EdgeJaccard(empty, empty), 1.0);  // vacuous overlap
  EXPECT_DOUBLE_EQ(EdgeJaccard(a, empty), 0.0);
}

TEST(ScoreEdgeRecoveryTest, PerfectRecovery) {
  AdjacencyMatrix truth = Triangle();
  RecoveryScore score = ScoreEdgeRecovery(truth, truth);
  EXPECT_DOUBLE_EQ(score.precision, 1.0);
  EXPECT_DOUBLE_EQ(score.recall, 1.0);
  EXPECT_DOUBLE_EQ(score.f1, 1.0);
}

TEST(ScoreEdgeRecoveryTest, PartialRecovery) {
  AdjacencyMatrix truth(4);
  truth.set(0, 1, 1.0);
  truth.set(1, 0, 1.0);
  truth.set(2, 3, 1.0);
  truth.set(3, 2, 1.0);
  // Candidate strongly weights one true edge and one false edge.
  AdjacencyMatrix candidate(4);
  candidate.set(0, 1, 0.9);
  candidate.set(1, 0, 0.9);
  candidate.set(0, 2, 0.8);
  candidate.set(2, 0, 0.8);
  RecoveryScore score = ScoreEdgeRecovery(candidate, truth);
  EXPECT_DOUBLE_EQ(score.precision, 0.5);
  EXPECT_DOUBLE_EQ(score.recall, 0.5);
  EXPECT_DOUBLE_EQ(score.f1, 0.5);
}

TEST(ScoreEdgeRecoveryTest, EmptyTruthScoresZero) {
  AdjacencyMatrix truth(3);
  AdjacencyMatrix candidate = Triangle();
  RecoveryScore score = ScoreEdgeRecovery(AdjacencyMatrix(3), truth);
  EXPECT_DOUBLE_EQ(score.f1, 0.0);
  (void)candidate;
}

TEST(ScoreEdgeRecoveryTest, EmptyCandidateScoresZero) {
  AdjacencyMatrix truth(4);
  truth.set(0, 1, 1.0);
  truth.set(1, 0, 1.0);
  RecoveryScore score = ScoreEdgeRecovery(AdjacencyMatrix(4), truth);
  EXPECT_DOUBLE_EQ(score.recall, 0.0);
}

TEST(GraphMetricsDeathTest, SizeMismatch) {
  AdjacencyMatrix a(3);
  AdjacencyMatrix b(4);
  EXPECT_DEATH(GraphCorrelation(a, b), "");
  EXPECT_DEATH(EdgeJaccard(a, b), "");
  EXPECT_DEATH(ScoreEdgeRecovery(a, b), "");
}

}  // namespace
}  // namespace emaf::graph
