#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

class SmallNet : public Module {
 public:
  explicit SmallNet(Rng* rng) {
    fc1_ = RegisterModule("fc1", std::make_unique<Linear>(3, 4, true, rng));
    fc2_ = RegisterModule("fc2", std::make_unique<Linear>(4, 2, true, rng));
  }
  Tensor Forward(const Tensor& x) {
    return fc2_->Forward(tensor::Relu(fc1_->Forward(x)));
  }
  Linear* fc1_;
  Linear* fc2_;
};

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripRestoresExactValues) {
  Rng rng_a(1);
  SmallNet net_a(&rng_a);
  std::string path = TempPath("roundtrip.emaf");
  ASSERT_TRUE(SaveParameters(&net_a, path).ok());

  Rng rng_b(99);  // different init
  SmallNet net_b(&rng_b);
  ASSERT_TRUE(LoadParameters(&net_b, path).ok());

  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{5, 3}, -1, 1, &data_rng);
  EXPECT_EQ(net_a.Forward(x).ToVector(), net_b.Forward(x).ToVector());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(1);
  SmallNet net(&rng);
  Status status = LoadParameters(&net, TempPath("does_not_exist.emaf"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsWrongMagic) {
  std::string path = TempPath("bad_magic.emaf");
  std::ofstream out(path, std::ios::binary);
  out << "JUNKJUNKJUNKJUNK";
  out.close();
  Rng rng(1);
  SmallNet net(&rng);
  Status status = LoadParameters(&net, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsTruncatedFile) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("truncated.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  int64_t size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size / 2), '\0');
  in.read(content.data(), size / 2);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  EXPECT_FALSE(LoadParameters(&net, path).ok());
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("mismatch.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());

  class OtherNet : public Module {
   public:
    explicit OtherNet(Rng* rng) {
      RegisterModule("fc1", std::make_unique<Linear>(3, 4, true, rng));
    }
  };
  OtherNet other(&rng);
  Status status = LoadParameters(&other, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(1);
  class NetA : public Module {
   public:
    explicit NetA(Rng* rng) {
      RegisterModule("fc", std::make_unique<Linear>(3, 4, true, rng));
    }
  };
  class NetB : public Module {
   public:
    explicit NetB(Rng* rng) {
      RegisterModule("fc", std::make_unique<Linear>(4, 3, true, rng));
    }
  };
  NetA a(&rng);
  std::string path = TempPath("shape_mismatch.emaf");
  ASSERT_TRUE(SaveParameters(&a, path).ok());
  NetB b(&rng);
  Status status = LoadParameters(&b, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
}

TEST(SerializeTest, SaveToUnwritablePathFails) {
  Rng rng(1);
  SmallNet net(&rng);
  Status status = SaveParameters(&net, "/nonexistent_dir/x.emaf");
  EXPECT_FALSE(status.ok());
}

// --- v3 dtype byte, v2 config embedding, v1 compatibility ------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Rewrites an all-f64 v3 snapshot as the v2 layout: patch the version
// word and drop each parameter's dtype byte. This is exactly the byte
// stream pre-v3 builds wrote.
std::string V3ToV2(const std::string& v3) {
  EXPECT_GE(v3.size(), 16u);
  std::string v2 = v3.substr(0, 4);
  uint32_t version = 2;
  v2.append(reinterpret_cast<const char*>(&version), sizeof(version));
  size_t pos = 8;
  uint64_t config_len = 0;
  std::memcpy(&config_len, v3.data() + pos, sizeof(config_len));
  v2.append(v3.substr(pos, 8 + config_len));  // config length + blob
  pos += 8 + config_len;
  uint64_t count = 0;
  std::memcpy(&count, v3.data() + pos, sizeof(count));
  v2.append(v3.substr(pos, 8));
  pos += 8;
  for (uint64_t p = 0; p < count; ++p) {
    uint64_t name_len = 0;
    std::memcpy(&name_len, v3.data() + pos, sizeof(name_len));
    v2.append(v3.substr(pos, 8 + name_len));  // name length + name
    pos += 8 + name_len;
    EXPECT_EQ(v3[pos], '\0') << "expected an f64 dtype byte";
    pos += 1;  // the dtype byte v2 lacks
    uint64_t rank = 0;
    std::memcpy(&rank, v3.data() + pos, sizeof(rank));
    v2.append(v3.substr(pos, 8));
    pos += 8;
    uint64_t numel = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      int64_t dim = 0;
      std::memcpy(&dim, v3.data() + pos, sizeof(dim));
      v2.append(v3.substr(pos, 8));
      pos += 8;
      numel *= static_cast<uint64_t>(dim);
    }
    v2.append(v3.substr(pos, numel * sizeof(double)));
    pos += numel * sizeof(double);
  }
  EXPECT_EQ(pos, v3.size());
  return v2;
}

// Rewrites a config-free v2 snapshot as the legacy v1 layout: patch the
// version word and drop the (zero) config-length field. This is exactly
// the byte stream pre-v2 builds wrote.
std::string V2ToV1(const std::string& v2) {
  EXPECT_GE(v2.size(), 16u);
  uint64_t config_len = 0;
  std::memcpy(&config_len, v2.data() + 8, sizeof(config_len));
  EXPECT_EQ(config_len, 0u);
  std::string v1 = v2.substr(0, 4);
  uint32_t version = 1;
  v1.append(reinterpret_cast<const char*>(&version), sizeof(version));
  v1.append(v2.substr(16));  // skip v2's version + config_len
  return v1;
}

TEST(SerializeTest, SaveAlwaysWritesV3) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("v3_version.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 8u);
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, 3u);
}

TEST(SerializeTest, V2SnapshotStillLoads) {
  Rng rng_a(1);
  SmallNet net_a(&rng_a);
  std::string v3_path = TempPath("compat_down_v3.emaf");
  ASSERT_TRUE(SaveParameters(&net_a, v3_path).ok());

  std::string v2_path = TempPath("compat_down_v2.emaf");
  {
    std::ofstream out(v2_path, std::ios::binary | std::ios::trunc);
    out << V3ToV2(ReadFileBytes(v3_path));
  }
  Rng rng_b(99);
  SmallNet net_b(&rng_b);
  ASSERT_TRUE(LoadParameters(&net_b, v2_path).ok());
  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{5, 3}, -1, 1, &data_rng);
  EXPECT_EQ(net_a.Forward(x).ToVector(), net_b.Forward(x).ToVector());
}

TEST(SerializeTest, V1SnapshotStillLoads) {
  Rng rng_a(1);
  SmallNet net_a(&rng_a);
  std::string v3_path = TempPath("compat_v3.emaf");
  ASSERT_TRUE(SaveParameters(&net_a, v3_path).ok());

  std::string v1_path = TempPath("compat_v1.emaf");
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out << V2ToV1(V3ToV2(ReadFileBytes(v3_path)));
  }
  Rng rng_b(99);
  SmallNet net_b(&rng_b);
  ASSERT_TRUE(LoadParameters(&net_b, v1_path).ok());
  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{5, 3}, -1, 1, &data_rng);
  EXPECT_EQ(net_a.Forward(x).ToVector(), net_b.Forward(x).ToVector());
  // A v1 file has no embedded config, reported as the empty blob.
  Result<std::string> config = ReadSnapshotConfig(v1_path);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value(), "");
}

// The dtype byte is load-bearing: a value outside the enum must be
// rejected with a message naming the field and the parameter, not read as
// a garbage element width.
TEST(SerializeTest, RejectsInvalidDtypeByte) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("bad_dtype.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());
  std::string bytes = ReadFileBytes(path);
  // First parameter record sits right after the count: its dtype byte
  // follows the 8-byte name length and the name itself.
  size_t pos = 8;  // magic + version
  uint64_t config_len = 0;
  std::memcpy(&config_len, bytes.data() + pos, sizeof(config_len));
  pos += 8 + config_len + 8;  // config, count
  uint64_t name_len = 0;
  std::memcpy(&name_len, bytes.data() + pos, sizeof(name_len));
  pos += 8 + name_len;
  ASSERT_EQ(bytes[pos], '\0');
  bytes[pos] = 7;  // not a DType
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  Status status = LoadParameters(&net, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("dtype"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("fc1.weight"), std::string::npos)
      << status.message();
}

// An f32 module round-trips through v3 natively (dtype byte 1, 4-byte
// payload), and a dtype mismatch between file and module converts
// element-wise instead of failing.
TEST(SerializeTest, DtypeRoundTripAndCrossDtypeLoad) {
  Rng rng_a(1);
  SmallNet net_a(&rng_a);
  net_a.CastTo(tensor::DType::kF32);
  std::string path = TempPath("f32_roundtrip.emaf");
  ASSERT_TRUE(SaveParameters(&net_a, path).ok());

  // f32 file -> f32 module: exact bytes back.
  Rng rng_b(99);
  SmallNet net_b(&rng_b);
  net_b.CastTo(tensor::DType::kF32);
  ASSERT_TRUE(LoadParameters(&net_b, path).ok());
  std::vector<NamedParameter> pa = net_a.NamedParameters();
  std::vector<NamedParameter> pb = net_b.NamedParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pb[i].value->dtype(), tensor::DType::kF32);
    EXPECT_EQ(std::memcmp(pa[i].value->raw_data(), pb[i].value->raw_data(),
                          static_cast<size_t>(pa[i].value->byte_size())),
              0)
        << pa[i].name;
  }

  // f32 file -> f64 module: payload widens; values equal the f32 values.
  Rng rng_c(7);
  SmallNet net_c(&rng_c);
  ASSERT_TRUE(LoadParameters(&net_c, path).ok());
  std::vector<NamedParameter> pc = net_c.NamedParameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pc[i].value->dtype(), tensor::DType::kF64);
    const float* af = pa[i].value->data<float>();
    const double* cd = pc[i].value->data();
    for (int64_t j = 0; j < pa[i].value->NumElements(); ++j) {
      EXPECT_EQ(cd[j], static_cast<double>(af[j])) << pa[i].name;
    }
  }
}

TEST(SerializeTest, ReadSnapshotConfigReturnsEmbeddedBlob) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("with_config.emaf");
  const std::string blob = "family=TEST\nanswer=42\n";
  ASSERT_TRUE(SaveParameters(&net, path, blob).ok());
  Result<std::string> read_back = ReadSnapshotConfig(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), blob);
  // The embedded blob must not disturb parameter loading.
  EXPECT_TRUE(LoadParameters(&net, path).ok());
}

// --- Forecaster snapshots across all five families -------------------------

constexpr int64_t kVars = 5;
constexpr int64_t kSteps = 3;

models::ModelConfig FamilyConfig(const std::string& family) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 2;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family != "LSTM" && family != "VAR") {
    graph::AdjacencyMatrix adj(kVars);
    for (int64_t i = 0; i + 1 < kVars; ++i) {
      adj.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
      adj.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
    }
    config.adjacency = adj;
  }
  return config;
}

class SnapshotFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotFamilyTest, SnapshotRoundTripsToByteIdenticalForecaster) {
  models::ModelConfig config = FamilyConfig(GetParam());
  Rng rng(7);
  std::unique_ptr<models::Forecaster> original =
      models::CreateForecasterOrDie(config, &rng);
  std::string path = TempPath(("snapshot_" + GetParam() + ".snapshot").c_str());
  ASSERT_TRUE(
      models::SaveForecasterSnapshot(original.get(), config, path).ok());

  // The loader learns everything from the file: family, dims, adjacency.
  Rng load_rng(1234);  // deliberately different stream
  Result<std::unique_ptr<models::Forecaster>> restored =
      models::LoadForecasterSnapshot(path, &load_rng);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->name(), GetParam());

  original->SetTraining(false);
  restored.value()->SetTraining(false);
  Rng data_rng(8);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  EXPECT_EQ(original->Forward(window).ToVector(),
            restored.value()->Forward(window).ToVector());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SnapshotFamilyTest,
                         ::testing::Values("LSTM", "VAR", "A3TGCN", "ASTGCN",
                                           "MTGNN"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(SnapshotTest, LoadIntoRejectsMismatchedEmbeddedConfig) {
  models::ModelConfig written = FamilyConfig("LSTM");
  Rng rng(9);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(written, &rng);
  std::string path = TempPath("config_mismatch.snapshot");
  ASSERT_TRUE(models::SaveForecasterSnapshot(model.get(), written, path).ok());

  models::ModelConfig expected = written;
  expected.lstm.dropout = 0.123;  // differs from the embedded config
  Rng other_rng(10);
  std::unique_ptr<models::Forecaster> target =
      models::CreateForecasterOrDie(expected, &other_rng);
  Status status = models::LoadForecasterInto(target.get(), expected, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("config mismatch"), std::string::npos);
  // With the matching config it loads fine.
  EXPECT_TRUE(models::LoadForecasterInto(target.get(), written, path).ok());
}

TEST(SnapshotTest, LoadForecasterSnapshotRejectsV1Files) {
  models::ModelConfig config = FamilyConfig("LSTM");
  Rng rng(11);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  // SaveParameters without a config emulates a pre-registry snapshot once
  // rewritten to the v1 layout: no family to rebuild from.
  std::string v3_path = TempPath("headless_v3.snapshot");
  ASSERT_TRUE(SaveParameters(model.get(), v3_path).ok());
  std::string v1_path = TempPath("headless_v1.snapshot");
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out << V2ToV1(V3ToV2(ReadFileBytes(v3_path)));
  }
  Rng load_rng(12);
  Result<std::unique_ptr<models::Forecaster>> restored =
      models::LoadForecasterSnapshot(v1_path, &load_rng);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  // The serve path surfaces this to operators, so the message must say
  // which file is bad and which versions are involved.
  EXPECT_NE(restored.status().message().find(v1_path), std::string::npos)
      << restored.status().message();
  EXPECT_NE(restored.status().message().find("v1"), std::string::npos);
  EXPECT_NE(restored.status().message().find("v2"), std::string::npos);
}

TEST(SerializeTest, ReadSnapshotVersionDistinguishesFormats) {
  Rng rng(13);
  SmallNet net(&rng);
  std::string v3_path = TempPath("version_probe_v3.emaf");
  ASSERT_TRUE(SaveParameters(&net, v3_path).ok());
  Result<uint32_t> v3 = ReadSnapshotVersion(v3_path);
  ASSERT_TRUE(v3.ok()) << v3.status().ToString();
  EXPECT_EQ(v3.value(), kSnapshotVersionWithDtype);

  std::string v2_path = TempPath("version_probe_v2.emaf");
  {
    std::ofstream out(v2_path, std::ios::binary | std::ios::trunc);
    out << V3ToV2(ReadFileBytes(v3_path));
  }
  Result<uint32_t> v2 = ReadSnapshotVersion(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2.value(), kSnapshotVersionWithConfig);

  std::string v1_path = TempPath("version_probe_v1.emaf");
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out << V2ToV1(ReadFileBytes(v2_path));
  }
  Result<uint32_t> v1 = ReadSnapshotVersion(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(v1.value(), kSnapshotVersionParamsOnly);

  EXPECT_EQ(ReadSnapshotVersion(TempPath("no_such_probe.emaf")).status().code(),
            StatusCode::kNotFound);
  std::string junk_path = TempPath("version_probe_junk.emaf");
  {
    std::ofstream out(junk_path, std::ios::binary | std::ios::trunc);
    out << "JUNKJUNK";
  }
  EXPECT_EQ(ReadSnapshotVersion(junk_path).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emaf::nn
