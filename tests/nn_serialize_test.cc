#include <cstdio>
#include <fstream>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

class SmallNet : public Module {
 public:
  explicit SmallNet(Rng* rng) {
    fc1_ = RegisterModule("fc1", std::make_unique<Linear>(3, 4, true, rng));
    fc2_ = RegisterModule("fc2", std::make_unique<Linear>(4, 2, true, rng));
  }
  Tensor Forward(const Tensor& x) {
    return fc2_->Forward(tensor::Relu(fc1_->Forward(x)));
  }
  Linear* fc1_;
  Linear* fc2_;
};

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripRestoresExactValues) {
  Rng rng_a(1);
  SmallNet net_a(&rng_a);
  std::string path = TempPath("roundtrip.emaf");
  ASSERT_TRUE(SaveParameters(&net_a, path).ok());

  Rng rng_b(99);  // different init
  SmallNet net_b(&rng_b);
  ASSERT_TRUE(LoadParameters(&net_b, path).ok());

  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{5, 3}, -1, 1, &data_rng);
  EXPECT_EQ(net_a.Forward(x).ToVector(), net_b.Forward(x).ToVector());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(1);
  SmallNet net(&rng);
  Status status = LoadParameters(&net, TempPath("does_not_exist.emaf"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, RejectsWrongMagic) {
  std::string path = TempPath("bad_magic.emaf");
  std::ofstream out(path, std::ios::binary);
  out << "JUNKJUNKJUNKJUNK";
  out.close();
  Rng rng(1);
  SmallNet net(&rng);
  Status status = LoadParameters(&net, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsTruncatedFile) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("truncated.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());
  // Truncate to half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  int64_t size = in.tellg();
  in.seekg(0);
  std::string content(static_cast<size_t>(size / 2), '\0');
  in.read(content.data(), size / 2);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  EXPECT_FALSE(LoadParameters(&net, path).ok());
}

TEST(SerializeTest, RejectsArchitectureMismatch) {
  Rng rng(1);
  SmallNet net(&rng);
  std::string path = TempPath("mismatch.emaf");
  ASSERT_TRUE(SaveParameters(&net, path).ok());

  class OtherNet : public Module {
   public:
    explicit OtherNet(Rng* rng) {
      RegisterModule("fc1", std::make_unique<Linear>(3, 4, true, rng));
    }
  };
  OtherNet other(&rng);
  Status status = LoadParameters(&other, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(1);
  class NetA : public Module {
   public:
    explicit NetA(Rng* rng) {
      RegisterModule("fc", std::make_unique<Linear>(3, 4, true, rng));
    }
  };
  class NetB : public Module {
   public:
    explicit NetB(Rng* rng) {
      RegisterModule("fc", std::make_unique<Linear>(4, 3, true, rng));
    }
  };
  NetA a(&rng);
  std::string path = TempPath("shape_mismatch.emaf");
  ASSERT_TRUE(SaveParameters(&a, path).ok());
  NetB b(&rng);
  Status status = LoadParameters(&b, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
}

TEST(SerializeTest, SaveToUnwritablePathFails) {
  Rng rng(1);
  SmallNet net(&rng);
  Status status = SaveParameters(&net, "/nonexistent_dir/x.emaf");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace emaf::nn
