#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/adjacency.h"
#include "graph/spectral.h"
#include "nn/graph_conv.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace emaf::nn {
namespace {

using graph::AdjacencyMatrix;
using tensor::Shape;
using tensor::Tensor;

AdjacencyMatrix PathGraph(int64_t n) {
  AdjacencyMatrix adj(n);
  for (int64_t i = 0; i + 1 < n; ++i) {
    adj.set(i, i + 1, 1.0);
    adj.set(i + 1, i, 1.0);
  }
  return adj;
}

TEST(GcnConvTest, OutputShape) {
  Rng rng(1);
  AdjacencyMatrix adj = PathGraph(5);
  GcnConv conv(graph::SymNormalizedAdjacency(adj), 3, 7, &rng);
  Tensor x = Tensor::Zeros(Shape{2, 5, 3});
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 5, 7}));
}

TEST(GcnConvTest, IsolatedGraphReducesToSharedLinear) {
  // With no edges, A_hat = I, so GCN(x) = x W + b: node outputs depend only
  // on that node's features.
  Rng rng(2);
  AdjacencyMatrix empty(4);
  GcnConv conv(graph::SymNormalizedAdjacency(empty), 2, 2, &rng);
  Rng data_rng(3);
  Tensor x = Tensor::Uniform(Shape{1, 4, 2}, -1, 1, &data_rng);
  Tensor y = conv.Forward(x);
  // Perturbing node 0 must not change node 1's output.
  Tensor x2 = x.Clone();
  x2.Set({0, 0, 0}, 100.0);
  Tensor y2 = conv.Forward(x2);
  EXPECT_NE(y.At({0, 0, 0}), y2.At({0, 0, 0}));
  EXPECT_EQ(y.At({0, 1, 0}), y2.At({0, 1, 0}));
}

TEST(GcnConvTest, ConnectedNodesInfluenceEachOther) {
  Rng rng(4);
  AdjacencyMatrix adj = PathGraph(3);
  GcnConv conv(graph::SymNormalizedAdjacency(adj), 1, 1, &rng);
  Tensor x = Tensor::Zeros(Shape{1, 3, 1});
  Tensor y_base = conv.Forward(x);
  x.Set({0, 0, 0}, 1.0);
  Tensor y = conv.Forward(x);
  // Node 1 is adjacent to node 0 and must move; node 2 (two hops) must not.
  EXPECT_NE(y.At({0, 1, 0}), y_base.At({0, 1, 0}));
  EXPECT_EQ(y.At({0, 2, 0}), y_base.At({0, 2, 0}));
}

TEST(GcnConvTest, GradCheck) {
  Rng rng(5);
  AdjacencyMatrix adj = PathGraph(4);
  GcnConv conv(graph::SymNormalizedAdjacency(adj), 2, 3, &rng);
  Rng data_rng(6);
  Tensor x = Tensor::Uniform(Shape{2, 4, 2}, -1, 1, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor y = conv.Forward(in[0]);
        return tensor::Sum(tensor::Mul(y, y));
      },
      {x}, 1e-6, 1e-6);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(ChebConvTest, OrderOneIsPlainLinear) {
  // K = 1 keeps only T_0 = I: a shared per-node linear map.
  Rng rng(7);
  AdjacencyMatrix adj = PathGraph(3);
  ChebConv conv(graph::ChebyshevPolynomials(adj, 1), 2, 2, &rng);
  EXPECT_EQ(conv.order(), 1);
  Tensor x = Tensor::Zeros(Shape{1, 3, 2});
  Tensor base = conv.Forward(x);
  x.Set({0, 0, 0}, 5.0);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.At({0, 1, 0}), base.At({0, 1, 0}));
  EXPECT_EQ(y.At({0, 2, 1}), base.At({0, 2, 1}));
}

TEST(ChebConvTest, OutputShapeOrderThree) {
  Rng rng(8);
  AdjacencyMatrix adj = PathGraph(6);
  ChebConv conv(graph::ChebyshevPolynomials(adj, 3), 4, 5, &rng);
  EXPECT_EQ(conv.order(), 3);
  Tensor x = Tensor::Zeros(Shape{2, 6, 4});
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 6, 5}));
}

TEST(ChebConvTest, AttentionModulatesPropagation) {
  Rng rng(9);
  AdjacencyMatrix adj = PathGraph(3);
  ChebConv conv(graph::ChebyshevPolynomials(adj, 2), 1, 1, &rng);
  Rng data_rng(10);
  Tensor x = Tensor::Uniform(Shape{1, 3, 1}, -1, 1, &data_rng);
  Tensor uniform_attention = Tensor::Ones(Shape{1, 3, 3});
  Tensor damped_attention = Tensor::Full(Shape{1, 3, 3}, 0.5);
  Tensor y1 = conv.Forward(x, uniform_attention);
  Tensor y2 = conv.Forward(x, damped_attention);
  bool any_diff = false;
  for (int64_t i = 0; i < y1.NumElements(); ++i) {
    if (y1.data()[i] != y2.data()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChebConvTest, GradCheckWithAttention) {
  Rng rng(11);
  AdjacencyMatrix adj = PathGraph(3);
  ChebConv conv(graph::ChebyshevPolynomials(adj, 3), 2, 2, &rng);
  Rng data_rng(12);
  Tensor x = Tensor::Uniform(Shape{2, 3, 2}, -1, 1, &data_rng);
  Tensor attention = Tensor::Uniform(Shape{2, 3, 3}, 0.1, 1.0, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor y = conv.Forward(in[0], in[1]);
        return tensor::Sum(tensor::Mul(y, y));
      },
      {x, attention}, 1e-6, 1e-6);
  EXPECT_TRUE(r.ok) << r.max_error;
}

TEST(MixPropTest, OutputShape) {
  Rng rng(13);
  MixProp mix(4, 6, /*depth=*/2, /*beta=*/0.1, &rng);
  AdjacencyMatrix adj = PathGraph(5);
  Tensor a_norm = graph::RowNormalizedAdjacency(adj);
  Tensor x = Tensor::Zeros(Shape{2, 4, 5, 3});
  EXPECT_EQ(mix.Forward(x, a_norm).shape(), (Shape{2, 6, 5, 3}));
}

TEST(MixPropTest, BetaOneIgnoresGraph) {
  // beta = 1 keeps only the input at every hop: two different graphs must
  // produce identical outputs.
  Rng rng(14);
  MixProp mix(2, 3, 2, /*beta=*/1.0, &rng);
  Rng data_rng(15);
  Tensor x = Tensor::Uniform(Shape{1, 2, 4, 2}, -1, 1, &data_rng);
  Tensor a1 = graph::RowNormalizedAdjacency(PathGraph(4));
  AdjacencyMatrix dense(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (i != j) dense.set(i, j, 1.0);
    }
  }
  Tensor a2 = graph::RowNormalizedAdjacency(dense);
  Tensor y1 = mix.Forward(x, a1);
  Tensor y2 = mix.Forward(x, a2);
  for (int64_t i = 0; i < y1.NumElements(); ++i) {
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 1e-12);
  }
}

TEST(MixPropTest, GradFlowsIntoAdjacency) {
  // The learned-graph path of MTGNN requires d(loss)/d(adjacency).
  Rng rng(16);
  MixProp mix(2, 2, 2, 0.05, &rng);
  Rng data_rng(17);
  Tensor x = Tensor::Uniform(Shape{1, 2, 3, 2}, -1, 1, &data_rng);
  Tensor a = Tensor::Uniform(Shape{3, 3}, 0.1, 1.0, &data_rng)
                 .SetRequiresGrad(true);
  Tensor y = mix.Forward(x, a);
  tensor::Sum(tensor::Mul(y, y)).Backward();
  ASSERT_TRUE(a.grad().defined());
  double norm = 0.0;
  for (double v : a.grad().ToVector()) norm += v * v;
  EXPECT_GT(norm, 0.0);
}

TEST(MixPropTest, GradCheck) {
  Rng rng(18);
  MixProp mix(2, 2, 2, 0.2, &rng);
  Rng data_rng(19);
  Tensor x = Tensor::Uniform(Shape{1, 2, 3, 2}, -1, 1, &data_rng);
  Tensor a = Tensor::Uniform(Shape{3, 3}, 0.1, 1.0, &data_rng);
  tensor::GradCheckResult r = tensor::CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor y = mix.Forward(in[0], in[1]);
        return tensor::Sum(tensor::Mul(y, y));
      },
      {x, a}, 1e-6, 1e-6);
  EXPECT_TRUE(r.ok) << r.max_error;
}

}  // namespace
}  // namespace emaf::nn
