// Dtype layer tests (DESIGN.md, "Dtype layer & SIMD dispatch").
//
// Four invariants, each load-bearing for the f32 serving path:
//   1. SIMD-vs-scalar — both arms of every f32 kernel produce bitwise
//      identical bytes (the dispatch decision must be unobservable);
//   2. accuracy — casting a model to f32 moves its forecast by float
//      rounding only, for every model family;
//   3. plan-vs-module, within dtype — a compiled f32 plan reproduces the
//      f32 module forward bitwise at 1/2/8 pool threads and on either
//      dispatch arm, and an f32 plan rejects f64 input;
//   4. engine — inference_dtype=kF32 halves resident bytes, keeps the
//      wire f64, and serves forecasts within float rounding of the f64
//      engine.

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/adjacency.h"
#include "models/registry.h"
#include "plan/interpreter.h"
#include "plan/recorder.h"
#include "serve/inference_engine.h"
#include "tensor/autograd.h"
#include "tensor/dtype.h"
#include "tensor/ops.h"
#include "tensor/simd_f32.h"
#include "tensor/tensor.h"

namespace emaf {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 5;
constexpr int64_t kSteps = 3;

models::ModelConfig FamilyConfig(const std::string& family) {
  models::ModelConfig config;
  config.family = family;
  config.num_variables = kVars;
  config.input_length = kSteps;
  config.lstm.hidden_units = 8;
  config.a3tgcn.hidden_units = 8;
  config.astgcn.hidden_units = 8;
  config.astgcn.num_blocks = 2;
  config.mtgnn.residual_channels = 8;
  config.mtgnn.conv_channels = 8;
  config.mtgnn.skip_channels = 8;
  config.mtgnn.end_channels = 16;
  config.mtgnn.embedding_dim = 4;
  if (family != "LSTM" && family != "VAR") {
    graph::AdjacencyMatrix adj(kVars);
    for (int64_t i = 0; i + 1 < kVars; ++i) {
      adj.set(i, i + 1, 0.1 + static_cast<double>(i) / 3.0);
      adj.set(i + 1, i, 0.7 - static_cast<double>(i) / 7.0);
    }
    config.adjacency = adj;
  }
  return config;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& context) {
  ASSERT_EQ(a.dtype(), b.dtype()) << context;
  ASSERT_EQ(a.shape(), b.shape()) << context;
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(),
                        static_cast<size_t>(a.byte_size())),
            0)
      << context;
}

// Restores the dispatch arm (and thread count) no matter how a test exits,
// so a failing assertion cannot leak a forced-scalar process state into
// later suites.
class DispatchGuard {
 public:
  DispatchGuard() : was_enabled_(tensor::simd::Enabled()) {}
  ~DispatchGuard() {
    tensor::simd::SetEnabledForTest(was_enabled_);
    common::ThreadPool::SetGlobalNumThreads(1);
  }

 private:
  bool was_enabled_;
};

// --- Tensor-level cast semantics --------------------------------------------

TEST(DtypeTest, CastRoundTripAndSharing) {
  Rng rng(3);
  Tensor x = Tensor::Uniform(Shape{4, 7}, -2, 2, &rng);
  ASSERT_EQ(x.dtype(), DType::kF64);
  EXPECT_EQ(x.byte_size(), 4 * 7 * int64_t{8});

  // Matching cast is free: same storage, not a copy.
  Tensor same = x.CastTo(DType::kF64);
  EXPECT_EQ(same.raw_data(), x.raw_data());

  Tensor f32 = x.CastTo(DType::kF32);
  EXPECT_EQ(f32.dtype(), DType::kF32);
  EXPECT_EQ(f32.byte_size(), 4 * 7 * int64_t{4});
  const double* xd = x.data();
  const float* f = f32.data<float>();
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_EQ(f[i], static_cast<float>(xd[i]));
  }

  // Round-tripping back to f64 is exact for values that started as f64
  // only up to float rounding; widening the f32 values back is exact.
  Tensor back = f32.CastTo(DType::kF64);
  const double* bd = back.data();
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_EQ(bd[i], static_cast<double>(f[i]));
  }
}

// --- SIMD vs scalar: kernel-level bitwise equality --------------------------

// Sizes straddling the 8-lane AVX2 width: full vectors, remainder tails,
// and sub-vector runs must all agree with the scalar arm.
const int64_t kKernelSizes[] = {1, 3, 7, 8, 9, 16, 31, 64, 100};

std::vector<float> RandomFloats(int64_t n, Rng* rng, double lo = -3.0,
                                double hi = 3.0) {
  std::vector<float> v(static_cast<size_t>(n));
  Tensor t = Tensor::Uniform(Shape{n}, lo, hi, rng);
  const double* d = t.data();
  for (int64_t i = 0; i < n; ++i) v[static_cast<size_t>(i)] = static_cast<float>(d[i]);
  return v;
}

TEST(SimdDispatchTest, MatMulBitwiseAcrossArms) {
  DispatchGuard guard;
  Rng rng(11);
  for (int64_t m : {1, 2, 5}) {
    for (int64_t k : {1, 7, 24}) {
      for (int64_t n : {1, 8, 13, 33}) {
        std::vector<float> a = RandomFloats(m * k, &rng);
        std::vector<float> b = RandomFloats(k * n, &rng);
        std::vector<float> c_simd(static_cast<size_t>(m * n), 0.0f);
        std::vector<float> c_scalar(static_cast<size_t>(m * n), 0.0f);
        tensor::simd::SetEnabledForTest(true);
        tensor::simd::MatMulF32(a.data(), b.data(), c_simd.data(), m, k, n);
        tensor::simd::SetEnabledForTest(false);
        tensor::simd::MatMulF32(a.data(), b.data(), c_scalar.data(), m, k, n);
        EXPECT_EQ(std::memcmp(c_simd.data(), c_scalar.data(),
                              c_simd.size() * sizeof(float)),
                  0)
            << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(SimdDispatchTest, BinaryOpsBitwiseAcrossArms) {
  DispatchGuard guard;
  Rng rng(12);
  using tensor::simd::EwOp;
  for (EwOp op : {EwOp::kAdd, EwOp::kSub, EwOp::kMul, EwOp::kDiv, EwOp::kMax,
                  EwOp::kMin}) {
    for (int64_t n : kKernelSizes) {
      for (bool swapped : {false, true}) {
        std::vector<float> dst = RandomFloats(n, &rng);
        std::vector<float> other = RandomFloats(n, &rng);
        std::vector<float> dst_scalar = dst;
        tensor::simd::SetEnabledForTest(true);
        tensor::simd::BinaryF32(op, dst.data(), other.data(), swapped, n);
        tensor::simd::SetEnabledForTest(false);
        tensor::simd::BinaryF32(op, dst_scalar.data(), other.data(), swapped,
                                n);
        EXPECT_EQ(std::memcmp(dst.data(), dst_scalar.data(),
                              dst.size() * sizeof(float)),
                  0)
            << "op=" << static_cast<int>(op) << " n=" << n
            << " swapped=" << swapped;
      }
    }
  }
}

TEST(SimdDispatchTest, UnaryOpsBitwiseAcrossArms) {
  DispatchGuard guard;
  Rng rng(13);
  using tensor::simd::UnOp;
  struct Case {
    UnOp op;
    float s0, s1;
  };
  const Case cases[] = {
      {UnOp::kNeg, 0, 0},         {UnOp::kAbs, 0, 0},
      {UnOp::kSqrt, 0, 0},        {UnOp::kRelu, 0, 0},
      {UnOp::kLeakyRelu, 0.01f, 0}, {UnOp::kClamp, -0.5f, 0.75f},
      {UnOp::kAddScalar, 1.25f, 0}, {UnOp::kMulScalar, -2.5f, 0},
  };
  for (const Case& c : cases) {
    for (int64_t n : kKernelSizes) {
      // kSqrt of a negative input is NaN on both arms; keep inputs
      // positive there so memcmp compares equal payloads, not NaN bits.
      std::vector<float> dst = RandomFloats(
          n, &rng, c.op == UnOp::kSqrt ? 0.0 : -3.0, 3.0);
      std::vector<float> dst_scalar = dst;
      tensor::simd::SetEnabledForTest(true);
      tensor::simd::UnaryF32(c.op, dst.data(), c.s0, c.s1, n);
      tensor::simd::SetEnabledForTest(false);
      tensor::simd::UnaryF32(c.op, dst_scalar.data(), c.s0, c.s1, n);
      EXPECT_EQ(std::memcmp(dst.data(), dst_scalar.data(),
                            dst.size() * sizeof(float)),
                0)
          << "op=" << static_cast<int>(c.op) << " n=" << n;
    }
  }
}

// vmaxps/vminps pick the second operand when either input is NaN, and the
// scalar arm mirrors that exactly — pin it so a "cleanup" to std::fmax
// (which prefers the non-NaN operand) cannot slip in on one arm only.
TEST(SimdDispatchTest, MaxMinNanSemanticsMatchAcrossArms) {
  DispatchGuard guard;
  const float nan = std::nanf("");
  for (auto op : {tensor::simd::EwOp::kMax, tensor::simd::EwOp::kMin}) {
    std::vector<float> dst = {nan, 1.0f, nan, -2.0f, 0.5f, nan, 3.0f, nan,
                              nan};
    std::vector<float> other = {1.0f, nan, nan, 4.0f, nan, -1.0f, nan, nan,
                                2.0f};
    std::vector<float> dst_scalar = dst;
    tensor::simd::SetEnabledForTest(true);
    tensor::simd::BinaryF32(op, dst.data(), other.data(), false,
                            static_cast<int64_t>(dst.size()));
    tensor::simd::SetEnabledForTest(false);
    tensor::simd::BinaryF32(op, dst_scalar.data(), other.data(), false,
                            static_cast<int64_t>(dst_scalar.size()));
    EXPECT_EQ(std::memcmp(dst.data(), dst_scalar.data(),
                          dst.size() * sizeof(float)),
              0);
  }
}

// --- Per-family f32 accuracy and bitwise plan equivalence -------------------

class DtypeFamilyTest : public ::testing::TestWithParam<std::string> {};

// Casting a model to f32 perturbs its forecast by float rounding only:
// bounded relative to the f64 output scale, far beyond any training-level
// signal but far from garbage. This is the accuracy contract
// EngineOptions::inference_dtype documents.
TEST_P(DtypeFamilyTest, F32ForecastWithinFloatRoundingOfF64) {
  models::ModelConfig config = FamilyConfig(GetParam());
  Rng rng(21);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  tensor::NoGradGuard no_grad;

  Rng data_rng(22);
  Tensor window = Tensor::Uniform(Shape{3, kSteps, kVars}, -1, 1, &data_rng);
  Tensor f64_out = model->Forward(window);

  model->CastTo(DType::kF32);
  EXPECT_EQ(model->dtype(), DType::kF32);
  Tensor f32_out = model->Forward(window.CastTo(DType::kF32));
  ASSERT_EQ(f32_out.dtype(), DType::kF32);
  ASSERT_EQ(f32_out.shape(), f64_out.shape());

  const double* ref = f64_out.data();
  const float* got = f32_out.data<float>();
  double max_abs_ref = 0.0;
  double max_abs_err = 0.0;
  for (int64_t i = 0; i < f64_out.NumElements(); ++i) {
    max_abs_ref = std::max(max_abs_ref, std::abs(ref[i]));
    max_abs_err =
        std::max(max_abs_err, std::abs(ref[i] - static_cast<double>(got[i])));
  }
  EXPECT_LE(max_abs_err, 1e-3 * (1.0 + max_abs_ref))
      << GetParam() << ": max|f64 - f32| = " << max_abs_err
      << " at output scale " << max_abs_ref;
}

// A plan compiled from an f32 forward replays it bitwise — at 1/2/8 pool
// threads and on both dispatch arms. Same anchor the f64 path has had
// since the plan layer landed, now per dtype.
TEST_P(DtypeFamilyTest, F32PlanMatchesModuleBitwiseAcrossThreadsAndArms) {
  DispatchGuard guard;
  models::ModelConfig config = FamilyConfig(GetParam());
  Rng rng(31);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  model->CastTo(DType::kF32);
  tensor::NoGradGuard no_grad;

  Rng data_rng(32);
  Tensor window =
      Tensor::Uniform(Shape{2, kSteps, kVars}, -1, 1, &data_rng)
          .CastTo(DType::kF32);

  Result<std::shared_ptr<const plan::Plan>> compiled =
      plan::Compile(model.get(), window);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled.value()->dtype, DType::kF32);

  // The f32 plan refuses f64 input rather than silently reinterpreting.
  Tensor f64_window = window.CastTo(DType::kF64);
  Result<Tensor> wrong = plan::Execute(*compiled.value(), f64_window, nullptr);
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong.status().message().find("f64"), std::string::npos)
      << wrong.status().message();

  for (bool simd_arm : {true, false}) {
    tensor::simd::SetEnabledForTest(simd_arm);
    Tensor module_out = model->Forward(window);
    for (int64_t threads : {1, 2, 8}) {
      common::ThreadPool::SetGlobalNumThreads(threads);
      Result<Tensor> plan_out = plan::Execute(*compiled.value(), window, nullptr);
      ASSERT_TRUE(plan_out.ok()) << plan_out.status().ToString();
      ExpectBitwiseEqual(module_out, plan_out.value(),
                         GetParam() + " simd=" + (simd_arm ? "on" : "off") +
                             " threads=" + std::to_string(threads));
    }
    common::ThreadPool::SetGlobalNumThreads(1);
  }
}

// The whole f32 forward — module path, not just kernels — lands on
// identical bytes whichever dispatch arm ran it.
TEST_P(DtypeFamilyTest, F32ModuleForwardBitwiseAcrossArms) {
  DispatchGuard guard;
  models::ModelConfig config = FamilyConfig(GetParam());
  Rng rng(41);
  std::unique_ptr<models::Forecaster> model =
      models::CreateForecasterOrDie(config, &rng);
  model->SetTraining(false);
  model->CastTo(DType::kF32);
  tensor::NoGradGuard no_grad;

  Rng data_rng(42);
  Tensor window =
      Tensor::Uniform(Shape{2, kSteps, kVars}, -1, 1, &data_rng)
          .CastTo(DType::kF32);

  tensor::simd::SetEnabledForTest(true);
  Tensor simd_out = model->Forward(window);
  tensor::simd::SetEnabledForTest(false);
  Tensor scalar_out = model->Forward(window);
  ExpectBitwiseEqual(simd_out, scalar_out, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DtypeFamilyTest,
                         ::testing::Values("LSTM", "VAR", "A3TGCN", "ASTGCN",
                                           "MTGNN"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --- Engine-level f32 serving -----------------------------------------------

class DtypeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pid-unique: dtype_test and dtype_test_nosimd run this fixture
    // concurrently under `ctest -j` and must not share the directory.
    dir_ = std::string(::testing::TempDir()) + "/dtype_engine_snapshots_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(std::filesystem::create_directories(dir_));
    for (const char* spec : {"i00:LSTM", "i01:MTGNN"}) {
      std::string id(spec, 3);
      models::ModelConfig config = FamilyConfig(spec + 4);
      Rng rng(std::hash<std::string>{}(id));
      std::unique_ptr<models::Forecaster> model =
          models::CreateForecasterOrDie(config, &rng);
      ASSERT_TRUE(models::SaveForecasterSnapshot(
                      model.get(), config, dir_ + "/" + id + ".snapshot")
                      .ok());
    }
  }

  std::string dir_;
};

TEST_F(DtypeEngineTest, F32EngineHalvesResidentBytesAndKeepsWireF64) {
  serve::EngineOptions f64_options;
  Result<serve::InferenceEngine> f64_engine =
      serve::InferenceEngine::Load(dir_, f64_options);
  ASSERT_TRUE(f64_engine.ok()) << f64_engine.status().ToString();

  serve::EngineOptions f32_options;
  f32_options.inference_dtype = DType::kF32;
  Result<serve::InferenceEngine> f32_engine =
      serve::InferenceEngine::Load(dir_, f32_options);
  ASSERT_TRUE(f32_engine.ok()) << f32_engine.status().ToString();

  // Residency accounting reflects the real in-memory element width: the
  // f32 store holds exactly half the parameter bytes of the f64 store.
  int64_t f64_bytes = f64_engine.value().store().stats().resident_bytes;
  int64_t f32_bytes = f32_engine.value().store().stats().resident_bytes;
  ASSERT_GT(f64_bytes, 0);
  EXPECT_EQ(f32_bytes * 2, f64_bytes);

  Rng data_rng(55);
  Tensor window = Tensor::Uniform(Shape{1, kSteps, kVars}, -1, 1, &data_rng);
  for (const std::string& id : f64_engine.value().individual_ids()) {
    Result<Tensor> ref = f64_engine.value().Forecast(id, window);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    Result<Tensor> got = f32_engine.value().Forecast(id, window);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // The wire dtype never changes: f64 in, f64 out, whatever the
    // resident dtype.
    ASSERT_EQ(got.value().dtype(), DType::kF64);
    ASSERT_EQ(got.value().shape(), ref.value().shape());
    const double* r = ref.value().data();
    const double* g = got.value().data();
    for (int64_t i = 0; i < ref.value().NumElements(); ++i) {
      EXPECT_NEAR(r[i], g[i], 1e-3 * (1.0 + std::abs(r[i]))) << id;
    }
  }
}

// Repeated f32 forecasts for one id are bitwise identical — determinism
// survives the boundary casts and the plan warm-up.
TEST_F(DtypeEngineTest, F32ForecastsAreDeterministic) {
  serve::EngineOptions options;
  options.inference_dtype = DType::kF32;
  Result<serve::InferenceEngine> engine =
      serve::InferenceEngine::Load(dir_, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng data_rng(66);
  Tensor window = Tensor::Uniform(Shape{1, kSteps, kVars}, -1, 1, &data_rng);
  Result<Tensor> first = engine.value().Forecast("i00", window);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int round = 0; round < 3; ++round) {
    Result<Tensor> again = engine.value().Forecast("i00", window);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectBitwiseEqual(first.value(), again.value(),
                       "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace emaf
