// Tests for MTGNN's graph-learning modules, including the GTS-style
// edge-logit learner extension.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/trainer.h"
#include "graph/metrics.h"
#include "models/mtgnn.h"
#include "tensor/ops.h"

namespace emaf::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr int64_t kVars = 6;

graph::AdjacencyMatrix RingGraph() {
  graph::AdjacencyMatrix adj(kVars);
  for (int64_t i = 0; i < kVars; ++i) {
    int64_t j = (i + 1) % kVars;
    adj.set(i, j, 1.0);
    adj.set(j, i, 1.0);
  }
  return adj;
}

MtgnnConfig SmallConfig(GraphLearnerKind kind) {
  MtgnnConfig config;
  config.residual_channels = 8;
  config.conv_channels = 8;
  config.skip_channels = 8;
  config.end_channels = 8;
  config.embedding_dim = 4;
  config.learner_kind = kind;
  config.top_k = 2;
  return config;
}

TEST(EmbeddingLearnerTest, ProducesNonNegativeSparseAdjacency) {
  Rng rng(1);
  GraphLearner learner(kVars, 4, 3.0, 2, &rng);
  Tensor a = learner.Forward();
  EXPECT_EQ(a.shape(), (Shape{kVars, kVars}));
  for (double v : a.ToVector()) EXPECT_GE(v, 0.0);
  for (int64_t i = 0; i < kVars; ++i) {
    int64_t nonzero = 0;
    for (int64_t j = 0; j < kVars; ++j) {
      if (a.At({i, j}) != 0.0) ++nonzero;
    }
    EXPECT_LE(nonzero, 2);
  }
}

TEST(EmbeddingLearnerTest, GradientsFlowToEmbeddings) {
  Rng rng(2);
  GraphLearner learner(kVars, 4, 3.0, 3, &rng);
  tensor::Sum(learner.Forward()).Backward();
  int64_t with_grad = 0;
  for (const nn::NamedParameter& p : learner.NamedParameters()) {
    if (p.value->grad().defined()) ++with_grad;
  }
  // All six parameters (emb1/emb2 + two linears) receive gradients.
  EXPECT_EQ(with_grad, 6);
}

TEST(EdgeLogitLearnerTest, RandomInitProducesValidAdjacency) {
  Rng rng(3);
  EdgeLogitGraphLearner learner(kVars, 2, nullptr, &rng);
  Tensor a = learner.Forward();
  EXPECT_EQ(a.shape(), (Shape{kVars, kVars}));
  for (int64_t i = 0; i < kVars; ++i) {
    EXPECT_EQ(a.At({i, i}), 0.0);  // masked diagonal
    int64_t nonzero = 0;
    for (int64_t j = 0; j < kVars; ++j) {
      double v = a.At({i, j});
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);  // sigmoid probabilities
      if (v != 0.0) ++nonzero;
    }
    EXPECT_LE(nonzero, 2);
  }
}

TEST(EdgeLogitLearnerTest, InitialGraphShapesInitialProbabilities) {
  Rng rng(4);
  graph::AdjacencyMatrix ring = RingGraph();
  EdgeLogitGraphLearner learner(kVars, 2, &ring, &rng);
  Tensor a = learner.Forward();
  // Ring edges start near sigmoid(logit(0.95)) = 0.95; absent edges near
  // 0.05 and are dropped by top-k.
  for (int64_t i = 0; i < kVars; ++i) {
    int64_t next = (i + 1) % kVars;
    EXPECT_GT(a.At({i, next}), 0.5);
  }
}

TEST(EdgeLogitLearnerTest, GradientsFlowToLogits) {
  Rng rng(5);
  EdgeLogitGraphLearner learner(kVars, 3, nullptr, &rng);
  tensor::Sum(learner.Forward()).Backward();
  std::vector<nn::NamedParameter> params = learner.NamedParameters();
  ASSERT_EQ(params.size(), 1u);
  ASSERT_TRUE(params[0].value->grad().defined());
  double norm = 0.0;
  for (double v : params[0].value->grad().ToVector()) norm += v * v;
  EXPECT_GT(norm, 0.0);
}

class LearnerKindTest : public ::testing::TestWithParam<GraphLearnerKind> {};

TEST_P(LearnerKindTest, MtgnnTrainsWithEitherLearner) {
  Rng rng(6);
  graph::AdjacencyMatrix prior = RingGraph();
  Mtgnn model(&prior, kVars, 3, SmallConfig(GetParam()), &rng);
  Rng data_rng(7);
  ts::WindowDataset ds;
  ds.inputs = Tensor::Uniform(Shape{10, 3, kVars}, -1, 1, &data_rng);
  ds.targets = tensor::Select(ds.inputs, 1, 2);  // predict last input row
  core::TrainConfig train;
  train.epochs = 25;
  core::TrainResult result = core::TrainForecaster(&model, ds, train);
  EXPECT_LT(result.final_loss, 0.6 * result.epoch_losses.front());
  // The learner's graph changed during training.
  graph::AdjacencyMatrix learned = model.CurrentAdjacency();
  EXPECT_TRUE(learned.IsNonNegative());
}

TEST_P(LearnerKindTest, CurrentAdjacencyDeterministicInEval) {
  Rng rng(8);
  graph::AdjacencyMatrix prior = RingGraph();
  Mtgnn model(&prior, kVars, 3, SmallConfig(GetParam()), &rng);
  EXPECT_EQ(model.CurrentAdjacency(), model.CurrentAdjacency());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LearnerKindTest,
    ::testing::Values(GraphLearnerKind::kEmbedding,
                      GraphLearnerKind::kEdgeLogits),
    [](const ::testing::TestParamInfo<GraphLearnerKind>& info) {
      return info.param == GraphLearnerKind::kEmbedding ? "Embedding"
                                                        : "EdgeLogits";
    });

TEST(LearnerComparisonTest, EdgeLogitInitStaysCloserToPrior) {
  // Before training, the edge-logit learner initialized from a graph
  // should correlate with it more than a random-embedding learner does.
  Rng rng(9);
  graph::AdjacencyMatrix prior = RingGraph();

  MtgnnConfig logit_config = SmallConfig(GraphLearnerKind::kEdgeLogits);
  Mtgnn logit_model(&prior, kVars, 3, logit_config, &rng);
  graph::AdjacencyMatrix logit_graph = logit_model.CurrentAdjacency();
  logit_graph.Symmetrize();
  logit_graph.ZeroDiagonal();

  MtgnnConfig emb_config = SmallConfig(GraphLearnerKind::kEmbedding);
  emb_config.static_prior_weight = 0.0;  // pure random-start embeddings
  Mtgnn emb_model(nullptr, kVars, 3, emb_config, &rng);
  graph::AdjacencyMatrix emb_graph = emb_model.CurrentAdjacency();
  emb_graph.Symmetrize();
  emb_graph.ZeroDiagonal();

  EXPECT_GT(graph::GraphCorrelation(logit_graph, prior),
            graph::GraphCorrelation(emb_graph, prior));
}

}  // namespace
}  // namespace emaf::models
