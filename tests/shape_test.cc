#include <gtest/gtest.h>

#include "tensor/shape.h"

namespace emaf::tensor {
namespace {

TEST(ShapeTest, DefaultIsRankZero) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);  // a scalar
}

TEST(ShapeTest, DimsAndRank) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.NumElements(), 24);
}

TEST(ShapeTest, NegativeAxisResolution) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.DimChecked(-1), 4);
  EXPECT_EQ(s.DimChecked(-3), 2);
  EXPECT_EQ(s.CanonicalAxis(-2), 1);
}

TEST(ShapeTest, ZeroDimensionGivesZeroElements) {
  Shape s{2, 0, 4};
  EXPECT_EQ(s.NumElements(), 0);
}

TEST(ShapeTest, StridesAreRowMajor) {
  Shape s{2, 3, 4};
  std::vector<int64_t> strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ((Shape{2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ(Shape().ToString(), "[]");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(BroadcastShapesTest, EqualShapes) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 3}, Shape{2, 3}), (Shape{2, 3}));
}

TEST(BroadcastShapesTest, ScalarBroadcast) {
  EXPECT_EQ(BroadcastShapes(Shape{}, Shape{2, 3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes(Shape{2, 3}, Shape{}), (Shape{2, 3}));
}

TEST(BroadcastShapesTest, OnesExpand) {
  EXPECT_EQ(BroadcastShapes(Shape{2, 1, 4}, Shape{1, 3, 1}),
            (Shape{2, 3, 4}));
}

TEST(BroadcastShapesTest, RankExtension) {
  EXPECT_EQ(BroadcastShapes(Shape{4}, Shape{2, 3, 4}), (Shape{2, 3, 4}));
  EXPECT_EQ(BroadcastShapes(Shape{3, 1}, Shape{4}), (Shape{3, 4}));
}

TEST(BroadcastShapesDeathTest, IncompatibleShapesFail) {
  EXPECT_DEATH(BroadcastShapes(Shape{2, 3}, Shape{2, 4}),
               "not broadcastable");
}

TEST(IsBroadcastableToTest, Cases) {
  EXPECT_TRUE(IsBroadcastableTo(Shape{1, 3}, Shape{2, 3}));
  EXPECT_TRUE(IsBroadcastableTo(Shape{3}, Shape{2, 3}));
  EXPECT_TRUE(IsBroadcastableTo(Shape{}, Shape{2, 3}));
  EXPECT_TRUE(IsBroadcastableTo(Shape{2, 3}, Shape{2, 3}));
  EXPECT_FALSE(IsBroadcastableTo(Shape{2}, Shape{2, 3}));
  EXPECT_FALSE(IsBroadcastableTo(Shape{2, 3}, Shape{3}));
  EXPECT_FALSE(IsBroadcastableTo(Shape{2, 3, 4}, Shape{3, 4}));
}

TEST(BroadcastStridesTest, BroadcastAxesGetZeroStride) {
  std::vector<int64_t> strides =
      BroadcastStrides(Shape{1, 3}, Shape{2, 3});
  ASSERT_EQ(strides.size(), 2u);
  EXPECT_EQ(strides[0], 0);
  EXPECT_EQ(strides[1], 1);
}

TEST(BroadcastStridesTest, RankExtensionLeadsWithZeros) {
  std::vector<int64_t> strides = BroadcastStrides(Shape{4}, Shape{2, 3, 4});
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 0);
  EXPECT_EQ(strides[1], 0);
  EXPECT_EQ(strides[2], 1);
}

TEST(UnravelIndexTest, RoundTripsFlatIndices) {
  Shape s{2, 3, 4};
  std::vector<int64_t> strides = s.Strides();
  std::vector<int64_t> index;
  for (int64_t flat = 0; flat < s.NumElements(); ++flat) {
    UnravelIndex(flat, s, &index);
    int64_t reconstructed = 0;
    for (int64_t i = 0; i < s.rank(); ++i) {
      reconstructed += index[i] * strides[i];
    }
    EXPECT_EQ(reconstructed, flat);
  }
}

}  // namespace
}  // namespace emaf::tensor
